//! A small recursive-descent JSON parser producing [`Value`] trees.
//!
//! Covers the full JSON grammar (objects, arrays, strings with escapes
//! and `\uXXXX` including surrogate pairs, numbers, literals). Numbers
//! without a fraction or exponent parse as [`Value::Integer`], matching
//! what the printer emits for integers, so
//! `from_str(v.to_string()) == v` round-trips for printable values.

use crate::{Error, Value};

/// Parses a JSON document into a [`Value`]. Trailing whitespace is
/// allowed; trailing garbage is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: format!("{msg} at byte {}", self.pos) }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected '{word}')")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 advanced past the digits; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid; find the char boundary).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Integer(i));
            }
        }
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Integer(42));
        assert_eq!(from_str("-7").unwrap(), Value::Integer(-7));
        assert_eq!(from_str("2.5").unwrap(), Value::Number(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Number(1000.0));
        assert_eq!(from_str("-1.25e-2").unwrap(), Value::Number(-0.0125));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, 2.5, {"b": null}], "c": "x", "d": {}}"#).unwrap();
        assert_eq!(v, json!({"a": [1, 2.5, {"b": null}], "c": "x", "d": {}}));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = from_str(r#""a\"b\\c\nd\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::String("a\"b\\c\ndé😀".into()));
        // Raw multibyte UTF-8 passes through too.
        assert_eq!(from_str("\"é😀\"").unwrap(), Value::String("é😀".into()));
    }

    #[test]
    fn printer_output_round_trips() {
        let v = json!({
            "steps": 100,
            "mlups": 123.456,
            "ok": true,
            "series": [1, 2.5, -3e-4, "s", null],
            "nested": {"k": {"deep": [[]]}},
        });
        let text = v.to_string();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "\"\\x\"", "[] []", "nullx"] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn errors_carry_position() {
        let e = from_str("[1, }").unwrap_err();
        assert!(e.to_string().contains("byte 4"), "{e}");
    }
}
