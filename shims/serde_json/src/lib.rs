//! Offline stand-in for `serde_json`.
//!
//! Re-exports the [`Value`] tree from the serde shim and provides
//! [`to_value`] / [`to_string`] / [`from_str`] plus a [`json!`] macro
//! covering the forms used in this workspace: `json!(expr)`, `json!([..])`,
//! and arbitrarily nested `json!({ "key": value, .. })` object literals
//! whose values may be expressions, literals, arrays, or further objects.

pub use serde::value::Value;

mod parse;
pub use parse::from_str;

/// Lowers any `Serialize` value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.serialize_value()
}

/// Serializes to a compact JSON string. Infallible in this shim; the
/// `Result` mirrors the upstream signature.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    Ok(v.serialize_value().to_string())
}

/// Serialization/deserialization error. Serialization never produces
/// one in this shim; [`from_str`] reports malformed input through it.
#[derive(Debug)]
pub struct Error {
    pub(crate) msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Builds a [`Value`] from a JSON-ish literal or any `Serialize`
/// expression.
#[macro_export]
macro_rules! json {
    ($($t:tt)+) => { $crate::json_internal!($($t)+) };
}

/// Token muncher behind [`json!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- object entries -------------------------------------------------
    (@object $obj:ident ()) => {};
    (@object $obj:ident (, $($rest:tt)*)) => {
        $crate::json_internal!(@object $obj ($($rest)*));
    };
    (@object $obj:ident ($key:tt : null $($rest:tt)*)) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $crate::json_internal!(@object $obj ($($rest)*));
    };
    (@object $obj:ident ($key:tt : true $($rest:tt)*)) => {
        $obj.push(($key.to_string(), $crate::Value::Bool(true)));
        $crate::json_internal!(@object $obj ($($rest)*));
    };
    (@object $obj:ident ($key:tt : false $($rest:tt)*)) => {
        $obj.push(($key.to_string(), $crate::Value::Bool(false)));
        $crate::json_internal!(@object $obj ($($rest)*));
    };
    (@object $obj:ident ($key:tt : [$($arr:tt)*] $($rest:tt)*)) => {
        $obj.push(($key.to_string(), $crate::json_internal!([$($arr)*])));
        $crate::json_internal!(@object $obj ($($rest)*));
    };
    (@object $obj:ident ($key:tt : {$($map:tt)*} $($rest:tt)*)) => {
        $obj.push(($key.to_string(), $crate::json_internal!({$($map)*})));
        $crate::json_internal!(@object $obj ($($rest)*));
    };
    (@object $obj:ident ($key:tt : $value:expr , $($rest:tt)*)) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
        $crate::json_internal!(@object $obj ($($rest)*));
    };
    (@object $obj:ident ($key:tt : $value:expr)) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
    };

    // ---- array elements -------------------------------------------------
    (@array $arr:ident ()) => {};
    (@array $arr:ident (, $($rest:tt)*)) => {
        $crate::json_internal!(@array $arr ($($rest)*));
    };
    (@array $arr:ident (null $($rest:tt)*)) => {
        $arr.push($crate::Value::Null);
        $crate::json_internal!(@array $arr ($($rest)*));
    };
    (@array $arr:ident (true $($rest:tt)*)) => {
        $arr.push($crate::Value::Bool(true));
        $crate::json_internal!(@array $arr ($($rest)*));
    };
    (@array $arr:ident (false $($rest:tt)*)) => {
        $arr.push($crate::Value::Bool(false));
        $crate::json_internal!(@array $arr ($($rest)*));
    };
    (@array $arr:ident ([$($a:tt)*] $($rest:tt)*)) => {
        $arr.push($crate::json_internal!([$($a)*]));
        $crate::json_internal!(@array $arr ($($rest)*));
    };
    (@array $arr:ident ({$($m:tt)*} $($rest:tt)*)) => {
        $arr.push($crate::json_internal!({$($m)*}));
        $crate::json_internal!(@array $arr ($($rest)*));
    };
    (@array $arr:ident ($next:expr , $($rest:tt)*)) => {
        $arr.push($crate::to_value(&$next));
        $crate::json_internal!(@array $arr ($($rest)*));
    };
    (@array $arr:ident ($last:expr)) => {
        $arr.push($crate::to_value(&$last));
    };

    // ---- entry points ---------------------------------------------------
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut array: Vec<$crate::Value> = Vec::new();
        $crate::json_internal!(@array array ($($tt)*));
        $crate::Value::Array(array)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_internal!(@object object ($($tt)*));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_form() {
        let rows = vec![1u32, 2, 3];
        assert_eq!(json!(rows).to_string(), "[1,2,3]");
    }

    fn helper(a: f64, b: f64) -> f64 {
        a + b
    }

    #[test]
    fn object_form_with_exprs_and_nesting() {
        let x = 2.5f64;
        let rows = vec![1u32, 2];
        let v = json!({
            "a": x,
            "call": helper(1.0, 2.0),
            "b": {"c": 1, "d": [true, null]},
            "rows": rows,
            "e": "s",
        });
        assert_eq!(
            v.to_string(),
            r#"{"a":2.5,"call":3,"b":{"c":1,"d":[true,null]},"rows":[1,2],"e":"s"}"#
        );
    }

    #[test]
    fn array_form() {
        let v = json!([1, {"k": 2.5}, [null, false], "x"]);
        assert_eq!(v.to_string(), r#"[1,{"k":2.5},[null,false],"x"]"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(json!({}).to_string(), "{}");
        assert_eq!(json!([]).to_string(), "[]");
    }

    #[test]
    fn to_string_matches_display() {
        let v = vec![("k".to_string(), 1u64)];
        assert_eq!(to_string(&v).unwrap(), to_value(&v).to_string());
    }
}
