//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API this workspace uses —
//! `criterion_group!`/`criterion_main!`, benchmark groups, throughput
//! annotations, and `Bencher::iter` — implemented as simple timed loops.
//! Each benchmark runs a warmup pass plus `sample_size` timed samples and
//! prints the median per-iteration time (with derived throughput when
//! annotated). There is no statistical analysis or report output; the
//! point is that `cargo bench` compiles and produces comparable numbers.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier, printed as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    #[doc(hidden)]
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the most recent `iter` call.
    last: Duration,
}

impl Bencher {
    /// Times `routine`: one warmup call, then `samples` timed calls;
    /// records the median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut times: Vec<Duration> = (0..self.samples.max(1))
            .map(|_| {
                let t0 = Instant::now();
                black_box(routine());
                t0.elapsed()
            })
            .collect();
        times.sort();
        self.last = times[times.len() / 2];
    }
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(group: &str, id: &str, elapsed: Duration, throughput: Option<Throughput>) {
    let name = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let secs = elapsed.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if secs > 0.0 => {
            format!("  {:.2} GiB/s", b as f64 / secs / (1u64 << 30) as f64)
        }
        Some(Throughput::Elements(n)) if secs > 0.0 => {
            format!("  {:.2} Melem/s", n as f64 / secs / 1e6)
        }
        _ => String::new(),
    };
    println!("{name:<40} {:>12}{rate}", human_time(elapsed));
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, last: Duration::ZERO };
        f(&mut b);
        report(&self.name, &id.into_id(), b.last, self.throughput);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I, T: ?Sized, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        let mut b = Bencher { samples: self.sample_size, last: Duration::ZERO };
        f(&mut b, input);
        report(&self.name, &id.into_id(), b.last, self.throughput);
        self
    }

    /// Ends the group (no-op beyond matching the upstream API).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Benchmark driver configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, last: Duration::ZERO };
        f(&mut b);
        report("", id, b.last, None);
        self
    }
}

/// Declares a benchmark group runner, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("in", 1), &41, |b, x| b.iter(|| black_box(x + 1)));
        g.finish();
    }

    criterion_group!(plain_form, trivial);
    criterion_group! {
        name = config_form;
        config = Criterion::default().sample_size(2);
        targets = trivial, trivial
    }

    #[test]
    fn groups_run() {
        plain_form();
        config_form();
    }

    #[test]
    fn bencher_records_time() {
        let mut b = Bencher { samples: 2, last: Duration::ZERO };
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        assert!(b.last >= Duration::from_micros(50));
    }
}
