//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` for
//! structs with named fields.
//!
//! The workspace derives `Serialize` only on plain result structs
//! (figures/table rows), so this macro supports exactly that shape and
//! fails loudly on anything else. No `syn`/`quote` — the struct is parsed
//! directly from the token stream.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by emitting one object entry per named
/// field, in declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Find `struct <Name>` and the following brace group.
    let mut name = None;
    let mut body = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = tt {
            if id.to_string() == "struct" {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => panic!("derive(Serialize): expected struct name"),
                }
                // Skip anything (e.g. generics are unsupported and will
                // fail below) until the brace group.
                for rest in iter.by_ref() {
                    if let TokenTree::Group(g) = rest {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g.stream());
                            break;
                        }
                        if g.delimiter() == Delimiter::Parenthesis {
                            panic!("derive(Serialize) shim supports named-field structs only");
                        }
                    }
                }
                break;
            }
            if id.to_string() == "enum" {
                panic!("derive(Serialize) shim supports structs only");
            }
        }
    }
    let name = name.expect("derive(Serialize): no struct found");
    let body = body.expect("derive(Serialize): struct has no named-field body");

    // Collect field names: idents that appear immediately before a
    // top-level `:` at depth 0 (attribute groups are TokenTree::Group and
    // are skipped naturally; generic args inside types never appear at
    // top level between commas before the first colon).
    let mut fields = Vec::new();
    let mut expecting_name = true;
    let mut last_ident: Option<String> = None;
    let mut angle_depth = 0i32;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if expecting_name && angle_depth == 0 => {
                    if let Some(f) = last_ident.take() {
                        fields.push(f);
                        expecting_name = false;
                    }
                }
                ',' if angle_depth == 0 => {
                    expecting_name = true;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                // Skip visibility and keep the most recent ident before ':'.
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }

    let entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::serialize_value(&self.{f})),"))
        .collect();
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> serde::value::Value {{\n\
                 serde::value::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    );
    out.parse().expect("derive(Serialize): generated impl failed to parse")
}
