//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the 0.8 API this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer/float
//! ranges, and `SliceRandom::shuffle` — on top of xoshiro256++ seeded via
//! SplitMix64. Streams are deterministic per seed (the property every
//! test and the partitioner rely on) but are *not* the same streams as
//! upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Derives a full RNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface.
pub trait Rng {
    /// The core 64-bit generator step.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
        Self: Sized,
    {
        let r = range.into();
        T::sample(self, r.low, r.high, r.inclusive)
    }

    /// A uniform sample of the type's full "standard" distribution
    /// (`[0, 1)` for floats).
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

/// A half-open or inclusive uniform range, the argument of
/// [`Rng::gen_range`].
pub struct UniformRange<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T> From<Range<T>> for UniformRange<T> {
    fn from(r: Range<T>) -> Self {
        UniformRange { low: r.start, high: r.end, inclusive: false }
    }
}

impl<T: Copy> From<RangeInclusive<T>> for UniformRange<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        UniformRange { low: *r.start(), high: *r.end(), inclusive: true }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[low, high)` (or `[low, high]` when
    /// `inclusive`).
    fn sample<R: Rng>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;

    /// The "standard" distribution sample ( `[0,1)` for floats, full range
    /// for integers).
    fn standard<R: Rng>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: Rng>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        // Treat inclusive float ranges like half-open ones (upstream rand
        // does almost the same; the endpoint has measure zero).
        assert!(low <= high, "gen_range: empty range");
        low + (high - low) * rng.next_f64()
    }

    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl SampleUniform for f32 {
    fn sample<R: Rng>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + (high - low) * rng.next_f64() as f32
    }

    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let span_end = if inclusive {
                    (high as i128) + 1
                } else {
                    high as i128
                };
                let span = span_end - low as i128;
                assert!(span > 0, "gen_range: empty range");
                // Modulo bias is negligible for the small spans used here
                // (and irrelevant for reproducibility).
                (low as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }

            fn standard<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Standard RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — a small, fast, high-quality generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f64 = rng.gen_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v: u32 = rng.gen_range(0..8u32);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }
}
