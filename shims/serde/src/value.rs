//! The owned JSON-like value tree and its compact-JSON printer.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact, printed without a decimal point).
    Integer(i128),
    /// A float. Non-finite values print as `null`, as upstream
    /// `serde_json` rejects them.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Integer(i) => out.push_str(&i.to_string()),
            Value::Number(n) => {
                if n.is_finite() {
                    // `{}` on f64 prints integers without a fraction —
                    // still valid JSON.
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl Value {
    /// Object field access by key (`None` for non-objects and missing
    /// keys), mirroring upstream `serde_json`'s `Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields of an object value.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The borrowed string of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers convert losslessly up to 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value as `u64`; `None` for floats, negative
    /// integers, and non-numbers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Integer(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Integer value as `i64`; `None` for floats and non-numbers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The boolean of a bool value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_into(&mut s);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_compact_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::Integer(1)),
            ("b".into(), Value::Array(vec![Value::Bool(false), Value::Null])),
            ("c".into(), Value::Number(2.25)),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[false,null],"c":2.25}"#);
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn nonfinite_floats_print_null() {
        assert_eq!(Value::Number(f64::NAN).to_string(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_string(), "null");
    }
}
