//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy serialization *framework*; this shim is a
//! much smaller thing: a [`Serialize`] trait that lowers values into an
//! owned JSON-like [`value::Value`] tree, which `serde_json` then prints.
//! That is the only capability this workspace uses (deriving `Serialize`
//! on plain result structs and dumping them with `serde_json::json!`).

pub use serde_derive::Serialize;

pub mod value;

use value::Value;

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produces the value tree.
    fn serialize_value(&self) -> Value;
}

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_ser_float!(f32, f64);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Integer(*self as i128)
            }
        }
    )*};
}

impl_ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(3u32.serialize_value().to_string(), "3");
        assert_eq!((-4i64).serialize_value().to_string(), "-4");
        assert_eq!(true.serialize_value().to_string(), "true");
        assert_eq!(1.5f64.serialize_value().to_string(), "1.5");
        assert_eq!("hi".serialize_value().to_string(), "\"hi\"");
        assert_eq!(Option::<u32>::None.serialize_value().to_string(), "null");
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        assert_eq!(v.serialize_value().to_string(), "[[1,\"a\"],[2,\"b\"]]");
    }
}
