//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! semantics the communication runtime relies on: unbounded MPMC-ish
//! queues, blocking `recv` that fails once all senders are dropped, and a
//! non-blocking `try_recv`. Built on a mutex + condvar; performance is
//! adequate for the threaded rank substrate.

/// Multi-producer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner { items: VecDeque::new(), senders: 1, receiver_alive: true }),
            ready: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            if !q.receiver_alive {
                return Err(SendError(msg));
            }
            q.items.push_back(msg);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails once every sender is
        /// dropped and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(item) = q.items.pop_front() {
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).expect("channel poisoned");
            }
        }

        /// Blocks until a message arrives or `timeout` elapses. Fails
        /// with [`RecvTimeoutError::Disconnected`] once every sender is
        /// dropped and the queue is drained.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(item) = q.items.pop_front() {
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) =
                    self.shared.ready.wait_timeout(q, deadline - now).expect("channel poisoned");
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            match q.items.pop_front() {
                Some(item) => Ok(item),
                None if q.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().expect("channel poisoned").receiver_alive = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn try_recv_empty_then_value() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(1).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42u64).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn send_fails_without_receiver() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(3), Err(SendError(3)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Err(RecvTimeoutError::Timeout));
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(7));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Err(RecvTimeoutError::Disconnected));
    }
}
