//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny subset of `bytes` it actually uses: little-endian
//! `put_*`/`get_*` accessors on `Vec<u8>` and `&[u8]`. Semantics match the
//! upstream crate for the implemented methods (panics on underflow, same
//! byte order, same variable-width integer encoding).

/// Writing primitive values to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends the low `nbytes` bytes of `v`, little-endian.
    fn put_uint_le(&mut self, v: u64, nbytes: usize) {
        assert!(nbytes <= 8, "put_uint_le width out of range");
        self.put_slice(&v.to_le_bytes()[..nbytes]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Reading primitive values from a byte slice, consuming as it goes.
pub trait Buf {
    /// Remaining bytes.
    fn chunk(&self) -> &[u8];

    /// Discards the first `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Number of remaining bytes.
    fn remaining(&self) -> usize {
        self.chunk().len()
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("buffer underflow"));
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("buffer underflow"));
        self.advance(8);
        v
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads an unsigned integer of `nbytes` bytes, little-endian.
    fn get_uint_le(&mut self, nbytes: usize) -> u64 {
        assert!(nbytes <= 8, "get_uint_le width out of range");
        let mut bytes = [0u8; 8];
        bytes[..nbytes].copy_from_slice(&self.chunk()[..nbytes]);
        self.advance(nbytes);
        u64::from_le_bytes(bytes)
    }
}

impl Buf for &[u8] {
    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        buf.put_f64_le(-1.5);
        buf.put_uint_le(0x0a0b0c, 3);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.get_uint_le(3), 0x0a0b0c);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_consumes() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.chunk(), &[3, 4]);
    }
}
