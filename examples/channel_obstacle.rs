//! Channel flow around a fixed spherical obstacle — one of the two dense
//! weak-scaling scenarios of the paper (§4.2), here run as a physical
//! simulation: velocity inflow, pressure outflow, no-slip walls and
//! obstacle, with an obstacle-to-fluid ratio of about 1 %.
//!
//! Prints the developing flow field: the velocity profile across the
//! channel upstream and downstream of the obstacle (showing the wake
//! deficit) and the mass balance.
//!
//! Run with: `cargo run --release --example channel_obstacle`

use trillium_core::prelude::*;

fn main() {
    let n = [96usize, 32, 32];
    let inflow = 0.04;
    let scenario = Scenario::channel_with_obstacle(n, [4, 1, 1], 0.06, inflow, 0.14);
    println!("scenario: {}", scenario.name);

    // Probe lines across the channel (y direction) at three stations:
    // upstream, just behind the obstacle, and far downstream.
    let stations = [n[0] as i64 / 5, n[0] as i64 / 2 + 6, n[0] as i64 - 8];
    let mut probes = Vec::new();
    for &x in &stations {
        for y in 0..n[1] as i64 {
            probes.push([x, y, n[2] as i64 / 2]);
        }
    }

    let steps = 400;
    println!("running {steps} steps on 4 ranks ...");
    let result = trillium_core::driver::run_distributed_probed(&scenario, 4, 1, steps, &probes);
    assert!(!result.has_nan(), "simulation went unstable");

    let all = result.probes();
    for &x in &stations {
        println!("\nu_x profile at x = {x}:");
        let line: Vec<_> = all.iter().filter(|(c, _)| c[0] == x).collect();
        for (c, u) in &line {
            if c[1] % 2 == 0 {
                let bar_len = (60.0 * (u[0] / inflow).max(0.0)) as usize;
                println!("y={:>3}  u_x={:>9.5}  {}", c[1], u[0], "#".repeat(bar_len));
            }
        }
        // Volumetric flux through the station (per unit depth sampled).
        let flux: f64 = line.iter().map(|(_, u)| u[0]).sum();
        println!("  station flux (sampled line): {flux:.4}");
    }

    println!("\nexpect: blunted profile with a wake deficit behind the obstacle that");
    println!("recovers downstream; fluxes at all stations agree to a few percent");
    println!("(incompressibility).");
}
