//! The paper's flagship application at workstation scale: blood flow in a
//! (synthetic) coronary artery tree.
//!
//! Walks the full §2.3 pipeline: procedural tree generation → watertight
//! surface-mesh extraction (marching tetrahedra) → block forest with
//! hierarchical intersection filtering → load balancing → per-block
//! voxelization with colored inflow/outflow boundary conditions → a
//! distributed simulation driving flow from the inlet through the tree.
//!
//! Run with: `cargo run --release --example coronary_tree`

use std::sync::Arc;
use trillium_core::pipeline::{setup_domain, Balancer};
use trillium_core::prelude::*;
use trillium_geometry::{SignedDistance, VascularTree, VascularTreeParams};

fn main() {
    // A small tree (5 generations = 31 branches) keeps the example quick.
    let tree = VascularTree::generate(&VascularTreeParams {
        generations: 5,
        root_radius: 1.2,
        root_length: 7.0,
        ..Default::default()
    });
    println!(
        "generated vascular tree: {} segments, {} outlets, bounding box {:.1?} mm",
        tree.num_segments(),
        tree.outlets.len(),
        tree.bounding_box().extents().to_array(),
    );
    println!(
        "fluid fraction of bounding box: {:.2} % (paper's CTA geometry: ~0.3 %)",
        100.0 * tree.fluid_fraction_estimate(50_000, 7)
    );

    // Surface mesh via marching tetrahedra — the artifact a clinical
    // pipeline would hand to the solver.
    let mesh = tree.to_mesh(0.25);
    println!(
        "extracted surface mesh: {} triangles, watertight: {}, enclosed volume {:.1} mm^3",
        mesh.num_triangles(),
        mesh.is_watertight(),
        mesh.signed_volume()
    );

    // Full domain setup at dx = 0.15 mm with 10^3-cell blocks on 4 ranks.
    let tree = Arc::new(tree);
    let dx = 0.15;
    let setup = setup_domain(
        "coronary",
        tree.clone(),
        dx,
        [10, 10, 10],
        4,
        Balancer::Graph,
        0.06,
        [0.0, 0.0, 0.05], // inflow velocity along the root axis (+z)
    );
    println!(
        "\ndomain setup: {} blocks, {:.3e} fluid cells, block fluid fraction {:.1} %, imbalance {:.3}",
        setup.forest.num_blocks(),
        setup.total_fluid_cells(),
        100.0 * setup.fluid_fraction(),
        setup.forest.imbalance()
    );

    let steps = 150;
    println!("running {steps} time steps on 4 ranks ...");
    let result = run_distributed(&setup.scenario, 4, 1, steps);
    assert!(!result.has_nan(), "simulation went unstable");
    let stats = result.total_stats();
    println!(
        "updated {} fluid cells ({} traversed), comm share {:.1} %",
        stats.fluid_cells,
        stats.cells,
        100.0 * result.comm_fraction()
    );

    // Perfusion check: the inlet drives mass into the tree.
    let drift = result.mass_drift();
    println!("net mass change from in/outflow: {:.3e} (inflow-driven)", drift);

    // Velocity near the inlet: probe a point just inside the root vessel.
    let (inlet, _) = tree.inlet;
    println!(
        "inlet is inside the domain: {}",
        tree.contains(trillium_geometry::vec3::vec3(inlet.x, inlet.y, inlet.z + 1.0))
    );
    println!("\ndone — see fig7_weak_vascular / fig8_strong_vascular for the scaling study.");
}
