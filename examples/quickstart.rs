//! Quickstart: a distributed lid-driven cavity in ~30 lines.
//!
//! Builds a 64³-cell cavity split into 2×2×2 blocks, runs it on 4 ranks
//! (threads acting as MPI processes), and prints performance counters and
//! the vertical profile of the x-velocity through the cavity center —
//! the classic recirculation signature.
//!
//! Run with: `cargo run --release --example quickstart`

use trillium_core::prelude::*;

fn main() {
    let n = 64; // cells per axis
    let steps = 200;

    // Cavity with lattice viscosity 0.05 and lid velocity 0.08 (in
    // lattice units; keep below ~0.1 for stability).
    let scenario = Scenario::lid_driven_cavity(n, 2, 0.05, 0.08);

    // Velocity probes along the vertical centerline.
    let probes: Vec<[i64; 3]> = (0..n as i64).map(|z| [n as i64 / 2, n as i64 / 2, z]).collect();

    println!("running {} for {steps} steps on 4 ranks ...", scenario.name);
    let result = trillium_core::driver::run_distributed_probed(&scenario, 4, 1, steps, &probes);

    let stats = result.total_stats();
    let kernel_time: f64 = result.ranks.iter().map(|r| r.kernel_time).sum::<f64>() / 4.0;
    println!(
        "updated {} cells total, {:.1} MLUPS aggregate (kernel time), mass drift {:.2e}",
        stats.cells,
        stats.mlups(kernel_time),
        result.mass_drift()
    );
    println!("communication share: {:.1} %", 100.0 * result.comm_fraction());

    println!("\ncenterline u_x profile (z from bottom to lid):");
    for (c, u) in result.probes() {
        if c[2] % 4 == 0 || c[2] == n as i64 - 1 {
            let bar_len = (40.0 * (u[0] / 0.08).abs()) as usize;
            let bar: String = std::iter::repeat('#').take(bar_len).collect();
            println!(
                "z={:>3}  u_x={:>9.5}  {}{}",
                c[2],
                u[0],
                if u[0] < 0.0 { "-" } else { "+" },
                bar
            );
        }
    }
    println!("\nexpect: strong +x flow under the lid (top), weak return flow below.");
}
