//! Physics validation: pressure-driven Poiseuille flow between parallel
//! plates, SRT vs TRT.
//!
//! A channel is driven by an anti-bounce-back pressure difference; at
//! steady state the velocity profile is parabolic. The paper's claim that
//! "the TRT model is more accurate and stable than the SRT model" shows
//! up here: with the magic parameter Λ = 3/16 the TRT bounce-back wall
//! sits exactly halfway between lattice nodes at *any* relaxation time,
//! while the SRT wall position drifts with τ — visible as a growing
//! profile error at large τ.
//!
//! Run with: `cargo run --release --example poiseuille_validation`

use trillium_core::blocksim::{boxed_block_flags, BlockSim};
use trillium_field::{CellFlags, Shape};
use trillium_kernels::BoundaryParams;
use trillium_lattice::{Relaxation, MAGIC_TRT};

/// Runs a pressure-driven channel to (near) steady state and returns the
/// relative L2 deviation of the mid-channel profile from the fitted
/// parabola with walls half a cell outside the first/last fluid nodes.
fn profile_error(rel: Relaxation, ny: usize, steps: usize) -> f64 {
    let shape = Shape::new(48, ny, 3, 1);
    let flags = boxed_block_flags(
        shape,
        [
            Some(CellFlags::PRESSURE),     // inlet at −x: high density
            Some(CellFlags::PRESSURE_ALT), // outlet at +x: low density
            Some(CellFlags::NOSLIP),
            Some(CellFlags::NOSLIP),
            None, // periodic in z (synchronized per step)
            None,
        ],
    );
    let boundary = BoundaryParams {
        wall_velocity: [0.0; 3],
        pressure_density: 1.01,     // inlet
        pressure_density_alt: 0.99, // outlet
    };
    let mut block = BlockSim::from_flags(flags, boundary, 1.0, [0.0; 3]);
    for _ in 0..steps {
        block.sync_periodic([false, false, true]);
        block.apply_boundaries();
        block.stream_collide(rel);
    }
    assert!(!block.has_nan(), "unstable run");

    // Mid-channel profile u_x(y).
    let x = 24;
    let profile: Vec<f64> = (0..ny as i32).map(|y| block.velocity(x, y, 1)[0]).collect();
    // Analytic shape: u(y) ∝ (y + 1/2)(H − 1/2 − y) with H = ny the
    // half-link wall positions. Fit the amplitude by least squares.
    let shape_fn: Vec<f64> =
        (0..ny).map(|y| (y as f64 + 0.5) * (ny as f64 - 0.5 - y as f64)).collect();
    let amp = profile.iter().zip(&shape_fn).map(|(u, s)| u * s).sum::<f64>()
        / shape_fn.iter().map(|s| s * s).sum::<f64>();
    let mut err2 = 0.0;
    let mut norm2 = 0.0;
    for (u, s) in profile.iter().zip(&shape_fn) {
        err2 += (u - amp * s).powi(2);
        norm2 += (amp * s).powi(2);
    }
    (err2 / norm2).sqrt()
}

fn main() {
    println!("pressure-driven channel, mid profile vs half-way-wall parabola");
    println!("(relative L2 error; lower is better)\n");
    println!("{:<8} {:>14} {:>14}", "tau", "SRT error", "TRT error");
    for tau in [0.6, 0.9, 1.2, 1.8, 3.0] {
        let srt = profile_error(Relaxation::srt_from_tau(tau), 11, 3000);
        let trt = profile_error(Relaxation::trt_from_tau(tau, MAGIC_TRT), 11, 3000);
        println!("{:<8} {:>14.5} {:>14.5}", tau, srt, trt);
    }
    println!("\nexpect: TRT error stays small and τ-independent (Λ = 3/16 pins the");
    println!("wall halfway between nodes); SRT error grows with τ (viscosity-");
    println!("dependent wall slip) — the paper's accuracy argument for TRT.");
}
