//! Axis-aligned cell regions (index-space boxes).

use std::ops::Range;

/// A box of cell coordinates, half-open in each axis.
///
/// Used to describe ghost/boundary slabs for communication and sub-grids for
/// sweeps. Iteration order matches storage order: x fastest, then y, then z.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Coordinate range in x.
    pub x: Range<i32>,
    /// Coordinate range in y.
    pub y: Range<i32>,
    /// Coordinate range in z.
    pub z: Range<i32>,
}

impl Region {
    /// Creates a region from per-axis ranges.
    pub fn new(x: Range<i32>, y: Range<i32>, z: Range<i32>) -> Self {
        Region { x, y, z }
    }

    /// Number of cells in the region (0 if any range is empty or reversed).
    pub fn num_cells(&self) -> usize {
        let len = |r: &Range<i32>| (r.end.max(r.start) - r.start) as usize;
        len(&self.x) * len(&self.y) * len(&self.z)
    }

    /// True if the region contains no cells.
    pub fn is_empty(&self) -> bool {
        self.num_cells() == 0
    }

    /// True if `(x, y, z)` lies inside the region.
    pub fn contains(&self, x: i32, y: i32, z: i32) -> bool {
        self.x.contains(&x) && self.y.contains(&y) && self.z.contains(&z)
    }

    /// Intersection with another region (may be empty).
    pub fn intersect(&self, other: &Region) -> Region {
        let cut = |a: &Range<i32>, b: &Range<i32>| a.start.max(b.start)..a.end.min(b.end);
        Region::new(cut(&self.x, &other.x), cut(&self.y, &other.y), cut(&self.z, &other.z))
    }

    /// The region translated by `(dx, dy, dz)`.
    pub fn shifted(&self, dx: i32, dy: i32, dz: i32) -> Region {
        Region::new(
            self.x.start + dx..self.x.end + dx,
            self.y.start + dy..self.y.end + dy,
            self.z.start + dz..self.z.end + dz,
        )
    }

    /// Iterates all `(x, y, z)` coordinates, x fastest.
    pub fn iter(&self) -> impl Iterator<Item = (i32, i32, i32)> + '_ {
        let xr = self.x.clone();
        self.z.clone().flat_map(move |z| {
            let xr = xr.clone();
            self.y.clone().flat_map(move |y| xr.clone().map(move |x| (x, y, z)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_count_and_emptiness() {
        let r = Region::new(0..3, 1..3, -1..1);
        assert_eq!(r.num_cells(), 12);
        assert!(!r.is_empty());
        assert!(Region::new(0..0, 0..5, 0..5).is_empty());
    }

    #[test]
    fn iteration_order_is_x_fastest() {
        let r = Region::new(0..2, 0..2, 0..1);
        let v: Vec<_> = r.iter().collect();
        assert_eq!(v, vec![(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]);
    }

    #[test]
    fn intersection() {
        let a = Region::new(0..4, 0..4, 0..4);
        let b = Region::new(2..6, -1..3, 1..9);
        let i = a.intersect(&b);
        assert_eq!(i, Region::new(2..4, 0..3, 1..4));
        assert!(a.intersect(&Region::new(10..12, 0..1, 0..1)).is_empty());
    }

    #[test]
    fn shift_and_contains() {
        let r = Region::new(0..2, 0..2, 0..2).shifted(1, -1, 0);
        assert!(r.contains(1, -1, 0));
        assert!(!r.contains(0, 0, 0));
        assert_eq!(r.num_cells(), 8);
    }
}
