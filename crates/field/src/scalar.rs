//! Generic per-cell scalar fields.

use crate::shape::Shape;

/// A dense per-cell field of values of type `T` with the same ghost-layer
/// geometry as the PDF fields. Used for densities, boundary parameters and
/// (with `T = u8`) cell flags.
#[derive(Clone, Debug)]
pub struct ScalarField<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Copy + Default + PartialEq + Send + 'static> ScalarField<T> {
    /// Allocates a field filled with `T::default()`.
    pub fn new(shape: Shape) -> Self {
        ScalarField { shape, data: vec![T::default(); shape.alloc_cells()] }
    }

    /// Allocates a field filled with `value`.
    pub fn filled(shape: Shape, value: T) -> Self {
        ScalarField { shape, data: vec![value; shape.alloc_cells()] }
    }

    /// Grid geometry.
    #[inline(always)]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Value at `(x, y, z)` (ghost coordinates allowed).
    #[inline(always)]
    pub fn get(&self, x: i32, y: i32, z: i32) -> T {
        self.data[self.shape.idx(x, y, z)]
    }

    /// Sets the value at `(x, y, z)`.
    #[inline(always)]
    pub fn set(&mut self, x: i32, y: i32, z: i32, v: T) {
        let i = self.shape.idx(x, y, z);
        self.data[i] = v;
    }

    /// Raw storage.
    #[inline(always)]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw storage.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Counts interior cells equal to `v`.
    pub fn count_interior(&self, v: T) -> usize {
        self.shape.interior().iter().filter(|&(x, y, z)| self.get(x, y, z) == v).count()
    }

    /// Sets every cell (including ghosts) to `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_filled_construction() {
        let s = Shape::cube(3);
        let z = ScalarField::<f64>::new(s);
        assert_eq!(z.get(1, 1, 1), 0.0);
        let f = ScalarField::<u8>::filled(s, 7);
        assert_eq!(f.get(-1, -1, -1), 7);
    }

    #[test]
    fn set_get_and_count() {
        let mut f = ScalarField::<u8>::new(Shape::cube(2));
        f.set(0, 0, 0, 3);
        f.set(1, 1, 1, 3);
        f.set(-1, 0, 0, 3); // ghost, must not count
        assert_eq!(f.count_interior(3), 2);
        assert_eq!(f.count_interior(0), 6);
    }
}
