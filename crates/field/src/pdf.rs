//! Particle-distribution-function (PDF) fields in AoS and SoA layout.
//!
//! The paper (§4.1) stores the lattice either as "Array of Structures" (all
//! 19 PDFs of one cell consecutive — natural for the generic kernel) or as
//! "Structure of Arrays" (all PDFs of one *direction* consecutive — required
//! for SIMD vectorization). Both layouts share the [`PdfField`] accessor
//! interface so layout-agnostic code (boundary handling, initialization,
//! ghost exchange, validation) is written once.

use crate::shape::Shape;
use trillium_lattice::{equilibrium_all, LatticeModel};

/// Layout-independent access to a PDF field of lattice model `M`.
pub trait PdfField<M: LatticeModel>: Send {
    /// Grid geometry.
    fn shape(&self) -> Shape;

    /// Reads PDF `q` at cell `(x, y, z)` (ghost coordinates allowed).
    fn get(&self, x: i32, y: i32, z: i32, q: usize) -> f64;

    /// Writes PDF `q` at cell `(x, y, z)`.
    fn set(&mut self, x: i32, y: i32, z: i32, q: usize, v: f64);

    /// Reads all `Q` PDFs of one cell into `out`.
    fn get_cell(&self, x: i32, y: i32, z: i32, out: &mut [f64]) {
        for q in 0..M::Q {
            out[q] = self.get(x, y, z, q);
        }
    }

    /// Writes all `Q` PDFs of one cell from `vals`.
    fn set_cell(&mut self, x: i32, y: i32, z: i32, vals: &[f64]) {
        for q in 0..M::Q {
            self.set(x, y, z, q, vals[q]);
        }
    }

    /// Sets every cell (including ghosts) to the equilibrium of `(rho, u)`.
    fn fill_equilibrium(&mut self, rho: f64, u: [f64; 3]) {
        let mut feq = vec![0.0; M::Q];
        equilibrium_all::<M>(rho, u, &mut feq);
        let all = self.shape().with_ghosts();
        for (x, y, z) in all.iter() {
            self.set_cell(x, y, z, &feq);
        }
    }

    /// Density at a cell.
    fn density(&self, x: i32, y: i32, z: i32) -> f64 {
        let mut f = [0.0; 32];
        self.get_cell(x, y, z, &mut f[..M::Q]);
        trillium_lattice::density::<M>(&f[..M::Q])
    }

    /// Velocity at a cell.
    fn velocity(&self, x: i32, y: i32, z: i32) -> [f64; 3] {
        let mut f = [0.0; 32];
        self.get_cell(x, y, z, &mut f[..M::Q]);
        trillium_lattice::velocity::<M>(&f[..M::Q])
    }

    /// Total mass (sum of density) over interior cells.
    fn total_mass(&self) -> f64 {
        let mut sum = 0.0;
        for (x, y, z) in self.shape().interior().iter() {
            sum += self.density(x, y, z);
        }
        sum
    }
}

/// PDF field in Array-of-Structures layout: linear index `cell * Q + q`.
pub struct AosPdfField<M: LatticeModel> {
    shape: Shape,
    data: Vec<f64>,
    _model: std::marker::PhantomData<M>,
}

impl<M: LatticeModel> AosPdfField<M> {
    /// Allocates a zero-initialized field.
    pub fn new(shape: Shape) -> Self {
        AosPdfField {
            shape,
            data: vec![0.0; shape.alloc_cells() * M::Q],
            _model: std::marker::PhantomData,
        }
    }

    /// Raw storage (cell-major, `Q` values per cell).
    #[inline(always)]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Linear base index of a cell's PDF group.
    #[inline(always)]
    pub fn cell_base(&self, x: i32, y: i32, z: i32) -> usize {
        self.shape.idx(x, y, z) * M::Q
    }

    /// Swaps storage with another field of identical shape (A/B pattern).
    pub fn swap(&mut self, other: &mut Self) {
        assert_eq!(self.shape, other.shape);
        std::mem::swap(&mut self.data, &mut other.data);
    }
}

impl<M: LatticeModel> Clone for AosPdfField<M> {
    fn clone(&self) -> Self {
        AosPdfField { shape: self.shape, data: self.data.clone(), _model: std::marker::PhantomData }
    }
}

impl<M: LatticeModel> PdfField<M> for AosPdfField<M> {
    #[inline(always)]
    fn shape(&self) -> Shape {
        self.shape
    }

    #[inline(always)]
    fn get(&self, x: i32, y: i32, z: i32, q: usize) -> f64 {
        self.data[self.shape.idx(x, y, z) * M::Q + q]
    }

    #[inline(always)]
    fn set(&mut self, x: i32, y: i32, z: i32, q: usize, v: f64) {
        self.data[self.shape.idx(x, y, z) * M::Q + q] = v;
    }

    fn get_cell(&self, x: i32, y: i32, z: i32, out: &mut [f64]) {
        let base = self.cell_base(x, y, z);
        out[..M::Q].copy_from_slice(&self.data[base..base + M::Q]);
    }

    fn set_cell(&mut self, x: i32, y: i32, z: i32, vals: &[f64]) {
        let base = self.cell_base(x, y, z);
        self.data[base..base + M::Q].copy_from_slice(&vals[..M::Q]);
    }
}

/// PDF field in Structure-of-Arrays layout: one dense grid per direction,
/// linear index `q * alloc_cells + cell`.
///
/// # In-place (AA-pattern) storage parity
///
/// Besides the classic two-field pull scheme, this field supports the
/// single-buffer AA-pattern update. There the *storage convention*
/// alternates every time step: after the even ("transport") sweep the
/// post-collision value of direction `q` at cell `x` lives at storage slot
/// `(x + c_q, q̄)` — one hop downstream in the *opposite* direction's grid
/// — and the subsequent odd ("local") sweep puts everything back in the
/// canonical slot. The [`parity`](Self::parity) flag records which
/// convention the buffer currently uses; the [`PdfField`] accessors
/// transparently translate logical `(x, q)` coordinates to the rotated
/// storage slots when `parity` is odd, so layout-agnostic code (boundary
/// sweeps, ghost pack/unpack, probes, validation) works unmodified at both
/// parities. Raw accessors (`dir`, `dir_mut`, `data`, `dirs_mut`) always
/// expose the untranslated storage view.
pub struct SoaPdfField<M: LatticeModel> {
    shape: Shape,
    data: Vec<f64>,
    parity: bool,
    _model: std::marker::PhantomData<M>,
}

impl<M: LatticeModel> SoaPdfField<M> {
    /// Allocates a zero-initialized field (even/canonical parity).
    pub fn new(shape: Shape) -> Self {
        SoaPdfField {
            shape,
            data: vec![0.0; shape.alloc_cells() * M::Q],
            parity: false,
            _model: std::marker::PhantomData,
        }
    }

    /// Current storage parity: `false` = canonical (pull-compatible)
    /// layout, `true` = rotated AA layout (logical `(x, q)` is stored at
    /// `(x + c_q, q̄)`).
    #[inline(always)]
    pub fn parity(&self) -> bool {
        self.parity
    }

    /// Sets the storage-parity flag. Does not move any data — callers
    /// (the in-place sweeps) flip this exactly when they change the
    /// storage convention.
    #[inline(always)]
    pub fn set_parity(&mut self, parity: bool) {
        self.parity = parity;
    }

    /// Storage slot (direction grid, linear cell index) of logical PDF
    /// `(x, y, z, q)` under the current parity.
    #[inline(always)]
    fn slot(&self, x: i32, y: i32, z: i32, q: usize) -> usize {
        if self.parity {
            let c = M::velocities()[q];
            let qi = M::inverse()[q];
            qi * self.shape.alloc_cells()
                + self.shape.idx(x + c[0] as i32, y + c[1] as i32, z + c[2] as i32)
        } else {
            q * self.shape.alloc_cells() + self.shape.idx(x, y, z)
        }
    }

    /// The dense grid of direction `q`.
    #[inline(always)]
    pub fn dir(&self, q: usize) -> &[f64] {
        let n = self.shape.alloc_cells();
        &self.data[q * n..(q + 1) * n]
    }

    /// Mutable dense grid of direction `q`.
    #[inline(always)]
    pub fn dir_mut(&mut self, q: usize) -> &mut [f64] {
        let n = self.shape.alloc_cells();
        &mut self.data[q * n..(q + 1) * n]
    }

    /// Raw storage (direction-major).
    #[inline(always)]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Splits the storage into `Q` per-direction mutable grids.
    pub fn dirs_mut(&mut self) -> Vec<&mut [f64]> {
        let n = self.shape.alloc_cells();
        self.data.chunks_exact_mut(n).collect()
    }

    /// Swaps storage with another field of identical shape (A/B pattern).
    pub fn swap(&mut self, other: &mut Self) {
        assert_eq!(self.shape, other.shape);
        std::mem::swap(&mut self.data, &mut other.data);
        std::mem::swap(&mut self.parity, &mut other.parity);
    }
}

impl<M: LatticeModel> Clone for SoaPdfField<M> {
    fn clone(&self) -> Self {
        SoaPdfField {
            shape: self.shape,
            data: self.data.clone(),
            parity: self.parity,
            _model: std::marker::PhantomData,
        }
    }
}

impl<M: LatticeModel> PdfField<M> for SoaPdfField<M> {
    #[inline(always)]
    fn shape(&self) -> Shape {
        self.shape
    }

    #[inline(always)]
    fn get(&self, x: i32, y: i32, z: i32, q: usize) -> f64 {
        self.data[self.slot(x, y, z, q)]
    }

    #[inline(always)]
    fn set(&mut self, x: i32, y: i32, z: i32, q: usize, v: f64) {
        let i = self.slot(x, y, z, q);
        self.data[i] = v;
    }
}

/// Copies the contents of one PDF field into another of identical shape,
/// regardless of layout. Used by tests comparing kernel tiers.
pub fn copy_pdf_field<M: LatticeModel, A: PdfField<M>, B: PdfField<M>>(src: &A, dst: &mut B) {
    assert_eq!(src.shape(), dst.shape());
    let mut buf = vec![0.0; M::Q];
    for (x, y, z) in src.shape().with_ghosts().iter() {
        src.get_cell(x, y, z, &mut buf);
        dst.set_cell(x, y, z, &buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_lattice::D3Q19;

    #[test]
    fn aos_set_get_roundtrip() {
        let mut f = AosPdfField::<D3Q19>::new(Shape::cube(4));
        f.set(1, 2, 3, 7, 0.25);
        f.set(-1, -1, -1, 0, 1.5); // ghost corner
        assert_eq!(f.get(1, 2, 3, 7), 0.25);
        assert_eq!(f.get(-1, -1, -1, 0), 1.5);
        assert_eq!(f.get(1, 2, 3, 8), 0.0);
    }

    #[test]
    fn soa_set_get_roundtrip() {
        let mut f = SoaPdfField::<D3Q19>::new(Shape::cube(4));
        f.set(0, 0, 0, 18, 0.125);
        assert_eq!(f.get(0, 0, 0, 18), 0.125);
        // The value lands in direction 18's grid.
        let n = f.shape().alloc_cells();
        assert_eq!(f.dir(18).len(), n);
        assert_eq!(f.dir(18)[f.shape().idx(0, 0, 0)], 0.125);
    }

    #[test]
    fn layouts_agree_through_trait() {
        let shape = Shape::new(3, 4, 2, 1);
        let mut a = AosPdfField::<D3Q19>::new(shape);
        let mut s = SoaPdfField::<D3Q19>::new(shape);
        a.fill_equilibrium(1.05, [0.02, -0.01, 0.03]);
        s.fill_equilibrium(1.05, [0.02, -0.01, 0.03]);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                assert_eq!(a.get(x, y, z, q), s.get(x, y, z, q));
            }
        }
    }

    #[test]
    fn equilibrium_fill_macroscopic_values() {
        let mut f = AosPdfField::<D3Q19>::new(Shape::cube(3));
        f.fill_equilibrium(1.1, [0.05, 0.0, -0.02]);
        assert!((f.density(1, 1, 1) - 1.1).abs() < 1e-14);
        let u = f.velocity(2, 0, 1);
        assert!((u[0] - 0.05).abs() < 1e-14);
        assert!((u[2] + 0.02).abs() < 1e-14);
        let expected_mass = 1.1 * f.shape().interior_cells() as f64;
        assert!((f.total_mass() - expected_mass).abs() < 1e-10);
    }

    #[test]
    fn cross_layout_copy() {
        let shape = Shape::cube(3);
        let mut a = AosPdfField::<D3Q19>::new(shape);
        a.fill_equilibrium(0.9, [0.01, 0.02, 0.03]);
        a.set(0, 1, 2, 5, 42.0);
        let mut s = SoaPdfField::<D3Q19>::new(shape);
        copy_pdf_field::<D3Q19, _, _>(&a, &mut s);
        assert_eq!(s.get(0, 1, 2, 5), 42.0);
        assert_eq!(s.get(2, 2, 2, 11), a.get(2, 2, 2, 11));
    }

    /// Parity-mapped accessors address the rotated AA storage: logical
    /// `(x, q)` at odd parity is slot `(x + c_q, q̄)`, and the mapping is
    /// its own inverse under `set`/`get`.
    #[test]
    fn parity_accessors_address_rotated_slots() {
        use trillium_lattice::LatticeModel;
        let shape = Shape::new(4, 3, 5, 1);
        let mut f = SoaPdfField::<D3Q19>::new(shape);
        assert!(!f.parity());
        f.set_parity(true);
        for q in 0..19 {
            f.set(1, 1, 2, q, 100.0 + q as f64);
        }
        for q in 0..19 {
            // The logical read sees what the logical write stored...
            assert_eq!(f.get(1, 1, 2, q), 100.0 + q as f64);
            // ...and the raw slot it landed in is the rotated one.
            let c = D3Q19::velocities()[q];
            let qi = D3Q19::inverse()[q];
            let raw = f.dir(qi)[shape.idx(1 + c[0] as i32, 1 + c[1] as i32, 2 + c[2] as i32)];
            assert_eq!(raw, 100.0 + q as f64);
        }
        // Back at even parity the same coordinates address canonical slots.
        f.set_parity(false);
        f.set(1, 1, 2, 4, -7.0);
        assert_eq!(f.dir(4)[shape.idx(1, 1, 2)], -7.0);
    }

    #[test]
    fn swap_exchanges_contents() {
        let shape = Shape::cube(2);
        let mut a = SoaPdfField::<D3Q19>::new(shape);
        let mut b = SoaPdfField::<D3Q19>::new(shape);
        a.set(0, 0, 0, 1, 7.0);
        b.set(0, 0, 0, 1, 9.0);
        a.swap(&mut b);
        assert_eq!(a.get(0, 0, 0, 1), 9.0);
        assert_eq!(b.get(0, 0, 0, 1), 7.0);
    }
}
