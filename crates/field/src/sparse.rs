//! Sparse-block iteration structures (paper §4.3).
//!
//! Blocks only partially covered by the computational domain would waste
//! work if the kernel visited every cell. The paper describes three
//! strategies; two need support structures provided here:
//!
//! 1. a *fluid-cell list* — explicit coordinates of all fluid cells
//!    (removes the branch from the kernel but prevents vectorization),
//! 2. *row intervals* — for every x-row the index of the first and last
//!    fluid cell, "similar to the compressed storage scheme of a sparse
//!    matrix"; the kernel runs on the contiguous span, which vectorizes.

use crate::flags::{FlagField, FlagOps};

/// Explicit list of fluid-cell coordinates of one block.
#[derive(Clone, Debug, Default)]
pub struct FluidCellList {
    /// Interior coordinates of each fluid cell, in storage order.
    pub cells: Vec<(i32, i32, i32)>,
}

impl FluidCellList {
    /// Collects all interior fluid cells of a flag field.
    pub fn build(flags: &FlagField) -> Self {
        let mut cells = Vec::new();
        for (x, y, z) in flags.shape().interior().iter() {
            if flags.flags(x, y, z).is_fluid() {
                cells.push((x, y, z));
            }
        }
        FluidCellList { cells }
    }

    /// Number of fluid cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the block contains no fluid at all.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// One contiguous span of fluid cells within an x-row.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RowSpan {
    /// Row coordinates.
    pub y: i32,
    /// Row coordinates.
    pub z: i32,
    /// First fluid x (inclusive).
    pub x_begin: i32,
    /// One past the last fluid x (exclusive).
    pub x_end: i32,
}

impl RowSpan {
    /// Number of cells covered by the span (fluid and possibly interleaved
    /// non-fluid cells — the scheme stores only first/last, as in the paper).
    pub fn len(&self) -> usize {
        (self.x_end - self.x_begin) as usize
    }

    /// True if the span covers no cells.
    pub fn is_empty(&self) -> bool {
        self.x_end <= self.x_begin
    }
}

/// Per-row first/last fluid-cell intervals of one block.
///
/// Rows containing no fluid are omitted entirely, so iterating the spans
/// visits only (potentially) useful work. The covered cell count can exceed
/// the fluid count when non-fluid cells are interleaved within a row; the
/// kernel still traverses them (they are counted as LUPS but not FLUPS,
/// matching the paper's measurement methodology in §4).
#[derive(Clone, Debug, Default)]
pub struct RowIntervals {
    /// Non-empty row spans in storage order (y fastest, then z).
    pub spans: Vec<RowSpan>,
    /// Number of true fluid cells (the MFLUPS numerator; can be smaller
    /// than [`RowIntervals::covered_cells`]).
    pub fluid_cells: usize,
}

impl RowIntervals {
    /// Builds the interval structure from a flag field.
    pub fn build(flags: &FlagField) -> Self {
        let shape = flags.shape();
        let mut spans = Vec::new();
        let mut fluid_cells = 0;
        for z in 0..shape.nz as i32 {
            for y in 0..shape.ny as i32 {
                let mut first = None;
                let mut last = None;
                for x in 0..shape.nx as i32 {
                    if flags.flags(x, y, z).is_fluid() {
                        if first.is_none() {
                            first = Some(x);
                        }
                        last = Some(x);
                        fluid_cells += 1;
                    }
                }
                if let (Some(b), Some(e)) = (first, last) {
                    spans.push(RowSpan { y, z, x_begin: b, x_end: e + 1 });
                }
            }
        }
        RowIntervals { spans, fluid_cells }
    }

    /// Total number of cells covered by all spans (the LUPS denominator).
    pub fn covered_cells(&self) -> usize {
        self.spans.iter().map(RowSpan::len).sum()
    }

    /// Number of rows that contain at least one fluid cell.
    pub fn num_rows(&self) -> usize {
        self.spans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::CellFlags;
    use crate::shape::Shape;

    fn field_with_fluid(cells: &[(i32, i32, i32)]) -> FlagField {
        let mut f = FlagField::new(Shape::cube(4));
        for &(x, y, z) in cells {
            f.set_flags(x, y, z, CellFlags::FLUID);
        }
        f
    }

    #[test]
    fn fluid_list_matches_flags() {
        let f = field_with_fluid(&[(0, 0, 0), (3, 3, 3), (1, 2, 0)]);
        let list = FluidCellList::build(&f);
        assert_eq!(list.len(), 3);
        assert!(list.cells.contains(&(1, 2, 0)));
        // Storage order: x fastest.
        assert_eq!(list.cells[0], (0, 0, 0));
        assert_eq!(list.cells[1], (1, 2, 0));
    }

    #[test]
    fn empty_block() {
        let f = FlagField::new(Shape::cube(4));
        assert!(FluidCellList::build(&f).is_empty());
        let ri = RowIntervals::build(&f);
        assert_eq!(ri.num_rows(), 0);
        assert_eq!(ri.covered_cells(), 0);
    }

    #[test]
    fn row_intervals_compact_contiguous_rows() {
        // Full row of fluid at (y=1, z=2).
        let f = field_with_fluid(&[(0, 1, 2), (1, 1, 2), (2, 1, 2), (3, 1, 2)]);
        let ri = RowIntervals::build(&f);
        assert_eq!(ri.spans, vec![RowSpan { y: 1, z: 2, x_begin: 0, x_end: 4 }]);
        assert_eq!(ri.covered_cells(), 4);
    }

    #[test]
    fn row_intervals_cover_gaps_within_rows() {
        // Fluid at x = 0 and x = 3 only: the span covers the hole, as the
        // scheme stores only first/last per row.
        let f = field_with_fluid(&[(0, 0, 0), (3, 0, 0)]);
        let ri = RowIntervals::build(&f);
        assert_eq!(ri.spans.len(), 1);
        assert_eq!(ri.spans[0].len(), 4);
        assert_eq!(ri.covered_cells(), 4);
        // Covered cells >= fluid cells; here strictly greater.
        assert!(ri.covered_cells() > FluidCellList::build(&f).len());
    }

    #[test]
    fn rows_without_fluid_are_omitted() {
        let f = field_with_fluid(&[(1, 0, 0), (2, 3, 3)]);
        let ri = RowIntervals::build(&f);
        assert_eq!(ri.num_rows(), 2);
        assert_eq!(ri.spans[0], RowSpan { y: 0, z: 0, x_begin: 1, x_end: 2 });
        assert_eq!(ri.spans[1], RowSpan { y: 3, z: 3, x_begin: 2, x_end: 3 });
    }
}
