//! Cell classification flags and morphological operations.
//!
//! During initialization (paper §2.3) every lattice cell is classified:
//! cells inside the domain `Λ` become fluid, the hull of the fluid region —
//! computed with a morphological dilation w.r.t. the LBM stencil — becomes
//! boundary, everything else is outside the domain and never touched by the
//! compute kernels.

use crate::scalar::ScalarField;

/// Bit flags classifying one lattice cell.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct CellFlags(pub u8);

impl CellFlags {
    /// Cell is outside the computational domain (neither streamed nor
    /// collided, skipped by sparse kernels).
    pub const OUTSIDE: CellFlags = CellFlags(0);
    /// Regular fluid cell processed by the compute kernel.
    pub const FLUID: CellFlags = CellFlags(1);
    /// No-slip wall (bounce-back).
    pub const NOSLIP: CellFlags = CellFlags(2);
    /// Prescribed-velocity wall (velocity bounce-back).
    pub const VELOCITY: CellFlags = CellFlags(4);
    /// Prescribed-pressure opening (anti-bounce-back).
    pub const PRESSURE: CellFlags = CellFlags(8);
    /// Second prescribed-pressure opening with its own density — lets one
    /// block carry a pressure *gradient* (e.g. inlet vs outlet).
    pub const PRESSURE_ALT: CellFlags = CellFlags(16);
    /// Marker bit for cells belonging to an immersed obstacle (always
    /// combined with a boundary type, e.g. `OBSTACLE | NOSLIP`). Lets
    /// force measurements (momentum exchange) target the obstacle surface
    /// without picking up the outer domain walls.
    pub const OBSTACLE: CellFlags = CellFlags(32);

    /// Union of all boundary-type bits (the `OBSTACLE` marker is not a
    /// boundary type by itself).
    pub const ANY_BOUNDARY: CellFlags = CellFlags(2 | 4 | 8 | 16);

    /// True if any of `other`'s bits are set in `self`.
    #[inline(always)]
    pub fn intersects(self, other: CellFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// True if this is a fluid cell.
    #[inline(always)]
    pub fn is_fluid(self) -> bool {
        self.intersects(CellFlags::FLUID)
    }

    /// True if this is any kind of boundary cell.
    #[inline(always)]
    pub fn is_boundary(self) -> bool {
        self.intersects(CellFlags::ANY_BOUNDARY)
    }

    /// True if the cell is outside the domain entirely.
    #[inline(always)]
    pub fn is_outside(self) -> bool {
        self.0 == 0
    }
}

/// A per-cell flag field.
pub type FlagField = ScalarField<u8>;

/// Extension operations on flag fields.
pub trait FlagOps {
    /// Flags at a cell, typed.
    fn flags(&self, x: i32, y: i32, z: i32) -> CellFlags;
    /// Overwrites the flags at a cell.
    fn set_flags(&mut self, x: i32, y: i32, z: i32, f: CellFlags);
    /// Number of interior fluid cells.
    fn count_fluid(&self) -> usize;
    /// Fraction of interior cells that are fluid.
    fn fluid_fraction(&self) -> f64;
    /// Marks every non-fluid cell (interior or ghost) that is reachable
    /// from an interior fluid cell through one of the stencil directions
    /// with `boundary`, leaving fluid cells untouched. This is the
    /// morphological dilation of paper §2.3 computing the boundary hull.
    fn dilate_hull(&mut self, stencil: &[[i8; 3]], boundary: CellFlags);
}

impl FlagOps for FlagField {
    #[inline(always)]
    fn flags(&self, x: i32, y: i32, z: i32) -> CellFlags {
        CellFlags(self.get(x, y, z))
    }

    #[inline(always)]
    fn set_flags(&mut self, x: i32, y: i32, z: i32, f: CellFlags) {
        self.set(x, y, z, f.0);
    }

    fn count_fluid(&self) -> usize {
        self.shape().interior().iter().filter(|&(x, y, z)| self.flags(x, y, z).is_fluid()).count()
    }

    fn fluid_fraction(&self) -> f64 {
        self.count_fluid() as f64 / self.shape().interior_cells() as f64
    }

    fn dilate_hull(&mut self, stencil: &[[i8; 3]], boundary: CellFlags) {
        let shape = self.shape();
        let g = shape.ghost as i32;
        let mut hull = Vec::new();
        for (x, y, z) in shape.interior().iter() {
            if !self.flags(x, y, z).is_fluid() {
                continue;
            }
            for d in stencil {
                if d == &[0, 0, 0] {
                    continue;
                }
                let (nx, ny, nz) = (x + d[0] as i32, y + d[1] as i32, z + d[2] as i32);
                // Stay within the allocated grid (ghost layer included).
                if nx < -g
                    || ny < -g
                    || nz < -g
                    || nx >= shape.nx as i32 + g
                    || ny >= shape.ny as i32 + g
                    || nz >= shape.nz as i32 + g
                {
                    continue;
                }
                if self.flags(nx, ny, nz).is_outside() {
                    hull.push((nx, ny, nz));
                }
            }
        }
        for (x, y, z) in hull {
            self.set_flags(x, y, z, boundary);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use trillium_lattice::d3q19;

    #[test]
    fn flag_predicates() {
        assert!(CellFlags::FLUID.is_fluid());
        assert!(!CellFlags::FLUID.is_boundary());
        assert!(CellFlags::NOSLIP.is_boundary());
        assert!(CellFlags::VELOCITY.is_boundary());
        assert!(CellFlags::PRESSURE.is_boundary());
        assert!(CellFlags::OUTSIDE.is_outside());
        assert!(!CellFlags::OUTSIDE.is_fluid());
        // The obstacle marker composes with a boundary type: alone it is
        // not a boundary, combined it is, and the combination still
        // matches both masks.
        assert!(!CellFlags::OBSTACLE.is_boundary());
        let wall = CellFlags(CellFlags::OBSTACLE.0 | CellFlags::NOSLIP.0);
        assert!(wall.is_boundary());
        assert!(wall.intersects(CellFlags::OBSTACLE));
        assert!(wall.intersects(CellFlags::NOSLIP));
    }

    #[test]
    fn fluid_counting() {
        let mut f = FlagField::new(Shape::cube(3));
        f.set_flags(0, 0, 0, CellFlags::FLUID);
        f.set_flags(1, 1, 1, CellFlags::FLUID);
        f.set_flags(2, 2, 2, CellFlags::NOSLIP);
        assert_eq!(f.count_fluid(), 2);
        assert!((f.fluid_fraction() - 2.0 / 27.0).abs() < 1e-15);
    }

    #[test]
    fn dilation_builds_hull_around_single_fluid_cell() {
        // One fluid cell in the middle of a 5³ grid: its D3Q19 hull must be
        // exactly the 18 stencil neighbors.
        let mut f = FlagField::new(Shape::cube(5));
        f.set_flags(2, 2, 2, CellFlags::FLUID);
        f.dilate_hull(&d3q19::C, CellFlags::NOSLIP);
        let mut boundary = 0;
        for (x, y, z) in f.shape().with_ghosts().iter() {
            let fl = f.flags(x, y, z);
            if fl.is_boundary() {
                boundary += 1;
                let (dx, dy, dz) = (x - 2, y - 2, z - 2);
                // Must be a D3Q19 neighbor of the fluid cell.
                assert!(d3q19::C.contains(&[dx as i8, dy as i8, dz as i8]));
            }
        }
        assert_eq!(boundary, 18);
        // Fluid cell itself is untouched.
        assert!(f.flags(2, 2, 2).is_fluid());
    }

    #[test]
    fn dilation_extends_into_ghost_layer() {
        // Fluid cell at a corner of the interior: part of the hull lies in
        // the ghost layer.
        let mut f = FlagField::new(Shape::cube(3));
        f.set_flags(0, 0, 0, CellFlags::FLUID);
        f.dilate_hull(&d3q19::C, CellFlags::NOSLIP);
        assert!(f.flags(-1, 0, 0).is_boundary());
        assert!(f.flags(-1, -1, 0).is_boundary());
        assert!(f.flags(1, 0, 0).is_boundary());
    }

    #[test]
    fn dilation_does_not_overwrite_existing_boundary() {
        let mut f = FlagField::new(Shape::cube(3));
        f.set_flags(1, 1, 1, CellFlags::FLUID);
        f.set_flags(1, 1, 2, CellFlags::PRESSURE);
        f.dilate_hull(&d3q19::C, CellFlags::NOSLIP);
        // Pre-existing pressure boundary must not be turned into no-slip.
        assert_eq!(f.flags(1, 1, 2), CellFlags::PRESSURE);
        assert_eq!(f.flags(1, 1, 0), CellFlags::NOSLIP);
    }
}
