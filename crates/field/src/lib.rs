#![warn(missing_docs)]
//! Cell-field containers for block-structured LBM simulations.
//!
//! A *field* is a uniform Cartesian grid of cells owned by one block,
//! surrounded by a ghost layer used for communication between neighboring
//! blocks (paper §2.2). This crate provides:
//!
//! * [`Shape`] — extents, ghost width and linear indexing of a grid,
//! * [`AosPdfField`] / [`SoaPdfField`] — particle-distribution-function
//!   storage in "Array of Structures" and "Structure of Arrays" layout
//!   (paper §4.1: SoA is the layout enabling SIMD vectorization),
//! * [`ScalarField`] — per-cell scalars (density, boundary data, flags),
//! * [`FlagField`] and [`CellFlags`] — cell classification (fluid, boundary
//!   types, outside-domain) plus the morphological dilation used to compute
//!   the boundary hull of the fluid domain (paper §2.3),
//! * [`RowIntervals`] / [`FluidCellList`] — the sparse-block iteration
//!   schemes of paper §4.3.

pub mod flags;
pub mod pdf;
pub mod region;
pub mod scalar;
pub mod shape;
pub mod sparse;

pub use flags::{CellFlags, FlagField, FlagOps};
pub use pdf::{AosPdfField, PdfField, SoaPdfField};
pub use region::Region;
pub use scalar::ScalarField;
pub use shape::Shape;
pub use sparse::{FluidCellList, RowIntervals};
