//! Grid extents, ghost width and linear indexing.

use crate::region::Region;

/// The geometry of one block's grid: interior extents plus a ghost layer.
///
/// Interior cells have coordinates `0 .. n` per axis; ghost cells extend the
/// coordinate range to `-g .. n + g`. Storage is a dense row-major layout
/// with x fastest, i.e. the linear index advances by 1 in x, by the padded
/// x-extent in y, and by the padded xy-plane size in z — the layout assumed
/// by all streaming kernels.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Shape {
    /// Interior extent in x.
    pub nx: usize,
    /// Interior extent in y.
    pub ny: usize,
    /// Interior extent in z.
    pub nz: usize,
    /// Ghost-layer width (usually 1 for LBM).
    pub ghost: usize,
}

impl Shape {
    /// Creates a shape with the given interior extents and ghost width.
    pub fn new(nx: usize, ny: usize, nz: usize, ghost: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "extents must be positive");
        Shape { nx, ny, nz, ghost }
    }

    /// A cubic shape of edge length `n` with ghost width 1.
    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n, 1)
    }

    /// Padded (allocated) extent in x, including ghosts.
    #[inline(always)]
    pub fn ax(&self) -> usize {
        self.nx + 2 * self.ghost
    }
    /// Padded extent in y.
    #[inline(always)]
    pub fn ay(&self) -> usize {
        self.ny + 2 * self.ghost
    }
    /// Padded extent in z.
    #[inline(always)]
    pub fn az(&self) -> usize {
        self.nz + 2 * self.ghost
    }

    /// Number of interior cells.
    #[inline(always)]
    pub fn interior_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Number of allocated cells including ghosts.
    #[inline(always)]
    pub fn alloc_cells(&self) -> usize {
        self.ax() * self.ay() * self.az()
    }

    /// Linear index stride of a step in y.
    #[inline(always)]
    pub fn stride_y(&self) -> usize {
        self.ax()
    }

    /// Linear index stride of a step in z.
    #[inline(always)]
    pub fn stride_z(&self) -> usize {
        self.ax() * self.ay()
    }

    /// Linear index of the cell at interior coordinates `(x, y, z)`;
    /// coordinates may lie in the ghost range `-g ..= n - 1 + g`.
    #[inline(always)]
    pub fn idx(&self, x: i32, y: i32, z: i32) -> usize {
        let g = self.ghost as i32;
        debug_assert!(x >= -g && (x as i64) < (self.nx + self.ghost) as i64, "x={x} out of range");
        debug_assert!(y >= -g && (y as i64) < (self.ny + self.ghost) as i64, "y={y} out of range");
        debug_assert!(z >= -g && (z as i64) < (self.nz + self.ghost) as i64, "z={z} out of range");
        let ax = (x + g) as usize;
        let ay = (y + g) as usize;
        let az = (z + g) as usize;
        (az * self.ay() + ay) * self.ax() + ax
    }

    /// Inverse of [`Shape::idx`]: interior coordinates of a linear index.
    pub fn coords(&self, idx: usize) -> (i32, i32, i32) {
        debug_assert!(idx < self.alloc_cells());
        let g = self.ghost as i32;
        let ax = idx % self.ax();
        let rest = idx / self.ax();
        let ay = rest % self.ay();
        let az = rest / self.ay();
        (ax as i32 - g, ay as i32 - g, az as i32 - g)
    }

    /// True if `(x, y, z)` is an interior (non-ghost) cell.
    #[inline(always)]
    pub fn is_interior(&self, x: i32, y: i32, z: i32) -> bool {
        x >= 0
            && (x as usize) < self.nx
            && y >= 0
            && (y as usize) < self.ny
            && z >= 0
            && (z as usize) < self.nz
    }

    /// The interior region (all non-ghost cells).
    pub fn interior(&self) -> Region {
        Region::new(0..self.nx as i32, 0..self.ny as i32, 0..self.nz as i32)
    }

    /// The full allocated region including ghosts.
    pub fn with_ghosts(&self) -> Region {
        let g = self.ghost as i32;
        Region::new(-g..self.nx as i32 + g, -g..self.ny as i32 + g, -g..self.nz as i32 + g)
    }

    /// The slab of interior cells adjacent to the face/edge/corner in
    /// direction `d` (each component in `{-1, 0, 1}`), `width` cells thick.
    /// This is the region *packed* when sending ghost data to the neighbor
    /// in direction `d`.
    pub fn boundary_slab(&self, d: [i8; 3], width: usize) -> Region {
        let w = width as i32;
        let pick = |dir: i8, n: usize| match dir {
            -1 => 0..w,
            0 => 0..n as i32,
            1 => n as i32 - w..n as i32,
            _ => unreachable!("direction component must be -1, 0 or 1"),
        };
        Region::new(pick(d[0], self.nx), pick(d[1], self.ny), pick(d[2], self.nz))
    }

    /// The interior *core*: interior cells whose pull stencil (reach
    /// `reach` cells per axis) never reads the ghost layer. These cells
    /// can be swept before ghost synchronization completes — the basis of
    /// communication/computation overlap. May be empty for tiny blocks.
    pub fn interior_core(&self, reach: usize) -> Region {
        let r = reach as i32;
        let clip = |n: usize| {
            let lo = r.min(n as i32);
            lo..(n as i32 - r).max(lo)
        };
        Region::new(clip(self.nx), clip(self.ny), clip(self.nz))
    }

    /// The boundary *shell*: the interior cells not in
    /// [`Shape::interior_core`], i.e. those whose pull stencil reads the
    /// ghost layer, decomposed into at most six disjoint slabs (low/high
    /// per axis, each inner slab clipped against the outer ones). The
    /// union of the returned regions and the core covers the interior
    /// exactly once; empty slabs are omitted.
    pub fn shell_regions(&self, reach: usize) -> Vec<Region> {
        let core = self.interior_core(reach);
        let (nx, ny, nz) = (self.nx as i32, self.ny as i32, self.nz as i32);
        let mut out = Vec::with_capacity(6);
        let mut push = |r: Region| {
            if !r.is_empty() {
                out.push(r);
            }
        };
        // z-low and z-high slabs span the full xy extent.
        push(Region::new(0..nx, 0..ny, 0..core.z.start));
        push(Region::new(0..nx, 0..ny, core.z.end..nz));
        // y slabs are clipped to the core z range.
        push(Region::new(0..nx, 0..core.y.start, core.z.clone()));
        push(Region::new(0..nx, core.y.end..ny, core.z.clone()));
        // x slabs are clipped to the core y and z ranges.
        push(Region::new(0..core.x.start, core.y.clone(), core.z.clone()));
        push(Region::new(core.x.end..nx, core.y.clone(), core.z.clone()));
        out
    }

    /// The slab of ghost cells lying beyond the face/edge/corner in
    /// direction `d`, `width` cells thick. This is the region *written*
    /// when receiving ghost data from the neighbor in direction `d`.
    pub fn ghost_slab(&self, d: [i8; 3], width: usize) -> Region {
        assert!(width <= self.ghost, "ghost slab wider than ghost layer");
        let w = width as i32;
        let pick = |dir: i8, n: usize| match dir {
            -1 => -w..0,
            0 => 0..n as i32,
            1 => n as i32..n as i32 + w,
            _ => unreachable!("direction component must be -1, 0 or 1"),
        };
        Region::new(pick(d[0], self.nx), pick(d[1], self.ny), pick(d[2], self.nz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_and_counts() {
        let s = Shape::new(4, 5, 6, 1);
        assert_eq!(s.interior_cells(), 120);
        assert_eq!((s.ax(), s.ay(), s.az()), (6, 7, 8));
        assert_eq!(s.alloc_cells(), 336);
    }

    #[test]
    fn idx_coords_roundtrip() {
        let s = Shape::new(3, 4, 5, 1);
        for z in -1..=5 {
            for y in -1..=4 {
                for x in -1..=3 {
                    let i = s.idx(x, y, z);
                    assert!(i < s.alloc_cells());
                    assert_eq!(s.coords(i), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn x_is_fastest_axis() {
        let s = Shape::cube(8);
        assert_eq!(s.idx(1, 0, 0), s.idx(0, 0, 0) + 1);
        assert_eq!(s.idx(0, 1, 0), s.idx(0, 0, 0) + s.stride_y());
        assert_eq!(s.idx(0, 0, 1), s.idx(0, 0, 0) + s.stride_z());
    }

    #[test]
    fn interior_predicate() {
        let s = Shape::cube(4);
        assert!(s.is_interior(0, 0, 0));
        assert!(s.is_interior(3, 3, 3));
        assert!(!s.is_interior(-1, 0, 0));
        assert!(!s.is_interior(0, 4, 0));
    }

    #[test]
    fn boundary_and_ghost_slabs_are_adjacent() {
        let s = Shape::new(4, 4, 4, 1);
        // East face (+x): boundary slab is x = 3, ghost slab is x = 4.
        let b = s.boundary_slab([1, 0, 0], 1);
        let g = s.ghost_slab([1, 0, 0], 1);
        assert_eq!(b.x, 3..4);
        assert_eq!(g.x, 4..5);
        assert_eq!(b.y, 0..4);
        assert_eq!(b.num_cells(), 16);
        assert_eq!(g.num_cells(), 16);
    }

    #[test]
    fn edge_and_corner_slabs() {
        let s = Shape::cube(4);
        // Edge in +x,+y.
        let e = s.boundary_slab([1, 1, 0], 1);
        assert_eq!(e.num_cells(), 4);
        // Corner in -x,-y,-z.
        let c = s.ghost_slab([-1, -1, -1], 1);
        assert_eq!(c.num_cells(), 1);
        assert_eq!(c.x, -1..0);
    }

    /// Core ∪ shell must cover every interior cell exactly once, for
    /// assorted extents including degenerate ones where the core is empty.
    #[test]
    fn core_and_shell_partition_interior() {
        for (nx, ny, nz) in [(8, 8, 8), (4, 5, 6), (2, 7, 3), (1, 1, 1), (2, 2, 2), (16, 3, 1)] {
            let s = Shape::new(nx, ny, nz, 1);
            let core = s.interior_core(1);
            let shells = s.shell_regions(1);
            let mut count = vec![0u32; s.interior_cells()];
            let lin = |x: i32, y: i32, z: i32| (z as usize * ny + y as usize) * nx + x as usize;
            for (x, y, z) in core.iter() {
                count[lin(x, y, z)] += 1;
            }
            for r in &shells {
                for (x, y, z) in r.iter() {
                    count[lin(x, y, z)] += 1;
                }
            }
            assert!(
                count.iter().all(|&c| c == 1),
                "core+shell is not an exact partition for {nx}x{ny}x{nz}"
            );
            // Core cells never pull from the ghost layer.
            for (x, y, z) in core.iter() {
                for (dx, dy, dz) in
                    [(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)]
                {
                    assert!(s.is_interior(x + dx, y + dy, z + dz));
                }
            }
        }
    }

    #[test]
    fn tiny_block_has_empty_core_and_full_shell() {
        let s = Shape::new(2, 2, 2, 1);
        assert!(s.interior_core(1).is_empty());
        let shell_cells: usize = s.shell_regions(1).iter().map(Region::num_cells).sum();
        assert_eq!(shell_cells, s.interior_cells());
    }

    #[test]
    fn interior_region_covers_all_interior_cells() {
        let s = Shape::new(2, 3, 4, 1);
        let count = s.interior().iter().count();
        assert_eq!(count, s.interior_cells());
        assert!(s.interior().iter().all(|(x, y, z)| s.is_interior(x, y, z)));
    }
}
