//! The [`LatticeModel`] trait describing a DdQq discrete velocity set.

/// A discrete velocity set (stencil) for the lattice Boltzmann method.
///
/// Implementors are zero-sized marker types (e.g. [`crate::D3Q19`]); all
/// stencil data is exposed through associated constants and `'static` slices
/// so that kernels monomorphized over a model see the stencil as compile-time
/// constants.
///
/// # Conventions
///
/// * Direction 0 is always the rest direction `(0, 0, 0)`.
/// * Velocities are stored as `[i8; 3]`; 2-D models use a zero z-component.
/// * `INVERSE[q]` is the index `q̄` with `c_{q̄} = -c_q`.
/// * `PAIRS` lists each antiparallel pair exactly once as `(q, q̄)` with
///   `q < q̄`; the rest direction is not part of any pair. This is the
///   decomposition used by the two-relaxation-time collision operator.
pub trait LatticeModel: Copy + Clone + Default + Send + Sync + 'static {
    /// Number of discrete velocities (the "Q" in DdQq).
    const Q: usize;
    /// Spatial dimension (the "D" in DdQq).
    const D: usize;
    /// Human-readable model name, e.g. `"D3Q19"`.
    const NAME: &'static str;

    /// The discrete velocity vectors, `Q` entries.
    fn velocities() -> &'static [[i8; 3]];
    /// The lattice weights, `Q` entries summing to 1.
    fn weights() -> &'static [f64];
    /// For each direction the index of the opposite direction.
    fn inverse() -> &'static [usize];
    /// Antiparallel direction pairs `(q, q̄)`, `q < q̄`, `(Q - 1) / 2` entries.
    fn pairs() -> &'static [(usize, usize)];

    /// Velocity vector of direction `q` as `f64` components.
    #[inline(always)]
    fn c(q: usize) -> [f64; 3] {
        let v = Self::velocities()[q];
        [v[0] as f64, v[1] as f64, v[2] as f64]
    }

    /// Lattice weight of direction `q`.
    #[inline(always)]
    fn w(q: usize) -> f64 {
        Self::weights()[q]
    }

    /// Index of the direction opposite to `q`.
    #[inline(always)]
    fn inv(q: usize) -> usize {
        Self::inverse()[q]
    }
}

/// Validates the internal consistency of a lattice model. Used by the test
/// suites of each concrete model; exposed so downstream crates can check
/// custom models too.
pub fn validate_model<M: LatticeModel>() {
    let c = M::velocities();
    let w = M::weights();
    let inv = M::inverse();
    assert_eq!(c.len(), M::Q, "{}: velocity count", M::NAME);
    assert_eq!(w.len(), M::Q, "{}: weight count", M::NAME);
    assert_eq!(inv.len(), M::Q, "{}: inverse count", M::NAME);
    assert_eq!(c[0], [0, 0, 0], "{}: direction 0 must be rest", M::NAME);

    // Weights are positive and sum to 1.
    let sum: f64 = w.iter().sum();
    assert!((sum - 1.0).abs() < 1e-14, "{}: weights sum to {sum}", M::NAME);
    assert!(w.iter().all(|&x| x > 0.0), "{}: weights positive", M::NAME);

    // Inverse directions are truly antiparallel and involutive.
    for q in 0..M::Q {
        let qi = inv[q];
        assert_eq!(inv[qi], q, "{}: inverse not involutive at {q}", M::NAME);
        for d in 0..3 {
            assert_eq!(c[q][d], -c[qi][d], "{}: dir {q} not opposite to {qi}", M::NAME);
        }
        // Opposite directions carry equal weights (parity symmetry).
        assert_eq!(w[q], w[qi], "{}: weight asymmetry at {q}", M::NAME);
    }

    // Pairs cover all non-rest directions exactly once.
    let pairs = M::pairs();
    assert_eq!(pairs.len(), (M::Q - 1) / 2, "{}: pair count", M::NAME);
    let mut seen = vec![false; M::Q];
    seen[0] = true;
    for &(a, b) in pairs {
        assert!(a < b, "{}: pair not ordered: ({a}, {b})", M::NAME);
        assert_eq!(inv[a], b, "{}: pair ({a}, {b}) not antiparallel", M::NAME);
        assert!(!seen[a] && !seen[b], "{}: direction repeated in pairs", M::NAME);
        seen[a] = true;
        seen[b] = true;
    }
    assert!(seen.iter().all(|&s| s), "{}: pairs do not cover all directions", M::NAME);

    // First and second moment isotropy conditions:
    //   Σ w_q c_q = 0,   Σ w_q c_q c_q = c_s² I  with c_s² = 1/3 (3-D models)
    for d in 0..3 {
        let m1: f64 = (0..M::Q).map(|q| w[q] * c[q][d] as f64).sum();
        assert!(m1.abs() < 1e-14, "{}: first moment nonzero in axis {d}", M::NAME);
    }
    for d0 in 0..M::D {
        for d1 in 0..M::D {
            let m2: f64 = (0..M::Q).map(|q| w[q] * c[q][d0] as f64 * c[q][d1] as f64).sum();
            let expect = if d0 == d1 { crate::CS2 } else { 0.0 };
            assert!(
                (m2 - expect).abs() < 1e-14,
                "{}: second moment ({d0},{d1}) = {m2}, expected {expect}",
                M::NAME
            );
        }
    }
}
