//! The D3Q19 lattice model of Qian, d'Humières and Lallemand.
//!
//! This is the model used for all simulations in the SC'13 paper: 19
//! discrete velocities in three dimensions — the rest direction, the six
//! axis-aligned directions and the twelve face-diagonal directions.

use crate::model::LatticeModel;

/// Marker type for the D3Q19 velocity set.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct D3Q19;

/// Number of discrete velocities.
pub const Q: usize = 19;

/// Symbolic direction indices for readable kernel and boundary code.
#[allow(missing_docs)] // names are the documentation (N/S/W/E/T/B compass)
pub mod dir {
    pub const C: usize = 0;
    pub const N: usize = 1;
    pub const S: usize = 2;
    pub const W: usize = 3;
    pub const E: usize = 4;
    pub const T: usize = 5;
    pub const B: usize = 6;
    pub const NW: usize = 7;
    pub const NE: usize = 8;
    pub const SW: usize = 9;
    pub const SE: usize = 10;
    pub const TN: usize = 11;
    pub const TS: usize = 12;
    pub const TW: usize = 13;
    pub const TE: usize = 14;
    pub const BN: usize = 15;
    pub const BS: usize = 16;
    pub const BW: usize = 17;
    pub const BE: usize = 18;
}

/// Discrete velocities: x is E(+)/W(−), y is N(+)/S(−), z is T(+)/B(−).
pub const C: [[i8; 3]; Q] = [
    [0, 0, 0],   // C
    [0, 1, 0],   // N
    [0, -1, 0],  // S
    [-1, 0, 0],  // W
    [1, 0, 0],   // E
    [0, 0, 1],   // T
    [0, 0, -1],  // B
    [-1, 1, 0],  // NW
    [1, 1, 0],   // NE
    [-1, -1, 0], // SW
    [1, -1, 0],  // SE
    [0, 1, 1],   // TN
    [0, -1, 1],  // TS
    [-1, 0, 1],  // TW
    [1, 0, 1],   // TE
    [0, 1, -1],  // BN
    [0, -1, -1], // BS
    [-1, 0, -1], // BW
    [1, 0, -1],  // BE
];

const W0: f64 = 1.0 / 3.0;
const W1: f64 = 1.0 / 18.0;
const W2: f64 = 1.0 / 36.0;

/// Lattice weights: 1/3 for rest, 1/18 axis, 1/36 diagonal.
pub const W: [f64; Q] =
    [W0, W1, W1, W1, W1, W1, W1, W2, W2, W2, W2, W2, W2, W2, W2, W2, W2, W2, W2];

/// Opposite-direction lookup table.
pub const INVERSE: [usize; Q] = [
    0,  // C
    2,  // N -> S
    1,  // S -> N
    4,  // W -> E
    3,  // E -> W
    6,  // T -> B
    5,  // B -> T
    10, // NW -> SE
    9,  // NE -> SW
    8,  // SW -> NE
    7,  // SE -> NW
    16, // TN -> BS
    15, // TS -> BN
    18, // TW -> BE
    17, // TE -> BW
    12, // BN -> TS
    11, // BS -> TN
    14, // BW -> TE
    13, // BE -> TW
];

/// Antiparallel pairs `(q, q̄)` with `q < q̄`.
pub const PAIRS: [(usize, usize); 9] = [
    (1, 2),   // N / S
    (3, 4),   // W / E
    (5, 6),   // T / B
    (7, 10),  // NW / SE
    (8, 9),   // NE / SW
    (11, 16), // TN / BS
    (12, 15), // TS / BN
    (13, 18), // TW / BE
    (14, 17), // TE / BW
];

impl LatticeModel for D3Q19 {
    const Q: usize = Q;
    const D: usize = 3;
    const NAME: &'static str = "D3Q19";

    #[inline(always)]
    fn velocities() -> &'static [[i8; 3]] {
        &C
    }
    #[inline(always)]
    fn weights() -> &'static [f64] {
        &W
    }
    #[inline(always)]
    fn inverse() -> &'static [usize] {
        &INVERSE
    }
    #[inline(always)]
    fn pairs() -> &'static [(usize, usize)] {
        &PAIRS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_model;

    #[test]
    fn model_is_consistent() {
        validate_model::<D3Q19>();
    }

    #[test]
    fn direction_constants_match_table() {
        assert_eq!(C[dir::E], [1, 0, 0]);
        assert_eq!(C[dir::W], [-1, 0, 0]);
        assert_eq!(C[dir::N], [0, 1, 0]);
        assert_eq!(C[dir::S], [0, -1, 0]);
        assert_eq!(C[dir::T], [0, 0, 1]);
        assert_eq!(C[dir::B], [0, 0, -1]);
        assert_eq!(C[dir::NE], [1, 1, 0]);
        assert_eq!(C[dir::BS], [0, -1, -1]);
    }

    #[test]
    fn axis_and_diagonal_weight_counts() {
        let axis = W.iter().filter(|&&w| w == W1).count();
        let diag = W.iter().filter(|&&w| w == W2).count();
        assert_eq!(axis, 6);
        assert_eq!(diag, 12);
    }

    #[test]
    fn no_velocity_has_three_nonzero_components() {
        // D3Q19 excludes the cube corners (that is what distinguishes it
        // from D3Q27).
        for v in C {
            let nonzero = v.iter().filter(|&&x| x != 0).count();
            assert!(nonzero <= 2);
        }
    }
}
