//! Conversion between physical units and lattice units.
//!
//! The paper (§4.3) sizes its vascular runs in physical units: spatial
//! resolutions from 0.1837 mm down to 1.276 µm, a maximal blood velocity of
//! 0.2 m/s, a stability limit of 0.1 on the lattice velocity, and derives a
//! time step of half the spatial resolution (in seconds per meter), e.g.
//! 0.64 µs at 1.276 µm. [`UnitConverter`] reproduces exactly this
//! parameterization.

/// Maps physical quantities (SI units) to dimensionless lattice quantities.
///
/// The mapping is fixed by the cell size `dx` (m), the time step `dt` (s)
/// and the reference density `rho` (kg/m³, defaults to 1000 for blood-like
/// fluids).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct UnitConverter {
    /// Cell size in meters.
    pub dx: f64,
    /// Time step in seconds.
    pub dt: f64,
    /// Reference physical density in kg/m³.
    pub rho: f64,
}

impl UnitConverter {
    /// Creates a converter from an explicit cell size and time step.
    pub fn new(dx: f64, dt: f64) -> Self {
        assert!(dx > 0.0 && dt > 0.0);
        UnitConverter { dx, dt, rho: 1000.0 }
    }

    /// Derives the time step from a maximal physical velocity and the
    /// maximal admissible lattice velocity (the paper uses 0.1):
    /// `dt = dx · u_lat_max / u_phys_max`.
    ///
    /// With `u_lat_max = 0.1` and `u_phys_max = 0.2 m/s` this yields the
    /// paper's "time step length computes to half the spatial resolution".
    pub fn from_velocity_limit(dx: f64, u_phys_max: f64, u_lat_max: f64) -> Self {
        assert!(dx > 0.0 && u_phys_max > 0.0 && u_lat_max > 0.0);
        Self::new(dx, dx * u_lat_max / u_phys_max)
    }

    /// Physical velocity (m/s) to lattice velocity.
    pub fn velocity_to_lattice(&self, u: f64) -> f64 {
        u * self.dt / self.dx
    }

    /// Lattice velocity to physical velocity (m/s).
    pub fn velocity_to_physical(&self, u_lat: f64) -> f64 {
        u_lat * self.dx / self.dt
    }

    /// Physical kinematic viscosity (m²/s) to lattice viscosity.
    pub fn viscosity_to_lattice(&self, nu: f64) -> f64 {
        nu * self.dt / (self.dx * self.dx)
    }

    /// Lattice kinematic viscosity to physical viscosity (m²/s).
    pub fn viscosity_to_physical(&self, nu_lat: f64) -> f64 {
        nu_lat * self.dx * self.dx / self.dt
    }

    /// Physical time (s) to number of time steps (rounded down).
    pub fn steps_for_time(&self, t: f64) -> u64 {
        (t / self.dt) as u64
    }

    /// Physical length (m) in cells (exact, not rounded).
    pub fn length_to_cells(&self, l: f64) -> f64 {
        l / self.dx
    }

    /// Reynolds number for a characteristic physical length and velocity and
    /// physical kinematic viscosity. Invariant under the unit mapping.
    pub fn reynolds(l: f64, u: f64, nu: f64) -> f64 {
        l * u / nu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the paper's §4.3 numbers: at dx = 1.276 µm with a blood
    /// velocity of 0.2 m/s and lattice velocity limit 0.1, the time step is
    /// 0.64 µs (the paper states "half the spatial resolution").
    #[test]
    fn paper_time_step_at_finest_resolution() {
        let uc = UnitConverter::from_velocity_limit(1.276e-6, 0.2, 0.1);
        assert!((uc.dt - 0.638e-6).abs() < 1e-12, "dt = {}", uc.dt);
        // "half the spatial resolution": dt [s] = dx [m] / 2 numerically
        assert!((uc.dt - uc.dx / 2.0).abs() < 1e-18);
    }

    #[test]
    fn velocity_roundtrip() {
        let uc = UnitConverter::from_velocity_limit(1e-4, 0.2, 0.1);
        let u = 0.13;
        let ul = uc.velocity_to_lattice(u);
        assert!((uc.velocity_to_physical(ul) - u).abs() < 1e-15);
        // The maximal velocity maps to the lattice limit.
        assert!((uc.velocity_to_lattice(0.2) - 0.1).abs() < 1e-15);
    }

    #[test]
    fn viscosity_roundtrip() {
        let uc = UnitConverter::new(1e-3, 1e-5);
        let nu = 3.3e-6; // blood-plasma-like kinematic viscosity
        let nl = uc.viscosity_to_lattice(nu);
        assert!((uc.viscosity_to_physical(nl) - nu).abs() < 1e-18);
    }

    #[test]
    fn reynolds_is_unit_invariant() {
        let uc = UnitConverter::from_velocity_limit(1e-4, 0.2, 0.1);
        let (l, u, nu) = (2e-3, 0.15, 3.3e-6);
        let re_phys = UnitConverter::reynolds(l, u, nu);
        let re_lat = UnitConverter::reynolds(
            uc.length_to_cells(l),
            uc.velocity_to_lattice(u),
            uc.viscosity_to_lattice(nu),
        );
        assert!((re_phys - re_lat).abs() / re_phys < 1e-12);
    }

    #[test]
    fn steps_for_time_counts_whole_steps() {
        let uc = UnitConverter::new(1.0, 0.25);
        assert_eq!(uc.steps_for_time(1.0), 4);
        assert_eq!(uc.steps_for_time(0.99), 3);
    }
}

#[cfg(test)]
mod resolution_tests {
    use super::*;

    /// The paper's coarser strong-scaling resolutions imply proportionally
    /// longer time steps (dt ∝ dx at fixed velocity mapping).
    #[test]
    fn dt_scales_linearly_with_dx() {
        let fine = UnitConverter::from_velocity_limit(0.05e-3, 0.2, 0.1);
        let coarse = UnitConverter::from_velocity_limit(0.1e-3, 0.2, 0.1);
        assert!((coarse.dt / fine.dt - 2.0).abs() < 1e-12);
    }

    /// Lattice viscosity for blood at the paper's finest resolution stays
    /// in the stable range (the reason such simulations are feasible).
    #[test]
    fn blood_viscosity_is_stable_at_fine_resolution() {
        let uc = UnitConverter::from_velocity_limit(1.276e-6, 0.2, 0.1);
        let nu_blood = 3.3e-6; // m^2/s, whole blood ballpark
        let nu_lat = uc.viscosity_to_lattice(nu_blood);
        let tau = crate::Relaxation::tau_from_viscosity(nu_lat);
        assert!(tau > 0.5 && tau < 10.0, "tau = {tau}");
    }
}
