#![warn(missing_docs)]
//! Lattice models for the lattice Boltzmann method.
//!
//! This crate provides the discrete velocity sets ("lattice models") used by
//! the LBM: the three-dimensional D3Q19 and D3Q27 models and the
//! two-dimensional D2Q9 model, together with the equilibrium distribution,
//! macroscopic moment computation, relaxation-parameter math for the
//! single-relaxation-time (SRT/LBGK) and two-relaxation-time (TRT) collision
//! operators, and conversion between physical and lattice units.
//!
//! The design mirrors the compile-time lattice-model parameterization of the
//! waLBerla framework: a model is a zero-sized type implementing
//! [`LatticeModel`], so kernels generic over the model are monomorphized with
//! all stencil information available to the optimizer as constants.

pub mod d2q9;
pub mod d3q19;
pub mod d3q27;
pub mod equilibrium;
pub mod model;
pub mod mrt;
pub mod relaxation;
pub mod units;

pub use d2q9::D2Q9;
pub use d3q19::D3Q19;
pub use d3q27::D3Q27;
pub use equilibrium::{density, equilibrium, equilibrium_all, momentum, velocity};
pub use model::LatticeModel;
pub use mrt::{MrtRates, CS_SMAGORINSKY};
pub use relaxation::{Relaxation, MAGIC_TRT};
pub use units::UnitConverter;

/// Speed of sound squared in lattice units, `c_s^2 = 1/3`, common to all
/// standard DdQq models used here.
pub const CS2: f64 = 1.0 / 3.0;

/// Inverse of [`CS2`].
pub const INV_CS2: f64 = 3.0;
