//! The D2Q9 lattice model (two-dimensional nine-velocity set).
//!
//! Two-dimensional problems are represented with a zero z-component; all
//! generic kernels work unchanged on a grid of z-extent 1.

use crate::model::LatticeModel;

/// Marker type for the D2Q9 velocity set.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct D2Q9;

/// Number of discrete velocities.
pub const Q: usize = 9;

const W0: f64 = 4.0 / 9.0;
const W1: f64 = 1.0 / 9.0;
const W2: f64 = 1.0 / 36.0;

/// Discrete velocities: rest, 4 axis, 4 diagonal directions (z always 0).
pub const C: [[i8; 3]; Q] = [
    [0, 0, 0],
    [0, 1, 0],   // N
    [0, -1, 0],  // S
    [-1, 0, 0],  // W
    [1, 0, 0],   // E
    [-1, 1, 0],  // NW
    [1, 1, 0],   // NE
    [-1, -1, 0], // SW
    [1, -1, 0],  // SE
];

/// Lattice weights: 4/9 rest, 1/9 axis, 1/36 diagonal.
pub const W: [f64; Q] = [W0, W1, W1, W1, W1, W2, W2, W2, W2];

/// Opposite-direction lookup table.
pub const INVERSE: [usize; Q] = [0, 2, 1, 4, 3, 8, 7, 6, 5];

/// Antiparallel pairs `(q, q̄)` with `q < q̄`.
pub const PAIRS: [(usize, usize); 4] = [(1, 2), (3, 4), (5, 8), (6, 7)];

impl LatticeModel for D2Q9 {
    const Q: usize = Q;
    const D: usize = 2;
    const NAME: &'static str = "D2Q9";

    #[inline(always)]
    fn velocities() -> &'static [[i8; 3]] {
        &C
    }
    #[inline(always)]
    fn weights() -> &'static [f64] {
        &W
    }
    #[inline(always)]
    fn inverse() -> &'static [usize] {
        &INVERSE
    }
    #[inline(always)]
    fn pairs() -> &'static [(usize, usize)] {
        &PAIRS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_model;

    #[test]
    fn model_is_consistent() {
        validate_model::<D2Q9>();
    }

    #[test]
    fn z_components_are_zero() {
        for v in C {
            assert_eq!(v[2], 0);
        }
    }
}
