//! The D3Q27 lattice model (full three-dimensional neighborhood).
//!
//! Not used for the paper's production runs but part of the framework's
//! stencil family (the paper notes the stencil code for "D3Q19, D3Q27,
//! D2Q9, etc." is generated); we provide it as a hand-validated table.

use crate::model::LatticeModel;

/// Marker type for the D3Q27 velocity set.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct D3Q27;

/// Number of discrete velocities.
pub const Q: usize = 27;

const W0: f64 = 8.0 / 27.0;
const W1: f64 = 2.0 / 27.0;
const W2: f64 = 1.0 / 54.0;
const W3: f64 = 1.0 / 216.0;

/// Discrete velocities: rest, 6 axis, 12 face-diagonal, 8 corner directions.
/// The first 19 entries coincide with the D3Q19 ordering so code written for
/// D3Q19 direction indices remains meaningful.
pub const C: [[i8; 3]; Q] = [
    [0, 0, 0],
    [0, 1, 0],
    [0, -1, 0],
    [-1, 0, 0],
    [1, 0, 0],
    [0, 0, 1],
    [0, 0, -1],
    [-1, 1, 0],
    [1, 1, 0],
    [-1, -1, 0],
    [1, -1, 0],
    [0, 1, 1],
    [0, -1, 1],
    [-1, 0, 1],
    [1, 0, 1],
    [0, 1, -1],
    [0, -1, -1],
    [-1, 0, -1],
    [1, 0, -1],
    // corners
    [1, 1, 1],
    [-1, -1, -1],
    [1, 1, -1],
    [-1, -1, 1],
    [1, -1, 1],
    [-1, 1, -1],
    [-1, 1, 1],
    [1, -1, -1],
];

/// Lattice weights: 8/27 rest, 2/27 axis, 1/54 face-diagonal, 1/216 corner.
pub const W: [f64; Q] = [
    W0, W1, W1, W1, W1, W1, W1, W2, W2, W2, W2, W2, W2, W2, W2, W2, W2, W2, W2, W3, W3, W3, W3, W3,
    W3, W3, W3,
];

/// Opposite-direction lookup table.
pub const INVERSE: [usize; Q] = [
    0, 2, 1, 4, 3, 6, 5, 10, 9, 8, 7, 16, 15, 18, 17, 12, 11, 14, 13, 20, 19, 22, 21, 24, 23, 26,
    25,
];

/// Antiparallel pairs `(q, q̄)` with `q < q̄`.
pub const PAIRS: [(usize, usize); 13] = [
    (1, 2),
    (3, 4),
    (5, 6),
    (7, 10),
    (8, 9),
    (11, 16),
    (12, 15),
    (13, 18),
    (14, 17),
    (19, 20),
    (21, 22),
    (23, 24),
    (25, 26),
];

impl LatticeModel for D3Q27 {
    const Q: usize = Q;
    const D: usize = 3;
    const NAME: &'static str = "D3Q27";

    #[inline(always)]
    fn velocities() -> &'static [[i8; 3]] {
        &C
    }
    #[inline(always)]
    fn weights() -> &'static [f64] {
        &W
    }
    #[inline(always)]
    fn inverse() -> &'static [usize] {
        &INVERSE
    }
    #[inline(always)]
    fn pairs() -> &'static [(usize, usize)] {
        &PAIRS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::validate_model;

    #[test]
    fn model_is_consistent() {
        validate_model::<D3Q27>();
    }

    #[test]
    fn first_19_directions_match_d3q19() {
        for q in 0..19 {
            assert_eq!(C[q], crate::d3q19::C[q]);
        }
    }

    #[test]
    fn corner_count() {
        let corners = C.iter().filter(|v| v.iter().filter(|&&x| x != 0).count() == 3).count();
        assert_eq!(corners, 8);
    }
}
