//! Multiple-relaxation-time (MRT) collision operator for D3Q19, with an
//! optional Smagorinsky large-eddy closure.
//!
//! The moment basis is the Gram–Schmidt construction of d'Humières et al.
//! (2002) for D3Q19: nineteen mutually orthogonal (under the plain
//! Euclidean inner product) integer-valued rows, ordered
//!
//! ```text
//!  0  ρ      density                 (conserved)
//!  1  e      kinetic energy
//!  2  ε      energy squared
//!  3  j_x    momentum               (conserved)
//!  4  q_x    energy flux
//!  5  j_y                            (conserved)
//!  6  q_y
//!  7  j_z                            (conserved)
//!  8  q_z
//!  9  3p_xx  diagonal stress         (viscosity)
//! 10  3π_xx  quartic diagonal stress
//! 11  p_ww   normal-stress difference (viscosity)
//! 12  π_ww   quartic counterpart
//! 13  p_xy   shear stress            (viscosity)
//! 14  p_yz   shear stress            (viscosity)
//! 15  p_xz   shear stress            (viscosity)
//! 16  m_x    third-order antisymmetric
//! 17  m_y
//! 18  m_z
//! ```
//!
//! Because the rows are orthogonal, `M⁻¹ = Mᵀ · diag(1/‖row‖²)` — no
//! numerical inversion is needed and the round trip `M⁻¹(M f) = f` holds to
//! machine precision.
//!
//! The collision relaxes only the *non-equilibrium* moments:
//!
//! ```text
//! f′ = f − M⁻¹ · S · M · (f − f^eq(ρ, u))
//! ```
//!
//! so the conserved moments (whose rates are zero) are untouched exactly,
//! and a uniform rate vector `S = ω I` reduces the operator to SRT with
//! `ω = 1/τ`.
//!
//! The Smagorinsky closure (Hou et al. 1996) computes the local strain
//! rate magnitude from the second moment of the non-equilibrium part,
//! `Π_ab = Σ_q c_qa c_qb (f_q − f_q^eq)`, and replaces the constant
//! relaxation time by the cell-local effective
//!
//! ```text
//! τ_eff = ½ (τ₀ + sqrt(τ₀² + 18 √2 C_s² |Π| / ρ)),  |Π| = sqrt(Σ_ab Π_ab²)
//! ```
//!
//! which adds the eddy viscosity `ν_t = (C_s Δ)² |S̄|` on top of the
//! molecular viscosity without ever letting `τ_eff` fall below `τ₀`.

use crate::d3q19::{C, Q};
use crate::equilibrium::{density, equilibrium_all, momentum};
use crate::relaxation::Relaxation;
use crate::D3Q19;

/// Default Smagorinsky constant `C_s` used by the LES-augmented operator.
pub const CS_SMAGORINSKY: f64 = 0.17;

/// Moment indices whose relaxation rate is tied to the shear viscosity
/// (`3p_xx`, `p_ww`, `p_xy`, `p_yz`, `p_xz`).
pub const VISCOUS_MOMENTS: [usize; 5] = [9, 11, 13, 14, 15];

/// Moment indices of the conserved quantities (`ρ`, `j_x`, `j_y`, `j_z`).
pub const CONSERVED_MOMENTS: [usize; 4] = [0, 3, 5, 7];

/// Evaluates row `i` of the Gram–Schmidt moment matrix at velocity `c`.
/// All rows are integer polynomials in the lattice velocity components.
const fn moment_row(i: usize, c: [i8; 3]) -> f64 {
    let x = c[0] as i64;
    let y = c[1] as i64;
    let z = c[2] as i64;
    let c2 = x * x + y * y + z * z;
    let v = match i {
        0 => 1,
        1 => 19 * c2 - 30,
        2 => (21 * c2 * c2 - 53 * c2 + 24) / 2,
        3 => x,
        4 => (5 * c2 - 9) * x,
        5 => y,
        6 => (5 * c2 - 9) * y,
        7 => z,
        8 => (5 * c2 - 9) * z,
        9 => 3 * x * x - c2,
        10 => (3 * c2 - 5) * (3 * x * x - c2),
        11 => y * y - z * z,
        12 => (3 * c2 - 5) * (y * y - z * z),
        13 => x * y,
        14 => y * z,
        15 => x * z,
        16 => (y * y - z * z) * x,
        17 => (z * z - x * x) * y,
        18 => (x * x - y * y) * z,
        _ => unreachable!(),
    };
    v as f64
}

const fn build_m() -> [[f64; Q]; Q] {
    let mut m = [[0.0; Q]; Q];
    let mut i = 0;
    while i < Q {
        let mut q = 0;
        while q < Q {
            m[i][q] = moment_row(i, C[q]);
            q += 1;
        }
        i += 1;
    }
    m
}

const fn build_m_inv(m: &[[f64; Q]; Q]) -> [[f64; Q]; Q] {
    let mut inv = [[0.0; Q]; Q];
    let mut i = 0;
    while i < Q {
        // Row norms are integers (the rows are integer-valued), so the
        // divisions below are exact rationals rounded once.
        let mut norm = 0.0;
        let mut q = 0;
        while q < Q {
            norm += m[i][q] * m[i][q];
            q += 1;
        }
        let mut q = 0;
        while q < Q {
            inv[q][i] = m[i][q] / norm;
            q += 1;
        }
        i += 1;
    }
    inv
}

/// The 19×19 moment transform `M` (rows are moments, columns directions).
pub const M: [[f64; Q]; Q] = build_m();

/// The inverse transform `M⁻¹ = Mᵀ · diag(1/‖row‖²)`.
pub const M_INV: [[f64; Q]; Q] = build_m_inv(&M);

/// Per-moment relaxation rates `S = diag(s_0 … s_18)`.
///
/// Conserved-moment rates are zero (exact conservation); the five
/// viscosity-linked rates are `1/τ`; the remaining "kinetic" rates use the
/// standard tuning of d'Humières et al. (2002), which damps the ghost
/// modes that destabilize SRT at low viscosity.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MrtRates {
    /// Rate per moment, in the basis order of [`M`].
    pub s: [f64; Q],
}

impl MrtRates {
    /// Standard rates with the viscosity-linked entries set to `ω = 1/τ`
    /// derived from the even relaxation rate of `rel`.
    pub fn from_relaxation(rel: Relaxation) -> Self {
        Self::from_viscous_rate(-rel.lambda_e)
    }

    /// Standard rates with an explicit viscosity-linked rate `s_ν = 1/τ`.
    pub fn from_viscous_rate(s_nu: f64) -> Self {
        let mut s = [0.0; Q];
        s[1] = 1.19; // e
        s[2] = 1.4; // ε
        s[4] = 1.2; // q_x
        s[6] = 1.2; // q_y
        s[8] = 1.2; // q_z
        s[10] = 1.4; // 3π_xx
        s[12] = 1.4; // π_ww
        s[16] = 1.98; // m_x
        s[17] = 1.98; // m_y
        s[18] = 1.98; // m_z
        let mut i = 0;
        while i < VISCOUS_MOMENTS.len() {
            s[VISCOUS_MOMENTS[i]] = s_nu;
            i += 1;
        }
        Self { s }
    }

    /// Uniform rates: every non-conserved moment relaxes at `omega`.
    /// With this choice MRT is algebraically identical to SRT.
    pub fn uniform(omega: f64) -> Self {
        let mut s = [omega; Q];
        for &i in &CONSERVED_MOMENTS {
            s[i] = 0.0;
        }
        Self { s }
    }

    /// The relaxation time `τ = 1/s_ν` implied by the viscosity rate.
    pub fn tau(&self) -> f64 {
        1.0 / self.s[VISCOUS_MOMENTS[0]]
    }
}

/// Effective Smagorinsky relaxation time: `τ₀` plus the eddy-viscosity
/// contribution from the non-equilibrium stress magnitude `pi_mag =
/// sqrt(Σ_ab Π_ab²)` at density `rho`.
#[inline(always)]
pub fn smagorinsky_tau(tau0: f64, cs: f64, pi_mag: f64, rho: f64) -> f64 {
    let sqrt2 = core::f64::consts::SQRT_2;
    0.5 * (tau0 + (tau0 * tau0 + 18.0 * sqrt2 * cs * cs * pi_mag / rho).sqrt())
}

/// In-place MRT collision of one cell's distribution.
///
/// With `smagorinsky = Some(C_s)` the five viscosity-linked rates are
/// replaced per cell by `1/τ_eff` from the local non-equilibrium stress;
/// with `None` the rates in `rates` are used as-is.
///
/// This is the *single* scalar implementation shared by every kernel tier
/// and update scheme, so the floating-point operation sequence — and
/// therefore the bitwise result — is identical everywhere.
#[inline]
pub fn collide(f: &mut [f64; Q], rates: &MrtRates, smagorinsky: Option<f64>) {
    let rho = density::<D3Q19>(f);
    let j = momentum::<D3Q19>(f);
    let u = [j[0] / rho, j[1] / rho, j[2] / rho];
    let mut feq = [0.0; Q];
    equilibrium_all::<D3Q19>(rho, u, &mut feq);
    let mut fneq = [0.0; Q];
    for q in 0..Q {
        fneq[q] = f[q] - feq[q];
    }

    let mut s = rates.s;
    if let Some(cs) = smagorinsky {
        // Non-equilibrium momentum flux Π_ab = Σ_q c_qa c_qb fneq_q.
        let (mut xx, mut yy, mut zz) = (0.0, 0.0, 0.0);
        let (mut xy, mut yz, mut xz) = (0.0, 0.0, 0.0);
        for q in 1..Q {
            let c = C[q];
            let (cx, cy, cz) = (c[0] as f64, c[1] as f64, c[2] as f64);
            let fq = fneq[q];
            xx += cx * cx * fq;
            yy += cy * cy * fq;
            zz += cz * cz * fq;
            xy += cx * cy * fq;
            yz += cy * cz * fq;
            xz += cx * cz * fq;
        }
        let pi_mag = (xx * xx + yy * yy + zz * zz + 2.0 * (xy * xy + yz * yz + xz * xz)).sqrt();
        let tau_eff = smagorinsky_tau(rates.tau(), cs, pi_mag, rho);
        let s_nu = 1.0 / tau_eff;
        for &i in &VISCOUS_MOMENTS {
            s[i] = s_nu;
        }
    }

    // Relaxed non-equilibrium moments m̃ = S · M · fneq …
    let mut mneq = [0.0; Q];
    for i in 0..Q {
        if s[i] == 0.0 {
            continue; // conserved — contributes nothing below
        }
        let mut acc = 0.0;
        for q in 0..Q {
            acc += M[i][q] * fneq[q];
        }
        mneq[i] = s[i] * acc;
    }
    // … mapped back: f′ = f − M⁻¹ m̃.
    for q in 0..Q {
        let mut acc = 0.0;
        for i in 0..Q {
            acc += M_INV[q][i] * mneq[i];
        }
        f[q] -= acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::equilibrium;

    /// A generic non-equilibrium test distribution.
    fn sample_f() -> [f64; Q] {
        let mut f = [0.0; Q];
        for q in 0..Q {
            f[q] = equilibrium::<D3Q19>(q, 1.04, [0.03, -0.02, 0.015])
                + 1e-3 * ((q as f64 * 0.7).sin());
        }
        f
    }

    #[test]
    fn rows_are_orthogonal() {
        for i in 0..Q {
            for j in 0..Q {
                let dot: f64 = (0..Q).map(|q| M[i][q] * M[j][q]).sum();
                if i == j {
                    assert!(dot > 0.0, "row {i} has zero norm");
                } else {
                    assert_eq!(dot, 0.0, "rows {i} and {j} not orthogonal");
                }
            }
        }
    }

    #[test]
    fn moment_transform_round_trip() {
        // M · M⁻¹ = I to 1e-12 (exact up to the one rounding in M⁻¹).
        for i in 0..Q {
            for j in 0..Q {
                let e: f64 = (0..Q).map(|k| M[i][k] * M_INV[k][j]).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((e - want).abs() < 1e-12, "M·M⁻¹[{i}][{j}] = {e}");
            }
        }
        // And the round trip on an actual distribution.
        let f = sample_f();
        let mut m = [0.0; Q];
        for i in 0..Q {
            m[i] = (0..Q).map(|q| M[i][q] * f[q]).sum();
        }
        for q in 0..Q {
            let back: f64 = (0..Q).map(|i| M_INV[q][i] * m[i]).sum();
            assert!((back - f[q]).abs() < 1e-14, "direction {q}");
        }
    }

    #[test]
    fn low_order_moments_match_macroscopics() {
        let f = sample_f();
        let rho = density::<D3Q19>(&f);
        let j = momentum::<D3Q19>(&f);
        let m0: f64 = (0..Q).map(|q| M[0][q] * f[q]).sum();
        let mx: f64 = (0..Q).map(|q| M[3][q] * f[q]).sum();
        let my: f64 = (0..Q).map(|q| M[5][q] * f[q]).sum();
        let mz: f64 = (0..Q).map(|q| M[7][q] * f[q]).sum();
        assert!((m0 - rho).abs() < 1e-14);
        assert!((mx - j[0]).abs() < 1e-14);
        assert!((my - j[1]).abs() < 1e-14);
        assert!((mz - j[2]).abs() < 1e-14);
    }

    #[test]
    fn conserved_moments_unchanged_by_collision() {
        let mut f = sample_f();
        let rho0 = density::<D3Q19>(&f);
        let j0 = momentum::<D3Q19>(&f);
        collide(&mut f, &MrtRates::from_relaxation(Relaxation::srt_from_tau(0.6)), None);
        assert!((density::<D3Q19>(&f) - rho0).abs() < 1e-14);
        let j = momentum::<D3Q19>(&f);
        for d in 0..3 {
            assert!((j[d] - j0[d]).abs() < 1e-14, "axis {d}");
        }
        // Same with the LES closure active.
        let mut g = sample_f();
        collide(&mut g, &MrtRates::from_relaxation(Relaxation::srt_from_tau(0.6)), Some(0.17));
        assert!((density::<D3Q19>(&g) - rho0).abs() < 1e-14);
        let jg = momentum::<D3Q19>(&g);
        for d in 0..3 {
            assert!((jg[d] - j0[d]).abs() < 1e-14, "axis {d}");
        }
    }

    #[test]
    fn uniform_rates_reduce_to_srt() {
        let tau = 0.73;
        let omega = 1.0 / tau;
        let mut f_mrt = sample_f();
        collide(&mut f_mrt, &MrtRates::uniform(omega), None);

        // Reference SRT: f′ = f + ω (feq − f).
        let f0 = sample_f();
        let rho = density::<D3Q19>(&f0);
        let j = momentum::<D3Q19>(&f0);
        let u = [j[0] / rho, j[1] / rho, j[2] / rho];
        for q in 0..Q {
            let feq = equilibrium::<D3Q19>(q, rho, u);
            let srt = f0[q] + omega * (feq - f0[q]);
            assert!((f_mrt[q] - srt).abs() < 1e-12, "direction {q}: {} vs {srt}", f_mrt[q]);
        }
    }

    #[test]
    fn equilibrium_is_a_fixed_point() {
        let mut f = [0.0; Q];
        equilibrium_all::<D3Q19>(1.0, [0.02, 0.01, -0.03], &mut f);
        let before = f;
        collide(&mut f, &MrtRates::from_relaxation(Relaxation::trt_from_viscosity(0.02)), None);
        for q in 0..Q {
            assert!((f[q] - before[q]).abs() < 1e-14);
        }
    }

    #[test]
    fn smagorinsky_tau_never_below_molecular() {
        for &pi in &[0.0, 1e-8, 1e-4, 0.1] {
            let t = smagorinsky_tau(0.51, CS_SMAGORINSKY, pi, 1.0);
            assert!(t >= 0.51 - 1e-15, "pi={pi} gave tau={t}");
        }
        // Zero strain: exactly the molecular value.
        assert!((smagorinsky_tau(0.8, CS_SMAGORINSKY, 0.0, 1.0) - 0.8).abs() < 1e-15);
        // Strain raises it monotonically.
        let a = smagorinsky_tau(0.6, CS_SMAGORINSKY, 1e-3, 1.0);
        let b = smagorinsky_tau(0.6, CS_SMAGORINSKY, 2e-3, 1.0);
        assert!(b > a);
    }
}
