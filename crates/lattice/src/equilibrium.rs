//! Equilibrium distribution and macroscopic moments.
//!
//! The second-order Maxwell–Boltzmann expansion used by the standard LBGK
//! and TRT schemes:
//!
//! ```text
//! f_q^eq(ρ, u) = w_q ρ (1 + 3 (c_q · u) + 9/2 (c_q · u)² − 3/2 u²)
//! ```

use crate::model::LatticeModel;

/// Equilibrium distribution for a single direction `q` given density `rho`
/// and velocity `u` (lattice units).
#[inline(always)]
pub fn equilibrium<M: LatticeModel>(q: usize, rho: f64, u: [f64; 3]) -> f64 {
    let c = M::c(q);
    let cu = c[0] * u[0] + c[1] * u[1] + c[2] * u[2];
    let u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    M::w(q) * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * u2)
}

/// Fills `out[..M::Q]` with the full equilibrium distribution.
#[inline]
pub fn equilibrium_all<M: LatticeModel>(rho: f64, u: [f64; 3], out: &mut [f64]) {
    assert!(out.len() >= M::Q);
    for q in 0..M::Q {
        out[q] = equilibrium::<M>(q, rho, u);
    }
}

/// Density `ρ = Σ_q f_q`.
#[inline(always)]
pub fn density<M: LatticeModel>(f: &[f64]) -> f64 {
    f[..M::Q].iter().sum()
}

/// Momentum `j = Σ_q f_q c_q`.
#[inline(always)]
pub fn momentum<M: LatticeModel>(f: &[f64]) -> [f64; 3] {
    let mut j = [0.0; 3];
    for q in 0..M::Q {
        let c = M::c(q);
        j[0] += f[q] * c[0];
        j[1] += f[q] * c[1];
        j[2] += f[q] * c[2];
    }
    j
}

/// Velocity `u = j / ρ`.
#[inline(always)]
pub fn velocity<M: LatticeModel>(f: &[f64]) -> [f64; 3] {
    let rho = density::<M>(f);
    let j = momentum::<M>(f);
    [j[0] / rho, j[1] / rho, j[2] / rho]
}

/// The symmetric ("even") part of the equilibrium for a direction pair,
/// `f_q^{eq+} = (f_q^eq + f_{q̄}^eq) / 2`, used by the TRT operator.
///
/// Because the odd-order velocity terms cancel, this has the closed form
/// `w_q ρ (1 + 9/2 (c_q·u)² − 3/2 u²)`.
#[inline(always)]
pub fn equilibrium_even<M: LatticeModel>(q: usize, rho: f64, u: [f64; 3]) -> f64 {
    let c = M::c(q);
    let cu = c[0] * u[0] + c[1] * u[1] + c[2] * u[2];
    let u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    M::w(q) * rho * (1.0 + 4.5 * cu * cu - 1.5 * u2)
}

/// The antisymmetric ("odd") part of the equilibrium for a direction pair,
/// `f_q^{eq−} = (f_q^eq − f_{q̄}^eq) / 2 = 3 w_q ρ (c_q·u)`.
#[inline(always)]
pub fn equilibrium_odd<M: LatticeModel>(q: usize, rho: f64, u: [f64; 3]) -> f64 {
    let c = M::c(q);
    let cu = c[0] * u[0] + c[1] * u[1] + c[2] * u[2];
    3.0 * M::w(q) * rho * cu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{D2Q9, D3Q19, D3Q27};

    fn check_moments<M: LatticeModel>() {
        let rho = 1.07;
        let u = [0.03, -0.02, 0.01];
        let mut f = vec![0.0; M::Q];
        equilibrium_all::<M>(rho, u, &mut f);

        // Zeroth moment reproduces the density exactly.
        assert!((density::<M>(&f) - rho).abs() < 1e-14);
        // First moment reproduces the momentum exactly.
        let j = momentum::<M>(&f);
        for d in 0..3 {
            assert!((j[d] - rho * u[d]).abs() < 1e-14, "axis {d}");
        }
        let v = velocity::<M>(&f);
        for d in 0..3 {
            assert!((v[d] - u[d]).abs() < 1e-14);
        }
    }

    #[test]
    fn equilibrium_moments_d3q19() {
        check_moments::<D3Q19>();
    }

    #[test]
    fn equilibrium_moments_d3q27() {
        check_moments::<D3Q27>();
    }

    #[test]
    fn equilibrium_moments_d2q9() {
        let rho = 0.93;
        let u = [0.05, 0.02, 0.0]; // z must be zero in 2-D
        let mut f = vec![0.0; 9];
        equilibrium_all::<D2Q9>(rho, u, &mut f);
        assert!((density::<D2Q9>(&f) - rho).abs() < 1e-14);
        let j = momentum::<D2Q9>(&f);
        assert!((j[0] - rho * u[0]).abs() < 1e-14);
        assert!((j[1] - rho * u[1]).abs() < 1e-14);
        assert_eq!(j[2], 0.0);
    }

    #[test]
    fn rest_state_equilibrium_equals_weights() {
        for q in 0..19 {
            let feq = equilibrium::<D3Q19>(q, 1.0, [0.0; 3]);
            assert!((feq - D3Q19::w(q)).abs() < 1e-15);
        }
    }

    fn check_even_odd_split<M: LatticeModel>() {
        let rho = 1.11;
        let u = [0.04, 0.01, -0.03];
        for &(a, b) in M::pairs() {
            let fa = equilibrium::<M>(a, rho, u);
            let fb = equilibrium::<M>(b, rho, u);
            let even = equilibrium_even::<M>(a, rho, u);
            let odd = equilibrium_odd::<M>(a, rho, u);
            assert!((even - 0.5 * (fa + fb)).abs() < 1e-14);
            assert!((odd - 0.5 * (fa - fb)).abs() < 1e-14);
            // Even part is symmetric, odd antisymmetric, under q -> q̄.
            assert!((equilibrium_even::<M>(b, rho, u) - even).abs() < 1e-14);
            assert!((equilibrium_odd::<M>(b, rho, u) + odd).abs() < 1e-14);
        }
    }

    #[test]
    fn even_odd_split_d3q19() {
        check_even_odd_split::<D3Q19>();
    }

    #[test]
    fn even_odd_split_d3q27() {
        check_even_odd_split::<D3Q27>();
    }

    #[test]
    fn even_odd_split_d2q9() {
        check_even_odd_split::<D2Q9>();
    }
}
