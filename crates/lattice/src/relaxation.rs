//! Relaxation parameters for the SRT (LBGK) and TRT collision operators.
//!
//! The paper uses two collision schemes (§2.1): the single-relaxation-time
//! model of Bhatnagar–Gross–Krook and the two-relaxation-time model of
//! Ginzburg et al. For TRT, the even (symmetric) and odd (antisymmetric)
//! parts of the distribution relax with separate rates `λ_e` and `λ_o`; with
//! `λ_e = λ_o = −1/τ` TRT reduces exactly to SRT (paper Eq. 8).

use crate::CS2;

/// The "magic parameter" `Λ = (1/ω_e − 1/2)(1/ω_o − 1/2)` fixing the odd
/// relaxation rate from the even one. `Λ = 3/16` places the no-slip wall of
/// the bounce-back rule exactly halfway between lattice nodes, independent
/// of viscosity — the standard choice for TRT.
pub const MAGIC_TRT: f64 = 3.0 / 16.0;

/// Relaxation configuration for a collision operator.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Relaxation {
    /// Even (symmetric) collision parameter `λ_e ∈ (−2, 0)`.
    pub lambda_e: f64,
    /// Odd (antisymmetric) collision parameter `λ_o ∈ (−2, 0)`.
    pub lambda_o: f64,
}

impl Relaxation {
    /// SRT parameters from the relaxation time `τ`: `λ_e = λ_o = −1/τ`.
    ///
    /// # Panics
    /// Panics if `tau <= 0.5` (linearly unstable regime).
    pub fn srt_from_tau(tau: f64) -> Self {
        assert!(tau > 0.5, "SRT requires tau > 1/2, got {tau}");
        let l = -1.0 / tau;
        Relaxation { lambda_e: l, lambda_o: l }
    }

    /// SRT parameters from the kinematic lattice viscosity
    /// `ν = c_s² (τ − 1/2)`.
    pub fn srt_from_viscosity(nu: f64) -> Self {
        Self::srt_from_tau(Self::tau_from_viscosity(nu))
    }

    /// TRT parameters: the even rate is fixed by the viscosity through `τ`,
    /// the odd rate follows from the magic parameter `Λ`:
    /// `1/ω_o − 1/2 = Λ / (1/ω_e − 1/2)` with `ω = −λ`.
    ///
    /// # Panics
    /// Panics if `tau <= 0.5` or `magic <= 0`.
    pub fn trt_from_tau(tau: f64, magic: f64) -> Self {
        assert!(tau > 0.5, "TRT requires tau > 1/2, got {tau}");
        assert!(magic > 0.0, "magic parameter must be positive, got {magic}");
        let omega_e = 1.0 / tau;
        // (1/ω_e − 1/2)(1/ω_o − 1/2) = Λ
        let half_e = 1.0 / omega_e - 0.5;
        let half_o = magic / half_e;
        let omega_o = 1.0 / (half_o + 0.5);
        Relaxation { lambda_e: -omega_e, lambda_o: -omega_o }
    }

    /// TRT parameters from the kinematic lattice viscosity with the standard
    /// magic parameter [`MAGIC_TRT`].
    pub fn trt_from_viscosity(nu: f64) -> Self {
        Self::trt_from_tau(Self::tau_from_viscosity(nu), MAGIC_TRT)
    }

    /// Relaxation time from kinematic lattice viscosity: `τ = ν/c_s² + 1/2`.
    pub fn tau_from_viscosity(nu: f64) -> f64 {
        assert!(nu > 0.0, "viscosity must be positive, got {nu}");
        nu / CS2 + 0.5
    }

    /// Kinematic lattice viscosity from relaxation time: `ν = c_s² (τ − 1/2)`.
    pub fn viscosity_from_tau(tau: f64) -> f64 {
        CS2 * (tau - 0.5)
    }

    /// The relaxation time `τ = −1/λ_e` associated with the even rate.
    pub fn tau(&self) -> f64 {
        -1.0 / self.lambda_e
    }

    /// Kinematic lattice viscosity implied by the even rate.
    pub fn viscosity(&self) -> f64 {
        Self::viscosity_from_tau(self.tau())
    }

    /// The magic parameter `Λ` implied by the pair of rates.
    pub fn magic(&self) -> f64 {
        (-1.0 / self.lambda_e - 0.5) * (-1.0 / self.lambda_o - 0.5)
    }

    /// True if the parameters describe an SRT operator (`λ_e == λ_o`).
    pub fn is_srt(&self) -> bool {
        self.lambda_e == self.lambda_o
    }

    /// True if both rates are in the linearly stable interval `(−2, 0)`.
    pub fn is_stable(&self) -> bool {
        (-2.0 < self.lambda_e && self.lambda_e < 0.0)
            && (-2.0 < self.lambda_o && self.lambda_o < 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srt_rates_equal() {
        let r = Relaxation::srt_from_tau(0.9);
        assert!(r.is_srt());
        assert!((r.lambda_e + 1.0 / 0.9).abs() < 1e-15);
        assert!(r.is_stable());
    }

    #[test]
    fn viscosity_tau_roundtrip() {
        for &nu in &[0.001, 0.01, 0.1, 1.0 / 6.0, 0.5] {
            let tau = Relaxation::tau_from_viscosity(nu);
            assert!((Relaxation::viscosity_from_tau(tau) - nu).abs() < 1e-15);
        }
    }

    #[test]
    fn trt_magic_recovered() {
        let r = Relaxation::trt_from_tau(0.77, MAGIC_TRT);
        assert!((r.magic() - MAGIC_TRT).abs() < 1e-14);
        assert!(!r.is_srt());
        assert!(r.is_stable());
        assert!((r.tau() - 0.77).abs() < 1e-15);
    }

    #[test]
    fn trt_reduces_to_srt_when_rates_match() {
        // Choose Λ so that λ_o = λ_e: Λ = (1/ω − 1/2)².
        let tau = 0.8;
        let half = tau - 0.5;
        let r = Relaxation::trt_from_tau(tau, half * half);
        assert!((r.lambda_e - r.lambda_o).abs() < 1e-14);
    }

    #[test]
    #[should_panic]
    fn srt_rejects_unstable_tau() {
        Relaxation::srt_from_tau(0.5);
    }

    #[test]
    fn trt_from_viscosity_consistent() {
        let r = Relaxation::trt_from_viscosity(0.05);
        assert!((r.viscosity() - 0.05).abs() < 1e-14);
        assert!((r.magic() - MAGIC_TRT).abs() < 1e-13);
    }
}
