//! Distributed block migration: acting on a [`RebalancePlan`].
//!
//! The plan (computed identically on every rank by
//! `trillium_rebalance::plan_rebalance`) names blocks and their new
//! owners; this module moves the actual simulation state. A migrating
//! block is serialized completely — flag field and PDF state, via the
//! `TCP2` wire format of [`crate::checkpoint`] — so the receiver never
//! re-voxelizes geometry or re-runs initialization. After the transfers,
//! every rank updates its copy of the global owner assignment and
//! rebuilds its `DistributedForest` view, which refreshes the ghost
//! exchange schedule (links may now cross different rank boundaries).
//!
//! Message tags live above the ghost-exchange tag space (`< 2^47`) and
//! below the collective tag space (`>= 2^48`), so migration traffic can
//! never be confused with either.

use crate::blocksim::BlockSim;
use crate::checkpoint::{restore_block_full, save_block_full};
use std::collections::{HashMap, HashSet};
use trillium_blockforest::{distribute, BlockId, DistributedForest, SetupForest};
use trillium_comm::Communicator;
use trillium_kernels::BoundaryParams;
use trillium_obs::{Recorder, SpanKind};
use trillium_rebalance::{Migration, RebalancePlan};

/// Base of the migration tag space: ghost tags are `packed_id << 5 | dir`
/// with `packed_id < 2^42` (so below `2^47`), collectives start at
/// `2^48`.
pub const MIGRATION_TAG_BASE: u64 = 1 << 47;

/// Tag of the message carrying block `id` (packed) to its new owner.
pub fn migration_tag(packed_id: u64) -> u64 {
    assert!(packed_id < MIGRATION_TAG_BASE, "block ID too large for migration tags");
    MIGRATION_TAG_BASE | packed_id
}

/// Outcome of one migration round on this rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Blocks this rank sent away.
    pub sent: u32,
    /// Blocks this rank received.
    pub received: u32,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Migrations naming this rank as source that were skipped because
    /// they failed [`RebalancePlan::validate_migration`]. Every rank
    /// validates against the same plan, so the skip set is symmetric —
    /// no receiver waits for a transfer its sender refused.
    pub skipped: u32,
}

/// Executes `plan` on this rank: sends away blocks it no longer owns,
/// receives blocks it gained, updates the shared owner assignment in
/// `forest`, and rebuilds this rank's `view` (and with it the ghost
/// schedule). `blocks` and `index_of` are remapped to the new view's
/// block order.
///
/// Every rank must call this with the same plan in the same step, like a
/// collective. Sends are posted before any receive, so the exchange
/// cannot deadlock regardless of the migration pattern.
///
/// Migrations that fail [`RebalancePlan::validate_migration`] are
/// *skipped*, not executed (counted in [`MigrationStats::skipped`]) —
/// and the corresponding ownership change is suppressed too, so an
/// invalid entry in a hand-built or decoded plan degrades to a no-op
/// instead of a panic or a stranded receiver. Validation is a pure
/// function of the shared plan, so every rank skips the same set.
#[allow(clippy::too_many_arguments)]
pub fn execute_migrations(
    comm: &mut Communicator,
    plan: &RebalancePlan,
    forest: &mut SetupForest,
    view: &mut DistributedForest,
    blocks: &mut Vec<BlockSim>,
    index_of: &mut HashMap<BlockId, usize>,
    boundary: BoundaryParams,
    rec: &Recorder,
) -> MigrationStats {
    let _mg = rec.span(SpanKind::Migration);
    let rank = comm.rank();
    let mut stats = MigrationStats::default();
    let old_ids: Vec<u64> = view.blocks.iter().map(|b| b.id.pack()).collect();
    let valid: HashSet<u64> = plan
        .migrations
        .iter()
        .filter(|m| plan.validate_migration(m).is_ok())
        .map(|m| m.id)
        .collect();

    // Phase 1: post all outgoing blocks.
    let mut outgoing: Vec<usize> = Vec::new();
    for m in &plan.migrations {
        if m.from != rank {
            continue;
        }
        if !valid.contains(&m.id) {
            stats.skipped += 1;
            continue;
        }
        let bi = *index_of
            .get(&BlockId::unpack(m.id))
            .expect("valid migration names this rank as owner of a block it does not hold");
        let payload = save_block_full(&blocks[bi]);
        stats.sent += 1;
        stats.bytes_sent += payload.len() as u64;
        comm.send(m.to, migration_tag(m.id), payload);
        outgoing.push(bi);
    }

    // Phase 2: apply the new assignment to the global forest and rebuild
    // this rank's view. `distribute` recomputes neighbor links, so ghost
    // messages for the next step go to the right ranks automatically.
    // Ownership changes whose transfer was skipped are suppressed: the
    // block stays with its current owner and the view stays consistent
    // with where the state actually lives.
    let new_owner: HashMap<u64, u32> = plan
        .records
        .iter()
        .zip(&plan.assignment)
        .filter(|(r, &a)| a == r.owner || valid.contains(&r.id))
        .map(|(r, &a)| (r.id, a))
        .collect();
    for b in &mut forest.blocks {
        if let Some(&r) = new_owner.get(&b.id.pack()) {
            b.rank = r;
        }
    }
    let mut views = distribute(forest);
    *view = views.swap_remove(rank as usize);

    // Phase 3: rebuild the local block vector in the new view's order,
    // reusing surviving blocks and receiving migrated ones.
    let incoming: HashMap<u64, &Migration> = plan
        .migrations
        .iter()
        .filter(|m| m.to == rank && valid.contains(&m.id))
        .map(|m| (m.id, m))
        .collect();
    let mut surviving: HashMap<u64, BlockSim> = blocks
        .drain(..)
        .enumerate()
        .filter(|(bi, _)| !outgoing.contains(bi))
        .map(|(bi, b)| (old_ids[bi], b))
        .collect();
    for lb in &view.blocks {
        let packed = lb.id.pack();
        let sim = match surviving.remove(&packed) {
            Some(sim) => sim,
            None => {
                let m = incoming
                    .get(&packed)
                    .unwrap_or_else(|| panic!("block {packed} appeared without a migration"));
                let data = comm.recv(m.from, migration_tag(packed));
                stats.received += 1;
                restore_block_full(&data, boundary).expect("migrated block failed to restore")
            }
        };
        blocks.push(sim);
    }
    assert!(surviving.is_empty(), "owned blocks missing from the rebuilt view");

    *index_of = view.blocks.iter().enumerate().map(|(i, b)| (b.id, i)).collect();
    stats
}
