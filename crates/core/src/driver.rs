//! The distributed time loop.
//!
//! Each rank owns the blocks assigned to it by the load balancer and runs,
//! per time step: (1) ghost-layer exchange with neighboring blocks —
//! direct copies between same-rank blocks, messages over the communicator
//! otherwise; (2) the boundary preparatory sweep; (3) the fused
//! stream–collide kernel; buffers swap inside the kernel call. The
//! per-rank split between kernel and communication wall time is recorded,
//! which is how the "% time spent for MPI communication" curves of Fig 6
//! are produced for real runs.

use crate::blocksim::BlockSim;
use crate::migrate::execute_migrations;
use crate::scenario::Scenario;
use std::collections::HashMap;
use std::time::Instant;
use trillium_blockforest::{
    dir_index, distribute, BlockId, BlockLink, DistributedForest, SetupForest, NEIGHBOR_DIRS,
};
use trillium_comm::{pack_face, pdfs_crossing, unpack_face, Communicator, World};
use trillium_kernels::SweepStats;
use trillium_lattice::D3Q19;
use trillium_rebalance::plan::{decode_records, encode_records};
use trillium_rebalance::{
    plan_rebalance, BlockRecord, EwmaCostModel, ImbalanceDetector, PlanOptions,
};

/// Per-rank outcome of a run.
#[derive(Clone, Debug)]
pub struct RankResult {
    /// Rank index.
    pub rank: u32,
    /// Number of local blocks.
    pub num_blocks: usize,
    /// Accumulated kernel sweep statistics.
    pub stats: SweepStats,
    /// Wall time in the compute kernels (seconds).
    pub kernel_time: f64,
    /// Wall time in ghost exchange (pack/send/recv/unpack).
    pub comm_time: f64,
    /// Wall time in the boundary sweeps.
    pub boundary_time: f64,
    /// Total fluid mass before the first step.
    pub mass_initial: f64,
    /// Total fluid mass after the last step.
    pub mass_final: f64,
    /// Probed velocities: global cell → velocity, for the probes owned by
    /// this rank.
    pub probes: Vec<([i64; 3], [f64; 3])>,
    /// True if any local block contains non-finite PDFs after the run.
    pub has_nan: bool,
    /// Runtime-rebalance accounting, present only for runs started via
    /// [`run_distributed_rebalanced`].
    pub rebalance: Option<RebalanceReport>,
}

/// Configuration of the runtime load balancer (see `trillium-rebalance`).
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// Steps per monitoring epoch: the global load ratio is measured (one
    /// fused min/max/sum all-reduce) every `every_n_steps` steps.
    pub every_n_steps: u64,
    /// Max/avg load ratio above which an epoch counts as imbalanced.
    /// `f64::INFINITY` turns the subsystem into a pure monitor: costs and
    /// ratios are recorded but nothing ever migrates.
    pub threshold: f64,
    /// Consecutive imbalanced epochs required before migration fires.
    pub hysteresis: u32,
    /// Epochs to ignore entirely after a migration round, while the EWMA
    /// cost model re-learns the new assignment. Prevents thrash: the
    /// measured ratio bounces for a few epochs after blocks move (migrated
    /// blocks re-seed from one sample) and would otherwise re-fire.
    pub cooldown_epochs: u32,
    /// EWMA smoothing factor for the per-block cost model.
    pub ewma_alpha: f64,
    /// Planner knobs (graph-gain floor, partitioner seed, minimum ratio).
    pub plan: PlanOptions,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            every_n_steps: 10,
            threshold: 1.15,
            hysteresis: 2,
            cooldown_epochs: 2,
            ewma_alpha: 0.25,
            plan: PlanOptions::default(),
        }
    }
}

impl RebalanceConfig {
    /// A configuration that measures per-block costs and the imbalance
    /// history but never migrates — the baseline for ablations.
    pub fn monitor_only() -> Self {
        Self { threshold: f64::INFINITY, ..Self::default() }
    }
}

/// One monitoring epoch as seen by every rank (the ratio is global).
#[derive(Clone, Copy, Debug)]
pub struct EpochReport {
    /// Time step at the end of the epoch.
    pub step: u64,
    /// Measured max/avg load ratio across ranks at that step.
    pub ratio: f64,
    /// Blocks migrated (globally) at this epoch boundary.
    pub migrated: u32,
}

/// Per-rank rebalance accounting over a whole run.
#[derive(Clone, Debug, Default)]
pub struct RebalanceReport {
    /// One entry per monitoring epoch.
    pub epochs: Vec<EpochReport>,
    /// Blocks this rank received from other ranks.
    pub migrations_in: u32,
    /// Blocks this rank sent to other ranks.
    pub migrations_out: u32,
    /// Number of migration rounds executed.
    pub rebalances: u32,
    /// Final measured (EWMA) cost per local block: `(packed_id,
    /// seconds_per_step, fluid_cells)`. This is exactly what the planner
    /// consumes — wall-clock cost, not static cell counts.
    pub final_costs: Vec<(u64, f64, u64)>,
    /// Seconds of ghost-exchange *work* (pack, send, local unpack) —
    /// excludes time blocked in `recv` waiting for neighbors, which on an
    /// oversubscribed emulation host measures the thread scheduler rather
    /// than the network.
    pub comm_work_time: f64,
    /// Seconds spent at epoch boundaries: the load all-reduce, planning,
    /// and (when a round fires) block serialization and migration.
    pub epoch_time: f64,
}

/// Whole-run outcome: per-rank results plus global accounting.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Steps executed.
    pub steps: u64,
    /// Per-rank results, ordered by rank.
    pub ranks: Vec<RankResult>,
}

impl RunResult {
    /// Relative drift of the global fluid mass over the run.
    pub fn mass_drift(&self) -> f64 {
        let m0: f64 = self.ranks.iter().map(|r| r.mass_initial).sum();
        let m1: f64 = self.ranks.iter().map(|r| r.mass_final).sum();
        (m1 - m0) / m0
    }

    /// Aggregated sweep statistics.
    pub fn total_stats(&self) -> SweepStats {
        let mut s = SweepStats::default();
        for r in &self.ranks {
            s.merge(r.stats);
        }
        s
    }

    /// All probe results, sorted by global cell coordinate.
    pub fn probes(&self) -> Vec<([i64; 3], [f64; 3])> {
        let mut all: Vec<_> = self.ranks.iter().flat_map(|r| r.probes.iter().cloned()).collect();
        all.sort_by_key(|(c, _)| *c);
        all
    }

    /// Fraction of total wall time spent in communication (max over
    /// ranks, the value that limits scaling).
    pub fn comm_fraction(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| {
                let total = r.kernel_time + r.comm_time + r.boundary_time;
                if total > 0.0 {
                    r.comm_time / total
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }

    /// True if any rank observed non-finite values.
    pub fn has_nan(&self) -> bool {
        self.ranks.iter().any(|r| r.has_nan)
    }

    /// Measured imbalance history `(step, max/avg ratio)`, one entry per
    /// monitoring epoch. Empty for runs without rebalancing. The ratio is
    /// a global quantity, identical on every rank, so rank 0's copy is
    /// authoritative.
    pub fn imbalance_history(&self) -> Vec<(u64, f64)> {
        self.ranks
            .first()
            .and_then(|r| r.rebalance.as_ref())
            .map(|rb| rb.epochs.iter().map(|e| (e.step, e.ratio)).collect())
            .unwrap_or_default()
    }

    /// The measured load ratio of the last monitoring epoch, if any.
    pub fn final_load_ratio(&self) -> Option<f64> {
        self.ranks
            .first()
            .and_then(|r| r.rebalance.as_ref())
            .and_then(|rb| rb.epochs.last())
            .map(|e| e.ratio)
    }

    /// Total blocks that changed owner over the run.
    pub fn total_migrations(&self) -> u32 {
        self.ranks.iter().filter_map(|r| r.rebalance.as_ref()).map(|rb| rb.migrations_in).sum()
    }

    /// Number of migration rounds (identical on all ranks).
    pub fn rebalance_count(&self) -> u32 {
        self.ranks.first().and_then(|r| r.rebalance.as_ref()).map(|rb| rb.rebalances).unwrap_or(0)
    }

    /// Critical-path *work* seconds: the maximum over ranks of the time
    /// spent computing (kernel + boundary sweeps), doing ghost-exchange
    /// work, and running rebalance epochs (all-reduce, planning,
    /// migration). Excludes time blocked in `recv` waiting on neighbors.
    ///
    /// On a real machine wall clock ≈ this maximum, because ranks run
    /// concurrently and the waiting happens *in parallel with* the slow
    /// rank's work. In this emulation harness ranks are time-sliced
    /// threads, so raw per-rank elapsed time double-counts every other
    /// rank's work as "wait" and hides imbalance entirely. For runs
    /// without a rebalance report this falls back to kernel + comm +
    /// boundary elapsed time.
    pub fn work_wall(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| match &r.rebalance {
                Some(rb) => r.kernel_time + r.boundary_time + rb.comm_work_time + rb.epoch_time,
                None => r.kernel_time + r.comm_time + r.boundary_time,
            })
            .fold(0.0f64, f64::max)
    }
}

/// Message tag for a ghost message destined for block `dst` arriving from
/// its neighbor in direction `d` (receiver perspective).
fn ghost_tag(dst: BlockId, d: [i8; 3]) -> u64 {
    let packed = dst.pack();
    assert!(packed < (1 << 42), "block ID too large for ghost tags");
    (packed << 5) | dir_index(d) as u64
}

/// Runs `scenario` on `num_procs` ranks (threads) with
/// `threads_per_rank`-fold block parallelism inside each rank, for
/// `steps` time steps. `probes` are global cell coordinates whose final
/// velocities are reported by the owning rank.
pub fn run_distributed_probed(
    scenario: &Scenario,
    num_procs: u32,
    threads_per_rank: usize,
    steps: u64,
    probes: &[[i64; 3]],
) -> RunResult {
    let forest = scenario.make_forest(num_procs);
    let views = distribute(&forest);
    let results = World::run(num_procs, |comm| {
        let view = &views[comm.rank() as usize];
        rank_loop(comm, view, scenario, threads_per_rank, steps, probes)
    });
    RunResult { steps, ranks: results }
}

/// Runs `scenario` without probes. See [`run_distributed_probed`].
pub fn run_distributed(
    scenario: &Scenario,
    num_procs: u32,
    threads_per_rank: usize,
    steps: u64,
) -> RunResult {
    run_distributed_probed(scenario, num_procs, threads_per_rank, steps, &[])
}

fn rank_loop(
    mut comm: Communicator,
    view: &DistributedForest,
    scenario: &Scenario,
    threads_per_rank: usize,
    steps: u64,
    probes: &[[i64; 3]],
) -> RankResult {
    let rank = comm.rank();
    // Build local blocks.
    let mut blocks: Vec<BlockSim> = view.blocks.iter().map(|lb| scenario.build_block(lb)).collect();
    let index_of: HashMap<BlockId, usize> =
        view.blocks.iter().enumerate().map(|(i, b)| (b.id, i)).collect();

    let mass_initial: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let mut stats = SweepStats::default();
    let mut kernel_time = 0.0;
    let mut comm_time = 0.0;
    let mut boundary_time = 0.0;

    for _ in 0..steps {
        // ---- ghost exchange ------------------------------------------
        let t0 = Instant::now();
        exchange_ghosts(&mut comm, view, &mut blocks, &index_of);
        comm_time += t0.elapsed().as_secs_f64();

        // ---- boundary sweep -------------------------------------------
        let t0 = Instant::now();
        for_each_block(&mut blocks, threads_per_rank, |b| b.apply_boundaries());
        boundary_time += t0.elapsed().as_secs_f64();

        // ---- stream-collide -------------------------------------------
        let t0 = Instant::now();
        let rel = scenario.relaxation;
        let step_stats: Vec<SweepStats> =
            map_each_block(&mut blocks, threads_per_rank, move |b| b.stream_collide(rel));
        kernel_time += t0.elapsed().as_secs_f64();
        for s in step_stats {
            stats.merge(s);
        }
    }

    let probe_out = locate_probes(scenario, view, &blocks, probes);
    let mass_final: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let has_nan = blocks.iter().any(BlockSim::has_nan);
    RankResult {
        rank,
        num_blocks: blocks.len(),
        stats,
        kernel_time,
        comm_time,
        boundary_time,
        mass_initial,
        mass_final,
        probes: probe_out,
        has_nan,
        rebalance: None,
    }
}

/// Evaluates the probes this rank owns (global cell → velocity).
fn locate_probes(
    scenario: &Scenario,
    view: &DistributedForest,
    blocks: &[BlockSim],
    probes: &[[i64; 3]],
) -> Vec<([i64; 3], [f64; 3])> {
    let cells = [scenario.cells[0] as i64, scenario.cells[1] as i64, scenario.cells[2] as i64];
    let mut out = Vec::new();
    for &p in probes {
        for (i, lb) in view.blocks.iter().enumerate() {
            let local = [
                p[0] - lb.coords[0] * cells[0],
                p[1] - lb.coords[1] * cells[1],
                p[2] - lb.coords[2] * cells[2],
            ];
            if (0..3).all(|d| local[d] >= 0 && local[d] < cells[d]) {
                let u = blocks[i].velocity(local[0] as i32, local[1] as i32, local[2] as i32);
                out.push((p, u));
            }
        }
    }
    out
}

/// Runs `scenario` with the runtime load balancer enabled: per-block
/// costs are measured every step, the global imbalance is checked every
/// [`RebalanceConfig::every_n_steps`] steps, and blocks migrate between
/// ranks (state and all) when the measured imbalance persists. See
/// `trillium-rebalance` for the monitoring/planning machinery and
/// [`crate::migrate`] for the transfer protocol.
pub fn run_distributed_rebalanced(
    scenario: &Scenario,
    num_procs: u32,
    threads_per_rank: usize,
    steps: u64,
    cfg: RebalanceConfig,
) -> RunResult {
    let forest = scenario.make_forest(num_procs);
    let views = distribute(&forest);
    let results = World::run(num_procs, |comm| {
        let rank = comm.rank() as usize;
        rank_loop_rebalanced(
            comm,
            forest.clone(),
            views[rank].clone(),
            scenario,
            threads_per_rank,
            steps,
            cfg,
        )
    });
    RunResult { steps, ranks: results }
}

fn rank_loop_rebalanced(
    mut comm: Communicator,
    mut forest: SetupForest,
    mut view: DistributedForest,
    scenario: &Scenario,
    threads_per_rank: usize,
    steps: u64,
    cfg: RebalanceConfig,
) -> RankResult {
    let rank = comm.rank();
    let size = comm.size();
    let mut blocks: Vec<BlockSim> = view.blocks.iter().map(|lb| scenario.build_block(lb)).collect();
    let mut index_of: HashMap<BlockId, usize> =
        view.blocks.iter().enumerate().map(|(i, b)| (b.id, i)).collect();

    let mass_initial: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let mut stats = SweepStats::default();
    let mut kernel_time = 0.0;
    let mut comm_time = 0.0;
    let mut boundary_time = 0.0;

    let mut model = EwmaCostModel::new(cfg.ewma_alpha);
    let mut detector =
        ImbalanceDetector::new(cfg.threshold, cfg.hysteresis).with_cooldown(cfg.cooldown_epochs);
    let mut report = RebalanceReport::default();

    for t in 0..steps {
        let t0 = Instant::now();
        let ghost_work = exchange_ghosts(&mut comm, &view, &mut blocks, &index_of);
        comm_time += t0.elapsed().as_secs_f64();
        report.comm_work_time += ghost_work;

        let t0 = Instant::now();
        for_each_block(&mut blocks, threads_per_rank, |b| b.apply_boundaries());
        boundary_time += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let rel = scenario.relaxation;
        let step_stats: Vec<SweepStats> =
            map_each_block(&mut blocks, threads_per_rank, move |b| b.stream_collide(rel));
        kernel_time += t0.elapsed().as_secs_f64();

        // Feed the cost model: each block's measured sweep time plus an
        // equal share of this step's ghost-exchange *work* (not the time
        // spent blocked waiting for neighbors — see [`exchange_ghosts`]).
        let ghost_share = if blocks.is_empty() { 0.0 } else { ghost_work / blocks.len() as f64 };
        for (bi, s) in step_stats.iter().enumerate() {
            model.update(view.blocks[bi].id.pack(), s.seconds + ghost_share);
            stats.merge(*s);
        }

        // ---- epoch boundary: measure, decide, maybe migrate -----------
        if (t + 1) % cfg.every_n_steps.max(1) == 0 {
            let t0 = Instant::now();
            let (_, max, sum) = comm.allreduce_minmaxsum_f64(model.total());
            let ratio = if sum > 0.0 { max * size as f64 / sum } else { 1.0 };
            let mut migrated = 0u32;
            // The ratio is bitwise identical on every rank (same gathered
            // values folded in the same order), so the detector decision
            // and the plan need no extra agreement round.
            if detector.observe(ratio) {
                let records: Vec<BlockRecord> = view
                    .blocks
                    .iter()
                    .enumerate()
                    .map(|(bi, lb)| BlockRecord {
                        id: lb.id.pack(),
                        owner: rank,
                        coords: [lb.coords[0] as u32, lb.coords[1] as u32, lb.coords[2] as u32],
                        level: lb.id.level(),
                        cost: model.cost(lb.id.pack()),
                        fluid_cells: blocks[bi].fluid_cells() as u64,
                    })
                    .collect();
                let gathered = comm.allgather_bytes(encode_records(&records));
                let all: Vec<BlockRecord> =
                    gathered.iter().flat_map(|b| decode_records(b)).collect();
                let plan = plan_rebalance(all, size, &cfg.plan);
                if !plan.migrations.is_empty() {
                    migrated = plan.migrations.len() as u32;
                    for m in &plan.migrations {
                        if m.from == rank {
                            model.forget(m.id);
                        }
                    }
                    let ms = execute_migrations(
                        &mut comm,
                        &plan,
                        &mut forest,
                        &mut view,
                        &mut blocks,
                        &mut index_of,
                        scenario.boundary,
                    );
                    report.migrations_out += ms.sent;
                    report.migrations_in += ms.received;
                    report.rebalances += 1;
                }
            }
            let epoch_elapsed = t0.elapsed().as_secs_f64();
            comm_time += epoch_elapsed;
            report.epoch_time += epoch_elapsed;
            report.epochs.push(EpochReport { step: t + 1, ratio, migrated });
        }
    }

    report.final_costs = view
        .blocks
        .iter()
        .enumerate()
        .map(|(bi, lb)| (lb.id.pack(), model.cost(lb.id.pack()), blocks[bi].fluid_cells() as u64))
        .collect();

    let mass_final: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let has_nan = blocks.iter().any(BlockSim::has_nan);
    RankResult {
        rank,
        num_blocks: blocks.len(),
        stats,
        kernel_time,
        comm_time,
        boundary_time,
        mass_initial,
        mass_final,
        probes: Vec::new(),
        has_nan,
        rebalance: Some(report),
    }
}

/// One full ghost exchange on the source fields of all local blocks.
///
/// Returns the seconds spent on this rank's own exchange *work* — packing,
/// sending, and local unpacking — excluding the time blocked in `recv`
/// waiting for neighbors. The distinction matters for load measurement:
/// an underloaded rank spends most of the exchange *waiting* for its
/// overloaded neighbors, and counting that wait as local cost would make
/// every rank look equally busy and hide the imbalance completely.
fn exchange_ghosts(
    comm: &mut Communicator,
    view: &DistributedForest,
    blocks: &mut [BlockSim],
    index_of: &HashMap<BlockId, usize>,
) -> f64 {
    // Phase 1: pack everything. Local transfers are buffered the same way
    // as remote ones; packs read interior slabs only, unpacks write ghost
    // slabs only, so a two-phase scheme is race-free and identical in
    // result to any interleaving.
    let work_t0 = Instant::now();
    let mut local_msgs: Vec<(usize, [i8; 3], Vec<u8>)> = Vec::new();
    let mut expected: Vec<(u32, u64, usize, [i8; 3])> = Vec::new();
    for (bi, lb) in view.blocks.iter().enumerate() {
        for (li, link) in lb.links.iter().enumerate() {
            let d = NEIGHBOR_DIRS[li];
            if pdfs_crossing::<D3Q19>(d).is_empty() {
                continue; // corner links carry nothing for D3Q19
            }
            match link {
                BlockLink::Border => {}
                BlockLink::Local(nid) => {
                    let mut buf = Vec::new();
                    pack_face::<D3Q19, _>(&blocks[bi].src, d, &mut buf);
                    // The neighbor receives from direction −d.
                    local_msgs.push((index_of[nid], [-d[0], -d[1], -d[2]], buf));
                }
                BlockLink::Remote(nid, r) => {
                    let mut buf = Vec::new();
                    pack_face::<D3Q19, _>(&blocks[bi].src, d, &mut buf);
                    comm.send(*r, ghost_tag(*nid, [-d[0], -d[1], -d[2]]), buf);
                    // Symmetric link: we will receive the neighbor's data
                    // for our ghost slab in direction d.
                    expected.push((*r, ghost_tag(lb.id, d), bi, d));
                }
            }
        }
    }
    // Phase 2: unpack local transfers and receive remote ones.
    for (bi, d, buf) in local_msgs {
        unpack_face::<D3Q19, _>(&mut blocks[bi].src, d, &buf);
    }
    let work = work_t0.elapsed().as_secs_f64();
    for (from, tag, bi, d) in expected {
        let data = comm.recv(from, tag);
        unpack_face::<D3Q19, _>(&mut blocks[bi].src, d, &data);
    }
    work
}

/// Applies `f` to every block, optionally with thread parallelism (the
/// hybrid MPI+OpenMP analogue: one rank, several threads over its blocks).
fn for_each_block<F: Fn(&mut BlockSim) + Sync>(blocks: &mut [BlockSim], threads: usize, f: F) {
    if threads <= 1 || blocks.len() <= 1 {
        for b in blocks.iter_mut() {
            f(b);
        }
    } else {
        let chunk = blocks.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in blocks.chunks_mut(chunk) {
                scope.spawn(|| {
                    for b in part {
                        f(b);
                    }
                });
            }
        });
    }
}

/// Like [`for_each_block`] but collecting results in block order.
fn map_each_block<T: Send, F: Fn(&mut BlockSim) -> T + Sync>(
    blocks: &mut [BlockSim],
    threads: usize,
    f: F,
) -> Vec<T> {
    if threads <= 1 || blocks.len() <= 1 {
        blocks.iter_mut().map(f).collect()
    } else {
        let chunk = blocks.len().div_ceil(threads);
        let mut out: Vec<Vec<T>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .chunks_mut(chunk)
                .map(|part| scope.spawn(|| part.iter_mut().map(&f).collect::<Vec<T>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("block worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The decisive distributed-correctness test: a multi-rank,
    /// multi-block run must produce *bit-identical* velocities to the
    /// single-rank, single-block run of the same problem — ghost exchange
    /// is exact, not approximate.
    #[test]
    fn distributed_equals_single_block() {
        let probes: Vec<[i64; 3]> =
            vec![[1, 1, 1], [8, 8, 14], [7, 8, 8], [8, 7, 3], [15, 15, 15], [0, 15, 8]];
        // Reference: one rank, one block of 16³.
        let s1 = Scenario::lid_driven_cavity(16, 1, 0.06, 0.08);
        let r1 = crate::driver::run_distributed_probed(&s1, 1, 1, 40, &probes);
        // Distributed: 8 ranks, 2×2×2 blocks of 8³.
        let s8 = Scenario::lid_driven_cavity(16, 2, 0.06, 0.08);
        let r8 = crate::driver::run_distributed_probed(&s8, 8, 1, 40, &probes);

        assert!(!r1.has_nan() && !r8.has_nan());
        let p1 = r1.probes();
        let p8 = r8.probes();
        assert_eq!(p1.len(), probes.len());
        assert_eq!(p8.len(), probes.len());
        for ((c1, u1), (c8, u8)) in p1.iter().zip(&p8) {
            assert_eq!(c1, c8);
            for d in 0..3 {
                assert_eq!(u1[d], u8[d], "mismatch at {c1:?} axis {d}");
            }
        }
        // Same total work.
        assert_eq!(r1.total_stats().cells, r8.total_stats().cells);
    }

    /// Multiple blocks per rank (4 ranks × 2 blocks) and hybrid threading
    /// must also reproduce the single-block reference.
    #[test]
    fn multiblock_and_threads_equal_single() {
        let probes: Vec<[i64; 3]> = vec![[3, 5, 9], [11, 2, 4], [6, 6, 6]];
        let s1 = Scenario::lid_driven_cavity(12, 1, 0.05, 0.1);
        let r1 = crate::driver::run_distributed_probed(&s1, 1, 1, 25, &probes);
        let s_multi = Scenario::lid_driven_cavity(12, 2, 0.05, 0.1);
        let r4 = crate::driver::run_distributed_probed(&s_multi, 4, 2, 25, &probes);
        for ((_, u1), (_, u4)) in r1.probes().iter().zip(&r4.probes()) {
            for d in 0..3 {
                assert_eq!(u1[d], u4[d]);
            }
        }
    }

    #[test]
    fn cavity_conserves_mass_across_ranks() {
        let s = Scenario::lid_driven_cavity(16, 2, 0.08, 0.05);
        let r = run_distributed(&s, 4, 1, 30);
        assert!(r.mass_drift().abs() < 1e-11, "drift {}", r.mass_drift());
        assert_eq!(r.total_stats().cells, 16 * 16 * 16 * 30);
    }

    #[test]
    fn channel_develops_throughflow() {
        let s = Scenario::channel_with_obstacle([32, 8, 8], [4, 1, 1], 0.08, 0.04, 0.18);
        let probes: Vec<[i64; 3]> = vec![[4, 4, 4], [16, 6, 4], [28, 4, 4]];
        let r = run_distributed_probed(&s, 4, 1, 120, &probes);
        assert!(!r.has_nan());
        let p = r.probes();
        // Flow moves in +x everywhere along the channel.
        for (c, u) in &p {
            assert!(u[0] > 1e-4, "no throughflow at {c:?}: {u:?}");
        }
    }

    #[test]
    fn timers_are_recorded() {
        let s = Scenario::lid_driven_cavity(8, 2, 0.05, 0.1);
        let r = run_distributed(&s, 2, 1, 5);
        for rr in &r.ranks {
            assert!(rr.kernel_time > 0.0);
            assert!(rr.comm_time > 0.0);
            assert!(rr.num_blocks == 4);
        }
        assert!(r.comm_fraction() > 0.0 && r.comm_fraction() < 1.0);
    }
}
