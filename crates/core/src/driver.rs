//! The distributed time loop.
//!
//! Each rank owns the blocks assigned to it by the load balancer and runs,
//! per time step: (1) ghost-layer exchange with neighboring blocks —
//! direct copies between same-rank blocks, messages over the communicator
//! otherwise; (2) the boundary preparatory sweep; (3) the fused
//! stream–collide kernel; buffers swap inside the kernel call. The
//! per-rank split between kernel and communication wall time is recorded,
//! which is how the "% time spent for MPI communication" curves of Fig 6
//! are produced for real runs.

use crate::blocksim::BlockSim;
use crate::scenario::Scenario;
use std::collections::HashMap;
use std::time::Instant;
use trillium_blockforest::{dir_index, distribute, BlockId, BlockLink, DistributedForest, NEIGHBOR_DIRS};
use trillium_comm::{pack_face, pdfs_crossing, unpack_face, Communicator, World};
use trillium_kernels::SweepStats;
use trillium_lattice::D3Q19;

/// Per-rank outcome of a run.
#[derive(Clone, Debug)]
pub struct RankResult {
    /// Rank index.
    pub rank: u32,
    /// Number of local blocks.
    pub num_blocks: usize,
    /// Accumulated kernel sweep statistics.
    pub stats: SweepStats,
    /// Wall time in the compute kernels (seconds).
    pub kernel_time: f64,
    /// Wall time in ghost exchange (pack/send/recv/unpack).
    pub comm_time: f64,
    /// Wall time in the boundary sweeps.
    pub boundary_time: f64,
    /// Total fluid mass before the first step.
    pub mass_initial: f64,
    /// Total fluid mass after the last step.
    pub mass_final: f64,
    /// Probed velocities: global cell → velocity, for the probes owned by
    /// this rank.
    pub probes: Vec<([i64; 3], [f64; 3])>,
    /// True if any local block contains non-finite PDFs after the run.
    pub has_nan: bool,
}

/// Whole-run outcome: per-rank results plus global accounting.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Steps executed.
    pub steps: u64,
    /// Per-rank results, ordered by rank.
    pub ranks: Vec<RankResult>,
}

impl RunResult {
    /// Relative drift of the global fluid mass over the run.
    pub fn mass_drift(&self) -> f64 {
        let m0: f64 = self.ranks.iter().map(|r| r.mass_initial).sum();
        let m1: f64 = self.ranks.iter().map(|r| r.mass_final).sum();
        (m1 - m0) / m0
    }

    /// Aggregated sweep statistics.
    pub fn total_stats(&self) -> SweepStats {
        let mut s = SweepStats::default();
        for r in &self.ranks {
            s.merge(r.stats);
        }
        s
    }

    /// All probe results, sorted by global cell coordinate.
    pub fn probes(&self) -> Vec<([i64; 3], [f64; 3])> {
        let mut all: Vec<_> = self.ranks.iter().flat_map(|r| r.probes.iter().cloned()).collect();
        all.sort_by_key(|(c, _)| *c);
        all
    }

    /// Fraction of total wall time spent in communication (max over
    /// ranks, the value that limits scaling).
    pub fn comm_fraction(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| {
                let total = r.kernel_time + r.comm_time + r.boundary_time;
                if total > 0.0 {
                    r.comm_time / total
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }

    /// True if any rank observed non-finite values.
    pub fn has_nan(&self) -> bool {
        self.ranks.iter().any(|r| r.has_nan)
    }
}

/// Message tag for a ghost message destined for block `dst` arriving from
/// its neighbor in direction `d` (receiver perspective).
fn ghost_tag(dst: BlockId, d: [i8; 3]) -> u64 {
    let packed = dst.pack();
    assert!(packed < (1 << 42), "block ID too large for ghost tags");
    (packed << 5) | dir_index(d) as u64
}

/// Runs `scenario` on `num_procs` ranks (threads) with
/// `threads_per_rank`-fold block parallelism inside each rank, for
/// `steps` time steps. `probes` are global cell coordinates whose final
/// velocities are reported by the owning rank.
pub fn run_distributed_probed(
    scenario: &Scenario,
    num_procs: u32,
    threads_per_rank: usize,
    steps: u64,
    probes: &[[i64; 3]],
) -> RunResult {
    let forest = scenario.make_forest(num_procs);
    let views = distribute(&forest);
    let results = World::run(num_procs, |comm| {
        let view = &views[comm.rank() as usize];
        rank_loop(comm, view, scenario, threads_per_rank, steps, probes)
    });
    RunResult { steps, ranks: results }
}

/// Runs `scenario` without probes. See [`run_distributed_probed`].
pub fn run_distributed(
    scenario: &Scenario,
    num_procs: u32,
    threads_per_rank: usize,
    steps: u64,
) -> RunResult {
    run_distributed_probed(scenario, num_procs, threads_per_rank, steps, &[])
}

fn rank_loop(
    mut comm: Communicator,
    view: &DistributedForest,
    scenario: &Scenario,
    threads_per_rank: usize,
    steps: u64,
    probes: &[[i64; 3]],
) -> RankResult {
    let rank = comm.rank();
    // Build local blocks.
    let mut blocks: Vec<BlockSim> = view.blocks.iter().map(|lb| scenario.build_block(lb)).collect();
    let index_of: HashMap<BlockId, usize> =
        view.blocks.iter().enumerate().map(|(i, b)| (b.id, i)).collect();

    let mass_initial: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let mut stats = SweepStats::default();
    let mut kernel_time = 0.0;
    let mut comm_time = 0.0;
    let mut boundary_time = 0.0;

    for _ in 0..steps {
        // ---- ghost exchange ------------------------------------------
        let t0 = Instant::now();
        exchange_ghosts(&mut comm, view, &mut blocks, &index_of);
        comm_time += t0.elapsed().as_secs_f64();

        // ---- boundary sweep -------------------------------------------
        let t0 = Instant::now();
        for_each_block(&mut blocks, threads_per_rank, |b| b.apply_boundaries());
        boundary_time += t0.elapsed().as_secs_f64();

        // ---- stream-collide -------------------------------------------
        let t0 = Instant::now();
        let rel = scenario.relaxation;
        let step_stats: Vec<SweepStats> =
            map_each_block(&mut blocks, threads_per_rank, move |b| b.stream_collide(rel));
        kernel_time += t0.elapsed().as_secs_f64();
        for s in step_stats {
            stats.merge(s);
        }
    }

    // ---- probes --------------------------------------------------------
    let cells = [
        scenario.cells[0] as i64,
        scenario.cells[1] as i64,
        scenario.cells[2] as i64,
    ];
    let mut probe_out = Vec::new();
    for &p in probes {
        for (i, lb) in view.blocks.iter().enumerate() {
            let local = [
                p[0] - lb.coords[0] * cells[0],
                p[1] - lb.coords[1] * cells[1],
                p[2] - lb.coords[2] * cells[2],
            ];
            if (0..3).all(|d| local[d] >= 0 && local[d] < cells[d]) {
                let u = blocks[i].velocity(local[0] as i32, local[1] as i32, local[2] as i32);
                probe_out.push((p, u));
            }
        }
    }

    let mass_final: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let has_nan = blocks.iter().any(BlockSim::has_nan);
    RankResult {
        rank,
        num_blocks: blocks.len(),
        stats,
        kernel_time,
        comm_time,
        boundary_time,
        mass_initial,
        mass_final,
        probes: probe_out,
        has_nan,
    }
}

/// One full ghost exchange on the source fields of all local blocks.
fn exchange_ghosts(
    comm: &mut Communicator,
    view: &DistributedForest,
    blocks: &mut [BlockSim],
    index_of: &HashMap<BlockId, usize>,
) {
    // Phase 1: pack everything. Local transfers are buffered the same way
    // as remote ones; packs read interior slabs only, unpacks write ghost
    // slabs only, so a two-phase scheme is race-free and identical in
    // result to any interleaving.
    let mut local_msgs: Vec<(usize, [i8; 3], Vec<u8>)> = Vec::new();
    let mut expected: Vec<(u32, u64, usize, [i8; 3])> = Vec::new();
    for (bi, lb) in view.blocks.iter().enumerate() {
        for (li, link) in lb.links.iter().enumerate() {
            let d = NEIGHBOR_DIRS[li];
            if pdfs_crossing::<D3Q19>(d).is_empty() {
                continue; // corner links carry nothing for D3Q19
            }
            match link {
                BlockLink::Border => {}
                BlockLink::Local(nid) => {
                    let mut buf = Vec::new();
                    pack_face::<D3Q19, _>(&blocks[bi].src, d, &mut buf);
                    // The neighbor receives from direction −d.
                    local_msgs.push((index_of[nid], [-d[0], -d[1], -d[2]], buf));
                }
                BlockLink::Remote(nid, r) => {
                    let mut buf = Vec::new();
                    pack_face::<D3Q19, _>(&blocks[bi].src, d, &mut buf);
                    comm.send(*r, ghost_tag(*nid, [-d[0], -d[1], -d[2]]), buf);
                    // Symmetric link: we will receive the neighbor's data
                    // for our ghost slab in direction d.
                    expected.push((*r, ghost_tag(lb.id, d), bi, d));
                }
            }
        }
    }
    // Phase 2: unpack local transfers and receive remote ones.
    for (bi, d, buf) in local_msgs {
        unpack_face::<D3Q19, _>(&mut blocks[bi].src, d, &buf);
    }
    for (from, tag, bi, d) in expected {
        let data = comm.recv(from, tag);
        unpack_face::<D3Q19, _>(&mut blocks[bi].src, d, &data);
    }
}

/// Applies `f` to every block, optionally with thread parallelism (the
/// hybrid MPI+OpenMP analogue: one rank, several threads over its blocks).
fn for_each_block<F: Fn(&mut BlockSim) + Sync>(blocks: &mut [BlockSim], threads: usize, f: F) {
    if threads <= 1 || blocks.len() <= 1 {
        for b in blocks.iter_mut() {
            f(b);
        }
    } else {
        let chunk = blocks.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in blocks.chunks_mut(chunk) {
                scope.spawn(|| {
                    for b in part {
                        f(b);
                    }
                });
            }
        });
    }
}

/// Like [`for_each_block`] but collecting results in block order.
fn map_each_block<T: Send, F: Fn(&mut BlockSim) -> T + Sync>(
    blocks: &mut [BlockSim],
    threads: usize,
    f: F,
) -> Vec<T> {
    if threads <= 1 || blocks.len() <= 1 {
        blocks.iter_mut().map(f).collect()
    } else {
        let chunk = blocks.len().div_ceil(threads);
        let mut out: Vec<Vec<T>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .chunks_mut(chunk)
                .map(|part| scope.spawn(|| part.iter_mut().map(&f).collect::<Vec<T>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("block worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The decisive distributed-correctness test: a multi-rank,
    /// multi-block run must produce *bit-identical* velocities to the
    /// single-rank, single-block run of the same problem — ghost exchange
    /// is exact, not approximate.
    #[test]
    fn distributed_equals_single_block() {
        let probes: Vec<[i64; 3]> = vec![
            [1, 1, 1],
            [8, 8, 14],
            [7, 8, 8],
            [8, 7, 3],
            [15, 15, 15],
            [0, 15, 8],
        ];
        // Reference: one rank, one block of 16³.
        let s1 = Scenario::lid_driven_cavity(16, 1, 0.06, 0.08);
        let r1 = crate::driver::run_distributed_probed(&s1, 1, 1, 40, &probes);
        // Distributed: 8 ranks, 2×2×2 blocks of 8³.
        let s8 = Scenario::lid_driven_cavity(16, 2, 0.06, 0.08);
        let r8 = crate::driver::run_distributed_probed(&s8, 8, 1, 40, &probes);

        assert!(!r1.has_nan() && !r8.has_nan());
        let p1 = r1.probes();
        let p8 = r8.probes();
        assert_eq!(p1.len(), probes.len());
        assert_eq!(p8.len(), probes.len());
        for ((c1, u1), (c8, u8)) in p1.iter().zip(&p8) {
            assert_eq!(c1, c8);
            for d in 0..3 {
                assert_eq!(u1[d], u8[d], "mismatch at {c1:?} axis {d}");
            }
        }
        // Same total work.
        assert_eq!(r1.total_stats().cells, r8.total_stats().cells);
    }

    /// Multiple blocks per rank (4 ranks × 2 blocks) and hybrid threading
    /// must also reproduce the single-block reference.
    #[test]
    fn multiblock_and_threads_equal_single() {
        let probes: Vec<[i64; 3]> = vec![[3, 5, 9], [11, 2, 4], [6, 6, 6]];
        let s1 = Scenario::lid_driven_cavity(12, 1, 0.05, 0.1);
        let r1 = crate::driver::run_distributed_probed(&s1, 1, 1, 25, &probes);
        let s_multi = Scenario::lid_driven_cavity(12, 2, 0.05, 0.1);
        let r4 = crate::driver::run_distributed_probed(&s_multi, 4, 2, 25, &probes);
        for ((_, u1), (_, u4)) in r1.probes().iter().zip(&r4.probes()) {
            for d in 0..3 {
                assert_eq!(u1[d], u4[d]);
            }
        }
    }

    #[test]
    fn cavity_conserves_mass_across_ranks() {
        let s = Scenario::lid_driven_cavity(16, 2, 0.08, 0.05);
        let r = run_distributed(&s, 4, 1, 30);
        assert!(r.mass_drift().abs() < 1e-11, "drift {}", r.mass_drift());
        assert_eq!(r.total_stats().cells, 16 * 16 * 16 * 30);
    }

    #[test]
    fn channel_develops_throughflow() {
        let s = Scenario::channel_with_obstacle([32, 8, 8], [4, 1, 1], 0.08, 0.04, 0.18);
        let probes: Vec<[i64; 3]> = vec![[4, 4, 4], [16, 6, 4], [28, 4, 4]];
        let r = run_distributed_probed(&s, 4, 1, 120, &probes);
        assert!(!r.has_nan());
        let p = r.probes();
        // Flow moves in +x everywhere along the channel.
        for (c, u) in &p {
            assert!(u[0] > 1e-4, "no throughflow at {c:?}: {u:?}");
        }
    }

    #[test]
    fn timers_are_recorded() {
        let s = Scenario::lid_driven_cavity(8, 2, 0.05, 0.1);
        let r = run_distributed(&s, 2, 1, 5);
        for rr in &r.ranks {
            assert!(rr.kernel_time > 0.0);
            assert!(rr.comm_time > 0.0);
            assert!(rr.num_blocks == 4);
        }
        assert!(r.comm_fraction() > 0.0 && r.comm_fraction() < 1.0);
    }
}
