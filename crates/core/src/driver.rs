//! The distributed time loop.
//!
//! Each rank owns the blocks assigned to it by the load balancer and runs,
//! per time step: (1) ghost-layer exchange with neighboring blocks —
//! direct copies between same-rank blocks, messages over the communicator
//! otherwise; (2) the boundary preparatory sweep; (3) the fused
//! stream–collide kernel; buffers swap inside the kernel call. The
//! per-rank split between kernel and communication wall time is recorded,
//! which is how the "% time spent for MPI communication" curves of Fig 6
//! are produced for real runs.
//!
//! All timing goes through the `trillium-obs` span layer: one
//! [`Recorder`] per rank accumulates disjoint per-category totals
//! (kernel, boundary, ghost work, exposed stall), feeds the metrics
//! registry, and — with [`ObsConfig::events`] — captures a per-span
//! event stream exportable as Chrome `trace_event` JSON via
//! [`RunResult::chrome_trace`].

use crate::blocksim::BlockSim;
use crate::migrate::execute_migrations;
use crate::scenario::Scenario;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use trillium_blockforest::{
    dir_index, distribute, BlockId, BlockLink, DistributedForest, SetupForest, NEIGHBOR_DIRS,
};
use trillium_comm::{pack_face_with, unpack_face_with, Communicator, CrossingTable, World};
use trillium_field::{CellFlags, PdfField};
use trillium_kernels::SweepStats;
use trillium_lattice::{Relaxation, D3Q19};
use trillium_obs::{ObsConfig, RankObs, Recorder, SpanKind};
use trillium_rebalance::plan::{decode_records, encode_records};
use trillium_rebalance::{
    plan_rebalance, BlockRecord, EwmaCostModel, ImbalanceDetector, PlanOptions,
};

/// Per-rank outcome of a run.
#[derive(Clone, Debug)]
pub struct RankResult {
    /// Rank index.
    pub rank: u32,
    /// Number of local blocks.
    pub num_blocks: usize,
    /// Accumulated kernel sweep statistics.
    pub stats: SweepStats,
    /// Wall time in the compute kernels (seconds).
    pub kernel_time: f64,
    /// Wall time of ghost-exchange *work*: packing, sending, local
    /// unpacking, and draining remote messages (receive + unpack).
    /// Excludes time blocked on messages that had not yet arrived —
    /// that is [`RankResult::ghost_stall_time`], kept disjoint by the
    /// span layer so the categories sum without double counting.
    pub comm_time: f64,
    /// Wall time in the boundary sweeps.
    pub boundary_time: f64,
    /// Seconds of compute executed while ghost messages were still in
    /// flight — the communication actually *hidden* by the overlapped
    /// schedule. Zero for the synchronous path.
    pub overlap_hidden: f64,
    /// Seconds blocked in a ghost receive *while runnable local compute
    /// was still pending* — the exposed stall the overlapped schedule
    /// removes (a subset of [`RankResult::comm_time`]). The synchronous
    /// schedule blocks with the entire stream-collide sweep still undone,
    /// so every blocked receive counts (messages already arrived when
    /// asked for cost nothing). The overlapped schedule only blocks once
    /// every interior is swept and every block with a complete ghost
    /// layer has finished its shell — no runnable work remains — so this
    /// is zero by construction; its residual wait is neighbor imbalance,
    /// accounted in [`RankResult::comm_time`]. This definition stays
    /// meaningful on an oversubscribed emulation host, where raw
    /// blocked-recv wall time measures the thread scheduler rather than
    /// the network. Disjoint from [`RankResult::comm_time`].
    pub ghost_stall_time: f64,
    /// Total fluid mass before the first step.
    pub mass_initial: f64,
    /// Total fluid mass after the last step.
    pub mass_final: f64,
    /// Total fluid kinetic energy (½ρ|u|², summed over fluid cells)
    /// before the first step.
    pub energy_initial: f64,
    /// Total fluid kinetic energy after the last step.
    pub energy_final: f64,
    /// Per-step momentum-exchange force on the boundary cells matched by
    /// [`DriverConfig::force_mask`], summed over this rank's blocks in
    /// block order; index = time step. Empty when no mask is set. Under
    /// rebalancing the per-rank split shifts as blocks migrate — the
    /// cross-rank sum ([`RunResult::force_series`]) is the physical
    /// signal.
    pub force_series: Vec<[f64; 3]>,
    /// Probed velocities: global cell → velocity, for the probes owned by
    /// this rank.
    pub probes: Vec<([i64; 3], [f64; 3])>,
    /// Final interior PDFs per local block (`packed block id` → values in
    /// interior iteration order × 19), only when
    /// [`DriverConfig::collect_pdfs`] is set; empty otherwise.
    pub pdfs: Vec<(u64, Vec<f64>)>,
    /// True if any local block contains non-finite PDFs after the run.
    pub has_nan: bool,
    /// Wall seconds of this rank's whole time loop, measured once per
    /// rank by the span layer — the budget the disjoint categories fit
    /// into: `kernel_time + boundary_time + comm_time +
    /// ghost_stall_time ≤ wall_time` (pinned by
    /// `tests/observability.rs`). Zero when the recorder is disabled.
    pub wall_time: f64,
    /// Per-rank observability snapshot: span totals and counts, the
    /// metrics registry (message/byte counters, step-time histogram,
    /// …), and — under [`ObsConfig::events`] — the captured trace
    /// events. `None` only when [`ObsConfig::off`] disabled recording.
    pub obs: Option<RankObs>,
    /// Runtime-rebalance accounting, present only for runs started via
    /// [`run_distributed_rebalanced`].
    pub rebalance: Option<RebalanceReport>,
}

impl RankResult {
    /// Total attributed busy seconds: the four disjoint categories
    /// (kernel, communication work, boundary, exposed stall) summed —
    /// the denominator of the fraction metrics.
    pub fn busy_time(&self) -> f64 {
        self.kernel_time + self.comm_time + self.boundary_time + self.ghost_stall_time
    }
}

/// Configuration of the runtime load balancer (see `trillium-rebalance`).
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// Steps per monitoring epoch: the global load ratio is measured (one
    /// fused min/max/sum all-reduce) every `every_n_steps` steps.
    pub every_n_steps: u64,
    /// Max/avg load ratio above which an epoch counts as imbalanced.
    /// `f64::INFINITY` turns the subsystem into a pure monitor: costs and
    /// ratios are recorded but nothing ever migrates.
    pub threshold: f64,
    /// Consecutive imbalanced epochs required before migration fires.
    pub hysteresis: u32,
    /// Epochs to ignore entirely after a migration round, while the EWMA
    /// cost model re-learns the new assignment. Prevents thrash: the
    /// measured ratio bounces for a few epochs after blocks move (migrated
    /// blocks re-seed from one sample) and would otherwise re-fire.
    pub cooldown_epochs: u32,
    /// EWMA smoothing factor for the per-block cost model.
    pub ewma_alpha: f64,
    /// Planner knobs (graph-gain floor, partitioner seed, minimum ratio).
    pub plan: PlanOptions,
    /// Observability toggle (see [`DriverConfig::obs`]).
    pub obs: ObsConfig,
    /// Dump every block's final interior PDFs (see
    /// [`DriverConfig::collect_pdfs`]); `RunResult::pdf_dump` sorts by
    /// block id, so the dump compares equal across migration histories.
    pub collect_pdfs: bool,
    /// Measure the per-step momentum-exchange force on matching boundary
    /// cells (see [`DriverConfig::force_mask`]).
    pub force_mask: Option<CellFlags>,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            every_n_steps: 10,
            threshold: 1.15,
            hysteresis: 2,
            cooldown_epochs: 2,
            ewma_alpha: 0.25,
            plan: PlanOptions::default(),
            obs: ObsConfig::default(),
            collect_pdfs: false,
            force_mask: None,
        }
    }
}

impl RebalanceConfig {
    /// A configuration that measures per-block costs and the imbalance
    /// history but never migrates — the baseline for ablations.
    pub fn monitor_only() -> Self {
        Self { threshold: f64::INFINITY, ..Self::default() }
    }
}

/// One monitoring epoch as seen by every rank (the ratio is global).
#[derive(Clone, Copy, Debug)]
pub struct EpochReport {
    /// Time step at the end of the epoch.
    pub step: u64,
    /// Measured max/avg load ratio across ranks at that step.
    pub ratio: f64,
    /// Blocks migrated (globally) at this epoch boundary.
    pub migrated: u32,
}

/// Per-rank rebalance accounting over a whole run.
#[derive(Clone, Debug, Default)]
pub struct RebalanceReport {
    /// One entry per monitoring epoch.
    pub epochs: Vec<EpochReport>,
    /// Blocks this rank received from other ranks.
    pub migrations_in: u32,
    /// Blocks this rank sent to other ranks.
    pub migrations_out: u32,
    /// Number of migration rounds executed.
    pub rebalances: u32,
    /// Final measured (EWMA) cost per local block: `(packed_id,
    /// seconds_per_step, fluid_cells)`. This is exactly what the planner
    /// consumes — wall-clock cost, not static cell counts.
    pub final_costs: Vec<(u64, f64, u64)>,
    /// Seconds of ghost-exchange *work* (pack, send, local unpack) —
    /// excludes time blocked in `recv` waiting for neighbors, which on an
    /// oversubscribed emulation host measures the thread scheduler rather
    /// than the network.
    pub comm_work_time: f64,
    /// Seconds spent at epoch boundaries: the load all-reduce, planning,
    /// and (when a round fires) block serialization and migration.
    pub epoch_time: f64,
}

/// Whole-run outcome: per-rank results plus global accounting.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Steps executed.
    pub steps: u64,
    /// Per-rank results, ordered by rank.
    pub ranks: Vec<RankResult>,
}

impl RunResult {
    /// Relative drift of the global fluid mass over the run.
    pub fn mass_drift(&self) -> f64 {
        let m0: f64 = self.ranks.iter().map(|r| r.mass_initial).sum();
        let m1: f64 = self.ranks.iter().map(|r| r.mass_final).sum();
        (m1 - m0) / m0
    }

    /// Aggregated sweep statistics.
    pub fn total_stats(&self) -> SweepStats {
        let mut s = SweepStats::default();
        for r in &self.ranks {
            s.merge(r.stats);
        }
        s
    }

    /// All probe results, sorted by global cell coordinate.
    pub fn probes(&self) -> Vec<([i64; 3], [f64; 3])> {
        let mut all: Vec<_> = self.ranks.iter().flat_map(|r| r.probes.iter().cloned()).collect();
        all.sort_by_key(|(c, _)| *c);
        all
    }

    /// All collected block PDF dumps, sorted by packed block id (empty
    /// unless the run used [`DriverConfig::collect_pdfs`]). Two runs of
    /// the same problem are PDF-level bitwise identical iff their dumps
    /// compare equal.
    pub fn pdf_dump(&self) -> Vec<(u64, Vec<f64>)> {
        let mut all: Vec<_> = self.ranks.iter().flat_map(|r| r.pdfs.iter().cloned()).collect();
        all.sort_by_key(|(id, _)| *id);
        all
    }

    /// Global fluid kinetic energy before the first step.
    pub fn kinetic_energy_initial(&self) -> f64 {
        self.ranks.iter().map(|r| r.energy_initial).sum()
    }

    /// Global fluid kinetic energy after the last step.
    pub fn kinetic_energy_final(&self) -> f64 {
        self.ranks.iter().map(|r| r.energy_final).sum()
    }

    /// Per-step momentum-exchange force on the masked boundary cells,
    /// summed across ranks; index = time step. Empty unless the run set
    /// [`DriverConfig::force_mask`]. Ranks are folded in rank order, so
    /// the series is deterministic for a fixed rank count.
    pub fn force_series(&self) -> Vec<[f64; 3]> {
        let steps = self.ranks.iter().map(|r| r.force_series.len()).max().unwrap_or(0);
        let mut out = vec![[0.0; 3]; steps];
        for r in &self.ranks {
            for (t, f) in r.force_series.iter().enumerate() {
                for d in 0..3 {
                    out[t][d] += f[d];
                }
            }
        }
        out
    }

    /// Total seconds of compute hidden behind in-flight ghost messages,
    /// summed over ranks (zero for synchronous runs).
    pub fn overlap_hidden(&self) -> f64 {
        self.ranks.iter().map(|r| r.overlap_hidden).sum()
    }

    /// Fraction of busy time spent blocked on ghost messages while
    /// runnable local compute was still pending (max over ranks) — see
    /// [`RankResult::ghost_stall_time`]. The overlap ablation's headline:
    /// the synchronous schedule exposes its whole receive wait as stall,
    /// the overlapped schedule never blocks while work remains.
    /// Returns 0.0 (not NaN) for trivially short runs whose measured
    /// busy time is zero — including runs with the recorder disabled.
    pub fn stall_fraction(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| {
                let total = r.busy_time();
                if total > 0.0 {
                    r.ghost_stall_time / total
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }

    /// Fraction of total wall time spent in communication (max over
    /// ranks, the value that limits scaling).
    pub fn comm_fraction(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| {
                let total = r.busy_time();
                if total > 0.0 {
                    r.comm_time / total
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }

    /// True if any rank observed non-finite values.
    pub fn has_nan(&self) -> bool {
        self.ranks.iter().any(|r| r.has_nan)
    }

    /// Measured imbalance history `(step, max/avg ratio)`, one entry per
    /// monitoring epoch. Empty for runs without rebalancing. The ratio is
    /// a global quantity, identical on every rank, so rank 0's copy is
    /// authoritative.
    pub fn imbalance_history(&self) -> Vec<(u64, f64)> {
        self.ranks
            .first()
            .and_then(|r| r.rebalance.as_ref())
            .map(|rb| rb.epochs.iter().map(|e| (e.step, e.ratio)).collect())
            .unwrap_or_default()
    }

    /// The measured load ratio of the last monitoring epoch, if any.
    pub fn final_load_ratio(&self) -> Option<f64> {
        self.ranks
            .first()
            .and_then(|r| r.rebalance.as_ref())
            .and_then(|rb| rb.epochs.last())
            .map(|e| e.ratio)
    }

    /// Total blocks that changed owner over the run.
    pub fn total_migrations(&self) -> u32 {
        self.ranks.iter().filter_map(|r| r.rebalance.as_ref()).map(|rb| rb.migrations_in).sum()
    }

    /// Number of migration rounds (identical on all ranks).
    pub fn rebalance_count(&self) -> u32 {
        self.ranks.first().and_then(|r| r.rebalance.as_ref()).map(|rb| rb.rebalances).unwrap_or(0)
    }

    /// Critical-path *work* seconds: the maximum over ranks of the time
    /// spent computing (kernel + boundary sweeps), doing ghost-exchange
    /// work, and running rebalance epochs (all-reduce, planning,
    /// migration). Excludes time blocked in `recv` waiting on neighbors.
    ///
    /// On a real machine wall clock ≈ this maximum, because ranks run
    /// concurrently and the waiting happens *in parallel with* the slow
    /// rank's work. In this emulation harness ranks are time-sliced
    /// threads, so raw per-rank elapsed time (which includes the
    /// blocked waits) would count every other rank's work as "wait"
    /// and hide imbalance entirely. The span layer keeps blocked time
    /// out of the categories summed here — [`RankResult::comm_time`]
    /// is exchange *work* and stall is ledgered separately — so for
    /// runs without a rebalance report kernel + comm + boundary is
    /// pure attributed work, with nothing double-counted (the
    /// per-rank budget invariant is pinned in `tests/observability.rs`).
    pub fn work_wall(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| match &r.rebalance {
                Some(rb) => r.kernel_time + r.boundary_time + rb.comm_work_time + rb.epoch_time,
                None => r.kernel_time + r.comm_time + r.boundary_time,
            })
            .fold(0.0f64, f64::max)
    }

    /// The run's Chrome `trace_event` JSON: one timeline lane per rank,
    /// one slice per captured span. Meaningful when the run used
    /// [`ObsConfig::events`] (without event capture the timeline is
    /// empty, lanes only). Write it to a file and open it in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self) -> serde_json::Value {
        trillium_obs::chrome_trace(self.ranks.iter().filter_map(|r| r.obs.as_ref()))
    }

    /// All ranks' metrics merged into one snapshot: counters and
    /// accumulators summed, gauges last-write-wins, histograms pooled.
    pub fn metrics(&self) -> trillium_obs::MetricsSnapshot {
        let mut out = trillium_obs::MetricsSnapshot::default();
        for r in &self.ranks {
            if let Some(obs) = &r.obs {
                out.merge(&obs.metrics);
            }
        }
        out
    }
}

/// How the distributed time loop schedules ghost exchange and compute.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverConfig {
    /// Overlap ghost communication with interior compute: post all sends,
    /// sweep each block's interior core (whose pull stencil never reads
    /// the ghost layer) while messages are in flight, then drain ghost
    /// messages in *arrival* order and finish each block's boundary shell
    /// as soon as its last message lands. Off by default; the synchronous
    /// path is the bitwise reference the overlapped path must reproduce
    /// exactly (pinned by `overlap_matches_sync_bitwise`).
    pub overlap: bool,
    /// Dump every block's final interior PDFs into
    /// [`RankResult::pdfs`] — the raw data for PDF-level equivalence
    /// tests. Off by default (the dump is large).
    pub collect_pdfs: bool,
    /// Observability toggle: timing on / event capture off by default;
    /// [`ObsConfig::off`] makes every span a no-op (the ≤3%-overhead
    /// baseline), [`ObsConfig::trace`] additionally captures the
    /// chrome-trace event stream.
    pub obs: ObsConfig,
    /// When set, measure the per-step momentum-exchange force on every
    /// boundary cell whose flags intersect this mask (e.g.
    /// `CellFlags::OBSTACLE` for the cylinder lift/drag signal) into
    /// [`RankResult::force_series`]. Forces are read from the pre-sweep
    /// populations: the synchronous schedule measures after the full
    /// boundary sweep, the overlapped schedule per block right after its
    /// ghost boundary prep — bitwise the same values, folded in block
    /// order. Blocks carrying masked cells must use the pull (two-array)
    /// scheme; scenarios that tag obstacle cells guarantee this.
    pub force_mask: Option<CellFlags>,
}

impl DriverConfig {
    /// The overlapped schedule.
    pub fn overlapped() -> Self {
        DriverConfig { overlap: true, ..Default::default() }
    }

    /// The same configuration with chrome-trace event capture on.
    pub fn with_trace(mut self) -> Self {
        self.obs = ObsConfig::trace();
        self
    }

    /// The same configuration measuring boundary forces on `mask` cells.
    pub fn with_force_mask(mut self, mask: CellFlags) -> Self {
        self.force_mask = Some(mask);
        self
    }
}

/// Message tag for a ghost message destined for block `dst` arriving from
/// its neighbor in direction `d` (receiver perspective). The low bits
/// carry the direction; bit 5 carries the *step parity*, so a fast
/// neighbor's step-`t+1` message can never be confused with a still
/// outstanding step-`t` message of the same link while the overlapped
/// drain is in progress. (FIFO per `(from, tag)` already orders same-tag
/// messages — see `fifo_preserved_through_pending_buffer` in
/// `trillium-comm` — the parity bit makes the separation structural.)
pub(crate) fn ghost_tag(dst: BlockId, d: [i8; 3], parity: u64) -> u64 {
    let packed = dst.pack();
    assert!(packed < (1 << 42), "block ID too large for ghost tags");
    (packed << 6) | ((parity & 1) << 5) | dir_index(d) as u64
}

/// Everything a per-rank worker needs to join one distributed run of a
/// scenario: the balanced setup forest, one distributed view per rank,
/// and the shared trace epoch. Built once by whoever launches the
/// cohort — [`run_distributed_with`] for the classic one-run-per-call
/// API, or a multi-tenant scheduler (`trillium-jobs`) that ships the
/// plan to pooled rank workers — then shared read-only across them.
///
/// Nothing here is process-global: each plan belongs to exactly one
/// run, so any number of runs can be planned and driven concurrently
/// in one process.
pub struct RunPlan {
    /// The balanced setup forest (cloned per rank by the rebalanced
    /// schedule, which mutates ownership as blocks migrate).
    pub forest: SetupForest,
    /// Per-rank block views, indexed by rank.
    pub views: Vec<DistributedForest>,
    /// Common time origin for every rank's recorder, so the run's trace
    /// lanes line up.
    pub epoch: Instant,
}

/// Plans a distributed run of `scenario` on `num_procs` ranks: builds
/// and balances the forest and precomputes the per-rank views. The
/// returned plan feeds [`drive_rank`] / [`drive_rank_rebalanced`] /
/// [`crate::recovery::drive_rank_resilient`] — one call per rank, on
/// communicators from `World::connect`.
pub fn plan_run(scenario: &Scenario, num_procs: u32) -> RunPlan {
    let forest = scenario.make_forest(num_procs);
    let views = distribute(&forest);
    RunPlan { forest, views, epoch: Instant::now() }
}

/// Runs one rank of a distributed simulation on a caller-provided
/// communicator — the re-entrant per-rank entry point behind
/// [`run_distributed_with`]. The communicator decides which rank this
/// is; the plan must have been built for the communicator's world size.
/// Safe to invoke any number of times concurrently in one process, one
/// cohort per plan.
pub fn drive_rank(
    comm: Communicator,
    plan: &RunPlan,
    scenario: &Scenario,
    threads_per_rank: usize,
    steps: u64,
    probes: &[[i64; 3]],
    cfg: DriverConfig,
) -> RankResult {
    let view = &plan.views[comm.rank() as usize];
    rank_loop(comm, view, scenario, threads_per_rank, steps, probes, cfg, plan.epoch)
}

/// Runs `scenario` on `num_procs` ranks (threads) with
/// `threads_per_rank`-fold block parallelism inside each rank, for
/// `steps` time steps, under the given [`DriverConfig`]. `probes` are
/// global cell coordinates whose final velocities are reported by the
/// owning rank.
pub fn run_distributed_with(
    scenario: &Scenario,
    num_procs: u32,
    threads_per_rank: usize,
    steps: u64,
    probes: &[[i64; 3]],
    cfg: DriverConfig,
) -> RunResult {
    let plan = plan_run(scenario, num_procs);
    let results = World::run(num_procs, |comm| {
        drive_rank(comm, &plan, scenario, threads_per_rank, steps, probes, cfg)
    });
    RunResult { steps, ranks: results }
}

/// Runs `scenario` with the default (synchronous) schedule. See
/// [`run_distributed_with`].
pub fn run_distributed_probed(
    scenario: &Scenario,
    num_procs: u32,
    threads_per_rank: usize,
    steps: u64,
    probes: &[[i64; 3]],
) -> RunResult {
    run_distributed_with(
        scenario,
        num_procs,
        threads_per_rank,
        steps,
        probes,
        DriverConfig::default(),
    )
}

/// Runs `scenario` without probes. See [`run_distributed_probed`].
pub fn run_distributed(
    scenario: &Scenario,
    num_procs: u32,
    threads_per_rank: usize,
    steps: u64,
) -> RunResult {
    run_distributed_probed(scenario, num_procs, threads_per_rank, steps, &[])
}

/// Metric name of the hidden-communication accumulator (seconds of
/// compute executed while ghost messages were in flight).
pub(crate) const M_OVERLAP_HIDDEN: &str = "driver.overlap_hidden_seconds";
/// Metric name of the per-step wall-time histogram.
pub(crate) const M_STEP_SECONDS: &str = "driver.step_seconds";

/// Timing fields of a [`RankResult`], folded out of a finished
/// [`Recorder`]: the comm counters are pushed into the metrics
/// registry, the per-kind span totals map onto the (disjoint)
/// category fields, and the snapshot itself is kept unless recording
/// was off.
pub(crate) struct FoldedObs {
    pub(crate) kernel: f64,
    pub(crate) comm: f64,
    pub(crate) boundary: f64,
    pub(crate) overlap_hidden: f64,
    pub(crate) stall: f64,
    pub(crate) wall: f64,
    pub(crate) obs: Option<RankObs>,
}

pub(crate) fn fold_obs(rec: Recorder, comm: &Communicator) -> FoldedObs {
    let c = comm.counters();
    let m = rec.metrics();
    m.add("comm.messages_sent", c.messages_sent);
    m.add("comm.bytes_sent", c.bytes_sent);
    m.add("comm.ctrl_messages_sent", c.ctrl_messages_sent);
    let enabled = rec.config().enabled();
    let wall = rec.wall();
    let obs = rec.finish();
    FoldedObs {
        kernel: obs.total(SpanKind::Kernel)
            + obs.total(SpanKind::KernelInterior)
            + obs.total(SpanKind::KernelShell),
        comm: obs.total(SpanKind::GhostPack) + obs.total(SpanKind::GhostDrain),
        boundary: obs.total(SpanKind::Boundary),
        overlap_hidden: obs.metrics.fcounter(M_OVERLAP_HIDDEN),
        stall: obs.total(SpanKind::Stall),
        wall,
        obs: enabled.then_some(obs),
    }
}

/// Count blocks whose requested in-place kernel silently resolved to
/// pull (sparse storage cannot run the AA-pattern) and surface the total
/// as the `kernel.fallback_pull` metric, so a carved run that asked for
/// `KernelChoice::InPlace` is observable rather than quietly slower.
pub(crate) fn count_kernel_fallbacks(rec: &Recorder, blocks: &[BlockSim]) {
    let n = blocks.iter().filter(|b| b.fell_back_to_pull()).count() as u64;
    if n > 0 {
        rec.metrics().add("kernel.fallback_pull", n);
    }
}

#[allow(clippy::too_many_arguments)]
fn rank_loop(
    mut comm: Communicator,
    view: &DistributedForest,
    scenario: &Scenario,
    threads_per_rank: usize,
    steps: u64,
    probes: &[[i64; 3]],
    cfg: DriverConfig,
    epoch: Instant,
) -> RankResult {
    let rank = comm.rank();
    let rec = Recorder::with_epoch(rank, cfg.obs, epoch);
    // Build local blocks.
    let mut blocks: Vec<BlockSim> = view.blocks.iter().map(|lb| scenario.build_block(lb)).collect();
    count_kernel_fallbacks(&rec, &blocks);
    let index_of: HashMap<BlockId, usize> =
        view.blocks.iter().enumerate().map(|(i, b)| (b.id, i)).collect();

    let mass_initial: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let energy_initial: f64 = blocks.iter().map(BlockSim::kinetic_energy).sum();
    let mut stats = SweepStats::default();
    let mut ctx = GhostCtx::new();
    let mut force_series: Vec<[f64; 3]> = Vec::new();
    let rel = scenario.relaxation;

    for t in 0..steps {
        rec.set_step(t);
        let step_span = rec.span(SpanKind::Step);
        if cfg.overlap {
            overlapped_step(
                &mut comm,
                view,
                &mut blocks,
                &index_of,
                &mut ctx,
                t,
                rel,
                threads_per_rank,
                &rec,
                &mut stats,
                None,
                cfg.force_mask,
                &mut force_series,
            )
            .expect("deadline-free step cannot fail");
        } else {
            // ---- ghost exchange ---------------------------------------
            let _ =
                exchange_ghosts(&mut comm, view, &mut blocks, &index_of, &mut ctx, t, None, &rec)
                    .expect("deadline-free exchange cannot fail");

            // ---- boundary sweep ---------------------------------------
            {
                let _b = rec.span(SpanKind::Boundary);
                for_each_block(&mut blocks, threads_per_rank, |b| b.apply_boundaries());
            }
            if let Some(mask) = cfg.force_mask {
                force_series.push(measure_forces(&blocks, mask));
            }

            // ---- stream-collide ---------------------------------------
            let kernel = rec.span(SpanKind::Kernel);
            let step_stats: Vec<SweepStats> =
                map_each_block(&mut blocks, threads_per_rank, move |b| b.stream_collide(rel));
            drop(kernel);
            for s in step_stats {
                stats.merge(s);
            }
        }
        rec.metrics().observe(M_STEP_SECONDS, step_span.finish());
    }

    let probe_out = locate_probes(scenario, view, &blocks, probes);
    let pdfs = if cfg.collect_pdfs { dump_pdfs(view, &blocks) } else { Vec::new() };
    let mass_final: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let energy_final: f64 = blocks.iter().map(BlockSim::kinetic_energy).sum();
    let has_nan = blocks.iter().any(BlockSim::has_nan);
    let f = fold_obs(rec, &comm);
    RankResult {
        rank,
        num_blocks: blocks.len(),
        stats,
        kernel_time: f.kernel,
        comm_time: f.comm,
        boundary_time: f.boundary,
        overlap_hidden: f.overlap_hidden,
        ghost_stall_time: f.stall,
        mass_initial,
        mass_final,
        energy_initial,
        energy_final,
        force_series,
        probes: probe_out,
        pdfs,
        has_nan,
        wall_time: f.wall,
        obs: f.obs,
        rebalance: None,
    }
}

/// Sums the masked momentum-exchange force over `blocks` in block order
/// — the deterministic fold every schedule reproduces. Valid only while
/// the pre-sweep populations are intact (after the boundary sweep,
/// before stream-collide).
pub(crate) fn measure_forces(blocks: &[BlockSim], mask: CellFlags) -> [f64; 3] {
    let mut out = [0.0; 3];
    for b in blocks {
        let f = b.boundary_force(mask);
        for d in 0..3 {
            out[d] += f[d];
        }
    }
    out
}

/// Serializes every block's interior PDFs for bitwise comparison.
pub(crate) fn dump_pdfs(view: &DistributedForest, blocks: &[BlockSim]) -> Vec<(u64, Vec<f64>)> {
    view.blocks
        .iter()
        .zip(blocks)
        .map(|(lb, b)| {
            let mut vals = Vec::with_capacity(b.shape.interior_cells() * 19);
            for (x, y, z) in b.shape.interior().iter() {
                for q in 0..19 {
                    vals.push(b.src.get(x, y, z, q));
                }
            }
            (lb.id.pack(), vals)
        })
        .collect()
}

/// One time step of the overlapped schedule:
///
/// 1. pack and post *all* sends (remote links), unpack same-rank links;
/// 2. while the remote messages are in flight, run the interior boundary
///    prep (obstacle cells, which never read the ghost layer) and the
///    interior-core stream–collide on every local block;
/// 3. drain the expected ghost messages in **arrival order** via
///    [`Communicator::recv_any`] — not in the fixed posting order the
///    synchronous path blocks on — and finish each block's ghost boundary
///    prep + shell sweep the moment its last message lands, so shell
///    compute of early-completing blocks also hides late arrivals;
/// 4. swap all double buffers.
///
/// The result is bitwise identical to the synchronous schedule: the
/// interior/shell split partitions each block exactly once (pinned in
/// `trillium-kernels::dispatch`), the boundary split is order-independent
/// (pinned in `trillium-kernels::boundary`), and ghost slabs of distinct
/// directions are disjoint, so arrival-order unpacking is race-free.
///
/// With `timeout == Some(d)` every blocking receive in the drain is
/// bounded by `d` (the resilient schedule); an error leaves the blocks
/// in a torn mid-step state that the caller is expected to discard by
/// restoring a checkpoint. With `timeout == None` the call cannot fail
/// (a dead peer panics inside the infallible receive instead).
#[allow(clippy::too_many_arguments)]
pub(crate) fn overlapped_step(
    comm: &mut Communicator,
    view: &DistributedForest,
    blocks: &mut [BlockSim],
    index_of: &HashMap<BlockId, usize>,
    ctx: &mut GhostCtx,
    step: u64,
    rel: Relaxation,
    threads: usize,
    rec: &Recorder,
    stats: &mut SweepStats,
    timeout: Option<Duration>,
    force_mask: Option<CellFlags>,
    force_series: &mut Vec<[f64; 3]>,
) -> Result<(), trillium_comm::CommError> {
    // ---- post sends ---------------------------------------------------
    let pack = rec.span(SpanKind::GhostPack);
    ctx.begin_step(blocks.len());
    for (bi, lb) in view.blocks.iter().enumerate() {
        for (li, link) in lb.links.iter().enumerate() {
            let d = NEIGHBOR_DIRS[li];
            if ctx.table.qs(d).is_empty() {
                continue; // corner links carry nothing for D3Q19
            }
            let rev = [-d[0], -d[1], -d[2]];
            match link {
                BlockLink::Border => {}
                BlockLink::Local(nid) => {
                    let mut buf = ctx.take_buf();
                    pack_face_with::<D3Q19, _>(&blocks[bi].src, d, ctx.table.qs(d), &mut buf);
                    ctx.local.push((index_of[nid], rev, buf));
                }
                BlockLink::Remote(nid, r) => {
                    let mut buf = ctx.take_buf();
                    pack_face_with::<D3Q19, _>(&blocks[bi].src, d, ctx.table.qs(d), &mut buf);
                    comm.send(*r, ghost_tag(*nid, rev, step), buf);
                    ctx.pairs.push((*r, ghost_tag(lb.id, d, step)));
                    ctx.meta.push((bi, d));
                    ctx.outstanding[bi] += 1;
                }
            }
        }
    }
    // End of the send phase: release fault-delayed messages now, at a
    // program point, so failure behavior stays deterministic.
    comm.flush_delayed();
    // Same-rank links complete immediately.
    let local = std::mem::take(&mut ctx.local);
    for (bi, d, buf) in local {
        unpack_face_with::<D3Q19, _>(&mut blocks[bi].src, d, ctx.table.qs_reversed(d), &buf);
        ctx.recycle(buf);
    }
    pack.finish();
    let in_flight = !ctx.pairs.is_empty();

    // ---- overlap window: interior prep + interior sweeps ---------------
    let t_hide = rec.clock();
    {
        let _b = rec.span(SpanKind::Boundary);
        for_each_block(blocks, threads, |b| b.apply_boundaries_interior());
    }
    let kernel = rec.span(SpanKind::KernelInterior);
    let interior: Vec<SweepStats> =
        map_each_block(blocks, threads, move |b| b.stream_collide_interior(rel));
    drop(kernel);
    for (bi, s) in interior.iter().enumerate() {
        ctx.seconds[bi] = s.seconds;
    }
    if in_flight {
        rec.metrics().acc(M_OVERLAP_HIDDEN, rec.clock() - t_hide);
    }

    // Blocks with no outstanding remote messages (ghosts already complete
    // from local links) finish their shells now — still inside the
    // overlap window of the other blocks' messages.
    for bi in 0..blocks.len() {
        if ctx.outstanding[bi] == 0 {
            let hidden = finish_shell(&mut blocks[bi], bi, rel, ctx, rec, force_mask);
            if in_flight {
                rec.metrics().acc(M_OVERLAP_HIDDEN, hidden);
            }
        }
    }

    // ---- drain: arrival order, finish shells as blocks complete --------
    while !ctx.pairs.is_empty() {
        // Blocking here is *not* an exposed stall: every interior is
        // already swept and every block with a complete ghost layer has
        // finished its shell, so no runnable local work remains. The
        // wait is neighbor imbalance and lands in `comm_time` (see
        // [`RankResult::ghost_stall_time`]).
        let drain = rec.span(SpanKind::GhostDrain);
        let (i, data) = match comm.try_recv_any(&ctx.pairs) {
            Some(hit) => hit,
            None => match timeout {
                None => comm.recv_any(&ctx.pairs),
                Some(d) => comm.recv_any_timeout(&ctx.pairs, d)?,
            },
        };
        let (bi, d) = ctx.meta[i];
        ctx.pairs.swap_remove(i);
        ctx.meta.swap_remove(i);
        unpack_face_with::<D3Q19, _>(&mut blocks[bi].src, d, ctx.table.qs_reversed(d), &data);
        ctx.recycle(data);
        drain.finish();
        ctx.outstanding[bi] -= 1;
        if ctx.outstanding[bi] == 0 {
            let hidden = finish_shell(&mut blocks[bi], bi, rel, ctx, rec, force_mask);
            if !ctx.pairs.is_empty() {
                rec.metrics().acc(M_OVERLAP_HIDDEN, hidden);
            }
        }
    }

    // ---- swap + accounting --------------------------------------------
    for_each_block(blocks, threads, |b| b.swap_buffers());
    if force_mask.is_some() {
        // Fold per-block forces in block order — the same additions, in
        // the same sequence, as the synchronous schedule's fold.
        let mut f = [0.0; 3];
        for bf in &ctx.forces {
            for d in 0..3 {
                f[d] += bf[d];
            }
        }
        force_series.push(f);
    }
    for (bi, b) in blocks.iter().enumerate() {
        // Region sweeps count traversed cells but cannot attribute
        // fluid-ness per sub-span; report the same totals as a full sweep.
        let (cells, fluid_cells) = b.sweep_counts();
        stats.merge(SweepStats { cells, fluid_cells, seconds: ctx.seconds[bi] });
    }
    Ok(())
}

/// Ghost boundary prep + shell sweep for one block whose ghost layer just
/// became complete. Returns the seconds spent (the caller decides whether
/// they were hidden behind still-outstanding messages).
fn finish_shell(
    block: &mut BlockSim,
    bi: usize,
    rel: Relaxation,
    ctx: &mut GhostCtx,
    rec: &Recorder,
    force_mask: Option<CellFlags>,
) -> f64 {
    let b = rec.span(SpanKind::Boundary);
    block.apply_boundaries_ghost();
    let tb = b.finish();
    // The full boundary sweep (interior + ghost) is now done and the
    // shell sweep has not yet run: this is the same program point, per
    // block, at which the synchronous schedule measures forces.
    if let Some(mask) = force_mask {
        ctx.forces[bi] = block.boundary_force(mask);
    }
    let k = rec.span(SpanKind::KernelShell);
    let s = block.stream_collide_shell(rel);
    let tk = k.finish();
    ctx.seconds[bi] += s.seconds;
    tb + tk
}

/// Evaluates the probes this rank owns (global cell → velocity).
pub(crate) fn locate_probes(
    scenario: &Scenario,
    view: &DistributedForest,
    blocks: &[BlockSim],
    probes: &[[i64; 3]],
) -> Vec<([i64; 3], [f64; 3])> {
    let cells = [scenario.cells[0] as i64, scenario.cells[1] as i64, scenario.cells[2] as i64];
    let mut out = Vec::new();
    for &p in probes {
        for (i, lb) in view.blocks.iter().enumerate() {
            let local = [
                p[0] - lb.coords[0] * cells[0],
                p[1] - lb.coords[1] * cells[1],
                p[2] - lb.coords[2] * cells[2],
            ];
            if (0..3).all(|d| local[d] >= 0 && local[d] < cells[d]) {
                let u = blocks[i].velocity(local[0] as i32, local[1] as i32, local[2] as i32);
                out.push((p, u));
            }
        }
    }
    out
}

/// Runs `scenario` with the runtime load balancer enabled: per-block
/// costs are measured every step, the global imbalance is checked every
/// [`RebalanceConfig::every_n_steps`] steps, and blocks migrate between
/// ranks (state and all) when the measured imbalance persists. See
/// `trillium-rebalance` for the monitoring/planning machinery and
/// [`crate::migrate`] for the transfer protocol.
pub fn run_distributed_rebalanced(
    scenario: &Scenario,
    num_procs: u32,
    threads_per_rank: usize,
    steps: u64,
    cfg: RebalanceConfig,
) -> RunResult {
    let plan = plan_run(scenario, num_procs);
    let results = World::run(num_procs, |comm| {
        drive_rank_rebalanced(comm, &plan, scenario, threads_per_rank, steps, cfg)
    });
    RunResult { steps, ranks: results }
}

/// Runs one rank of a load-balanced distributed simulation on a
/// caller-provided communicator — the re-entrant per-rank entry point
/// behind [`run_distributed_rebalanced`]. Each rank clones the plan's
/// forest and its own view, since the rebalanced schedule mutates
/// ownership as blocks migrate.
pub fn drive_rank_rebalanced(
    comm: Communicator,
    plan: &RunPlan,
    scenario: &Scenario,
    threads_per_rank: usize,
    steps: u64,
    cfg: RebalanceConfig,
) -> RankResult {
    let rank = comm.rank() as usize;
    rank_loop_rebalanced(
        comm,
        plan.forest.clone(),
        plan.views[rank].clone(),
        scenario,
        threads_per_rank,
        steps,
        cfg,
        plan.epoch,
    )
}

#[allow(clippy::too_many_arguments)]
fn rank_loop_rebalanced(
    mut comm: Communicator,
    mut forest: SetupForest,
    mut view: DistributedForest,
    scenario: &Scenario,
    threads_per_rank: usize,
    steps: u64,
    cfg: RebalanceConfig,
    epoch: Instant,
) -> RankResult {
    let rank = comm.rank();
    let size = comm.size();
    let rec = Recorder::with_epoch(rank, cfg.obs, epoch);
    let mut blocks: Vec<BlockSim> = view.blocks.iter().map(|lb| scenario.build_block(lb)).collect();
    count_kernel_fallbacks(&rec, &blocks);
    let mut index_of: HashMap<BlockId, usize> =
        view.blocks.iter().enumerate().map(|(i, b)| (b.id, i)).collect();

    let mass_initial: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let energy_initial: f64 = blocks.iter().map(BlockSim::kinetic_energy).sum();
    let mut stats = SweepStats::default();
    let mut force_series: Vec<[f64; 3]> = Vec::new();

    let mut model = EwmaCostModel::new(cfg.ewma_alpha);
    let mut detector =
        ImbalanceDetector::new(cfg.threshold, cfg.hysteresis).with_cooldown(cfg.cooldown_epochs);
    let mut report = RebalanceReport::default();
    let mut ctx = GhostCtx::new();

    for t in 0..steps {
        rec.set_step(t);
        let step_span = rec.span(SpanKind::Step);
        let (ghost_work, _ghost_stall) =
            exchange_ghosts(&mut comm, &view, &mut blocks, &index_of, &mut ctx, t, None, &rec)
                .expect("deadline-free exchange cannot fail");
        report.comm_work_time += ghost_work;

        {
            let _b = rec.span(SpanKind::Boundary);
            for_each_block(&mut blocks, threads_per_rank, |b| b.apply_boundaries());
        }
        if let Some(mask) = cfg.force_mask {
            force_series.push(measure_forces(&blocks, mask));
        }

        let kernel = rec.span(SpanKind::Kernel);
        let rel = scenario.relaxation;
        let step_stats: Vec<SweepStats> =
            map_each_block(&mut blocks, threads_per_rank, move |b| b.stream_collide(rel));
        drop(kernel);

        // Feed the cost model: each block's measured sweep time plus an
        // equal share of this step's ghost-exchange *work* (not the time
        // spent blocked waiting for neighbors — see [`exchange_ghosts`]).
        let ghost_share = if blocks.is_empty() { 0.0 } else { ghost_work / blocks.len() as f64 };
        for (bi, s) in step_stats.iter().enumerate() {
            model.update(view.blocks[bi].id.pack(), s.seconds + ghost_share);
            stats.merge(*s);
        }

        // ---- epoch boundary: measure, decide, maybe migrate -----------
        if (t + 1) % cfg.every_n_steps.max(1) == 0 {
            let epoch_span = rec.span(SpanKind::RebalanceEpoch);
            let (_, max, sum) = comm.allreduce_minmaxsum_f64(model.total());
            let ratio = if sum > 0.0 { max * size as f64 / sum } else { 1.0 };
            let mut migrated = 0u32;
            // The ratio is bitwise identical on every rank (same gathered
            // values folded in the same order), so the detector decision
            // and the plan need no extra agreement round.
            if detector.observe(ratio) {
                let records: Vec<BlockRecord> = view
                    .blocks
                    .iter()
                    .enumerate()
                    .map(|(bi, lb)| BlockRecord {
                        id: lb.id.pack(),
                        owner: rank,
                        coords: [lb.coords[0] as u32, lb.coords[1] as u32, lb.coords[2] as u32],
                        level: lb.id.level(),
                        cost: model.cost(lb.id.pack()),
                        fluid_cells: blocks[bi].fluid_cells() as u64,
                    })
                    .collect();
                let gathered = comm.allgather_bytes(encode_records(&records));
                let all: Vec<BlockRecord> =
                    gathered.iter().flat_map(|b| decode_records(b)).collect();
                let mut plan = plan_rebalance(all, size, &cfg.plan);
                // Drop structurally invalid migrations instead of letting
                // the transfer protocol panic on them. The plan is computed
                // from identical input on every rank, so the dropped set is
                // identical too and the protocol stays symmetric.
                let dropped = plan.sanitize();
                rec.metrics().add("rebalance.plan_skipped", dropped.len() as u64);
                if !plan.migrations.is_empty() {
                    migrated = plan.migrations.len() as u32;
                    for m in &plan.migrations {
                        if m.from == rank {
                            model.forget(m.id);
                        }
                    }
                    let ms = execute_migrations(
                        &mut comm,
                        &plan,
                        &mut forest,
                        &mut view,
                        &mut blocks,
                        &mut index_of,
                        scenario.boundary,
                        &rec,
                    );
                    // Received blocks are rebuilt from the wire format,
                    // which carries neither the collision operator nor
                    // the backend (both scenario-global); re-stamp every
                    // block.
                    for b in blocks.iter_mut() {
                        b.collision = scenario.collision;
                        b.backend = scenario.backend;
                    }
                    report.migrations_out += ms.sent;
                    report.migrations_in += ms.received;
                    report.rebalances += 1;
                    rec.metrics().add("rebalance.migrations_out", ms.sent as u64);
                    rec.metrics().add("rebalance.migrations_in", ms.received as u64);
                    rec.metrics().add("rebalance.rounds", 1);
                }
            }
            // Epoch work (allreduce, gather, plan, migration) is its own
            // span — it is coordination overhead, not ghost-exchange time,
            // so it no longer inflates `comm_time`.
            report.epoch_time += epoch_span.finish();
            report.epochs.push(EpochReport { step: t + 1, ratio, migrated });
        }
        rec.metrics().observe(M_STEP_SECONDS, step_span.finish());
    }

    report.final_costs = view
        .blocks
        .iter()
        .enumerate()
        .map(|(bi, lb)| (lb.id.pack(), model.cost(lb.id.pack()), blocks[bi].fluid_cells() as u64))
        .collect();
    for (id, cost, _) in &report.final_costs {
        rec.metrics().gauge(&format!("rebalance.block_cost.{id}"), *cost);
    }

    let mass_final: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let energy_final: f64 = blocks.iter().map(BlockSim::kinetic_energy).sum();
    let has_nan = blocks.iter().any(BlockSim::has_nan);
    let f = fold_obs(rec, &comm);
    RankResult {
        rank,
        num_blocks: blocks.len(),
        stats,
        kernel_time: f.kernel,
        comm_time: f.comm,
        boundary_time: f.boundary,
        overlap_hidden: f.overlap_hidden,
        ghost_stall_time: f.stall,
        mass_initial,
        mass_final,
        energy_initial,
        energy_final,
        force_series,
        probes: Vec::new(),
        pdfs: if cfg.collect_pdfs { dump_pdfs(&view, &blocks) } else { Vec::new() },
        has_nan,
        wall_time: f.wall,
        obs: f.obs,
        rebalance: Some(report),
    }
}

/// Reusable ghost-exchange state: the precomputed 26-direction crossing
/// table plus buffers and bookkeeping vectors recycled across steps, so
/// the per-step exchange fast path performs **no heap allocation** after
/// warm-up. Received payloads are recycled into the next step's send
/// buffers — the per-step send and receive counts are equal (every remote
/// link is symmetric), so the pool reaches a steady state after one step.
pub(crate) struct GhostCtx {
    table: CrossingTable,
    pool: Vec<Vec<u8>>,
    /// `(from, tag)` pairs still outstanding, parallel to `meta`.
    pairs: Vec<(u32, u64)>,
    /// `(block index, direction)` per outstanding pair.
    meta: Vec<(usize, [i8; 3])>,
    /// Packed same-rank transfers awaiting unpack.
    local: Vec<(usize, [i8; 3], Vec<u8>)>,
    /// Outstanding remote messages per local block.
    outstanding: Vec<u32>,
    /// Accumulated sweep seconds per local block this step.
    seconds: Vec<f64>,
    /// Per-block masked boundary force this step (overlapped schedule:
    /// written in `finish_shell`, folded in block order at step end).
    forces: Vec<[f64; 3]>,
}

impl GhostCtx {
    pub(crate) fn new() -> Self {
        GhostCtx {
            table: CrossingTable::new::<D3Q19>(),
            pool: Vec::new(),
            pairs: Vec::new(),
            meta: Vec::new(),
            local: Vec::new(),
            outstanding: Vec::new(),
            seconds: Vec::new(),
            forces: Vec::new(),
        }
    }

    /// Resets the per-step bookkeeping for `num_blocks` local blocks.
    fn begin_step(&mut self, num_blocks: usize) {
        self.pairs.clear();
        self.meta.clear();
        self.local.clear();
        self.outstanding.clear();
        self.outstanding.resize(num_blocks, 0);
        self.seconds.clear();
        self.seconds.resize(num_blocks, 0.0);
        self.forces.clear();
        self.forces.resize(num_blocks, [0.0; 3]);
    }

    fn take_buf(&mut self) -> Vec<u8> {
        let mut b = self.pool.pop().unwrap_or_default();
        b.clear();
        b
    }

    fn recycle(&mut self, buf: Vec<u8>) {
        self.pool.push(buf);
    }
}

/// One full ghost exchange on the source fields of all local blocks —
/// the *synchronous* schedule: everything is packed and sent, then the
/// expected messages are drained in posting order with blocking receives.
///
/// Returns `(work, stall)` seconds: `work` is this rank's own exchange
/// effort — packing, sending, and local unpacking — excluding the time
/// blocked in `recv` waiting for neighbors. The distinction matters for
/// load measurement: an underloaded rank spends most of the exchange
/// *waiting* for its overloaded neighbors, and counting that wait as
/// local cost would make every rank look equally busy and hide the
/// imbalance completely. `stall` is the time blocked on messages that had
/// not yet arrived when asked for — exposed stall in the sense of
/// [`RankResult::ghost_stall_time`], since the synchronous schedule runs
/// this exchange with the whole stream-collide sweep still pending.
///
/// With `timeout == Some(d)` each blocking receive is bounded by `d`
/// (resilient schedule; on error the caller discards the torn state and
/// restores a checkpoint); with `None` the call cannot return an error.
pub(crate) fn exchange_ghosts(
    comm: &mut Communicator,
    view: &DistributedForest,
    blocks: &mut [BlockSim],
    index_of: &HashMap<BlockId, usize>,
    ctx: &mut GhostCtx,
    step: u64,
    timeout: Option<Duration>,
    rec: &Recorder,
) -> Result<(f64, f64), trillium_comm::CommError> {
    // Phase 1: pack everything. Local transfers are buffered the same way
    // as remote ones; packs read interior slabs only, unpacks write ghost
    // slabs only, so a two-phase scheme is race-free and identical in
    // result to any interleaving.
    let pack = rec.span(SpanKind::GhostPack);
    ctx.begin_step(blocks.len());
    for (bi, lb) in view.blocks.iter().enumerate() {
        for (li, link) in lb.links.iter().enumerate() {
            let d = NEIGHBOR_DIRS[li];
            if ctx.table.qs(d).is_empty() {
                continue; // corner links carry nothing for D3Q19
            }
            let rev = [-d[0], -d[1], -d[2]];
            match link {
                BlockLink::Border => {}
                BlockLink::Local(nid) => {
                    let mut buf = ctx.take_buf();
                    pack_face_with::<D3Q19, _>(&blocks[bi].src, d, ctx.table.qs(d), &mut buf);
                    // The neighbor receives from direction −d.
                    ctx.local.push((index_of[nid], rev, buf));
                }
                BlockLink::Remote(nid, r) => {
                    let mut buf = ctx.take_buf();
                    pack_face_with::<D3Q19, _>(&blocks[bi].src, d, ctx.table.qs(d), &mut buf);
                    comm.send(*r, ghost_tag(*nid, rev, step), buf);
                    // Symmetric link: we will receive the neighbor's data
                    // for our ghost slab in direction d.
                    ctx.pairs.push((*r, ghost_tag(lb.id, d, step)));
                    ctx.meta.push((bi, d));
                }
            }
        }
    }
    // End of the send phase: release fault-delayed messages now, at a
    // program point, so failure behavior stays deterministic.
    comm.flush_delayed();
    // Phase 2: unpack local transfers and receive remote ones.
    let local = std::mem::take(&mut ctx.local);
    for (bi, d, buf) in local {
        unpack_face_with::<D3Q19, _>(&mut blocks[bi].src, d, ctx.table.qs_reversed(d), &buf);
        ctx.recycle(buf);
    }
    let work = pack.finish();
    let mut stall = 0.0;
    // The drain span covers unpacking; blocked waits are carved out into
    // disjoint `Stall` spans so `comm_time` never includes exposed stall.
    let mut drain = rec.span(SpanKind::GhostDrain);
    for i in 0..ctx.pairs.len() {
        let (from, tag) = ctx.pairs[i];
        let (bi, d) = ctx.meta[i];
        let data = match comm.try_recv(from, tag) {
            Some(data) => data,
            None => {
                let sg = rec.span(SpanKind::Stall);
                let res = match timeout {
                    None => Ok(comm.recv(from, tag)),
                    Some(dl) => comm.recv_timeout(from, tag, dl),
                };
                let s = sg.finish();
                drain.exclude(s);
                stall += s;
                res?
            }
        };
        unpack_face_with::<D3Q19, _>(&mut blocks[bi].src, d, ctx.table.qs_reversed(d), &data);
        ctx.recycle(data);
    }
    drain.finish();
    Ok((work, stall))
}

/// Splits `items` into exactly `min(parts, len)` contiguous slices whose
/// sizes differ by at most one (the first `len % parts` slices get the
/// extra element). `div_ceil`-sized chunking could leave whole threads
/// idle — 9 blocks on 4 threads gave chunks of 3/3/3 and an idle fourth
/// worker; here they get 3/2/2/2.
fn balanced_parts<T>(items: &mut [T], parts: usize) -> Vec<&mut [T]> {
    let n = items.len();
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut rest = items;
    let mut out = Vec::with_capacity(parts);
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        let (head, tail) = rest.split_at_mut(take);
        out.push(head);
        rest = tail;
    }
    out
}

/// Applies `f` to every block, optionally with thread parallelism (the
/// hybrid MPI+OpenMP analogue: one rank, several threads over its blocks).
pub(crate) fn for_each_block<F: Fn(&mut BlockSim) + Sync>(
    blocks: &mut [BlockSim],
    threads: usize,
    f: F,
) {
    if threads <= 1 || blocks.len() <= 1 {
        for b in blocks.iter_mut() {
            f(b);
        }
    } else {
        std::thread::scope(|scope| {
            for part in balanced_parts(blocks, threads) {
                scope.spawn(|| {
                    for b in part {
                        f(b);
                    }
                });
            }
        });
    }
}

/// Like [`for_each_block`] but collecting results in block order.
pub(crate) fn map_each_block<T: Send, F: Fn(&mut BlockSim) -> T + Sync>(
    blocks: &mut [BlockSim],
    threads: usize,
    f: F,
) -> Vec<T> {
    if threads <= 1 || blocks.len() <= 1 {
        blocks.iter_mut().map(f).collect()
    } else {
        let mut out: Vec<Vec<T>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = balanced_parts(blocks, threads)
                .into_iter()
                .map(|part| scope.spawn(|| part.iter_mut().map(&f).collect::<Vec<T>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("block worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The decisive distributed-correctness test: a multi-rank,
    /// multi-block run must produce *bit-identical* velocities to the
    /// single-rank, single-block run of the same problem — ghost exchange
    /// is exact, not approximate.
    #[test]
    fn distributed_equals_single_block() {
        let probes: Vec<[i64; 3]> =
            vec![[1, 1, 1], [8, 8, 14], [7, 8, 8], [8, 7, 3], [15, 15, 15], [0, 15, 8]];
        // Reference: one rank, one block of 16³.
        let s1 = Scenario::lid_driven_cavity(16, 1, 0.06, 0.08);
        let r1 = crate::driver::run_distributed_probed(&s1, 1, 1, 40, &probes);
        // Distributed: 8 ranks, 2×2×2 blocks of 8³.
        let s8 = Scenario::lid_driven_cavity(16, 2, 0.06, 0.08);
        let r8 = crate::driver::run_distributed_probed(&s8, 8, 1, 40, &probes);

        assert!(!r1.has_nan() && !r8.has_nan());
        let p1 = r1.probes();
        let p8 = r8.probes();
        assert_eq!(p1.len(), probes.len());
        assert_eq!(p8.len(), probes.len());
        for ((c1, u1), (c8, u8)) in p1.iter().zip(&p8) {
            assert_eq!(c1, c8);
            for d in 0..3 {
                assert_eq!(u1[d], u8[d], "mismatch at {c1:?} axis {d}");
            }
        }
        // Same total work.
        assert_eq!(r1.total_stats().cells, r8.total_stats().cells);
    }

    /// Multiple blocks per rank (4 ranks × 2 blocks) and hybrid threading
    /// must also reproduce the single-block reference.
    #[test]
    fn multiblock_and_threads_equal_single() {
        let probes: Vec<[i64; 3]> = vec![[3, 5, 9], [11, 2, 4], [6, 6, 6]];
        let s1 = Scenario::lid_driven_cavity(12, 1, 0.05, 0.1);
        let r1 = crate::driver::run_distributed_probed(&s1, 1, 1, 25, &probes);
        let s_multi = Scenario::lid_driven_cavity(12, 2, 0.05, 0.1);
        let r4 = crate::driver::run_distributed_probed(&s_multi, 4, 2, 25, &probes);
        for ((_, u1), (_, u4)) in r1.probes().iter().zip(&r4.probes()) {
            for d in 0..3 {
                assert_eq!(u1[d], u4[d]);
            }
        }
    }

    #[test]
    fn cavity_conserves_mass_across_ranks() {
        let s = Scenario::lid_driven_cavity(16, 2, 0.08, 0.05);
        let r = run_distributed(&s, 4, 1, 30);
        assert!(r.mass_drift().abs() < 1e-11, "drift {}", r.mass_drift());
        assert_eq!(r.total_stats().cells, 16 * 16 * 16 * 30);
    }

    #[test]
    fn channel_develops_throughflow() {
        let s = Scenario::channel_with_obstacle([32, 8, 8], [4, 1, 1], 0.08, 0.04, 0.18);
        let probes: Vec<[i64; 3]> = vec![[4, 4, 4], [16, 6, 4], [28, 4, 4]];
        let r = run_distributed_probed(&s, 4, 1, 120, &probes);
        assert!(!r.has_nan());
        let p = r.probes();
        // Flow moves in +x everywhere along the channel.
        for (c, u) in &p {
            assert!(u[0] > 1e-4, "no throughflow at {c:?}: {u:?}");
        }
    }

    #[test]
    fn timers_are_recorded() {
        let s = Scenario::lid_driven_cavity(8, 2, 0.05, 0.1);
        let r = run_distributed(&s, 2, 1, 5);
        for rr in &r.ranks {
            assert!(rr.kernel_time > 0.0);
            assert!(rr.comm_time > 0.0);
            assert!(rr.overlap_hidden == 0.0, "sync path must not report hidden time");
            assert!(rr.num_blocks == 4);
        }
        assert!(r.comm_fraction() > 0.0 && r.comm_fraction() < 1.0);
    }

    /// The tentpole equivalence: the overlapped schedule must produce
    /// *bitwise identical* PDFs to the synchronous reference, across
    /// multiple ranks, multiple blocks per rank, and hybrid threading.
    #[test]
    fn overlap_matches_sync_bitwise() {
        let s = Scenario::lid_driven_cavity(16, 2, 0.06, 0.08);
        let cfg_sync = DriverConfig { collect_pdfs: true, ..Default::default() };
        let cfg_over = DriverConfig { overlap: true, collect_pdfs: true, ..Default::default() };
        let sync = run_distributed_with(&s, 4, 1, 30, &[], cfg_sync);
        for threads in [1usize, 2] {
            let over = run_distributed_with(&s, 4, threads, 30, &[], cfg_over);
            assert!(!over.has_nan());
            let a = sync.pdf_dump();
            let b = over.pdf_dump();
            assert_eq!(a.len(), b.len());
            for ((id_a, va), (id_b, vb)) in a.iter().zip(&b) {
                assert_eq!(id_a, id_b);
                assert_eq!(va.len(), vb.len());
                for (x, y) in va.iter().zip(vb) {
                    assert!(x == y, "block {id_a}: overlap deviates ({threads} threads)");
                }
            }
            // Identical accounting too: same cells and fluid cells swept.
            assert_eq!(sync.total_stats().cells, over.total_stats().cells);
            assert_eq!(sync.total_stats().fluid_cells, over.total_stats().fluid_cells);
            // The overlapped run measured hidden compute, and it never
            // blocked while runnable work remained.
            assert!(over.overlap_hidden() > 0.0);
            assert!(
                over.ranks.iter().all(|rr| rr.ghost_stall_time == 0.0),
                "overlap must not expose stall"
            );
        }
    }

    /// The overlapped schedule must also match on a sparse geometry
    /// (row-interval kernels) with an interior obstacle — the shell/core
    /// split interacts with both kernel types and the split boundary
    /// sweeps.
    #[test]
    fn overlap_matches_sync_on_sparse_channel() {
        let s = Scenario::channel_with_obstacle([24, 8, 8], [3, 1, 1], 0.08, 0.04, 0.18);
        let cfg_sync = DriverConfig { collect_pdfs: true, ..Default::default() };
        let cfg_over = DriverConfig { overlap: true, collect_pdfs: true, ..Default::default() };
        let sync = run_distributed_with(&s, 3, 1, 40, &[], cfg_sync);
        let over = run_distributed_with(&s, 3, 1, 40, &[], cfg_over);
        assert!(!sync.has_nan() && !over.has_nan());
        let (a, b) = (sync.pdf_dump(), over.pdf_dump());
        assert!(!a.is_empty());
        assert_eq!(a, b, "sparse overlap deviates from sync");
    }

    #[test]
    fn balanced_parts_use_every_thread() {
        let mut v: Vec<u32> = (0..9).collect();
        let parts = balanced_parts(&mut v, 4);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![3, 2, 2, 2]);
        let mut v: Vec<u32> = (0..3).collect();
        assert_eq!(balanced_parts(&mut v, 8).len(), 3, "never more parts than items");
        let mut v: Vec<u32> = (0..8).collect();
        let parts = balanced_parts(&mut v, 4);
        assert!(parts.iter().all(|p| p.len() == 2));
        // Order is preserved.
        let flat: Vec<u32> = parts.iter().flat_map(|p| p.iter().copied()).collect();
        assert_eq!(flat, (0..8).collect::<Vec<u32>>());
    }
}
