//! Checkpoint/restart resilience for the distributed time loop.
//!
//! The paper's trillion-cell runs occupy full machines (147k–458k
//! cores) for hours; at that scale component failure is a *when*, not
//! an *if*, and waLBerla answers it by checkpointing its fully
//! distributed block structure. This module is that answer for our
//! thread-backed substrate: [`run_distributed_resilient`] wraps the
//! driver schedules (synchronous and overlapped) with
//!
//! * **bounded waits** — every ghost receive carries
//!   [`ResilienceConfig::step_timeout`], so a dead or wedged neighbor
//!   surfaces as a [`trillium_comm::CommError`] instead of a hang;
//! * **coordinated checkpointing** — every
//!   [`ResilienceConfig::checkpoint_every`] steps the cohort runs
//!   [`Communicator::agree_all`], which doubles as a barrier: a `true`
//!   verdict proves every rank reached the same step with no data
//!   message in flight, so the per-rank [`save_forest`] snapshots taken
//!   right after form a globally consistent cut;
//! * **rollback recovery** — on any failure (fail-stop crash announced
//!   by the fault plan, receive timeout, failed agreement) every rank
//!   joins [`Communicator::recovery_sync`], drains all stale traffic,
//!   restores its slice from the last checkpoint and replays. Replay is
//!   deterministic, so the final state is bitwise identical to an
//!   unfaulted run — pinned by the `resilience` integration tests.
//!
//! Recovery converges because injected message faults draw fresh
//! sequence numbers on replay (a capped or probabilistic plan
//! eventually runs clean) and a fail-stop crash is one-shot. The
//! matching analytical question — how often *should* one checkpoint on
//! a machine with a given MTBF — is answered by `scaling::resilience`
//! (Young/Daly), not here.

use crate::blocksim::BlockSim;
use crate::checkpoint::{restore_forest, save_forest, RestoreError};
use crate::driver::{
    dump_pdfs, exchange_ghosts, fold_obs, for_each_block, locate_probes, map_each_block,
    measure_forces, overlapped_step, plan_run, DriverConfig, GhostCtx, RankResult, RunPlan,
    RunResult, M_STEP_SECONDS,
};
use crate::scenario::Scenario;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use trillium_blockforest::{BlockId, DistributedForest};
use trillium_comm::{CommError, Communicator, FaultConfig, FaultEvent, World};
use trillium_kernels::SweepStats;
use trillium_obs::{Recorder, SpanKind};

/// Configuration of the resilient schedule.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Steps between coordinated checkpoints (K). The initial state
    /// counts as checkpoint zero, so recovery is possible from step one.
    pub checkpoint_every: u64,
    /// Upper bound on any single ghost receive and on the checkpoint
    /// agreement — the failure detector's patience.
    pub step_timeout: Duration,
    /// Upper bound on each wait inside the recovery barrier. Must
    /// comfortably exceed [`ResilienceConfig::step_timeout`]: a rank
    /// that noticed nothing keeps stepping until its next agreement
    /// point times out, and only then joins recovery.
    pub recovery_timeout: Duration,
    /// Recoveries after which a rank gives up (returning
    /// [`RecoveryError::TooManyRecoveries`]) instead of thrashing
    /// forever against a persistent failure.
    pub max_recoveries: u32,
    /// Deterministic fault plan installed on every rank (None = clean
    /// run; the resilient schedule then only adds the timeouts).
    pub fault: Option<FaultConfig>,
    /// The wrapped schedule (synchronous or overlapped, PDF dumps).
    pub driver: DriverConfig,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            checkpoint_every: 10,
            step_timeout: Duration::from_secs(5),
            recovery_timeout: Duration::from_secs(30),
            max_recoveries: 16,
            fault: None,
            driver: DriverConfig::default(),
        }
    }
}

/// Terminal resilience failures: conditions the rollback protocol
/// cannot recover from, surfaced to the caller as an error instead of a
/// rank panic (which would poison the whole thread-backed world and
/// hide the cause behind a generic join failure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// The cohort exhausted [`ResilienceConfig::max_recoveries`]
    /// rollbacks without completing the run — a persistent failure no
    /// amount of replay fixes.
    TooManyRecoveries {
        /// Rank that gave up (recovery is global, so usually all do).
        rank: u32,
        /// Completed rollback recoveries before giving up.
        attempts: u32,
    },
    /// The recovery barrier itself failed: a peer never joined within
    /// [`ResilienceConfig::recovery_timeout`], so no consistent restore
    /// point could be negotiated.
    CohortUnrecoverable {
        /// Rank reporting the failed barrier.
        rank: u32,
        /// The communication failure that broke the barrier.
        error: CommError,
    },
    /// The negotiated restore step is not in this rank's local
    /// checkpoint history — the retention policy and the negotiation
    /// disagree (a protocol invariant violation, kept as a defined
    /// error rather than an assert).
    MissingCheckpoint {
        /// Rank missing the snapshot.
        rank: u32,
        /// The step the cohort agreed to restore.
        step: u64,
    },
    /// A locally held checkpoint failed to deserialize — stable storage
    /// corruption.
    CorruptCheckpoint {
        /// Rank holding the corrupt snapshot.
        rank: u32,
        /// The decode failure.
        error: RestoreError,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::TooManyRecoveries { rank, attempts } => {
                write!(f, "rank {rank}: gave up after {attempts} recoveries")
            }
            RecoveryError::CohortUnrecoverable { rank, error } => {
                write!(f, "rank {rank}: cohort unrecoverable: {error}")
            }
            RecoveryError::MissingCheckpoint { rank, step } => {
                write!(f, "rank {rank}: negotiated checkpoint for step {step} not held locally")
            }
            RecoveryError::CorruptCheckpoint { rank, error } => {
                write!(f, "rank {rank}: checkpoint unreadable: {error:?}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Per-rank resilience accounting.
#[derive(Clone, Debug)]
pub struct RankResilience {
    /// Rank index.
    pub rank: u32,
    /// Rollback recoveries this rank participated in (identical on all
    /// ranks — recovery is a global event).
    pub recoveries: u32,
    /// Steps re-executed due to rollbacks (work lost to failures).
    pub replayed_steps: u64,
    /// Checkpoints taken, including the initial state.
    pub checkpoints: u32,
    /// This rank's injected failure trace, in injection order — bitwise
    /// reproducible for a given fault seed.
    pub fault_events: Vec<FaultEvent>,
}

/// Outcome of a resilient run: the usual [`RunResult`] plus the
/// resilience ledger.
#[derive(Clone, Debug)]
pub struct ResilientRunResult {
    /// Per-rank simulation results (steps counts the survivor timeline,
    /// not replays).
    pub run: RunResult,
    /// Per-rank resilience accounting, ordered by rank.
    pub reports: Vec<RankResilience>,
}

impl ResilientRunResult {
    /// Global recovery count (max over ranks; identical on all in a
    /// completed run).
    pub fn recoveries(&self) -> u32 {
        self.reports.iter().map(|r| r.recoveries).max().unwrap_or(0)
    }

    /// Total steps re-executed across ranks.
    pub fn replayed_steps(&self) -> u64 {
        self.reports.iter().map(|r| r.replayed_steps).sum()
    }

    /// Checkpoints taken (rank 0's count).
    pub fn checkpoints(&self) -> u32 {
        self.reports.first().map(|r| r.checkpoints).unwrap_or(0)
    }

    /// The whole run's failure trace as `(rank, event)`, rank-ordered.
    /// Two runs with the same scenario and fault seed produce identical
    /// traces — the deterministic-simulation property the fault layer
    /// guarantees.
    pub fn failure_trace(&self) -> Vec<(u32, FaultEvent)> {
        self.reports
            .iter()
            .flat_map(|r| r.fault_events.iter().map(move |e| (r.rank, e.clone())))
            .collect()
    }
}

/// Runs `scenario` under the resilient schedule: bounded-wait ghost
/// exchange, a coordinated checkpoint every
/// [`ResilienceConfig::checkpoint_every`] steps, and rollback recovery
/// on failure. With [`ResilienceConfig::fault`] set, the deterministic
/// fault plan is installed on every rank. Results (probes, PDFs, mass)
/// are bitwise identical to the corresponding non-resilient run.
///
/// Unrecoverable conditions (recovery budget exhausted, a broken
/// recovery barrier, unreadable stable storage) come back as
/// [`RecoveryError`] — the lowest-ranked report when several ranks fail
/// together, which they usually do: recovery is a global event.
pub fn run_distributed_resilient(
    scenario: &Scenario,
    num_procs: u32,
    threads_per_rank: usize,
    steps: u64,
    probes: &[[i64; 3]],
    cfg: &ResilienceConfig,
) -> Result<ResilientRunResult, RecoveryError> {
    let plan = plan_run(scenario, num_procs);
    let f = |comm: Communicator| {
        drive_rank_resilient(comm, &plan, scenario, threads_per_rank, steps, probes, cfg)
    };
    let results = match &cfg.fault {
        Some(fc) => World::run_with_faults(num_procs, fc.clone(), f),
        None => World::run(num_procs, f),
    };
    let mut ranks = Vec::with_capacity(results.len());
    let mut reports = Vec::with_capacity(results.len());
    for r in results {
        let (rank, rep) = r?;
        ranks.push(rank);
        reports.push(rep);
    }
    Ok(ResilientRunResult { run: RunResult { steps, ranks }, reports })
}

/// Runs one rank of a resilient distributed simulation on a
/// caller-provided communicator — the re-entrant per-rank entry point
/// behind [`run_distributed_resilient`]. Fault plans travel with the
/// communicator (install them via `World::connect`'s fault argument),
/// so the config's [`ResilienceConfig::fault`] field is not consulted
/// here.
#[allow(clippy::too_many_arguments)]
pub fn drive_rank_resilient(
    comm: Communicator,
    plan: &RunPlan,
    scenario: &Scenario,
    threads_per_rank: usize,
    steps: u64,
    probes: &[[i64; 3]],
    cfg: &ResilienceConfig,
) -> Result<(RankResult, RankResilience), RecoveryError> {
    let view = &plan.views[comm.rank() as usize];
    resilient_rank_loop(comm, view, scenario, threads_per_rank, steps, probes, cfg, plan.epoch)
}

#[allow(clippy::too_many_arguments)]
fn resilient_rank_loop(
    mut comm: Communicator,
    view: &DistributedForest,
    scenario: &Scenario,
    threads: usize,
    steps: u64,
    probes: &[[i64; 3]],
    rc: &ResilienceConfig,
    epoch: Instant,
) -> Result<(RankResult, RankResilience), RecoveryError> {
    let rank = comm.rank();
    let rec = Recorder::with_epoch(rank, rc.driver.obs, epoch);
    let mut blocks: Vec<BlockSim> = view.blocks.iter().map(|lb| scenario.build_block(lb)).collect();
    crate::driver::count_kernel_fallbacks(&rec, &blocks);
    let index_of: HashMap<BlockId, usize> =
        view.blocks.iter().enumerate().map(|(i, b)| (b.id, i)).collect();
    let ids: Vec<u64> = view.blocks.iter().map(|b| b.id.pack()).collect();

    let mass_initial: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let energy_initial: f64 = blocks.iter().map(BlockSim::kinetic_energy).sum();
    let mut stats = SweepStats::default();
    let mut ctx = GhostCtx::new();
    let mut force_series: Vec<[f64; 3]> = Vec::new();
    let rel = scenario.relaxation;
    let k = rc.checkpoint_every.max(1);
    let snap = |blocks: &[BlockSim], t: u64| {
        let framed: Vec<(u64, &BlockSim)> = ids.iter().copied().zip(blocks.iter()).collect();
        save_forest(t, &framed)
    };

    // Checkpoint zero: the initial state, before any step. In a real
    // deployment this buffer lives on the parallel file system; here the
    // in-memory copy models stable storage that survives the fail-stop
    // crash (the "restarted from the pool" replacement re-reads it).
    // The runtime keeps the newest THREE checkpoints, not one: a
    // checkpoint agreement can be torn by a failure (some ranks receive
    // the commit verdict, a straggler times out first), and consecutive
    // torn commits stagger the per-rank histories by up to two epochs.
    // Recovery then negotiates the newest step *everyone* still owns —
    // `recovery_sync` intersects the full held-step sets, so a snapshot
    // this rank committed eagerly is never picked unless every peer
    // holds it too. Three deep is the smallest history for which the
    // intersection provably stays non-empty under that staggering.
    let mut ckpts: Vec<(u64, Vec<u8>, SweepStats)> = vec![(0, snap(&blocks, 0), stats)];
    let mut rep = RankResilience {
        rank,
        recoveries: 0,
        replayed_steps: 0,
        checkpoints: 1,
        fault_events: Vec::new(),
    };

    let mut t: u64 = 0;
    let mut need_recovery = false;
    // `|| need_recovery` is load-bearing: a failure at the *final*
    // agreement (t already == steps) must loop this rank back into
    // recovery_sync — exiting instead would strand the rolled-back
    // peers in the recovery barrier and abort the whole run.
    while t < steps || need_recovery {
        // A fail-stop crash scheduled for this step fires before any
        // sends; `crash_due` broadcasts the failure notes (the emulated
        // failure detector) and the victim falls through to recovery —
        // modeling the replacement process restarted from the pool.
        if need_recovery || comm.crash_due(t) {
            // The whole rollback (barrier, restore, bookkeeping) is one
            // `Recovery` span; the guard closes at the `continue`.
            let _rg = rec.span(SpanKind::Recovery);
            need_recovery = false;
            // Give up *before* attempting one more rollback: the
            // previous formulation incremented first and reported
            // `recoveries - 1`, so the panic message was one short of
            // the rollbacks actually burned when the budget ran out.
            if rep.recoveries >= rc.max_recoveries {
                return Err(RecoveryError::TooManyRecoveries { rank, attempts: rep.recoveries });
            }
            rep.recoveries += 1;
            let held: Vec<u64> = ckpts.iter().map(|c| c.0).collect();
            let restore_step = comm
                .recovery_sync(rc.recovery_timeout, &held)
                .map_err(|error| RecoveryError::CohortUnrecoverable { rank, error })?;
            // Snapshots newer than the agreed cut were committed on only
            // part of the cohort — inconsistent, discard them.
            ckpts.retain(|c| c.0 <= restore_step);
            let (_, bytes, ckpt_stats) = match ckpts.last() {
                Some(c) if c.0 == restore_step => c,
                _ => return Err(RecoveryError::MissingCheckpoint { rank, step: restore_step }),
            };
            let (_, restored) = restore_forest(bytes, scenario.boundary)
                .map_err(|error| RecoveryError::CorruptCheckpoint { rank, error })?;
            blocks = restored.into_iter().map(|(_, b)| b).collect();
            debug_assert_eq!(blocks.len(), view.blocks.len());
            // Checkpoint wire format carries neither the collision
            // operator nor the backend (both scenario-global); re-stamp
            // so replay collides identically.
            for b in &mut blocks {
                b.collision = scenario.collision;
                b.backend = scenario.backend;
            }
            rep.replayed_steps += t.saturating_sub(restore_step);
            t = restore_step;
            stats = *ckpt_stats;
            // One force sample lands per completed step, so replaying
            // from `restore_step` must drop the samples of the undone
            // steps — replay then re-records them bitwise identically.
            force_series.truncate(restore_step as usize);
            continue;
        }

        // One time step under the wrapped schedule, every receive
        // bounded by the step timeout. An error leaves the blocks in a
        // torn mid-step state — discarded by the rollback.
        rec.set_step(t);
        let step_span = rec.span(SpanKind::Step);
        let step_result = if rc.driver.overlap {
            overlapped_step(
                &mut comm,
                view,
                &mut blocks,
                &index_of,
                &mut ctx,
                t,
                rel,
                threads,
                &rec,
                &mut stats,
                Some(rc.step_timeout),
                rc.driver.force_mask,
                &mut force_series,
            )
        } else {
            (|| {
                let _ = exchange_ghosts(
                    &mut comm,
                    view,
                    &mut blocks,
                    &index_of,
                    &mut ctx,
                    t,
                    Some(rc.step_timeout),
                    &rec,
                )?;
                {
                    let _b = rec.span(SpanKind::Boundary);
                    for_each_block(&mut blocks, threads, |b| b.apply_boundaries());
                }
                // Everything after the exchange is infallible, so the
                // sample count stays one per *completed* step.
                if let Some(mask) = rc.driver.force_mask {
                    force_series.push(measure_forces(&blocks, mask));
                }
                let kernel = rec.span(SpanKind::Kernel);
                let step_stats: Vec<SweepStats> =
                    map_each_block(&mut blocks, threads, move |b| b.stream_collide(rel));
                drop(kernel);
                for s in step_stats {
                    stats.merge(s);
                }
                Ok(())
            })()
        };
        // Replayed (failed) steps still spend real time; record them in
        // the step histogram like any other.
        rec.metrics().observe(M_STEP_SECONDS, step_span.finish());
        if step_result.is_err() {
            // Tell the cohort (peers see their next timeout classified
            // as Interrupted) and roll back.
            comm.request_recovery();
            need_recovery = true;
            continue;
        }
        t += 1;

        // Checkpoint epoch: the agreement doubles as a barrier, so a
        // true verdict makes the per-rank snapshots a consistent global
        // cut. The final step always agrees (but never snapshots); a
        // failed final agreement re-enters the loop via `need_recovery`,
        // rolls back, replays, and re-agrees at `t == steps` — so a rank
        // only exits once the whole cohort reached the end cleanly.
        if t % k == 0 || t == steps {
            let _cg = rec.span(SpanKind::Checkpoint);
            match comm.agree_all(true, rc.step_timeout) {
                Ok(true) => {
                    if t % k == 0 && t < steps {
                        ckpts.push((t, snap(&blocks, t), stats));
                        if ckpts.len() > 3 {
                            ckpts.remove(0);
                        }
                        rep.checkpoints += 1;
                    }
                }
                Ok(false) | Err(_) => {
                    comm.request_recovery();
                    need_recovery = true;
                }
            }
        }
    }

    let probe_out = locate_probes(scenario, view, &blocks, probes);
    let pdfs = if rc.driver.collect_pdfs { dump_pdfs(view, &blocks) } else { Vec::new() };
    let mass_final: f64 = blocks.iter().map(BlockSim::fluid_mass).sum();
    let energy_final: f64 = blocks.iter().map(BlockSim::kinetic_energy).sum();
    let has_nan = blocks.iter().any(BlockSim::has_nan);
    rep.fault_events = comm.fault_events();
    {
        let m = rec.metrics();
        for e in &rep.fault_events {
            match e {
                FaultEvent::Dropped { .. } => m.add("fault.drops", 1),
                FaultEvent::Duplicated { .. } => m.add("fault.dups", 1),
                FaultEvent::Delayed { .. } => m.add("fault.delays", 1),
                FaultEvent::Crashed { .. } => m.add("fault.crashes", 1),
            }
        }
        m.add("resilience.checkpoints", u64::from(rep.checkpoints));
        m.add("resilience.rollbacks", u64::from(rep.recoveries));
        m.add("resilience.replayed_steps", rep.replayed_steps);
    }
    let f = fold_obs(rec, &comm);
    Ok((
        RankResult {
            rank,
            num_blocks: blocks.len(),
            stats,
            kernel_time: f.kernel,
            comm_time: f.comm,
            boundary_time: f.boundary,
            overlap_hidden: f.overlap_hidden,
            ghost_stall_time: f.stall,
            mass_initial,
            mass_final,
            energy_initial,
            energy_final,
            force_series,
            probes: probe_out,
            pdfs,
            has_nan,
            wall_time: f.wall,
            obs: f.obs,
            rebalance: None,
        },
        rep,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_distributed_with;

    fn pdf_cfg() -> DriverConfig {
        DriverConfig { collect_pdfs: true, ..DriverConfig::default() }
    }

    #[test]
    fn clean_resilient_run_matches_plain_driver_bitwise() {
        let scenario = Scenario::lid_driven_cavity(16, 2, 0.05, 0.08);
        let plain = run_distributed_with(&scenario, 4, 1, 12, &[], pdf_cfg());
        let rc = ResilienceConfig {
            checkpoint_every: 5,
            driver: pdf_cfg(),
            ..ResilienceConfig::default()
        };
        let res = run_distributed_resilient(&scenario, 4, 1, 12, &[], &rc).expect("clean run");
        assert_eq!(res.recoveries(), 0);
        assert_eq!(res.replayed_steps(), 0);
        // initial + steps 5 and 10
        assert_eq!(res.checkpoints(), 3);
        assert_eq!(plain.pdf_dump(), res.run.pdf_dump());
    }

    #[test]
    fn crash_rolls_back_and_replays_to_the_same_state() {
        let scenario = Scenario::lid_driven_cavity(16, 2, 0.05, 0.08);
        let plain = run_distributed_with(&scenario, 4, 1, 10, &[], pdf_cfg());
        let rc = ResilienceConfig {
            checkpoint_every: 4,
            step_timeout: Duration::from_secs(2),
            fault: Some(FaultConfig::new(7).with_crash(2, 6)),
            driver: pdf_cfg(),
            ..ResilienceConfig::default()
        };
        let res =
            run_distributed_resilient(&scenario, 4, 1, 10, &[], &rc).expect("crash is recoverable");
        assert_eq!(res.recoveries(), 1);
        // Rolled back from step 6 to the step-4 checkpoint on every rank.
        assert_eq!(res.replayed_steps(), 4 * 2);
        assert_eq!(plain.pdf_dump(), res.run.pdf_dump());
        assert!(res
            .failure_trace()
            .iter()
            .any(|(r, e)| *r == 2 && matches!(e, FaultEvent::Crashed { step: 6 })));
    }

    /// Regression: a one-sided message drop in the *last* checkpoint
    /// window only surfaces at the final agreement, where `t` already
    /// equals `steps`. The healthy rank used to exit the time loop with
    /// `need_recovery` still pending, stranding the rolled-back peer in
    /// `recovery_sync` and aborting the whole run ("cohort
    /// unrecoverable"). Both ranks must instead roll back, replay, and
    /// finish bitwise identical to the unfaulted run.
    #[test]
    fn failure_in_final_checkpoint_window_recovers() {
        // Seeds picked so the single capped drop is one-sided: seed 6
        // stalls rank 1's receive (rank 0, the agreement root, sees the
        // missing vote), seed 9 stalls rank 0's (rank 1 waits on the
        // verdict and is interrupted) — covering both exit paths.
        for seed in [6, 9] {
            let scenario = Scenario::lid_driven_cavity(16, 2, 0.05, 0.08);
            let plain = run_distributed_with(&scenario, 2, 1, 1, &[], pdf_cfg());
            let rc = ResilienceConfig {
                checkpoint_every: 100,
                step_timeout: Duration::from_secs(1),
                recovery_timeout: Duration::from_secs(10),
                fault: Some(FaultConfig::new(seed).with_drops(0.02).with_fault_cap(1)),
                driver: pdf_cfg(),
                ..ResilienceConfig::default()
            };
            let res = run_distributed_resilient(&scenario, 2, 1, 1, &[], &rc)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(res.recoveries(), 1, "seed {seed}: the drop must cause one rollback");
            assert_eq!(plain.pdf_dump(), res.run.pdf_dump(), "seed {seed}: replay must converge");
        }
    }

    /// A persistent failure must surface as a typed error with a correct
    /// attempt count, not a rank panic: with `max_recoveries: 0` the
    /// very first rollback is refused.
    #[test]
    fn exhausted_recovery_budget_is_a_typed_error() {
        let scenario = Scenario::lid_driven_cavity(16, 2, 0.05, 0.08);
        let rc = ResilienceConfig {
            checkpoint_every: 4,
            step_timeout: Duration::from_secs(2),
            recovery_timeout: Duration::from_secs(4),
            max_recoveries: 0,
            fault: Some(FaultConfig::new(7).with_crash(2, 6)),
            ..ResilienceConfig::default()
        };
        let err = run_distributed_resilient(&scenario, 4, 1, 10, &[], &rc)
            .expect_err("zero budget cannot absorb a crash");
        match err {
            RecoveryError::TooManyRecoveries { attempts, .. } => {
                assert_eq!(attempts, 0, "budget checked before burning another rollback");
                assert!(err.to_string().contains("gave up after 0 recoveries"));
            }
            // Ranks that noticed the dead peer only after the victim
            // already gave up see the broken barrier instead; either
            // report is a faithful account of the same failure.
            RecoveryError::CohortUnrecoverable { .. } => {}
            other => panic!("unexpected error: {other}"),
        }
    }

    /// Regression seed scan for the checkpoint-retention bug: under
    /// sustained message drops, consecutive torn checkpoint commits
    /// stagger the per-rank histories, and the 2-deep history used to
    /// prune a step the cohort later negotiated ("missing checkpoint"
    /// panic). With intersection negotiation over a 3-deep history every
    /// seed must either complete bitwise identical to the unfaulted run
    /// or fail with a typed error — never a missing local snapshot.
    #[test]
    fn drop_seed_scan_never_loses_a_negotiated_checkpoint() {
        let scenario = Scenario::lid_driven_cavity(16, 2, 0.05, 0.08);
        let plain = run_distributed_with(&scenario, 4, 1, 14, &[], pdf_cfg());
        for seed in 0..12u64 {
            let rc = ResilienceConfig {
                checkpoint_every: 3,
                step_timeout: Duration::from_millis(500),
                recovery_timeout: Duration::from_secs(5),
                fault: Some(FaultConfig::new(seed).with_drops(0.03).with_fault_cap(3)),
                driver: pdf_cfg(),
                ..ResilienceConfig::default()
            };
            match run_distributed_resilient(&scenario, 4, 1, 14, &[], &rc) {
                Ok(res) => assert_eq!(
                    plain.pdf_dump(),
                    res.run.pdf_dump(),
                    "seed {seed}: replay must converge bitwise"
                ),
                Err(e @ RecoveryError::MissingCheckpoint { .. }) => {
                    panic!("seed {seed}: retention pruned a negotiated step: {e}")
                }
                Err(e) => panic!("seed {seed}: capped drops must be recoverable: {e}"),
            }
        }
    }
}
