//! The end-to-end initialization pipeline of paper §2.3.
//!
//! mesh / implicit domain → block forest (hierarchical intersection
//! filtering) → partition-parameter search (optional) → load balancing
//! (Morton curve or graph partitioner) → per-rank distributed views →
//! per-block voxelization (done lazily by the scenario when the driver
//! builds blocks).

use crate::scenario::Scenario;
use std::sync::Arc;
use trillium_blockforest::{
    distribute, morton_balance, search_weak_partition, DistributedForest, SetupForest,
};
use trillium_field::CellFlags;
use trillium_geometry::voxelize::VoxelizeConfig;
use trillium_geometry::{SignedDistance, VascularTree};

/// How blocks are balanced onto processes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Balancer {
    /// Morton space-filling curve (fast, locality-preserving).
    Morton,
    /// Multilevel graph partitioning (the METIS path).
    Graph,
}

/// A fully prepared domain: forest, per-rank views and the scenario that
/// builds block state.
pub struct DomainSetup {
    /// The balanced global forest (setup phase artifact).
    pub forest: SetupForest,
    /// Per-rank distributed views.
    pub views: Vec<DistributedForest>,
    /// The scenario used to build per-block state.
    pub scenario: Scenario,
    /// The resolution chosen (for searches) or given.
    pub dx: f64,
}

impl DomainSetup {
    /// Total fluid cells over all blocks.
    pub fn total_fluid_cells(&self) -> f64 {
        self.forest.total_workload()
    }

    /// Fraction of allocated lattice cells that are fluid.
    pub fn fluid_fraction(&self) -> f64 {
        let per_block: f64 = self.forest.cells_per_block.iter().map(|&c| c as f64).product();
        self.total_fluid_cells() / (per_block * self.forest.num_blocks() as f64)
    }
}

/// Prepares a signed-distance domain for `num_procs` ranks at resolution
/// `dx`, with inlet/outlet colors mapped to velocity/pressure conditions.
#[allow(clippy::too_many_arguments)]
pub fn setup_domain(
    name: &str,
    sdf: Arc<dyn SignedDistance>,
    dx: f64,
    cells_per_block: [usize; 3],
    num_procs: u32,
    balancer: Balancer,
    viscosity: f64,
    inflow: [f64; 3],
) -> DomainSetup {
    let config = VoxelizeConfig {
        color_map: vec![
            (VascularTree::INLET_COLOR, CellFlags::VELOCITY),
            (VascularTree::OUTLET_COLOR, CellFlags::PRESSURE),
        ],
        ..Default::default()
    };
    let scenario =
        Scenario::from_sdf(name, sdf.clone(), dx, cells_per_block, viscosity, inflow, 1.0, config);
    let mut forest = SetupForest::from_domain(sdf.as_ref(), dx, cells_per_block);
    match balancer {
        Balancer::Morton => morton_balance(&mut forest, num_procs),
        Balancer::Graph => {
            crate::loadbalance::graph_balance(&mut forest, num_procs, 1);
        }
    }
    let views = distribute(&forest);
    DomainSetup { forest, views, scenario, dx }
}

/// Hybrid-parallel domain classification (paper §2.3): "the process of
/// deciding which blocks are required by the simulation is hybridly
/// parallelized. First all blocks are randomly scattered among the
/// processes to avoid load imbalances, then evaluation takes place [...]
/// Finally, the result is gathered on all processes."
///
/// Every rank computes the same candidate root grid, classifies a
/// scattered subset of root-grid slabs against the domain, serializes its
/// `(id, workload)` pairs, and an allgather reconstructs the identical
/// global forest on every rank. The result is exactly
/// [`SetupForest::from_domain`]'s, independent of the rank count
/// (asserted by tests).
pub fn parallel_classify<S: SignedDistance + ?Sized>(
    comm: &mut trillium_comm::Communicator,
    sdf: &S,
    dx: f64,
    cells_per_block: [usize; 3],
    samples: Option<usize>,
) -> SetupForest {
    use trillium_blockforest::BlockId;

    let (domain, roots) = SetupForest::candidate_grid(sdf, dx, cells_per_block);
    // Work units: slabs along the longest axis, scattered deterministically
    // (a seeded shuffle — "randomly scattered to avoid load imbalances").
    let axis = (0..3).max_by_key(|&a| roots[a]).unwrap();
    let slabs: Vec<usize> = {
        let mut s: Vec<usize> = (0..roots[axis]).collect();
        // Fisher–Yates with a fixed LCG so all ranks agree on the schedule.
        let mut state = 0x9E3779B97F4A7C15u64;
        for i in (1..s.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.swap(i, (state >> 33) as usize % (i + 1));
        }
        s
    };

    // Classify my share.
    let mut mine = Vec::new();
    for (w, &slab) in slabs.iter().enumerate() {
        if w as u32 % comm.size() != comm.rank() {
            continue;
        }
        let range = |a: usize| if a == axis { [slab, slab + 1] } else { [0, roots[a]] };
        mine.extend(SetupForest::classify_range(
            sdf,
            &domain,
            roots,
            cells_per_block,
            samples,
            range(0),
            range(1),
            range(2),
        ));
    }

    // Serialize (id, workload) pairs and gather on all ranks.
    let mut payload = Vec::with_capacity(mine.len() * 16);
    for b in &mine {
        payload.extend_from_slice(&b.id.pack().to_le_bytes());
        payload.extend_from_slice(&(b.workload as u64).to_le_bytes());
    }
    let gathered = comm.allgather_bytes(payload);

    let mut blocks = Vec::new();
    for part in gathered {
        for rec in part.chunks_exact(16) {
            let id = BlockId::unpack(u64::from_le_bytes(rec[..8].try_into().unwrap()));
            let workload = u64::from_le_bytes(rec[8..].try_into().unwrap()) as f64;
            blocks.push(SetupForest::block_from_id(
                &domain,
                roots,
                cells_per_block,
                id,
                workload,
                0,
            ));
        }
    }
    blocks.sort_by_key(|b| b.id);
    SetupForest { domain, roots, cells_per_block, blocks, num_processes: 0, periodic: [false; 3] }
}

/// Weak-scaling setup: searches the resolution whose partitioning yields
/// (up to) `target_blocks` blocks of the given size, then balances onto
/// `num_procs` ranks. This is the paper's "one block per process" weak
/// scaling configuration when `target_blocks == num_procs`.
pub fn setup_weak_scaling(
    sdf: &dyn SignedDistance,
    cells_per_block: [usize; 3],
    target_blocks: usize,
    num_procs: u32,
) -> (SetupForest, f64) {
    let search = search_weak_partition(sdf, cells_per_block, target_blocks, 28);
    let mut forest = search.forest;
    morton_balance(&mut forest, num_procs);
    (forest, search.dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_distributed;
    use trillium_geometry::vec3::vec3;
    use trillium_geometry::{AnalyticSdf, VascularTreeParams};

    /// Full pipeline on a tube domain: setup, distribute, run, and verify
    /// that inflow/outflow actually drive a flow through the vessel.
    #[test]
    fn tube_domain_end_to_end() {
        // A capsule "vessel" along z. Use the vascular-tree SDF contract:
        // analytic capsule with manual inlet/outlet colors is emulated by
        // a 1-generation tree.
        let tree = Arc::new(trillium_geometry::VascularTree::generate(&VascularTreeParams {
            generations: 1,
            segments_per_branch: 1,
            tortuosity: 0.0,
            root_radius: 1.2,
            root_length: 6.0,
            ..Default::default()
        }));
        let setup = setup_domain(
            "tube",
            tree,
            0.25,
            [8, 8, 8],
            2,
            Balancer::Morton,
            0.08,
            [0.0, 0.0, 0.04],
        );
        assert!(setup.total_fluid_cells() > 500.0, "{}", setup.total_fluid_cells());
        assert!(setup.fluid_fraction() > 0.05 && setup.fluid_fraction() < 1.0);

        let r = run_distributed(&setup.scenario, 2, 1, 60);
        assert!(!r.has_nan());
        // Inflow drives mass through: fluid momentum in +z somewhere.
        // (checked indirectly: mass grows then stabilizes or flow exists;
        // here we check the run executed real fluid work)
        assert!(r.total_stats().fluid_cells > 0);
    }

    #[test]
    fn weak_scaling_setup_targets_one_block_per_process() {
        let s =
            AnalyticSdf::Capsule { a: vec3(0.0, 0.0, 0.0), b: vec3(5.0, 0.0, 0.0), radius: 0.4 };
        let (forest, dx) = setup_weak_scaling(&s, [8, 8, 8], 32, 32);
        assert!(forest.num_blocks() <= 32);
        assert!(forest.num_blocks() >= 16);
        assert!(dx > 0.0);
        assert_eq!(forest.num_processes, 32);
    }

    /// The §2.3 hybrid-parallel initialization: any rank count produces
    /// the exact forest the serial path computes.
    #[test]
    fn parallel_classify_matches_serial() {
        use trillium_comm::World;
        let tree = trillium_geometry::VascularTree::generate(&VascularTreeParams {
            generations: 4,
            segments_per_branch: 2,
            ..Default::default()
        });
        let serial = SetupForest::from_domain(&tree, 0.3, [8, 8, 8]);
        for procs in [1u32, 3, 7] {
            let forests = World::run(procs, |mut comm| {
                parallel_classify(&mut comm, &tree, 0.3, [8, 8, 8], None)
            });
            for f in &forests {
                assert_eq!(f.num_blocks(), serial.num_blocks(), "{procs} ranks");
                assert_eq!(f.roots, serial.roots);
                for (a, b) in f.blocks.iter().zip(&serial.blocks) {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.workload, b.workload);
                    assert_eq!(a.coords, b.coords);
                    assert_eq!(a.fully_inside, b.fully_inside);
                }
            }
        }
    }

    #[test]
    fn graph_balancer_path_works() {
        let sdf = Arc::new(AnalyticSdf::Sphere { center: vec3(0.0, 0.0, 0.0), radius: 1.0 });
        let setup =
            setup_domain("sphere", sdf, 0.08, [6, 6, 6], 4, Balancer::Graph, 0.05, [0.0; 3]);
        assert_eq!(setup.views.len(), 4);
        assert!(setup.forest.imbalance() < 1.25, "imbalance {}", setup.forest.imbalance());
    }
}
