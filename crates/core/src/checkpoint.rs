//! Checkpointing: serialize and restore the PDF state of blocks, so long
//! simulations can be split across runs (complementing the §2.2 workflow
//! where the *block structure* is precomputed and loaded from file).
//!
//! The format is little-endian binary: a header with the block shape, a
//! flag digest, and the block's update scheme, followed by the raw
//! interior+ghost PDF data. Restoring into a block with different shape
//! or flags is rejected.
//!
//! For two-field (pull) blocks *both* buffers travel: cells outside the
//! sparse sweep's coverage (deep solid interior, unexchanged ghost
//! corners) are never rewritten, so their values alternate between the
//! two buffers with step parity. A checkpoint that carried only the
//! source field would replay those cells with the wrong parity whenever
//! the restore step is odd — bitwise divergence from the unfaulted run.
//!
//! In-place (AA-pattern) blocks have no second half: the entire state,
//! including never-touched cells, lives in one buffer whose storage
//! convention is identified by the field's parity bit. Their checkpoints
//! carry the scheme byte (encoding the parity) and the single buffer —
//! roughly half the payload of a pull checkpoint.

use crate::blocksim::{BlockSim, UpdateScheme};
use bytes::{Buf, BufMut};

/// Magic bytes of the checkpoint format.
pub const MAGIC: &[u8; 4] = b"TCP1";

/// Wire encoding of the update scheme + storage parity.
fn scheme_byte(block: &BlockSim) -> u8 {
    match block.scheme {
        UpdateScheme::Pull => 0,
        UpdateScheme::InPlace => {
            if block.src.parity() {
                2
            } else {
                1
            }
        }
    }
}

/// Applies a wire scheme byte to a freshly restored block.
fn apply_scheme(block: &mut BlockSim, byte: u8) -> Result<(), RestoreError> {
    match byte {
        0 => {
            block.scheme = UpdateScheme::Pull;
            block.src.set_parity(false);
        }
        1 | 2 => {
            block.scheme = UpdateScheme::InPlace;
            block.src.set_parity(byte == 2);
        }
        _ => return Err(RestoreError::BadScheme),
    }
    Ok(())
}

/// Serializes a block's PDF state. Pull blocks carry both halves of the
/// double buffer; in-place blocks carry their single buffer only.
pub fn save_block(block: &BlockSim) -> Vec<u8> {
    let s = block.shape;
    let both = block.scheme == UpdateScheme::Pull;
    let halves = if both { 2 } else { 1 };
    let mut buf = Vec::with_capacity(4 + 16 + 8 + 1 + s.alloc_cells() * halves * 19 * 8);
    buf.extend_from_slice(MAGIC);
    buf.put_u32_le(s.nx as u32);
    buf.put_u32_le(s.ny as u32);
    buf.put_u32_le(s.nz as u32);
    buf.put_u32_le(s.ghost as u32);
    buf.put_u64_le(flag_digest(block));
    buf.put_u8(scheme_byte(block));
    for v in block.src.data() {
        buf.put_f64_le(*v);
    }
    if both {
        for v in block.dst.data() {
            buf.put_f64_le(*v);
        }
    }
    buf
}

/// Errors from [`restore_block`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// Wrong magic bytes.
    BadMagic,
    /// Block shape does not match the checkpoint.
    ShapeMismatch,
    /// Flag field differs from the checkpointed block's.
    FlagMismatch,
    /// Unknown update-scheme byte.
    BadScheme,
    /// Data ended early.
    Truncated,
}

/// Restores a block's PDF state from a checkpoint written by
/// [`save_block`]. The block must have been built with the same shape and
/// flags (the usual workflow: rebuild the domain from the block-structure
/// file, then restore PDFs).
pub fn restore_block(block: &mut BlockSim, data: &[u8]) -> Result<(), RestoreError> {
    let mut buf = data;
    if buf.len() < 4 + 16 + 8 + 1 || &buf[..4] != MAGIC {
        return Err(RestoreError::BadMagic);
    }
    buf.advance(4);
    let s = block.shape;
    let (nx, ny, nz, ghost) =
        (buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le());
    if (nx as usize, ny as usize, nz as usize, ghost as usize) != (s.nx, s.ny, s.nz, s.ghost) {
        return Err(RestoreError::ShapeMismatch);
    }
    if buf.get_u64_le() != flag_digest(block) {
        return Err(RestoreError::FlagMismatch);
    }
    let scheme = buf.get_u8();
    apply_scheme(block, scheme)?;
    let n = s.alloc_cells() * 19;
    let halves = if scheme == 0 { 2 } else { 1 };
    if buf.len() < halves * n * 8 {
        return Err(RestoreError::Truncated);
    }
    for v in block.src.data_mut() {
        *v = buf.get_f64_le();
    }
    if scheme == 0 {
        for v in block.dst.data_mut() {
            *v = buf.get_f64_le();
        }
    }
    Ok(())
}

/// Magic bytes of the self-contained block format used for migration.
pub const MAGIC_FULL: &[u8; 4] = b"TCP2";

/// Serializes a block *completely*: shape, flag field, and PDF state.
///
/// Unlike [`save_block`], the receiver needs no prior copy of the block —
/// this is the wire format for runtime block migration, where the new
/// owner has never voxelized the block's geometry. Boundary parameters
/// are not included; they are scenario-global and every rank already has
/// them.
pub fn save_block_full(block: &BlockSim) -> Vec<u8> {
    let s = block.shape;
    let both = block.scheme == UpdateScheme::Pull;
    let halves = if both { 2 } else { 1 };
    let mut buf = Vec::with_capacity(4 + 16 + 1 + s.alloc_cells() * (1 + halves * 19 * 8));
    buf.extend_from_slice(MAGIC_FULL);
    buf.put_u32_le(s.nx as u32);
    buf.put_u32_le(s.ny as u32);
    buf.put_u32_le(s.nz as u32);
    buf.put_u32_le(s.ghost as u32);
    buf.put_u8(scheme_byte(block));
    buf.extend_from_slice(block.flags.data());
    for v in block.src.data() {
        buf.put_f64_le(*v);
    }
    if both {
        for v in block.dst.data() {
            buf.put_f64_le(*v);
        }
    }
    buf
}

/// Rebuilds a [`BlockSim`] from a [`save_block_full`] payload.
///
/// The flag field is reconstructed from the wire bytes, the sparse row
/// intervals and kernel tier are re-derived from it (exactly as
/// [`BlockSim::from_flags`] would on first build), then the transported
/// PDF state overwrites the freshly initialized field bit-for-bit.
pub fn restore_block_full(
    data: &[u8],
    boundary: trillium_kernels::BoundaryParams,
) -> Result<BlockSim, RestoreError> {
    use trillium_field::Shape;
    let mut buf = data;
    if buf.len() < 4 + 16 + 1 || &buf[..4] != MAGIC_FULL {
        return Err(RestoreError::BadMagic);
    }
    buf.advance(4);
    let (nx, ny, nz, ghost) =
        (buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le());
    let shape = Shape::new(nx as usize, ny as usize, nz as usize, ghost as usize);
    let cells = shape.alloc_cells();
    let scheme = buf.get_u8();
    if scheme > 2 {
        return Err(RestoreError::BadScheme);
    }
    let halves = if scheme == 0 { 2 } else { 1 };
    if buf.len() < cells * (1 + halves * 19 * 8) {
        return Err(RestoreError::Truncated);
    }
    let mut flags = trillium_field::FlagField::new(shape);
    flags.data_mut().copy_from_slice(&buf[..cells]);
    buf.advance(cells);
    // rho/u only seed the equilibrium that the wire PDFs overwrite next.
    let mut block = BlockSim::from_flags(flags, boundary, 1.0, [0.0; 3]);
    apply_scheme(&mut block, scheme)?;
    for v in block.src.data_mut() {
        *v = buf.get_f64_le();
    }
    if scheme == 0 {
        for v in block.dst.data_mut() {
            *v = buf.get_f64_le();
        }
    }
    Ok(block)
}

/// Magic bytes of the rank-local forest checkpoint format.
pub const MAGIC_FOREST: &[u8; 4] = b"TCF1";

/// Serializes a rank's whole block slice at time step `step` into one
/// framed buffer: per block the packed [`BlockId`] and a length-prefixed
/// [`save_block_full`] payload. This is the stable-storage unit of the
/// resilient driver: one buffer per rank per checkpoint epoch, written
/// at a globally consistent cut, is enough to restart the cohort.
///
/// [`BlockId`]: trillium_blockforest::BlockId
pub fn save_forest(step: u64, blocks: &[(u64, &BlockSim)]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC_FOREST);
    buf.put_u64_le(step);
    buf.put_u32_le(blocks.len() as u32);
    for (id, block) in blocks {
        buf.put_u64_le(*id);
        let body = save_block_full(block);
        buf.put_u64_le(body.len() as u64);
        buf.extend_from_slice(&body);
    }
    buf
}

/// Restores a rank's block slice from a [`save_forest`] buffer: the
/// checkpointed step and the `(packed id, block)` list, in the saved
/// order.
pub fn restore_forest(
    data: &[u8],
    boundary: trillium_kernels::BoundaryParams,
) -> Result<(u64, Vec<(u64, BlockSim)>), RestoreError> {
    let mut buf = data;
    if buf.len() < 4 + 8 + 4 || &buf[..4] != MAGIC_FOREST {
        return Err(RestoreError::BadMagic);
    }
    buf.advance(4);
    let step = buf.get_u64_le();
    let count = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.len() < 16 {
            return Err(RestoreError::Truncated);
        }
        let id = buf.get_u64_le();
        let len = buf.get_u64_le() as usize;
        if buf.len() < len {
            return Err(RestoreError::Truncated);
        }
        out.push((id, restore_block_full(&buf[..len], boundary)?));
        buf.advance(len);
    }
    Ok((step, out))
}

/// FNV-1a digest of the flag field (cheap structural fingerprint).
fn flag_digest(block: &BlockSim) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in block.flags.data() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocksim::boxed_block_flags;
    use trillium_field::{CellFlags, Shape};
    use trillium_kernels::BoundaryParams;
    use trillium_lattice::Relaxation;

    fn cavity_block(n: usize) -> BlockSim {
        let flags = boxed_block_flags(
            Shape::cube(n),
            [
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::VELOCITY),
            ],
        );
        let boundary = BoundaryParams { wall_velocity: [0.05, 0.0, 0.0], ..Default::default() };
        BlockSim::from_flags(flags, boundary, 1.0, [0.0; 3])
    }

    /// The checkpoint workflow: run A for 40 steps; run B for 20 steps,
    /// checkpoint, restore into a fresh block, run 20 more — identical.
    #[test]
    fn resume_is_bitwise_identical() {
        let rel = Relaxation::trt_from_viscosity(0.05);
        let step = |b: &mut BlockSim| {
            b.apply_boundaries();
            b.stream_collide(rel);
        };
        let mut a = cavity_block(8);
        for _ in 0..40 {
            step(&mut a);
        }
        let mut b = cavity_block(8);
        for _ in 0..20 {
            step(&mut b);
        }
        let ckpt = save_block(&b);
        let mut c = cavity_block(8);
        restore_block(&mut c, &ckpt).unwrap();
        for _ in 0..20 {
            step(&mut c);
        }
        use trillium_field::PdfField;
        for (x, y, z) in a.shape.interior().iter() {
            for q in 0..19 {
                assert_eq!(a.src.get(x, y, z, q), c.src.get(x, y, z, q), "at ({x},{y},{z}) q={q}");
            }
        }
    }

    /// The migration serializer: a fully serialized block restores on a
    /// rank that has never seen it, bit-identical in flags and PDFs, and
    /// evolves identically afterwards.
    #[test]
    fn full_roundtrip_is_bitwise_identical() {
        let rel = Relaxation::trt_from_viscosity(0.05);
        let mut a = cavity_block(8);
        for _ in 0..25 {
            a.apply_boundaries();
            a.stream_collide(rel);
        }
        let wire = save_block_full(&a);
        let boundary = BoundaryParams { wall_velocity: [0.05, 0.0, 0.0], ..Default::default() };
        let mut b = restore_block_full(&wire, boundary).unwrap();
        assert_eq!(a.flags.data(), b.flags.data());
        assert_eq!(a.src.data(), b.src.data());
        assert_eq!(a.dst.data(), b.dst.data());
        assert_eq!(a.fluid_cells(), b.fluid_cells());
        for _ in 0..10 {
            a.apply_boundaries();
            a.stream_collide(rel);
            b.apply_boundaries();
            b.stream_collide(rel);
        }
        assert_eq!(a.src.data(), b.src.data());
        assert!((a.fluid_mass() - b.fluid_mass()).abs() == 0.0);
    }

    #[test]
    fn full_restore_rejects_corruption() {
        let a = cavity_block(8);
        let wire = save_block_full(&a);
        let boundary = BoundaryParams::default();
        assert!(matches!(restore_block_full(&wire[..40], boundary), Err(RestoreError::Truncated)));
        assert!(matches!(restore_block_full(b"TCP1....", boundary), Err(RestoreError::BadMagic)));
    }

    /// The resilient driver's stable-storage unit: a whole rank slice
    /// saved at one cut restores to bit-identical blocks with the step
    /// and IDs intact.
    #[test]
    fn forest_roundtrip_is_bitwise_identical() {
        let rel = Relaxation::trt_from_viscosity(0.05);
        let mut blocks = vec![cavity_block(8), cavity_block(6)];
        for b in &mut blocks {
            for _ in 0..15 {
                b.apply_boundaries();
                b.stream_collide(rel);
            }
        }
        let framed: Vec<(u64, &BlockSim)> =
            blocks.iter().enumerate().map(|(i, b)| (1000 + i as u64, b)).collect();
        let wire = save_forest(37, &framed);
        let boundary = BoundaryParams { wall_velocity: [0.05, 0.0, 0.0], ..Default::default() };
        let (step, restored) = restore_forest(&wire, boundary).unwrap();
        assert_eq!(step, 37);
        assert_eq!(restored.len(), 2);
        for ((id, r), (want_id, b)) in restored.iter().zip(&framed) {
            assert_eq!(id, want_id);
            assert_eq!(r.src.data(), b.src.data());
            assert_eq!(r.flags.data(), b.flags.data());
        }
        // Corruption surfaces as an error, never as silent state loss.
        assert!(matches!(restore_forest(&wire[..30], boundary), Err(RestoreError::Truncated)));
        assert!(matches!(
            restore_forest(b"XXXX............", boundary),
            Err(RestoreError::BadMagic)
        ));
    }

    fn inplace_cavity_block(n: usize) -> BlockSim {
        let flags = boxed_block_flags(
            Shape::cube(n),
            [
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::VELOCITY),
            ],
        );
        let boundary = BoundaryParams { wall_velocity: [0.05, 0.0, 0.0], ..Default::default() };
        BlockSim::from_flags_with_scheme(flags, boundary, 1.0, [0.0; 3], UpdateScheme::InPlace)
    }

    /// In-place blocks checkpoint a single buffer: the payload is ~2×
    /// smaller than a pull block's, the parity survives the round trip
    /// (including through an odd restore step), and the resumed run is
    /// bitwise identical to the uninterrupted one.
    #[test]
    fn inplace_checkpoint_is_single_buffer_and_resumes_bitwise() {
        let rel = Relaxation::trt_from_viscosity(0.05);
        let step = |b: &mut BlockSim| {
            b.apply_boundaries();
            b.stream_collide(rel);
        };

        // Size: one PDF buffer instead of two.
        let pull = cavity_block(8);
        let inp = inplace_cavity_block(8);
        let half = inp.shape.alloc_cells() * 19 * 8;
        assert_eq!(save_block(&pull).len() - save_block(&inp).len(), half);
        assert_eq!(save_block_full(&pull).len() - save_block_full(&inp).len(), half);
        assert!(save_block(&inp).len() < save_block(&pull).len() * 6 / 10);

        // Round trip at odd parity resumes bitwise.
        let mut a = inplace_cavity_block(8);
        for _ in 0..40 {
            step(&mut a);
        }
        let mut b = inplace_cavity_block(8);
        for _ in 0..21 {
            step(&mut b);
        }
        assert!(b.src.parity(), "odd step count must leave odd parity");
        let ckpt = save_block(&b);
        let mut c = inplace_cavity_block(8);
        restore_block(&mut c, &ckpt).unwrap();
        assert!(c.src.parity(), "restore must recover storage parity");
        assert_eq!(c.scheme, UpdateScheme::InPlace);
        for _ in 0..19 {
            step(&mut c);
        }
        assert_eq!(a.src.data(), c.src.data());

        // The migration wire format round-trips the same way.
        let boundary = BoundaryParams { wall_velocity: [0.05, 0.0, 0.0], ..Default::default() };
        let d = restore_block_full(&save_block_full(&b), boundary).unwrap();
        assert_eq!(d.scheme, UpdateScheme::InPlace);
        assert!(d.src.parity());
        assert_eq!(d.src.data(), b.src.data());
    }

    #[test]
    fn mismatches_are_rejected() {
        let a = cavity_block(8);
        let ckpt = save_block(&a);
        // Different size.
        let mut wrong_size = cavity_block(6);
        assert_eq!(restore_block(&mut wrong_size, &ckpt), Err(RestoreError::ShapeMismatch));
        // Different flags (all-noslip box, no lid).
        let flags = boxed_block_flags(Shape::cube(8), [Some(CellFlags::NOSLIP); 6]);
        let mut wrong_flags = BlockSim::from_flags(flags, BoundaryParams::default(), 1.0, [0.0; 3]);
        assert_eq!(restore_block(&mut wrong_flags, &ckpt), Err(RestoreError::FlagMismatch));
        // Corruption.
        let mut short = cavity_block(8);
        assert_eq!(restore_block(&mut short, &ckpt[..100]), Err(RestoreError::Truncated));
        assert_eq!(restore_block(&mut short, b"XXXX"), Err(RestoreError::BadMagic));
    }
}
