//! Graph-partitioning load balancing of the block forest (paper §2.3).
//!
//! "We assign each block the number of its fluid cells as workload and
//! assign weights to the communication graph that are proportional to the
//! amount of data transferred between neighboring processes. [...] To
//! solve this multi-constrained optimization problem we use the METIS
//! graph partitioner." This module builds exactly that graph from a setup
//! forest and balances it with the in-tree multilevel partitioner.

use std::collections::HashMap;
use trillium_blockforest::{balance_with, SetupForest};
use trillium_comm::pdfs_crossing;
use trillium_lattice::D3Q19;
use trillium_partition::{partition_kway, Graph, PartitionOptions};

/// Builds the block communication graph: vertices are blocks weighted by
/// fluid cells; edges join adjacent blocks (uniform level) weighted by
/// the ghost data volume crossing the shared face/edge, in doubles per
/// time step.
pub fn block_graph(forest: &SetupForest) -> Graph {
    assert!(forest.is_uniform_level(), "block graph requires a uniform-level forest");
    let by_coords: HashMap<[i64; 3], usize> =
        forest.blocks.iter().enumerate().map(|(i, b)| (b.coords, i)).collect();
    let cells = forest.cells_per_block;

    let mut edges = Vec::new();
    for (i, b) in forest.blocks.iter().enumerate() {
        for d in trillium_blockforest::NEIGHBOR_DIRS {
            let nc =
                [b.coords[0] + d[0] as i64, b.coords[1] + d[1] as i64, b.coords[2] + d[2] as i64];
            let Some(&j) = by_coords.get(&nc) else { continue };
            if j <= i {
                continue; // count each undirected edge once
            }
            // Ghost message volume across this link: slab cells × PDFs.
            let qs = pdfs_crossing::<D3Q19>(d).len();
            if qs == 0 {
                continue;
            }
            let slab: usize = (0..3).map(|a| if d[a] == 0 { cells[a] } else { 1 }).product();
            edges.push((i as u32, j as u32, (slab * qs) as f64));
        }
    }
    let vwgt: Vec<f64> = forest.blocks.iter().map(|b| b.workload.max(1.0)).collect();
    Graph::from_edges(forest.blocks.len(), &edges, Some(vwgt))
}

/// Balances the forest onto `num_processes` ranks with the multilevel
/// graph partitioner. Returns the edge cut (communication volume between
/// different ranks, in doubles per step).
pub fn graph_balance(forest: &mut SetupForest, num_processes: u32, seed: u64) -> f64 {
    let g = block_graph(forest);
    let opts = PartitionOptions { seed, ..Default::default() };
    let assign = partition_kway(&g, num_processes as usize, &opts);
    let cut = g.edge_cut(&assign);
    balance_with(forest, num_processes, |i| assign[i]);
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_blockforest::morton_balance;
    use trillium_geometry::vec3::vec3;
    use trillium_geometry::Aabb;

    fn uniform_forest(n: usize) -> SetupForest {
        let e = n as f64;
        SetupForest::uniform(Aabb::new(vec3(0.0, 0.0, 0.0), vec3(e, e, e)), [n, n, n], [10, 10, 10])
    }

    #[test]
    fn graph_has_face_edge_weights() {
        let f = uniform_forest(2);
        let g = block_graph(&f);
        assert_eq!(g.num_vertices(), 8);
        // Each block: 3 face links (100 cells × 5 PDFs = 500) and 3 edge
        // links (10 cells × 1 PDF = 10); corner links carry nothing.
        let w: Vec<f64> = g.neighbors(0).map(|(_, w)| w).collect();
        assert_eq!(w.len(), 6);
        assert_eq!(w.iter().filter(|&&x| x == 500.0).count(), 3);
        assert_eq!(w.iter().filter(|&&x| x == 10.0).count(), 3);
    }

    #[test]
    fn graph_balance_balances_and_assigns() {
        let mut f = uniform_forest(4);
        let cut = graph_balance(&mut f, 8, 1);
        assert!(cut > 0.0);
        assert_eq!(f.num_processes, 8);
        assert!(f.imbalance() < 1.1, "imbalance {}", f.imbalance());
    }

    /// The graph partitioner must not lose badly to the Morton curve on
    /// communication volume — on a regular grid both should find
    /// compact chunks.
    #[test]
    fn graph_cut_is_competitive_with_morton() {
        let mut fg = uniform_forest(4);
        let cut_graph = graph_balance(&mut fg, 8, 1);

        let mut fm = uniform_forest(4);
        morton_balance(&mut fm, 8);
        let g = block_graph(&fm);
        let assign: Vec<u32> = fm.blocks.iter().map(|b| b.rank).collect();
        let cut_morton = g.edge_cut(&assign);
        assert!(cut_graph <= 1.5 * cut_morton, "graph cut {cut_graph} vs morton cut {cut_morton}");
    }

    /// With unequal workloads (sparse geometry), the graph balancer beats
    /// plain one-block-per-rank assignment on balance.
    #[test]
    fn unequal_workloads_are_balanced() {
        let mut f = uniform_forest(4);
        for (i, b) in f.blocks.iter_mut().enumerate() {
            b.workload = 10.0 + ((i * 7919) % 990) as f64;
        }
        graph_balance(&mut f, 4, 2);
        assert!(f.imbalance() < 1.1, "imbalance {}", f.imbalance());
    }
}
