//! Per-block simulation state.

use trillium_field::{CellFlags, FlagField, FlagOps, PdfField, RowIntervals, Shape, SoaPdfField};
use trillium_kernels::{
    apply_boundaries, apply_boundaries_ghost, apply_boundaries_interior, Backend, BackendKind,
    BoundaryParams, Collision, SweepStats,
};
use trillium_lattice::{Relaxation, D3Q19};

/// Which compute kernel a block uses for its interior sweep.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BlockKernel {
    /// Dense SoA kernel over the full interior (fully fluid blocks).
    Dense,
    /// Row-interval sparse kernel (partially covered blocks), paper §4.3.
    RowIntervals,
}

/// How a block's PDFs are updated each step.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum UpdateScheme {
    /// Two-field stream-pull: sweep reads `src`, writes `dst`, buffers
    /// swap. The default, and the reference every other scheme must match
    /// bitwise.
    #[default]
    Pull,
    /// Single-buffer AA pattern: even steps collide in place, odd steps
    /// read/write along opposing direction pairs (`trillium_kernels::
    /// inplace`). `src` is the only live buffer; its
    /// [`SoaPdfField::parity`] flag tracks the alternating storage
    /// convention and always equals `t % 2` between steps. Only available
    /// for dense blocks — sparse row-interval blocks fall back to `Pull`.
    InPlace,
}

/// The complete simulation state of one block: PDF double buffer, cell
/// flags, sparse iteration structure, and boundary parameters.
pub struct BlockSim {
    /// Grid geometry (interior + ghost layer).
    pub shape: Shape,
    /// Source PDF field (post-collision values of the previous step; the
    /// *only* live buffer under [`UpdateScheme::InPlace`]).
    pub src: SoaPdfField<D3Q19>,
    /// Destination PDF field (unused between steps under
    /// [`UpdateScheme::InPlace`]).
    pub dst: SoaPdfField<D3Q19>,
    /// Cell classification.
    pub flags: FlagField,
    /// Row intervals for the sparse kernel (built from `flags`).
    pub intervals: RowIntervals,
    /// Boundary-condition parameters.
    pub boundary: BoundaryParams,
    /// Kernel choice for this block.
    pub kernel: BlockKernel,
    /// Update scheme for this block — the *resolved* scheme that actually
    /// runs (see [`BlockSim::requested_scheme`]).
    pub scheme: UpdateScheme,
    /// Update scheme that was requested at construction. Differs from
    /// [`BlockSim::scheme`] exactly when an `InPlace` request degraded to
    /// `Pull` on a sparse block ([`BlockSim::fell_back_to_pull`]); kept so
    /// the fallback is observable instead of silent.
    pub requested_scheme: UpdateScheme,
    /// Compute backend this block's sweeps execute on. Like
    /// [`BlockSim::collision`], scenario-assigned, not part of the
    /// checkpoint wire format, and re-stamped by whoever rebuilds a block
    /// (migration, recovery).
    pub backend: BackendKind,
    /// Collision operator for this block. `Srt`/`Trt` run the tuned
    /// TRT-form kernels (SRT via equal rates, exactly as before);
    /// `Mrt`/`MrtLes` run the moment-space sweeps of
    /// `trillium_kernels::mrt`. Scenario-global — like
    /// [`BoundaryParams`], it is *not* part of the checkpoint wire format
    /// and is re-stamped by whoever rebuilds a block.
    pub collision: Collision,
}

impl BlockSim {
    /// Creates a block from a flag field, initializing all PDFs to the
    /// equilibrium of `(rho, u)`. Chooses the dense kernel when every
    /// interior cell is fluid, the row-interval kernel otherwise.
    pub fn from_flags(flags: FlagField, boundary: BoundaryParams, rho: f64, u: [f64; 3]) -> Self {
        Self::from_flags_with_scheme(flags, boundary, rho, u, UpdateScheme::Pull)
    }

    /// [`BlockSim::from_flags`] with an explicit update scheme. A request
    /// for [`UpdateScheme::InPlace`] on a partially covered block (sparse
    /// kernel) falls back to [`UpdateScheme::Pull`]: the in-place sweeps
    /// are dense-only.
    pub fn from_flags_with_scheme(
        flags: FlagField,
        boundary: BoundaryParams,
        rho: f64,
        u: [f64; 3],
        scheme: UpdateScheme,
    ) -> Self {
        let shape = flags.shape();
        let mut src = SoaPdfField::new(shape);
        let dst = SoaPdfField::new(shape);
        src.fill_equilibrium(rho, u);
        let intervals = RowIntervals::build(&flags);
        let kernel = if intervals.fluid_cells == shape.interior_cells() {
            BlockKernel::Dense
        } else {
            BlockKernel::RowIntervals
        };
        let resolved = match (scheme, kernel) {
            (UpdateScheme::InPlace, BlockKernel::Dense) => UpdateScheme::InPlace,
            _ => UpdateScheme::Pull,
        };
        BlockSim {
            shape,
            src,
            dst,
            flags,
            intervals,
            boundary,
            kernel,
            scheme: resolved,
            requested_scheme: scheme,
            collision: Collision::Trt,
            backend: BackendKind::default(),
        }
    }

    /// True when this block requested the in-place scheme but runs pull
    /// because its sparse row-interval kernel has no in-place variant.
    /// Surfaced (obs counter `kernel.fallback_pull`, `resolved_kernel` in
    /// report JSON) so the degradation is never silently misattributed.
    pub fn fell_back_to_pull(&self) -> bool {
        self.requested_scheme == UpdateScheme::InPlace && self.scheme == UpdateScheme::Pull
    }

    /// Short label of the update scheme that actually runs on this block
    /// (`"pull"` or `"inplace"`), for report JSON.
    pub fn resolved_kernel_label(&self) -> &'static str {
        match self.scheme {
            UpdateScheme::Pull => "pull",
            UpdateScheme::InPlace => "inplace",
        }
    }

    /// The dispatch object of this block's backend.
    fn be(&self) -> &'static dyn Backend {
        self.backend.dispatch()
    }

    /// Number of interior fluid cells.
    pub fn fluid_cells(&self) -> usize {
        self.intervals.fluid_cells
    }

    /// Re-initializes every cell (ghost layer included) to the equilibrium
    /// of a position-dependent state `f(x, y, z) -> (rho, u)` in
    /// block-local cell coordinates — analytic initial conditions such as
    /// the Taylor–Green vortex. Only valid on a freshly built block
    /// (parity 0), where both update schemes store PDFs in natural order.
    pub fn init_equilibrium_with(&mut self, f: impl Fn(i32, i32, i32) -> (f64, [f64; 3])) {
        assert!(!self.src.parity(), "analytic init requires a freshly built block");
        let mut feq = [0.0; 19];
        for (x, y, z) in self.shape.with_ghosts().iter() {
            let (rho, u) = f(x, y, z);
            trillium_lattice::equilibrium_all::<D3Q19>(rho, u, &mut feq);
            self.src.set_cell(x, y, z, &feq);
        }
    }

    /// Runs the boundary sweep on the source field (call after ghost
    /// synchronization, before [`BlockSim::stream_collide`]).
    pub fn apply_boundaries(&mut self) {
        apply_boundaries::<D3Q19, _>(&mut self.src, &self.flags, &self.boundary);
    }

    /// Boundary sweep restricted to *interior* wall cells (obstacles).
    /// These read only interior fluid PDFs, so the sweep is safe to run
    /// while ghost messages are still in flight — the overlap window of
    /// the overlapped driver. Pair with [`BlockSim::apply_boundaries_ghost`]
    /// after the block's ghost slabs have been unpacked; the two together
    /// are bitwise identical to one [`BlockSim::apply_boundaries`].
    pub fn apply_boundaries_interior(&mut self) {
        apply_boundaries_interior::<D3Q19, _>(&mut self.src, &self.flags, &self.boundary);
    }

    /// Boundary sweep restricted to *ghost-layer* wall cells. Must run
    /// after the ghost exchange for this block has completed.
    pub fn apply_boundaries_ghost(&mut self) {
        apply_boundaries_ghost::<D3Q19, _>(&mut self.src, &self.flags, &self.boundary);
    }

    /// Makes the block periodic along the selected axes by copying its own
    /// boundary slabs into the opposite ghost slabs (single-block periodic
    /// domains, e.g. 2-D channel validations). Call before
    /// [`BlockSim::apply_boundaries`] each step.
    pub fn sync_periodic(&mut self, axes: [bool; 3]) {
        use trillium_blockforest::NEIGHBOR_DIRS;
        use trillium_comm::{pack_face, pdfs_crossing, unpack_face};
        // Every face *and edge* whose nonzero components lie on periodic
        // axes wraps around: with two or three periodic axes the diagonal
        // PDFs crossing an edge must be transferred too, exactly as the
        // distributed driver does between neighboring blocks.
        for d in NEIGHBOR_DIRS {
            let wrapping = (0..3).all(|a| d[a] == 0 || axes[a]);
            let has_any = (0..3).any(|a| d[a] != 0 && axes[a]);
            if !wrapping || !has_any || pdfs_crossing::<D3Q19>(d).is_empty() {
                continue;
            }
            // Data leaving through face/edge d wraps around and enters the
            // ghost slab on the opposite side (direction −d).
            let mut buf = Vec::new();
            pack_face::<D3Q19, _>(&self.src, d, &mut buf);
            unpack_face::<D3Q19, _>(&mut self.src, [-d[0], -d[1], -d[2]], &buf);
        }
    }

    /// Runs the fused stream–collide sweep with the block's collision
    /// operator (TRT-form kernels for `Srt`/`Trt`, moment-space sweeps for
    /// the MRT family) and advances the buffer (swap for pull, parity flip
    /// for in-place). The returned stats carry the measured wall time of
    /// the sweep, the per-block load signal used for rebalancing.
    pub fn stream_collide(&mut self, rel: Relaxation) -> SweepStats {
        let t0 = std::time::Instant::now();
        let be = self.be();
        if self.scheme == UpdateScheme::InPlace {
            let stats = be.sweep_inplace(self.collision, &mut self.src, rel);
            let p = self.src.parity();
            self.src.set_parity(!p);
            return stats.timed(t0.elapsed().as_secs_f64());
        }
        let stats = match self.kernel {
            BlockKernel::Dense => be.sweep_pull(self.collision, &self.src, &mut self.dst, rel),
            BlockKernel::RowIntervals => {
                be.sweep_sparse(self.collision, &self.src, &mut self.dst, &self.intervals, rel)
            }
        };
        self.src.swap(&mut self.dst);
        stats.timed(t0.elapsed().as_secs_f64())
    }

    /// Stream–collide over the interior core only: the cells whose pull
    /// stencil never reads the ghost layer, so the sweep may run while
    /// ghost messages are still in flight. Does *not* swap the buffers —
    /// call [`BlockSim::stream_collide_shell`] once the block's ghost
    /// slabs are complete, then [`BlockSim::swap_buffers`].
    pub fn stream_collide_interior(&mut self, rel: Relaxation) -> SweepStats {
        let t0 = std::time::Instant::now();
        let core = self.shape.interior_core(1);
        self.sweep_region(rel, &core).timed(t0.elapsed().as_secs_f64())
    }

    /// Stream–collide over the boundary shell (the cells skipped by
    /// [`BlockSim::stream_collide_interior`]). Requires the ghost layer to
    /// be synchronized and the full boundary sweep to have run. Does not
    /// swap the buffers.
    pub fn stream_collide_shell(&mut self, rel: Relaxation) -> SweepStats {
        let t0 = std::time::Instant::now();
        let mut stats = SweepStats::default();
        for region in self.shape.shell_regions(1) {
            stats.merge(self.sweep_region(rel, &region));
        }
        stats.timed(t0.elapsed().as_secs_f64())
    }

    /// One region sweep with the block's backend, scheme, kernel, and
    /// collision operator (shared by the interior-core and shell halves
    /// of a split step). Does not swap buffers or flip parity.
    fn sweep_region(&mut self, rel: Relaxation, region: &trillium_field::Region) -> SweepStats {
        let be = self.be();
        if self.scheme == UpdateScheme::InPlace {
            return be.sweep_inplace_region(self.collision, &mut self.src, rel, region);
        }
        match self.kernel {
            BlockKernel::Dense => {
                be.sweep_pull_region(self.collision, &self.src, &mut self.dst, rel, region)
            }
            BlockKernel::RowIntervals => be.sweep_sparse_region(
                self.collision,
                &self.src,
                &mut self.dst,
                &self.intervals,
                rel,
                region,
            ),
        }
    }

    /// Completes a split-sweep step: swaps the PDF double buffer (pull) or
    /// flips the storage parity (in-place) — the analogue of what
    /// [`BlockSim::stream_collide`] performs internally. Must be called
    /// exactly once after the interior and shell region sweeps of a step.
    pub fn swap_buffers(&mut self) {
        if self.scheme == UpdateScheme::InPlace {
            let p = self.src.parity();
            self.src.set_parity(!p);
        } else {
            self.src.swap(&mut self.dst);
        }
    }

    /// The current AA-pattern storage parity of the live buffer (always
    /// `false` for pull blocks; equals `t % 2 == 1` between steps for
    /// in-place blocks).
    pub fn step_parity(&self) -> bool {
        self.src.parity()
    }

    /// The `(cells, fluid_cells)` counters one *full* sweep of this block
    /// reports. The split path's region sweeps count traversed cells but
    /// cannot attribute fluid-ness per sub-span, so the overlapped driver
    /// uses these totals to keep its accounting identical to the
    /// synchronous path.
    pub fn sweep_counts(&self) -> (u64, u64) {
        match self.kernel {
            BlockKernel::Dense => {
                let n = self.shape.interior_cells() as u64;
                (n, n)
            }
            BlockKernel::RowIntervals => {
                (self.intervals.covered_cells() as u64, self.intervals.fluid_cells as u64)
            }
        }
    }

    /// Total mass over interior fluid cells.
    pub fn fluid_mass(&self) -> f64 {
        let mut sum = 0.0;
        for (x, y, z) in self.shape.interior().iter() {
            if self.flags.flags(x, y, z).is_fluid() {
                sum += self.src.density(x, y, z);
            }
        }
        sum
    }

    /// Momentum over interior fluid cells.
    pub fn fluid_momentum(&self) -> [f64; 3] {
        let mut j = [0.0; 3];
        for (x, y, z) in self.shape.interior().iter() {
            if self.flags.flags(x, y, z).is_fluid() {
                let rho = self.src.density(x, y, z);
                let u = self.src.velocity(x, y, z);
                for d in 0..3 {
                    j[d] += rho * u[d];
                }
            }
        }
        j
    }

    /// Velocity at an interior cell (must be fluid to be meaningful).
    pub fn velocity(&self, x: i32, y: i32, z: i32) -> [f64; 3] {
        self.src.velocity(x, y, z)
    }

    /// Total kinetic energy `Σ ½ ρ u²` over interior fluid cells — the
    /// observable behind the Taylor–Green dissipation-rate validation.
    pub fn kinetic_energy(&self) -> f64 {
        let mut e = 0.0;
        for (x, y, z) in self.shape.interior().iter() {
            if self.flags.flags(x, y, z).is_fluid() {
                let rho = self.src.density(x, y, z);
                let u = self.src.velocity(x, y, z);
                e += 0.5 * rho * (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
            }
        }
        e
    }

    /// Momentum-exchange force on the boundary cells matched by `mask`
    /// (drag/lift evaluation). Call between [`BlockSim::apply_boundaries`]
    /// and [`BlockSim::stream_collide`].
    pub fn boundary_force(&self, mask: CellFlags) -> [f64; 3] {
        trillium_kernels::boundary::momentum_exchange_force::<D3Q19, _>(
            &self.src,
            &self.flags,
            mask,
        )
    }

    /// True if the interior contains a non-finite PDF (stability check).
    pub fn has_nan(&self) -> bool {
        for (x, y, z) in self.shape.interior().iter() {
            if !self.flags.flags(x, y, z).is_fluid() {
                continue;
            }
            for q in 0..19 {
                if !self.src.get(x, y, z, q).is_finite() {
                    return true;
                }
            }
        }
        false
    }
}

/// Builds a fully fluid flag field whose domain-border faces (where
/// `border[dir]` is true for the six faces −x, +x, −y, +y, −z, +z) are
/// closed with the given wall flags. Faces not at the domain border stay
/// fluid into the ghost layer (they will be synchronized from neighbor
/// blocks).
pub fn boxed_block_flags(shape: Shape, border_flags: [Option<CellFlags>; 6]) -> FlagField {
    let mut flags = FlagField::new(shape);
    // Everything fluid, ghosts included.
    for (x, y, z) in shape.with_ghosts().iter() {
        flags.set_flags(x, y, z, CellFlags::FLUID);
    }
    let g = shape.ghost as i32;
    let (nx, ny, nz) = (shape.nx as i32, shape.ny as i32, shape.nz as i32);
    for (x, y, z) in shape.with_ghosts().iter() {
        let mut wall: Option<CellFlags> = None;
        let mut check = |cond: bool, f: Option<CellFlags>| {
            if cond {
                if let Some(f) = f {
                    // Later faces override earlier ones only if unset, so
                    // edges prefer the first matching face; for our
                    // scenarios (lid on +z overriding side walls) we let
                    // the last match win instead.
                    wall = Some(f);
                }
            }
        };
        check(x < 0, border_flags[0]);
        check(x >= nx, border_flags[1]);
        check(y < 0, border_flags[2]);
        check(y >= ny, border_flags[3]);
        check(z < 0, border_flags[4]);
        check(z >= nz, border_flags[5]);
        let _ = g;
        if let Some(f) = wall {
            flags.set_flags(x, y, z, f);
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_lattice::MAGIC_TRT;

    fn cavity_flags(n: usize) -> FlagField {
        boxed_block_flags(
            Shape::cube(n),
            [
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::VELOCITY),
            ],
        )
    }

    #[test]
    fn boxed_flags_classify_ghost_layer() {
        let f = cavity_flags(4);
        assert!(f.flags(0, 0, 0).is_fluid());
        assert!(f.flags(-1, 0, 0).intersects(CellFlags::NOSLIP));
        assert!(f.flags(0, 0, 4).intersects(CellFlags::VELOCITY));
        // Lid wins on the top edge.
        assert!(f.flags(-1, 0, 4).intersects(CellFlags::VELOCITY));
        assert_eq!(f.count_fluid(), 64);
    }

    #[test]
    fn single_block_cavity_develops_flow_and_conserves_mass() {
        let flags = cavity_flags(8);
        let boundary = BoundaryParams { wall_velocity: [0.05, 0.0, 0.0], ..Default::default() };
        let mut block = BlockSim::from_flags(flags, boundary, 1.0, [0.0; 3]);
        assert_eq!(block.kernel, BlockKernel::Dense);
        let rel = Relaxation::trt_from_tau(0.9, MAGIC_TRT);
        let m0 = block.fluid_mass();
        for _ in 0..150 {
            block.apply_boundaries();
            block.stream_collide(rel);
        }
        assert!(!block.has_nan());
        assert!((block.fluid_mass() - m0).abs() / m0 < 1e-10, "mass drift");
        // Fluid under the lid follows it.
        let u = block.velocity(4, 4, 7);
        assert!(u[0] > 1e-3, "no lid-driven flow: {u:?}");
        // A rough vortex signature: backflow in the lower half.
        let u_low = block.velocity(4, 4, 1);
        assert!(u_low[0] < u[0]);
    }

    /// The split path — interior boundary prep, interior-core sweep,
    /// ghost boundary prep, shell sweep, explicit swap — must be bitwise
    /// identical to the monolithic apply_boundaries + stream_collide
    /// sequence, for both the dense and the row-interval kernel. This is
    /// the per-block half of the overlapped-driver equivalence.
    #[test]
    fn split_sweep_is_bitwise_identical() {
        let make_flags = |sparse: bool| {
            let mut flags = cavity_flags(8);
            if sparse {
                // An interior obstacle forces the row-interval kernel.
                flags.set_flags(3, 3, 3, CellFlags::NOSLIP);
                flags.set_flags(4, 3, 3, CellFlags::NOSLIP);
            }
            flags
        };
        let boundary = BoundaryParams { wall_velocity: [0.05, 0.0, 0.0], ..Default::default() };
        let rel = Relaxation::trt_from_tau(0.9, MAGIC_TRT);
        for sparse in [false, true] {
            let mut full = BlockSim::from_flags(make_flags(sparse), boundary, 1.0, [0.0; 3]);
            let mut split = BlockSim::from_flags(make_flags(sparse), boundary, 1.0, [0.0; 3]);
            assert_eq!(
                split.kernel,
                if sparse { BlockKernel::RowIntervals } else { BlockKernel::Dense }
            );
            for _ in 0..15 {
                full.apply_boundaries();
                let s_full = full.stream_collide(rel);

                // Overlapped order: interior prep + core sweep may run
                // before the ghost layer is touched.
                split.apply_boundaries_interior();
                let s_core = split.stream_collide_interior(rel);
                split.apply_boundaries_ghost();
                let s_shell = split.stream_collide_shell(rel);
                split.swap_buffers();

                assert_eq!(s_core.cells + s_shell.cells, s_full.cells);
                let (cells, fluid) = split.sweep_counts();
                assert_eq!(cells, s_full.cells);
                assert_eq!(fluid, s_full.fluid_cells);
            }
            for (x, y, z) in full.shape.interior().iter() {
                for q in 0..19 {
                    assert!(
                        full.src.get(x, y, z, q) == split.src.get(x, y, z, q),
                        "sparse={sparse} differs at ({x},{y},{z}) q={q}"
                    );
                }
            }
        }
    }

    /// An in-place (AA-pattern) block must evolve bitwise identically to
    /// the pull reference — via the monolithic step and via the split
    /// (overlapped) step order, across both step parities.
    #[test]
    fn inplace_scheme_is_bitwise_identical_to_pull() {
        let boundary = BoundaryParams { wall_velocity: [0.05, 0.0, 0.0], ..Default::default() };
        let rel = Relaxation::trt_from_tau(0.9, MAGIC_TRT);
        let mut pull = BlockSim::from_flags(cavity_flags(8), boundary, 1.0, [0.0; 3]);
        let mut mono = BlockSim::from_flags_with_scheme(
            cavity_flags(8),
            boundary,
            1.0,
            [0.0; 3],
            UpdateScheme::InPlace,
        );
        let mut split = BlockSim::from_flags_with_scheme(
            cavity_flags(8),
            boundary,
            1.0,
            [0.0; 3],
            UpdateScheme::InPlace,
        );
        assert_eq!(mono.scheme, UpdateScheme::InPlace);
        for step in 0..15u64 {
            pull.apply_boundaries();
            pull.stream_collide(rel);

            mono.apply_boundaries();
            mono.stream_collide(rel);
            assert_eq!(mono.step_parity(), (step + 1) % 2 == 1);

            split.apply_boundaries_interior();
            split.stream_collide_interior(rel);
            split.apply_boundaries_ghost();
            split.stream_collide_shell(rel);
            split.swap_buffers();

            for (x, y, z) in pull.shape.interior().iter() {
                for q in 0..19 {
                    let r = pull.src.get(x, y, z, q);
                    assert!(
                        r.to_bits() == mono.src.get(x, y, z, q).to_bits()
                            && r.to_bits() == split.src.get(x, y, z, q).to_bits(),
                        "step {step} differs at ({x},{y},{z}) q={q}"
                    );
                }
            }
        }
    }

    /// Sparse (row-interval) blocks cannot run in place; the scheme
    /// request degrades to pull instead of producing a broken block.
    #[test]
    fn inplace_falls_back_to_pull_on_sparse_blocks() {
        let shape = Shape::cube(8);
        let mut flags = FlagField::new(shape);
        for x in 0..8 {
            flags.set_flags(x, 4, 4, CellFlags::FLUID);
        }
        flags.dilate_hull(&trillium_lattice::d3q19::C, CellFlags::NOSLIP);
        let block = BlockSim::from_flags_with_scheme(
            flags,
            BoundaryParams::default(),
            1.0,
            [0.0; 3],
            UpdateScheme::InPlace,
        );
        assert_eq!(block.kernel, BlockKernel::RowIntervals);
        assert_eq!(block.scheme, UpdateScheme::Pull);
    }

    #[test]
    fn sparse_block_kernel_selected_for_partial_coverage() {
        let shape = Shape::cube(8);
        let mut flags = FlagField::new(shape);
        // A thin fluid tube.
        for x in 0..8 {
            flags.set_flags(x, 4, 4, CellFlags::FLUID);
        }
        flags.dilate_hull(&trillium_lattice::d3q19::C, CellFlags::NOSLIP);
        let block = BlockSim::from_flags(flags, BoundaryParams::default(), 1.0, [0.0; 3]);
        assert_eq!(block.kernel, BlockKernel::RowIntervals);
        assert_eq!(block.fluid_cells(), 8);
    }

    #[test]
    fn resting_fluid_stays_at_rest_in_sparse_block() {
        let shape = Shape::cube(8);
        let mut flags = FlagField::new(shape);
        for x in 1..7 {
            for y in 3..6 {
                flags.set_flags(x, y, 4, CellFlags::FLUID);
            }
        }
        flags.dilate_hull(&trillium_lattice::d3q19::C, CellFlags::NOSLIP);
        let mut block = BlockSim::from_flags(flags, BoundaryParams::default(), 1.0, [0.0; 3]);
        let rel = Relaxation::trt_from_viscosity(0.1);
        for _ in 0..30 {
            block.apply_boundaries();
            block.stream_collide(rel);
        }
        assert!(!block.has_nan());
        for (x, y, z) in shape.interior().iter() {
            if block.flags.flags(x, y, z).is_fluid() {
                let u = block.velocity(x, y, z);
                assert!(u.iter().all(|c| c.abs() < 1e-12), "motion at ({x},{y},{z}): {u:?}");
            }
        }
    }
}
