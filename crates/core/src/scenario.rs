//! Scenario builders: the paper's benchmark problems.
//!
//! * **Lid-driven cavity** and **channel flow around an obstacle** — the
//!   two weak-scaling scenarios of §4.2 ("the lid-driven cavity problem
//!   and channel flow around a fixed obstacle with an obstacle to fluid
//!   ratio of less than 1 %").
//! * **Signed-distance domains** — arbitrary complex geometries (tube,
//!   vascular tree) voxelized per block with colored boundary conditions,
//!   the §4.3 configuration.

use crate::blocksim::{boxed_block_flags, BlockSim, UpdateScheme};
use std::sync::Arc;
use trillium_blockforest::{morton_balance, skewed_balance, LocalBlock, SetupForest};
use trillium_field::{CellFlags, FlagOps, Shape};
use trillium_geometry::vec3::vec3;
use trillium_geometry::voxelize::{voxelize_block, VoxelizeConfig};
use trillium_geometry::{Aabb, SignedDistance, Vec3};
use trillium_kernels::{BackendKind, BoundaryParams, Collision};
use trillium_lattice::Relaxation;

/// Which kernel family the driver should let blocks pick.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Dense kernel for fully fluid blocks, sparse otherwise; two-field
    /// pull update (default). Alias of [`KernelChoice::Pull`].
    #[default]
    Auto,
    /// Explicitly the two-field pull update scheme.
    Pull,
    /// Single-buffer AA-pattern update for dense blocks (sparse blocks
    /// still fall back to the pull scheme). Bitwise identical to `Pull`
    /// on every driver schedule; halves the PDF checkpoint footprint.
    InPlace,
}

impl KernelChoice {
    /// The per-block update scheme this choice requests.
    pub fn scheme(self) -> UpdateScheme {
        match self {
            KernelChoice::Auto | KernelChoice::Pull => UpdateScheme::Pull,
            KernelChoice::InPlace => UpdateScheme::InPlace,
        }
    }
}

/// How the initial (static) balancer assigns blocks to ranks.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum BalanceStrategy {
    /// Morton-curve cut with equal workload quotas (default).
    Morton,
    /// Deliberately skewed: rank 0 gets `fraction` of the total workload,
    /// the rest is split evenly. Exists to exercise the runtime
    /// rebalancer — a realistic stand-in for estimator error on complex
    /// geometries, where static cell counts mispredict measured cost.
    Skewed(f64),
}

/// A complete simulation scenario: domain, discretization, physics.
pub struct Scenario {
    /// Scenario name for reports.
    pub name: String,
    /// Block grid dimensions (root blocks per axis) for box scenarios;
    /// ignored for SDF domains (the forest is derived from the geometry).
    pub blocks: [usize; 3],
    /// Cells per block per axis.
    pub cells: [usize; 3],
    /// Collision parameters.
    pub relaxation: Relaxation,
    /// Boundary parameters shared by all blocks.
    pub boundary: BoundaryParams,
    /// Initial density.
    pub rho0: f64,
    /// Initial velocity.
    pub u0: [f64; 3],
    /// Static balancer used by [`Scenario::make_forest`].
    pub balance: BalanceStrategy,
    /// Kernel/update-scheme choice for the blocks.
    pub kernel: KernelChoice,
    /// Collision operator stamped onto every block (scenario-global, like
    /// the boundary parameters).
    pub collision: Collision,
    /// Compute backend stamped onto every block (scenario-global; see
    /// [`trillium_kernels::BackendKind`]). All backends are bitwise
    /// identical, so the choice affects cost, not results.
    pub backend: BackendKind,
    /// Per-axis domain periodicity. Periodic axes carry no walls: block
    /// links wrap around the root grid (each periodic axis needs at least
    /// two blocks), and ghost exchange closes the domain.
    pub periodic: [bool; 3],
    kind: Kind,
}

enum Kind {
    Cavity,
    Channel {
        /// Obstacle center in global cell coordinates.
        center: [f64; 3],
        /// Obstacle radius in cells (0 = no obstacle).
        radius: f64,
    },
    Domain {
        sdf: Arc<dyn SignedDistance>,
        config: VoxelizeConfig,
        dx: f64,
    },
    TaylorGreen {
        /// Velocity amplitude of the initial vortex array.
        amplitude: f64,
    },
    Poiseuille,
    VonKarman {
        /// Cylinder center in global cell coordinates (x, y); the axis
        /// runs along the (periodic) z direction.
        center: [f64; 2],
        /// Cylinder radius in cells.
        radius: f64,
    },
}

impl Scenario {
    /// Lid-driven cavity: a cubic box of `n³` cells split into `b³`
    /// blocks; all walls no-slip except the +z lid moving with
    /// `lid_velocity` in x. `viscosity` is the lattice viscosity.
    pub fn lid_driven_cavity(n: usize, b: usize, viscosity: f64, lid_velocity: f64) -> Self {
        assert!(n % b == 0, "cells must divide evenly into blocks");
        Scenario {
            name: format!("lid-driven cavity {n}^3 ({b}^3 blocks)"),
            blocks: [b, b, b],
            cells: [n / b; 3],
            relaxation: Relaxation::trt_from_viscosity(viscosity),
            boundary: BoundaryParams {
                wall_velocity: [lid_velocity, 0.0, 0.0],
                ..Default::default()
            },
            rho0: 1.0,
            u0: [0.0; 3],
            balance: BalanceStrategy::Morton,
            kernel: KernelChoice::Auto,
            collision: Collision::Trt,
            backend: BackendKind::default(),
            periodic: [false; 3],
            kind: Kind::Cavity,
        }
    }

    /// Quasi-2-D lid-driven cavity for comparison against the Ghia, Ghia
    /// & Shin (1982) reference data: an `n × span × n` box (x–z plane of
    /// interest, thin periodic spanwise y) split into `b × 2 × b` blocks,
    /// lid at +z moving in x. With no spanwise walls the flow is exactly
    /// two-dimensional.
    pub fn lid_driven_cavity_2d(n: usize, b: usize, viscosity: f64, lid_velocity: f64) -> Self {
        assert!(n % b == 0, "cells must divide evenly into blocks");
        let mut s = Self::lid_driven_cavity(n, b, viscosity, lid_velocity);
        s.name = format!("lid-driven cavity 2d {n}^2 ({b}^2 blocks)");
        s.blocks = [b, 2, b];
        s.cells = [n / b, 2, n / b];
        s.periodic = [false, true, false];
        s
    }

    /// Channel flow along x with a spherical obstacle in the center:
    /// velocity inflow at −x, pressure outflow at +x, no-slip side walls.
    /// `nx × ny × nz` cells in `bx × by × bz` blocks; the obstacle radius
    /// is `radius_frac` of the channel height (0 disables it; the paper
    /// uses an obstacle-to-fluid ratio below 1 %).
    #[allow(clippy::too_many_arguments)]
    pub fn channel_with_obstacle(
        n: [usize; 3],
        b: [usize; 3],
        viscosity: f64,
        inflow: f64,
        radius_frac: f64,
    ) -> Self {
        for d in 0..3 {
            assert!(n[d] % b[d] == 0);
        }
        let radius = radius_frac * n[1] as f64;
        Scenario {
            name: format!("channel {}x{}x{} obstacle r={radius:.1}", n[0], n[1], n[2]),
            blocks: b,
            cells: [n[0] / b[0], n[1] / b[1], n[2] / b[2]],
            relaxation: Relaxation::trt_from_viscosity(viscosity),
            boundary: BoundaryParams { wall_velocity: [inflow, 0.0, 0.0], ..Default::default() },
            rho0: 1.0,
            u0: [0.0; 3],
            balance: BalanceStrategy::Morton,
            kernel: KernelChoice::Auto,
            collision: Collision::Trt,
            backend: BackendKind::default(),
            periodic: [false; 3],
            kind: Kind::Channel {
                center: [n[0] as f64 / 2.0, n[1] as f64 / 2.0, n[2] as f64 / 2.0],
                radius,
            },
        }
    }

    /// Taylor–Green vortex: a fully periodic `n × n × span` box seeded
    /// with the 2-D vortex array `u = A(cos kx sin ky, −sin kx cos ky, 0)`
    /// (z-invariant), `k = 2π/n`. The kinetic energy decays analytically
    /// as `E(t) = E(0) e^{−4νk²t}`, which pins the effective viscosity of
    /// the whole stack — the dissipation-rate validation case.
    pub fn taylor_green(n: usize, b: usize, viscosity: f64, amplitude: f64) -> Self {
        assert!(n % b == 0, "cells must divide evenly into blocks");
        assert!(b >= 2, "periodic axes need >= 2 blocks");
        Scenario {
            name: format!("taylor-green {n}^2 ({b}^2 blocks)"),
            blocks: [b, b, 2],
            cells: [n / b, n / b, 2],
            relaxation: Relaxation::trt_from_viscosity(viscosity),
            boundary: BoundaryParams::default(),
            rho0: 1.0,
            u0: [0.0; 3],
            balance: BalanceStrategy::Morton,
            kernel: KernelChoice::Auto,
            collision: Collision::Trt,
            backend: BackendKind::default(),
            periodic: [true; 3],
            kind: Kind::TaylorGreen { amplitude },
        }
    }

    /// Pressure-driven plane Poiseuille flow: fixed densities
    /// `rho0 ± Δρ/2` on the −x/+x faces, no-slip walls at ±y, periodic
    /// spanwise z. The steady profile across y is the parabola
    /// `u_x(y) ∝ y (H − y)` — the profile-shape validation case.
    pub fn poiseuille(n: [usize; 3], b: [usize; 3], viscosity: f64, delta_rho: f64) -> Self {
        for d in 0..3 {
            assert!(n[d] % b[d] == 0);
        }
        assert!(b[2] >= 2, "periodic spanwise axis needs >= 2 blocks");
        Scenario {
            name: format!("poiseuille {}x{}x{} drho={delta_rho:.3}", n[0], n[1], n[2]),
            blocks: b,
            cells: [n[0] / b[0], n[1] / b[1], n[2] / b[2]],
            relaxation: Relaxation::trt_from_viscosity(viscosity),
            boundary: BoundaryParams {
                pressure_density: 1.0 + 0.5 * delta_rho,
                pressure_density_alt: 1.0 - 0.5 * delta_rho,
                ..Default::default()
            },
            rho0: 1.0,
            u0: [0.0; 3],
            balance: BalanceStrategy::Morton,
            kernel: KernelChoice::Auto,
            collision: Collision::Trt,
            backend: BackendKind::default(),
            periodic: [false, false, true],
            kind: Kind::Poiseuille,
        }
    }

    /// Von Kármán vortex street: flow past a circular cylinder spanning
    /// the (periodic) z axis of an `n[0] × n[1] × n[2]` channel. Velocity
    /// inflow at −x, pressure outflow at +x, no-slip walls at ±y; the
    /// cylinder of the given `diameter` sits a quarter length downstream,
    /// slightly off-center in y to trigger the instability. Cylinder
    /// cells are tagged `OBSTACLE | NOSLIP` so the lift signal can be
    /// measured on the cylinder alone — its oscillation frequency gives
    /// the Strouhal number.
    pub fn von_karman(
        n: [usize; 3],
        b: [usize; 3],
        viscosity: f64,
        inflow: f64,
        diameter: f64,
    ) -> Self {
        for d in 0..3 {
            assert!(n[d] % b[d] == 0);
        }
        assert!(b[2] >= 2, "periodic spanwise axis needs >= 2 blocks");
        Scenario {
            name: format!("von-karman {}x{}x{} d={diameter:.1}", n[0], n[1], n[2]),
            blocks: b,
            cells: [n[0] / b[0], n[1] / b[1], n[2] / b[2]],
            relaxation: Relaxation::trt_from_viscosity(viscosity),
            boundary: BoundaryParams { wall_velocity: [inflow, 0.0, 0.0], ..Default::default() },
            rho0: 1.0,
            u0: [inflow, 0.0, 0.0],
            balance: BalanceStrategy::Morton,
            kernel: KernelChoice::Auto,
            collision: Collision::Trt,
            backend: BackendKind::default(),
            periodic: [false, false, true],
            kind: Kind::VonKarman {
                // Off-center by half a cell: a deliberate asymmetry that
                // seeds the vortex shedding instability.
                center: [n[0] as f64 / 4.0, n[1] as f64 / 2.0 + 0.5],
                radius: diameter / 2.0,
            },
        }
    }

    /// A complex-geometry scenario from a signed-distance domain: blocks
    /// are voxelized against `sdf` with `config` mapping surface colors to
    /// boundary conditions; `inflow`/`outflow_rho` fill the boundary
    /// parameters.
    pub fn from_sdf(
        name: &str,
        sdf: Arc<dyn SignedDistance>,
        dx: f64,
        cells_per_block: [usize; 3],
        viscosity: f64,
        inflow: [f64; 3],
        outflow_rho: f64,
        config: VoxelizeConfig,
    ) -> Self {
        Scenario {
            name: name.to_string(),
            blocks: [0; 3],
            cells: cells_per_block,
            relaxation: Relaxation::trt_from_viscosity(viscosity),
            boundary: BoundaryParams {
                wall_velocity: inflow,
                pressure_density: outflow_rho,
                ..Default::default()
            },
            rho0: 1.0,
            u0: [0.0; 3],
            balance: BalanceStrategy::Morton,
            kernel: KernelChoice::Auto,
            collision: Collision::Trt,
            backend: BackendKind::default(),
            periodic: [false; 3],
            kind: Kind::Domain { sdf, config, dx },
        }
    }

    /// Builds the (balanced) setup forest for `num_procs` processes.
    pub fn make_forest(&self, num_procs: u32) -> SetupForest {
        let mut forest = match &self.kind {
            Kind::Cavity
            | Kind::Channel { .. }
            | Kind::TaylorGreen { .. }
            | Kind::Poiseuille
            | Kind::VonKarman { .. } => {
                let ext = vec3(
                    (self.blocks[0] * self.cells[0]) as f64,
                    (self.blocks[1] * self.cells[1]) as f64,
                    (self.blocks[2] * self.cells[2]) as f64,
                );
                SetupForest::uniform(Aabb::new(Vec3::ZERO, ext), self.blocks, self.cells)
                    .with_periodic(self.periodic)
            }
            Kind::Domain { sdf, dx, .. } => SetupForest::from_domain(sdf.as_ref(), *dx, self.cells),
        };
        match self.balance {
            BalanceStrategy::Morton => morton_balance(&mut forest, num_procs),
            BalanceStrategy::Skewed(fraction) => skewed_balance(&mut forest, num_procs, fraction),
        }
        forest
    }

    /// Replaces the static balancer with the deliberately skewed one (see
    /// [`BalanceStrategy::Skewed`]).
    pub fn with_skewed_balance(mut self, fraction: f64) -> Self {
        self.balance = BalanceStrategy::Skewed(fraction);
        self
    }

    /// Selects the PDF update scheme built into every block (see
    /// [`KernelChoice`]). Sparse blocks fall back to the pull update
    /// (their row-interval kernel has no in-place variant); the fallback
    /// is *surfaced* per block — [`BlockSim::fell_back_to_pull`], the
    /// `kernel.fallback_pull` obs counter, and `resolved_kernel` in
    /// report JSON — so a carved run can never silently misattribute its
    /// kernel.
    pub fn with_kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the collision operator stamped onto every block.
    ///
    /// The scenario constructors parameterize the TRT pair via the magic
    /// combination; `Collision::Srt` collapses it to equal rates at the
    /// same viscosity (TRT with `λ_o = λ_e` *is* SRT), so the operator
    /// choice alone decides the physics, not the constructor used.
    pub fn with_collision(mut self, collision: Collision) -> Self {
        if collision == Collision::Srt {
            self.relaxation = Relaxation::srt_from_tau(-1.0 / self.relaxation.lambda_e);
        }
        self.collision = collision;
        self
    }

    /// Selects the compute backend stamped onto every block. Backends are
    /// bitwise equivalent; pick [`BackendKind::Workgroup`] to exercise
    /// the GPU-style execution shape, [`BackendKind::Portable`] to pin
    /// the intrinsics-free path.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Global cell coordinates of a block's origin.
    fn block_origin(&self, lb: &LocalBlock) -> [i64; 3] {
        [
            lb.coords[0] * self.cells[0] as i64,
            lb.coords[1] * self.cells[1] as i64,
            lb.coords[2] * self.cells[2] as i64,
        ]
    }

    /// Finishes block construction: builds the sim from the flag field
    /// and stamps the scenario-global collision operator and backend
    /// onto it.
    fn finish_block(&self, flags: trillium_field::FlagField) -> BlockSim {
        let mut sim = BlockSim::from_flags_with_scheme(
            flags,
            self.boundary,
            self.rho0,
            self.u0,
            self.kernel.scheme(),
        );
        sim.collision = self.collision;
        sim.backend = self.backend;
        sim
    }

    /// Builds the simulation state of one local block.
    pub fn build_block(&self, lb: &LocalBlock) -> BlockSim {
        let shape = Shape::new(self.cells[0], self.cells[1], self.cells[2], 1);
        match &self.kind {
            Kind::Cavity => {
                let border = self.border_faces(lb);
                let flags = boxed_block_flags(
                    shape,
                    [
                        border[0].then_some(CellFlags::NOSLIP),
                        border[1].then_some(CellFlags::NOSLIP),
                        border[2].then_some(CellFlags::NOSLIP),
                        border[3].then_some(CellFlags::NOSLIP),
                        border[4].then_some(CellFlags::NOSLIP),
                        border[5].then_some(CellFlags::VELOCITY), // moving lid at +z
                    ],
                );
                self.finish_block(flags)
            }
            Kind::Channel { center, radius } => {
                let border = self.border_faces(lb);
                let mut flags = boxed_block_flags(
                    shape,
                    [
                        border[0].then_some(CellFlags::VELOCITY), // inflow at −x
                        border[1].then_some(CellFlags::PRESSURE), // outflow at +x
                        border[2].then_some(CellFlags::NOSLIP),
                        border[3].then_some(CellFlags::NOSLIP),
                        border[4].then_some(CellFlags::NOSLIP),
                        border[5].then_some(CellFlags::NOSLIP),
                    ],
                );
                // Carve the obstacle: cells whose global center lies in
                // the sphere become no-slip solid.
                if *radius > 0.0 {
                    let origin = self.block_origin(lb);
                    for (x, y, z) in shape.with_ghosts().iter() {
                        let gx = (origin[0] + x as i64) as f64 + 0.5;
                        let gy = (origin[1] + y as i64) as f64 + 0.5;
                        let gz = (origin[2] + z as i64) as f64 + 0.5;
                        let d2 = (gx - center[0]).powi(2)
                            + (gy - center[1]).powi(2)
                            + (gz - center[2]).powi(2);
                        if d2 < radius * radius {
                            flags.set_flags(x, y, z, CellFlags::NOSLIP);
                        }
                    }
                }
                self.finish_block(flags)
            }
            Kind::Domain { sdf, config, dx } => {
                let flags = voxelize_block(sdf.as_ref(), lb.aabb.min, *dx, shape, config);
                self.finish_block(flags)
            }
            Kind::TaylorGreen { amplitude } => {
                // Fully periodic: every cell (ghosts included) is fluid.
                let flags = boxed_block_flags(shape, [None; 6]);
                let mut sim = self.finish_block(flags);
                let origin = self.block_origin(lb);
                let n = self.global_cells();
                let kx = 2.0 * std::f64::consts::PI / n[0] as f64;
                let ky = 2.0 * std::f64::consts::PI / n[1] as f64;
                let (a, rho0) = (*amplitude, self.rho0);
                sim.init_equilibrium_with(|x, y, _z| {
                    let gx = kx * ((origin[0] + x as i64) as f64 + 0.5);
                    let gy = ky * ((origin[1] + y as i64) as f64 + 0.5);
                    let u = [a * gx.cos() * gy.sin(), -a * gx.sin() * gy.cos(), 0.0];
                    // Consistent pressure field p = −¼ρ₀A²(cos 2kx +
                    // cos 2ky), mapped to density via ρ = ρ₀ + p/c_s².
                    let rho = rho0 * (1.0 - 0.75 * a * a * ((2.0 * gx).cos() + (2.0 * gy).cos()));
                    (rho, u)
                });
                sim
            }
            Kind::Poiseuille => {
                let border = self.border_faces(lb);
                let flags = boxed_block_flags(
                    shape,
                    [
                        border[0].then_some(CellFlags::PRESSURE),     // high-ρ inlet
                        border[1].then_some(CellFlags::PRESSURE_ALT), // low-ρ outlet
                        border[2].then_some(CellFlags::NOSLIP),
                        border[3].then_some(CellFlags::NOSLIP),
                        None, // spanwise z is periodic
                        None,
                    ],
                );
                self.finish_block(flags)
            }
            Kind::VonKarman { center, radius } => {
                let border = self.border_faces(lb);
                let mut flags = boxed_block_flags(
                    shape,
                    [
                        border[0].then_some(CellFlags::VELOCITY), // inflow at −x
                        border[1].then_some(CellFlags::PRESSURE), // outflow at +x
                        border[2].then_some(CellFlags::NOSLIP),
                        border[3].then_some(CellFlags::NOSLIP),
                        None, // spanwise z is periodic
                        None,
                    ],
                );
                // Carve the cylinder (axis along z): tagged with the
                // OBSTACLE marker so force probes can isolate it from the
                // channel walls.
                let origin = self.block_origin(lb);
                let wall = CellFlags(CellFlags::OBSTACLE.0 | CellFlags::NOSLIP.0);
                let mut carved = false;
                for (x, y, z) in shape.with_ghosts().iter() {
                    let gx = (origin[0] + x as i64) as f64 + 0.5;
                    let gy = (origin[1] + y as i64) as f64 + 0.5;
                    let d2 = (gx - center[0]).powi(2) + (gy - center[1]).powi(2);
                    if d2 < radius * radius {
                        flags.set_flags(x, y, z, wall);
                        carved = true;
                    }
                }
                // Momentum-exchange force measurement needs the pre-sweep
                // populations, which only the two-array pull storage keeps
                // intact; blocks touching the cylinder therefore always use
                // the pull scheme regardless of the requested kernel tier.
                // Uncarved blocks carry no OBSTACLE cells and contribute an
                // exact zero to the lift/drag signal.
                let mut sim = if carved {
                    let mut sim = BlockSim::from_flags_with_scheme(
                        flags,
                        self.boundary,
                        self.rho0,
                        self.u0,
                        UpdateScheme::Pull,
                    );
                    sim.collision = self.collision;
                    sim
                } else {
                    self.finish_block(flags)
                };
                // Seed a small transverse perturbation so the wake's
                // antisymmetric instability grows from a deterministic
                // O(ε) amplitude: the unperturbed base flow is symmetric
                // up to round-off and can fail to shed within any
                // reasonable step budget.
                let lx = (self.blocks[0] * self.cells[0]) as f64;
                let eps = 0.05 * self.u0[0];
                let (rho0, ux) = (self.rho0, self.u0[0]);
                sim.init_equilibrium_with(|x, _y, _z| {
                    let gx = (origin[0] + x as i64) as f64 + 0.5;
                    let uy = eps * (2.0 * std::f64::consts::PI * gx / lx).sin();
                    (rho0, [ux, uy, 0.0])
                });
                sim
            }
        }
    }

    /// Which of the six faces (−x, +x, −y, +y, −z, +z) of a block lie on
    /// the domain border.
    fn border_faces(&self, lb: &LocalBlock) -> [bool; 6] {
        use trillium_blockforest::{dir_index, BlockLink};
        let face = |d: [i8; 3]| matches!(lb.links[dir_index(d)], BlockLink::Border);
        [
            face([-1, 0, 0]),
            face([1, 0, 0]),
            face([0, -1, 0]),
            face([0, 1, 0]),
            face([0, 0, -1]),
            face([0, 0, 1]),
        ]
    }

    /// Global cell extents (box scenarios).
    pub fn global_cells(&self) -> [usize; 3] {
        [
            self.blocks[0] * self.cells[0],
            self.blocks[1] * self.cells[1],
            self.blocks[2] * self.cells[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_blockforest::distribute;

    #[test]
    fn cavity_forest_shape() {
        let s = Scenario::lid_driven_cavity(24, 2, 0.05, 0.1);
        let f = s.make_forest(4);
        assert_eq!(f.num_blocks(), 8);
        assert_eq!(f.cells_per_block, [12, 12, 12]);
        assert_eq!(f.num_processes, 4);
    }

    #[test]
    fn cavity_blocks_get_walls_only_at_domain_border() {
        let s = Scenario::lid_driven_cavity(16, 2, 0.05, 0.1);
        let f = s.make_forest(1);
        let views = distribute(&f);
        let v = &views[0];
        // Block (0,0,0): walls at −x, −y, −z; fluid ghosts toward +.
        let b0 = v.blocks.iter().find(|b| b.coords == [0, 0, 0]).unwrap();
        let sim = s.build_block(b0);
        assert!(sim.flags.flags(-1, 0, 0).is_boundary());
        assert!(sim.flags.flags(8, 0, 0).is_fluid(), "+x ghost belongs to the neighbor block");
        assert!(sim.flags.flags(0, 0, -1).is_boundary());
        // Block (1,1,1): lid at +z.
        let b7 = v.blocks.iter().find(|b| b.coords == [1, 1, 1]).unwrap();
        let sim = s.build_block(b7);
        assert!(sim.flags.flags(0, 0, 8).intersects(CellFlags::VELOCITY));
    }

    #[test]
    fn channel_obstacle_is_carved() {
        let s = Scenario::channel_with_obstacle([32, 16, 16], [2, 1, 1], 0.05, 0.05, 0.2);
        let f = s.make_forest(1);
        let views = distribute(&f);
        let total_fluid: usize =
            views[0].blocks.iter().map(|b| s.build_block(b).fluid_cells()).sum();
        let total = 32 * 16 * 16;
        assert!(total_fluid < total, "obstacle removed no cells");
        // Paper: obstacle-to-fluid ratio < 1 %? Here the sphere radius is
        // 3.2 cells -> ~137 cells of 8192: under 2 %.
        let solid = total - total_fluid;
        assert!(solid > 50 && solid < total / 20, "solid = {solid}");
    }

    #[test]
    fn sdf_scenario_voxelizes_blocks() {
        use trillium_geometry::sdf::AnalyticSdf;
        let sdf = Arc::new(AnalyticSdf::Sphere { center: vec3(0.0, 0.0, 0.0), radius: 1.0 });
        let s = Scenario::from_sdf(
            "sphere",
            sdf,
            0.1,
            [8, 8, 8],
            0.05,
            [0.0; 3],
            1.0,
            VoxelizeConfig::default(),
        );
        let f = s.make_forest(2);
        assert!(f.num_blocks() >= 8);
        let views = distribute(&f);
        let fluid: usize = views
            .iter()
            .flat_map(|v| v.blocks.iter())
            .map(|b| s.build_block(b).fluid_cells())
            .sum();
        let expect = 4.0 / 3.0 * std::f64::consts::PI / 0.001;
        assert!((fluid as f64 - expect).abs() / expect < 0.1, "{fluid} vs {expect}");
    }
}
