#![warn(missing_docs)]
//! trillium-core — a block-structured lattice Boltzmann framework.
//!
//! This crate ties the substrates together into the system described by
//! the SC'13 waLBerla paper: complex-geometry setup, fully distributed
//! block-structured domains, optimized D3Q19 SRT/TRT kernels, and a
//! distributed time loop with ghost-layer communication.
//!
//! # Quick start
//!
//! ```
//! use trillium_core::prelude::*;
//!
//! // A 48³-cell lid-driven cavity split into 2×2×2 blocks on 4 ranks.
//! let scenario = Scenario::lid_driven_cavity(48, 2, 0.05, 0.1);
//! let result = run_distributed(&scenario, 4, 1, 20);
//! assert!(result.steps == 20);
//! assert!((result.mass_drift()).abs() < 1e-9);
//! ```
//!
//! # Architecture
//!
//! * [`blocksim`] — the per-block simulation state (PDF double buffer,
//!   flags, sparse iteration structures, boundary parameters),
//! * [`scenario`] — scenario builders: lid-driven cavity and channel flow
//!   (the paper's §4.2 benchmarks), plus arbitrary signed-distance domains
//!   with colored boundary conditions (§2.3/§4.3),
//! * [`driver`] — the distributed time loop over a communicator: ghost
//!   exchange, boundary sweep, fused stream–collide, buffer swap,
//! * [`loadbalance`] — block-graph construction and graph-partitioning
//!   balancing (the METIS path of §2.3),
//! * [`migrate`] — distributed block migration: serialized PDF + flag
//!   state moves between ranks when the runtime rebalancer
//!   (`trillium-rebalance`, wired into [`driver`]) fires,
//! * [`pipeline`] — the end-to-end setup pipeline from a signed-distance
//!   domain to a balanced, distributed, voxelized simulation,
//! * [`recovery`] — checkpoint/restart resilience: bounded-wait ghost
//!   exchange, coordinated forest checkpoints, and rollback recovery
//!   under deterministic fault injection.

pub mod blocksim;
pub mod checkpoint;
pub mod driver;
pub mod loadbalance;
pub mod migrate;
pub mod output;
pub mod pipeline;
pub mod recovery;
pub mod scenario;

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::blocksim::{BlockSim, UpdateScheme};
    pub use crate::driver::{
        drive_rank, drive_rank_rebalanced, plan_run, run_distributed, run_distributed_rebalanced,
        run_distributed_with, DriverConfig, RankResult, RebalanceConfig, RunPlan, RunResult,
    };
    pub use crate::loadbalance::{block_graph, graph_balance};
    pub use crate::pipeline::{setup_domain, DomainSetup};
    pub use crate::recovery::{
        drive_rank_resilient, run_distributed_resilient, RankResilience, RecoveryError,
        ResilienceConfig, ResilientRunResult,
    };
    pub use crate::scenario::{BalanceStrategy, KernelChoice, Scenario};
    pub use trillium_comm::{CommError, CrashSpec, FaultConfig, FaultEvent};
    pub use trillium_field::{CellFlags, PdfField};
    pub use trillium_kernels::{BackendKind, BoundaryParams, Collision};
    pub use trillium_lattice::{Relaxation, UnitConverter, D3Q19, MAGIC_TRT};
    pub use trillium_obs::{ObsConfig, RankObs, SpanKind};
}

pub use prelude::*;
