//! Simulation output: legacy-VTK structured-points files of the
//! macroscopic fields of a block, for visualization in ParaView & co.

use crate::blocksim::BlockSim;
use std::io::Write;
use trillium_field::{FlagOps, PdfField};

/// Writes density, velocity and cell flags of a block's interior as a
/// legacy-VTK `STRUCTURED_POINTS` ASCII dataset.
///
/// `origin` and `dx` place the block in physical space (use the block's
/// AABB minimum and the lattice spacing).
pub fn write_vtk<W: Write>(
    mut w: W,
    block: &BlockSim,
    origin: [f64; 3],
    dx: f64,
) -> std::io::Result<()> {
    let s = block.shape;
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "trillium block output")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET STRUCTURED_POINTS")?;
    writeln!(w, "DIMENSIONS {} {} {}", s.nx, s.ny, s.nz)?;
    writeln!(
        w,
        "ORIGIN {} {} {}",
        origin[0] + 0.5 * dx,
        origin[1] + 0.5 * dx,
        origin[2] + 0.5 * dx
    )?;
    writeln!(w, "SPACING {dx} {dx} {dx}")?;
    writeln!(w, "POINT_DATA {}", s.interior_cells())?;

    writeln!(w, "SCALARS density double 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for (x, y, z) in s.interior().iter() {
        let rho =
            if block.flags.flags(x, y, z).is_fluid() { block.src.density(x, y, z) } else { 0.0 };
        writeln!(w, "{rho}")?;
    }

    writeln!(w, "VECTORS velocity double")?;
    for (x, y, z) in s.interior().iter() {
        let u = if block.flags.flags(x, y, z).is_fluid() {
            block.src.velocity(x, y, z)
        } else {
            [0.0; 3]
        };
        writeln!(w, "{} {} {}", u[0], u[1], u[2])?;
    }

    writeln!(w, "SCALARS flags int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for (x, y, z) in s.interior().iter() {
        writeln!(w, "{}", block.flags.flags(x, y, z).0)?;
    }
    Ok(())
}

/// Convenience: writes the VTK file to a path.
pub fn write_vtk_file(
    path: &std::path::Path,
    block: &BlockSim,
    origin: [f64; 3],
    dx: f64,
) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_vtk(std::io::BufWriter::new(f), block, origin, dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocksim::boxed_block_flags;
    use trillium_field::{CellFlags, Shape};
    use trillium_kernels::BoundaryParams;

    #[test]
    fn vtk_output_is_well_formed() {
        let flags = boxed_block_flags(Shape::cube(4), [Some(CellFlags::NOSLIP); 6]);
        let block = crate::blocksim::BlockSim::from_flags(
            flags,
            BoundaryParams::default(),
            1.25,
            [0.1, 0.0, 0.0],
        );
        let mut out = Vec::new();
        write_vtk(&mut out, &block, [1.0, 2.0, 3.0], 0.5).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("# vtk DataFile Version 3.0"));
        assert!(text.contains("DIMENSIONS 4 4 4"));
        assert!(text.contains("ORIGIN 1.25 2.25 3.25"));
        assert!(text.contains("POINT_DATA 64"));
        assert!(text.contains("SCALARS density double 1"));
        assert!(text.contains("VECTORS velocity double"));
        // 64 density values of ~1.25 between the density header and the
        // velocity header.
        let densities = section_values(&text, "SCALARS density", "VECTORS velocity");
        assert_eq!(densities.len(), 64);
        assert!(densities.iter().all(|&d| (d - 1.25).abs() < 1e-12));
        // Velocity lines carry the initial velocity.
        let vel_line = text.lines().skip_while(|l| !l.starts_with("VECTORS")).nth(1).unwrap();
        let u: Vec<f64> = vel_line.split_whitespace().map(|t| t.parse().unwrap()).collect();
        assert!((u[0] - 0.1).abs() < 1e-12 && u[1].abs() < 1e-12 && u[2].abs() < 1e-12);
    }

    #[test]
    fn non_fluid_cells_are_zeroed() {
        use trillium_field::{FlagField, FlagOps};
        let shape = Shape::cube(3);
        let mut flags = FlagField::new(shape);
        flags.set_flags(1, 1, 1, CellFlags::FLUID); // single fluid cell
        let block =
            crate::blocksim::BlockSim::from_flags(flags, BoundaryParams::default(), 2.0, [0.0; 3]);
        let mut out = Vec::new();
        write_vtk(&mut out, &block, [0.0; 3], 1.0).unwrap();
        let text = String::from_utf8(out).unwrap();
        // 26 non-fluid zeros + 1 fluid density of ~2 in the density block.
        let densities = section_values(&text, "SCALARS density", "VECTORS velocity");
        assert_eq!(densities.len(), 27);
        assert_eq!(densities.iter().filter(|&&d| d == 0.0).count(), 26);
        assert_eq!(densities.iter().filter(|&&d| (d - 2.0).abs() < 1e-12).count(), 1);
    }

    /// Golden-file pin of the exact VTK bytes: header layout, x-fastest
    /// point order, float formatting, the half-cell ORIGIN shift, and the
    /// boundary/solid zeroing must never drift silently — downstream
    /// tooling (ParaView pipelines, the validation matrix's failure
    /// dumps) parses this format. Regenerate deliberately by updating
    /// `testdata/golden_block.vtk` when the format is *meant* to change.
    #[test]
    fn vtk_output_matches_golden_file() {
        let flags = boxed_block_flags(
            Shape::new(3, 2, 2, 1),
            [Some(CellFlags::NOSLIP), None, Some(CellFlags::VELOCITY), None, None, None],
        );
        let boundary = BoundaryParams { wall_velocity: [0.02, 0.0, 0.0], ..Default::default() };
        let mut block =
            crate::blocksim::BlockSim::from_flags(flags, boundary, 1.1, [0.03, -0.01, 0.0]);
        for _ in 0..2 {
            block.sync_periodic([false, true, true]);
            block.apply_boundaries();
            block.stream_collide(trillium_lattice::Relaxation::trt_from_viscosity(0.05));
        }
        let mut out = Vec::new();
        write_vtk(&mut out, &block, [4.0, 0.0, -2.0], 2.0).unwrap();
        let golden = include_str!("../testdata/golden_block.vtk");
        assert_eq!(String::from_utf8(out).unwrap(), golden, "VTK output drifted from golden file");
    }

    /// Scalar values between two section headers (skipping LOOKUP_TABLE).
    fn section_values(text: &str, start: &str, end: &str) -> Vec<f64> {
        text.lines()
            .skip_while(|l| !l.starts_with(start))
            .skip(2)
            .take_while(|l| !l.starts_with(end))
            .map(|l| l.trim().parse().unwrap())
            .collect()
    }
}
