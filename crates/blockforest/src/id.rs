//! Structured block identifiers.
//!
//! A block ID encodes the root-block index and the full octree path,
//! following the waLBerla idea of compact, hierarchical IDs: the path
//! stores three bits per refinement level (the child octant). IDs are
//! unique across the forest, support O(1) parent/child navigation, and
//! pack into a single `u64` for the size-optimized file format.

/// A block identifier: root index plus octree path plus level.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId {
    /// `(root_index << (3 · level)) | path`, deepest octant in the lowest
    /// three bits.
    bits: u64,
    /// Refinement level; 0 for root blocks.
    level: u8,
}

impl BlockId {
    /// Maximum refinement depth supported by the packed representation.
    pub const MAX_LEVEL: u8 = 15;

    /// The ID of an unrefined root block.
    pub fn root(root_index: u64) -> Self {
        assert!(root_index < (1 << 56), "root index too large");
        BlockId { bits: root_index, level: 0 }
    }

    /// The ID of child octant `octant ∈ 0..8` of this block.
    pub fn child(self, octant: u8) -> Self {
        assert!(octant < 8);
        assert!(self.level < Self::MAX_LEVEL, "maximum refinement depth exceeded");
        BlockId { bits: (self.bits << 3) | octant as u64, level: self.level + 1 }
    }

    /// The parent ID; `None` for root blocks.
    pub fn parent(self) -> Option<Self> {
        if self.level == 0 {
            None
        } else {
            Some(BlockId { bits: self.bits >> 3, level: self.level - 1 })
        }
    }

    /// Refinement level: 0 for root blocks.
    pub fn level(self) -> u8 {
        self.level
    }

    /// The root-block index this block descends from.
    pub fn root_index(self) -> u64 {
        self.bits >> (3 * self.level as u64)
    }

    /// The child octant at refinement step `l ∈ 0..level` (0 = first
    /// split below the root).
    pub fn octant_at(self, l: u8) -> u8 {
        assert!(l < self.level);
        ((self.bits >> (3 * (self.level - 1 - l) as u64)) & 7) as u8
    }

    /// Packs the ID into one `u64` for serialization: the level in the low
    /// four bits, the path/root bits above.
    pub fn pack(self) -> u64 {
        assert!(self.bits < (1 << 60), "ID bits exceed packed capacity");
        (self.bits << 4) | self.level as u64
    }

    /// Inverse of [`BlockId::pack`].
    pub fn unpack(packed: u64) -> Self {
        BlockId { bits: packed >> 4, level: (packed & 15) as u8 }
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{}", self.root_index())?;
        for l in 0..self.level {
            write!(f, ".{}", self.octant_at(l))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_child_parent_roundtrip() {
        let r = BlockId::root(42);
        assert_eq!(r.level(), 0);
        assert_eq!(r.root_index(), 42);
        assert_eq!(r.parent(), None);
        let c = r.child(5);
        assert_eq!(c.level(), 1);
        assert_eq!(c.root_index(), 42);
        assert_eq!(c.octant_at(0), 5);
        assert_eq!(c.parent(), Some(r));
        let gc = c.child(3);
        assert_eq!(gc.octant_at(0), 5);
        assert_eq!(gc.octant_at(1), 3);
        assert_eq!(gc.parent(), Some(c));
        assert_eq!(gc.root_index(), 42);
    }

    #[test]
    fn ids_are_unique_across_levels() {
        // Root 8 and root 1's child 0 would collide without the level tag.
        let a = BlockId::root(8);
        let b = BlockId::root(1).child(0);
        assert_ne!(a, b);
        assert_ne!(a.pack(), b.pack());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let ids = [
            BlockId::root(0),
            BlockId::root(123_456),
            BlockId::root(7).child(3),
            BlockId::root(9).child(7).child(0).child(4),
        ];
        for id in ids {
            assert_eq!(BlockId::unpack(id.pack()), id);
        }
    }

    #[test]
    fn siblings_are_distinct_and_ordered() {
        let p = BlockId::root(3);
        let kids: Vec<BlockId> = (0..8).map(|o| p.child(o)).collect();
        for i in 0..8 {
            for j in i + 1..8 {
                assert_ne!(kids[i], kids[j]);
            }
        }
        assert!(kids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_format() {
        let id = BlockId::root(5).child(2).child(7);
        assert_eq!(id.to_string(), "B5.2.7");
    }
}
