//! Fully distributed per-process forest views.
//!
//! "Each process only knows about its own blocks and blocks assigned to
//! neighboring processes. [...] the memory usage of a particular process
//! only depends on the number of blocks assigned to this process, and not
//! on the size of the entire simulation" (paper §2.2). A
//! [`DistributedForest`] is exactly that view: local blocks with their 26
//! per-direction links, plus nothing else.

use crate::id::BlockId;
use crate::setup::SetupForest;
use std::collections::HashMap;
use trillium_geometry::Aabb;

/// The 26 non-zero direction offsets of the 3-D Moore neighborhood, in a
/// fixed order shared with the communication layer.
pub const NEIGHBOR_DIRS: [[i8; 3]; 26] = {
    let mut dirs = [[0i8; 3]; 26];
    let mut n = 0;
    let mut z = -1i8;
    while z <= 1 {
        let mut y = -1i8;
        while y <= 1 {
            let mut x = -1i8;
            while x <= 1 {
                if !(x == 0 && y == 0 && z == 0) {
                    dirs[n] = [x, y, z];
                    n += 1;
                }
                x += 1;
            }
            y += 1;
        }
        z += 1;
    }
    dirs
};

/// Index of direction `d` in [`NEIGHBOR_DIRS`].
pub fn dir_index(d: [i8; 3]) -> usize {
    let lin = (d[2] + 1) as usize * 9 + (d[1] + 1) as usize * 3 + (d[0] + 1) as usize;
    // Directions after the center (index 13) shift down by one.
    assert!(lin != 13, "zero direction has no index");
    if lin < 13 {
        lin
    } else {
        lin - 1
    }
}

/// A link from a local block to its neighbor in one direction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BlockLink {
    /// No block there: the face/edge/corner lies on the domain border.
    Border,
    /// Neighbor block owned by the same process.
    Local(BlockId),
    /// Neighbor block owned by another process.
    Remote(BlockId, u32),
}

/// A block as known to its owning process.
#[derive(Clone, Debug)]
pub struct LocalBlock {
    /// Structured ID.
    pub id: BlockId,
    /// Physical box.
    pub aabb: Aabb,
    /// Integer grid coordinates at the block's level.
    pub coords: [i64; 3],
    /// Fluid-cell workload.
    pub workload: f64,
    /// Whether the block is completely covered by fluid.
    pub fully_inside: bool,
    /// Neighbor links in [`NEIGHBOR_DIRS`] order.
    pub links: [BlockLink; 26],
}

/// The per-process view of the forest.
#[derive(Clone, Debug)]
pub struct DistributedForest {
    /// This process's rank.
    pub rank: u32,
    /// Total number of processes.
    pub num_processes: u32,
    /// Lattice cells per block per axis.
    pub cells_per_block: [usize; 3],
    /// Blocks owned by this process, sorted by ID.
    pub blocks: Vec<LocalBlock>,
}

impl DistributedForest {
    /// Number of locally owned blocks.
    pub fn num_local_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The set of ranks this process exchanges ghost data with.
    pub fn neighbor_ranks(&self) -> Vec<u32> {
        let mut ranks: Vec<u32> = self
            .blocks
            .iter()
            .flat_map(|b| b.links.iter())
            .filter_map(|l| match l {
                BlockLink::Remote(_, r) => Some(*r),
                _ => None,
            })
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// An upper bound on the amount of forest metadata this process holds,
    /// in "knowledge units" (own blocks + remote links). Used by tests to
    /// assert the O(local) memory property.
    pub fn knowledge_size(&self) -> usize {
        self.blocks.len()
            + self
                .blocks
                .iter()
                .flat_map(|b| b.links.iter())
                .filter(|l| matches!(l, BlockLink::Remote(..)))
                .count()
    }
}

/// Splits a balanced, uniform-level setup forest into one
/// [`DistributedForest`] per process.
///
/// Panics if the forest is not balanced or contains refined blocks
/// (neighbor detection on mixed-level forests is future work, as in the
/// paper).
pub fn distribute(forest: &SetupForest) -> Vec<DistributedForest> {
    assert!(forest.num_processes > 0, "forest must be balanced first");
    assert!(forest.is_uniform_level(), "distribution requires a uniform-level forest");

    // Index blocks by integer grid coordinates.
    let by_coords: HashMap<[i64; 3], usize> =
        forest.blocks.iter().enumerate().map(|(i, b)| (b.coords, i)).collect();

    let mut out: Vec<DistributedForest> = (0..forest.num_processes)
        .map(|rank| DistributedForest {
            rank,
            num_processes: forest.num_processes,
            cells_per_block: forest.cells_per_block,
            blocks: Vec::new(),
        })
        .collect();

    for b in &forest.blocks {
        let mut links = [BlockLink::Border; 26];
        for (i, d) in NEIGHBOR_DIRS.iter().enumerate() {
            let mut nc =
                [b.coords[0] + d[0] as i64, b.coords[1] + d[1] as i64, b.coords[2] + d[2] as i64];
            // Periodic axes wrap: the neighbor beyond the last root block
            // is the first one (per axis, so diagonals wrap independently).
            for a in 0..3 {
                if forest.periodic[a] {
                    nc[a] = nc[a].rem_euclid(forest.roots[a] as i64);
                }
            }
            if let Some(&ni) = by_coords.get(&nc) {
                let nb = &forest.blocks[ni];
                links[i] = if nb.rank == b.rank {
                    BlockLink::Local(nb.id)
                } else {
                    BlockLink::Remote(nb.id, nb.rank)
                };
            }
        }
        out[b.rank as usize].blocks.push(LocalBlock {
            id: b.id,
            aabb: b.aabb,
            coords: b.coords,
            workload: b.workload,
            fully_inside: b.fully_inside,
            links,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::morton_balance;
    use trillium_geometry::vec3::vec3;

    fn forest(n: usize, procs: u32) -> Vec<DistributedForest> {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(n as f64, n as f64, n as f64));
        let mut f = SetupForest::uniform(domain, [n, n, n], [8, 8, 8]);
        morton_balance(&mut f, procs);
        distribute(&f)
    }

    #[test]
    fn neighbor_dirs_table() {
        assert_eq!(NEIGHBOR_DIRS.len(), 26);
        assert_eq!(NEIGHBOR_DIRS[dir_index([1, 0, 0])], [1, 0, 0]);
        assert_eq!(NEIGHBOR_DIRS[dir_index([-1, -1, -1])], [-1, -1, -1]);
        assert_eq!(NEIGHBOR_DIRS[dir_index([0, 0, 1])], [0, 0, 1]);
        // Bijection.
        for (i, d) in NEIGHBOR_DIRS.iter().enumerate() {
            assert_eq!(dir_index(*d), i);
        }
    }

    #[test]
    fn every_block_distributed_once() {
        let views = forest(4, 8);
        let total: usize = views.iter().map(|v| v.num_local_blocks()).sum();
        assert_eq!(total, 64);
        // Interior block of the cube has no border links.
        let all_blocks: Vec<&LocalBlock> = views.iter().flat_map(|v| v.blocks.iter()).collect();
        let inner = all_blocks.iter().find(|b| b.coords == [1, 1, 1]).unwrap();
        assert!(inner.links.iter().all(|l| !matches!(l, BlockLink::Border)));
        // Corner block has exactly 7 links (3 faces + 3 edges + 1 corner).
        let corner = all_blocks.iter().find(|b| b.coords == [0, 0, 0]).unwrap();
        let present = corner.links.iter().filter(|l| !matches!(l, BlockLink::Border)).count();
        assert_eq!(present, 7);
    }

    #[test]
    fn links_are_symmetric() {
        let views = forest(3, 5);
        // Build a map id -> (rank, links).
        let mut map = HashMap::new();
        for v in &views {
            for b in &v.blocks {
                map.insert(b.id, (v.rank, b.coords, b.links));
            }
        }
        for v in &views {
            for b in &v.blocks {
                for (i, l) in b.links.iter().enumerate() {
                    let d = NEIGHBOR_DIRS[i];
                    if let BlockLink::Local(nid) | BlockLink::Remote(nid, _) = l {
                        let (_, _, nlinks) = map[nid];
                        let back = nlinks[dir_index([-d[0], -d[1], -d[2]])];
                        match back {
                            BlockLink::Local(x) | BlockLink::Remote(x, _) => assert_eq!(x, b.id),
                            BlockLink::Border => panic!("asymmetric link"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn remote_links_carry_correct_owner() {
        let views = forest(4, 4);
        let owner: HashMap<BlockId, u32> =
            views.iter().flat_map(|v| v.blocks.iter().map(move |b| (b.id, v.rank))).collect();
        for v in &views {
            for b in &v.blocks {
                for l in &b.links {
                    if let BlockLink::Remote(id, r) = l {
                        assert_eq!(owner[id], *r);
                        assert_ne!(*r, v.rank, "remote link to own rank");
                    }
                }
            }
        }
    }

    #[test]
    fn periodic_axes_wrap_links() {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(4.0, 2.0, 2.0));
        let mut f =
            SetupForest::uniform(domain, [4, 2, 2], [8, 8, 8]).with_periodic([true, true, false]);
        morton_balance(&mut f, 2);
        let views = distribute(&f);
        let all: Vec<&LocalBlock> = views.iter().flat_map(|v| v.blocks.iter()).collect();
        let at = |c: [i64; 3]| all.iter().find(|b| b.coords == c).unwrap();
        // −x from the first block wraps to the last block of the row.
        let b0 = at([0, 0, 0]);
        match b0.links[dir_index([-1, 0, 0])] {
            BlockLink::Local(id) | BlockLink::Remote(id, _) => assert_eq!(id, at([3, 0, 0]).id),
            BlockLink::Border => panic!("periodic face must not be a border"),
        }
        // Diagonal wrap across two periodic axes at once.
        match b0.links[dir_index([-1, -1, 0])] {
            BlockLink::Local(id) | BlockLink::Remote(id, _) => assert_eq!(id, at([3, 1, 0]).id),
            BlockLink::Border => panic!("periodic edge must not be a border"),
        }
        // The non-periodic z axis still has borders.
        assert!(matches!(b0.links[dir_index([0, 0, -1])], BlockLink::Border));
        // Wrapped links stay symmetric.
        let b3 = at([3, 0, 0]);
        match b3.links[dir_index([1, 0, 0])] {
            BlockLink::Local(id) | BlockLink::Remote(id, _) => assert_eq!(id, b0.id),
            BlockLink::Border => panic!("asymmetric periodic link"),
        }
    }

    /// The defining scalability property: a rank's metadata does not grow
    /// with the total number of processes when its local share is fixed.
    #[test]
    fn knowledge_is_independent_of_total_size() {
        // 1 block per process in both cases; compare a rank owning an
        // interior block.
        let small = forest(4, 64);
        let large = forest(8, 512);
        let interior_small = small
            .iter()
            .flat_map(|v| v.blocks.iter().map(move |b| (v, b)))
            .find(|(_, b)| b.coords == [1, 1, 1])
            .unwrap();
        let interior_large = large
            .iter()
            .flat_map(|v| v.blocks.iter().map(move |b| (v, b)))
            .find(|(_, b)| b.coords == [3, 3, 3])
            .unwrap();
        // Same knowledge despite 8x the machine size.
        assert_eq!(interior_small.0.knowledge_size(), interior_large.0.knowledge_size());
    }
}
