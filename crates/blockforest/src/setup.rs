//! The global setup forest: construction, domain filtering, refinement.
//!
//! The setup phase (paper §2.2/§2.3) may hold the entire forest in memory —
//! its cost scales with the number of blocks, *not* with the number of
//! cells, which is what allows trillion-cell domains: the grid inside each
//! block is only materialized later, block by block, on the owning process.

use crate::id::BlockId;
use trillium_geometry::{classify_block, BlockCoverage, SignedDistance};
use trillium_geometry::{Aabb, Vec3};

/// One leaf block of the setup forest.
#[derive(Clone, Debug)]
pub struct SetupBlock {
    /// Structured block ID.
    pub id: BlockId,
    /// Physical bounding box of the block.
    pub aabb: Aabb,
    /// Integer grid coordinates at the block's level (unit = block edge at
    /// that level), used for neighbor detection on uniform forests.
    pub coords: [i64; 3],
    /// Workload estimate: number of fluid cells in the block.
    pub workload: f64,
    /// Assigned process rank (set by load balancing).
    pub rank: u32,
    /// Whether the block is completely inside the fluid domain.
    pub fully_inside: bool,
}

/// The global (setup-phase) forest of octrees.
#[derive(Clone, Debug)]
pub struct SetupForest {
    /// Physical box covered by the root grid.
    pub domain: Aabb,
    /// Number of root blocks per axis.
    pub roots: [usize; 3],
    /// Lattice cells per block per axis (same for every block; blocks at
    /// refinement level L cover the same cell count at 2^-L the spacing).
    pub cells_per_block: [usize; 3],
    /// Leaf blocks, sorted by ID.
    pub blocks: Vec<SetupBlock>,
    /// Number of processes blocks are balanced across (0 = not balanced).
    pub num_processes: u32,
    /// Per-axis periodicity: on a periodic axis, blocks at opposite ends
    /// of the root grid are neighbors (their links wrap around) and no
    /// domain border exists there. Scenario-level metadata — not part of
    /// the forest file format.
    pub periodic: [bool; 3],
}

impl SetupForest {
    /// Creates a uniform, unrefined forest: `roots[0] × roots[1] × roots[2]`
    /// blocks tiling `domain`, every block marked fully inside with a dense
    /// workload.
    pub fn uniform(domain: Aabb, roots: [usize; 3], cells_per_block: [usize; 3]) -> Self {
        assert!(roots.iter().all(|&r| r > 0));
        let cells: f64 = cells_per_block.iter().map(|&c| c as f64).product();
        let mut blocks = Vec::with_capacity(roots[0] * roots[1] * roots[2]);
        for k in 0..roots[2] {
            for j in 0..roots[1] {
                for i in 0..roots[0] {
                    let idx = (k * roots[1] + j) * roots[0] + i;
                    blocks.push(SetupBlock {
                        id: BlockId::root(idx as u64),
                        aabb: Self::root_aabb(&domain, roots, [i, j, k]),
                        coords: [i as i64, j as i64, k as i64],
                        workload: cells,
                        rank: 0,
                        fully_inside: true,
                    });
                }
            }
        }
        SetupForest {
            domain,
            roots,
            cells_per_block,
            blocks,
            num_processes: 0,
            periodic: [false; 3],
        }
    }

    /// Marks axes as periodic (see the `periodic` field). Each periodic
    /// axis needs at least two root blocks so that a block never becomes
    /// its own wrap-around neighbor.
    pub fn with_periodic(mut self, periodic: [bool; 3]) -> Self {
        for a in 0..3 {
            assert!(
                !periodic[a] || self.roots[a] >= 2,
                "periodic axis {a} needs >= 2 root blocks (got {})",
                self.roots[a]
            );
        }
        self.periodic = periodic;
        self
    }

    /// Creates a forest over the bounding box of `sdf` keeping only blocks
    /// that intersect the domain, with workloads set to the exact fluid
    /// cell count of each block. Uses a hierarchical descent over the root
    /// grid so that large empty regions cost O(1) distance queries — the
    /// setup never enumerates the full root grid.
    ///
    /// `dx` is the lattice spacing; root blocks have physical edge
    /// `cells_per_block · dx`.
    pub fn from_domain<S: SignedDistance + ?Sized>(
        sdf: &S,
        dx: f64,
        cells_per_block: [usize; 3],
    ) -> Self {
        Self::from_domain_inner(sdf, dx, cells_per_block, None)
    }

    /// Like [`SetupForest::from_domain`] but estimating per-block
    /// workloads from `samples³` probe points instead of testing every
    /// cell center — the fast path for very large forests (the scaling
    /// harness builds forests with hundreds of thousands of blocks).
    /// Workloads of partially covered blocks are estimates; fully inside /
    /// outside classification is unchanged.
    pub fn from_domain_sampled<S: SignedDistance + ?Sized>(
        sdf: &S,
        dx: f64,
        cells_per_block: [usize; 3],
        samples: usize,
    ) -> Self {
        assert!(samples >= 2);
        Self::from_domain_inner(sdf, dx, cells_per_block, Some(samples))
    }

    /// The candidate root grid covering the domain of `sdf` at resolution
    /// `dx`: the (slightly padded) physical box and the number of root
    /// blocks per axis. Deterministic, so every process of a distributed
    /// setup computes the same grid locally.
    pub fn candidate_grid<S: SignedDistance + ?Sized>(
        sdf: &S,
        dx: f64,
        cells_per_block: [usize; 3],
    ) -> (Aabb, [usize; 3]) {
        let bb = sdf.bounding_box();
        let edge = Vec3 {
            x: cells_per_block[0] as f64 * dx,
            y: cells_per_block[1] as f64 * dx,
            z: cells_per_block[2] as f64 * dx,
        };
        let ext = bb.extents();
        let roots = [
            (ext.x / edge.x).ceil().max(1.0) as usize,
            (ext.y / edge.y).ceil().max(1.0) as usize,
            (ext.z / edge.z).ceil().max(1.0) as usize,
        ];
        let domain = Aabb::new(
            bb.min,
            bb.min
                + Vec3 {
                    x: roots[0] as f64 * edge.x,
                    y: roots[1] as f64 * edge.y,
                    z: roots[2] as f64 * edge.z,
                },
        );
        (domain, roots)
    }

    /// Classifies one index sub-range of the candidate root grid against
    /// the domain, returning the intersecting blocks with workloads. This
    /// is the unit of work of the hybrid-parallel initialization
    /// (paper §2.3): ranges are scattered over processes, classified
    /// independently, and the results gathered.
    #[allow(clippy::too_many_arguments)]
    pub fn classify_range<S: SignedDistance + ?Sized>(
        sdf: &S,
        domain: &Aabb,
        roots: [usize; 3],
        cells_per_block: [usize; 3],
        samples: Option<usize>,
        rx: [usize; 2],
        ry: [usize; 2],
        rz: [usize; 2],
    ) -> Vec<SetupBlock> {
        let mut out = Vec::new();
        Self::descend(sdf, domain, roots, cells_per_block, samples, rx, ry, rz, &mut out);
        out
    }

    fn from_domain_inner<S: SignedDistance + ?Sized>(
        sdf: &S,
        dx: f64,
        cells_per_block: [usize; 3],
        samples: Option<usize>,
    ) -> Self {
        let (domain, roots) = Self::candidate_grid(sdf, dx, cells_per_block);
        let mut blocks = Vec::new();
        Self::descend(
            sdf,
            &domain,
            roots,
            cells_per_block,
            samples,
            [0, roots[0]],
            [0, roots[1]],
            [0, roots[2]],
            &mut blocks,
        );
        blocks.sort_by_key(|b| b.id);
        SetupForest {
            domain,
            roots,
            cells_per_block,
            blocks,
            num_processes: 0,
            periodic: [false; 3],
        }
    }

    /// Recursive descent over index ranges: prunes whole sub-grids whose
    /// bounding box is farther from the surface than its circumradius and
    /// entirely outside.
    #[allow(clippy::too_many_arguments)]
    fn descend<S: SignedDistance + ?Sized>(
        sdf: &S,
        domain: &Aabb,
        roots: [usize; 3],
        cells_per_block: [usize; 3],
        samples: Option<usize>,
        rx: [usize; 2],
        ry: [usize; 2],
        rz: [usize; 2],
        out: &mut Vec<SetupBlock>,
    ) {
        let nx = rx[1] - rx[0];
        let ny = ry[1] - ry[0];
        let nz = rz[1] - rz[0];
        if nx == 0 || ny == 0 || nz == 0 {
            return;
        }
        // Bounding box of this index range.
        let lo = Self::root_aabb(domain, roots, [rx[0], ry[0], rz[0]]).min;
        let hi = Self::root_aabb(domain, roots, [rx[1] - 1, ry[1] - 1, rz[1] - 1]).max;
        let range_bb = Aabb::new(lo, hi);
        let d = sdf.signed_distance(range_bb.center());
        if d > range_bb.circumradius() {
            return; // Entire range outside the domain.
        }
        if nx == 1 && ny == 1 && nz == 1 {
            let (i, j, k) = (rx[0], ry[0], rz[0]);
            let bb = Self::root_aabb(domain, roots, [i, j, k]);
            let classify_cells = match samples {
                Some(s) => [s, s, s],
                None => cells_per_block,
            };
            match classify_block(sdf, &bb, classify_cells) {
                BlockCoverage::Outside => {}
                cov => {
                    let dense: f64 = cells_per_block.iter().map(|&c| c as f64).product();
                    let fully = cov == BlockCoverage::FullyInside;
                    let workload = if fully {
                        dense
                    } else {
                        match samples {
                            Some(s) => {
                                (trillium_geometry::voxelize::block_fluid_fraction(sdf, &bb, s)
                                    * dense)
                                    .round()
                            }
                            None => trillium_geometry::voxelize::block_fluid_cells(
                                sdf,
                                &bb,
                                cells_per_block,
                            ) as f64,
                        }
                    };
                    if workload > 0.0 {
                        let idx = (k * roots[1] + j) * roots[0] + i;
                        out.push(SetupBlock {
                            id: BlockId::root(idx as u64),
                            aabb: bb,
                            coords: [i as i64, j as i64, k as i64],
                            workload,
                            rank: 0,
                            fully_inside: fully,
                        });
                    }
                }
            }
            return;
        }
        // Split the longest axis.
        let split = |r: [usize; 2]| {
            let mid = (r[0] + r[1]) / 2;
            ([r[0], mid], [mid, r[1]])
        };
        if nx >= ny && nx >= nz {
            let (a, b) = split(rx);
            Self::descend(sdf, domain, roots, cells_per_block, samples, a, ry, rz, out);
            Self::descend(sdf, domain, roots, cells_per_block, samples, b, ry, rz, out);
        } else if ny >= nz {
            let (a, b) = split(ry);
            Self::descend(sdf, domain, roots, cells_per_block, samples, rx, a, rz, out);
            Self::descend(sdf, domain, roots, cells_per_block, samples, rx, b, rz, out);
        } else {
            let (a, b) = split(rz);
            Self::descend(sdf, domain, roots, cells_per_block, samples, rx, ry, a, out);
            Self::descend(sdf, domain, roots, cells_per_block, samples, rx, ry, b, out);
        }
    }

    /// Reconstructs a block purely from its ID (plus the forest geometry):
    /// root index → root cell, then the octant path. Shared by the file
    /// loader and by distributed setup, which exchange only
    /// `(id, workload, rank)` triples.
    pub fn block_from_id(
        domain: &Aabb,
        roots: [usize; 3],
        cells_per_block: [usize; 3],
        id: BlockId,
        workload: f64,
        rank: u32,
    ) -> SetupBlock {
        let e = domain.extents();
        let step =
            Vec3 { x: e.x / roots[0] as f64, y: e.y / roots[1] as f64, z: e.z / roots[2] as f64 };
        let ridx = id.root_index();
        let (i, j, k) = (
            (ridx as usize % roots[0]) as i64,
            ((ridx as usize / roots[0]) % roots[1]) as i64,
            (ridx as usize / (roots[0] * roots[1])) as i64,
        );
        let mut coords = [i, j, k];
        let mut bb = {
            let lo = domain.min
                + Vec3 { x: i as f64 * step.x, y: j as f64 * step.y, z: k as f64 * step.z };
            Aabb::new(lo, lo + step)
        };
        for l in 0..id.level() {
            let oct = id.octant_at(l);
            let c = bb.center();
            let (ox, oy, oz) = ((oct & 1) as i64, ((oct >> 1) & 1) as i64, ((oct >> 2) & 1) as i64);
            coords = [2 * coords[0] + ox, 2 * coords[1] + oy, 2 * coords[2] + oz];
            bb = Aabb::new(
                Vec3 {
                    x: if ox == 0 { bb.min.x } else { c.x },
                    y: if oy == 0 { bb.min.y } else { c.y },
                    z: if oz == 0 { bb.min.z } else { c.z },
                },
                Vec3 {
                    x: if ox == 0 { c.x } else { bb.max.x },
                    y: if oy == 0 { c.y } else { bb.max.y },
                    z: if oz == 0 { c.z } else { bb.max.z },
                },
            );
        }
        let dense: f64 = cells_per_block.iter().map(|&c| c as f64).product();
        SetupBlock { id, aabb: bb, coords, workload, rank, fully_inside: workload >= dense }
    }

    /// Physical box of root block `(i, j, k)`.
    fn root_aabb(domain: &Aabb, roots: [usize; 3], ijk: [usize; 3]) -> Aabb {
        let e = domain.extents();
        let step =
            Vec3 { x: e.x / roots[0] as f64, y: e.y / roots[1] as f64, z: e.z / roots[2] as f64 };
        let min = domain.min
            + Vec3 {
                x: ijk[0] as f64 * step.x,
                y: ijk[1] as f64 * step.y,
                z: ijk[2] as f64 * step.z,
            };
        Aabb::new(min, min + step)
    }

    /// Number of leaf blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total workload (fluid cells) over all blocks.
    pub fn total_workload(&self) -> f64 {
        self.blocks.iter().map(|b| b.workload).sum()
    }

    /// True if every block is at refinement level 0 (regular grid), the
    /// configuration used for all simulations in the paper.
    pub fn is_uniform_level(&self) -> bool {
        self.blocks.iter().all(|b| b.id.level() == 0)
    }

    /// Splits every block matched by `pred` into its eight children
    /// (workload split evenly, coordinates doubled). The data structure
    /// supports mixed-level forests; the LBM driver requires uniform
    /// levels, mirroring the paper ("extending our parallel LBM
    /// implementation to support grid refinement is future work").
    pub fn refine_where<F: FnMut(&SetupBlock) -> bool>(&mut self, mut pred: F) {
        let mut next = Vec::with_capacity(self.blocks.len());
        for b in self.blocks.drain(..) {
            if !pred(&b) {
                next.push(b);
                continue;
            }
            let c = b.aabb.center();
            for oct in 0..8u8 {
                let (ox, oy, oz) =
                    ((oct & 1) as i64, ((oct >> 1) & 1) as i64, ((oct >> 2) & 1) as i64);
                let min = Vec3 {
                    x: if ox == 0 { b.aabb.min.x } else { c.x },
                    y: if oy == 0 { b.aabb.min.y } else { c.y },
                    z: if oz == 0 { b.aabb.min.z } else { c.z },
                };
                let max = Vec3 {
                    x: if ox == 0 { c.x } else { b.aabb.max.x },
                    y: if oy == 0 { c.y } else { b.aabb.max.y },
                    z: if oz == 0 { c.z } else { b.aabb.max.z },
                };
                next.push(SetupBlock {
                    id: b.id.child(oct),
                    aabb: Aabb::new(min, max),
                    coords: [2 * b.coords[0] + ox, 2 * b.coords[1] + oy, 2 * b.coords[2] + oz],
                    workload: b.workload / 8.0,
                    rank: b.rank,
                    fully_inside: b.fully_inside,
                });
            }
        }
        next.sort_by_key(|b| b.id);
        self.blocks = next;
    }

    /// Per-rank total workloads (length `num_processes`).
    pub fn rank_workloads(&self) -> Vec<f64> {
        let mut w = vec![0.0; self.num_processes as usize];
        for b in &self.blocks {
            w[b.rank as usize] += b.workload;
        }
        w
    }

    /// Load imbalance: max over mean of per-rank workloads (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let w = self.rank_workloads();
        let max = w.iter().cloned().fold(0.0, f64::max);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_geometry::sdf::AnalyticSdf;
    use trillium_geometry::vec3::vec3;

    #[test]
    fn uniform_forest_tiles_domain() {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(4.0, 2.0, 2.0));
        let f = SetupForest::uniform(domain, [4, 2, 2], [10, 10, 10]);
        assert_eq!(f.num_blocks(), 16);
        assert!(f.is_uniform_level());
        // Volumes add up and boxes are disjoint tiles.
        let vol: f64 = f.blocks.iter().map(|b| b.aabb.volume()).sum();
        assert!((vol - domain.volume()).abs() < 1e-12);
        assert_eq!(f.total_workload(), 16.0 * 1000.0);
    }

    #[test]
    fn sphere_forest_keeps_only_intersecting_blocks() {
        let s = AnalyticSdf::Sphere { center: vec3(0.0, 0.0, 0.0), radius: 1.0 };
        let f = SetupForest::from_domain(&s, 0.05, [8, 8, 8]);
        // Root grid over [-1,1]³ with block edge 0.4: 5×5×5 candidates.
        assert_eq!(f.roots, [5, 5, 5]);
        assert!(f.num_blocks() > 0);
        assert!(f.num_blocks() < 125, "corner blocks must be dropped");
        // Every kept block must actually contain fluid.
        assert!(f.blocks.iter().all(|b| b.workload > 0.0));
        // Workload equals the sphere volume in cells, approximately.
        let cells = f.total_workload();
        let expect = 4.0 / 3.0 * std::f64::consts::PI / (0.05f64.powi(3));
        assert!((cells - expect).abs() / expect < 0.05, "{cells} vs {expect}");
    }

    #[test]
    fn hierarchical_descent_matches_exhaustive() {
        let s =
            AnalyticSdf::Capsule { a: vec3(0.0, 0.0, 0.0), b: vec3(3.0, 1.0, 0.5), radius: 0.3 };
        let f = SetupForest::from_domain(&s, 0.04, [6, 6, 6]);
        // Exhaustively enumerate the root grid and compare the kept set.
        let mut expect = Vec::new();
        for k in 0..f.roots[2] {
            for j in 0..f.roots[1] {
                for i in 0..f.roots[0] {
                    let bb = SetupForest::root_aabb(&f.domain, f.roots, [i, j, k]);
                    let n = trillium_geometry::voxelize::block_fluid_cells(&s, &bb, [6, 6, 6]);
                    if n > 0 {
                        expect.push(((i, j, k), n));
                    }
                }
            }
        }
        assert_eq!(f.num_blocks(), expect.len());
        for (b, (ijk, n)) in f.blocks.iter().zip(&expect) {
            assert_eq!((b.coords[0] as usize, b.coords[1] as usize, b.coords[2] as usize), *ijk);
            assert_eq!(b.workload, *n as f64);
        }
    }

    #[test]
    fn refinement_replaces_block_with_eight_children() {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(2.0, 2.0, 2.0));
        let mut f = SetupForest::uniform(domain, [2, 2, 2], [8, 8, 8]);
        let target = f.blocks[0].id;
        f.refine_where(|b| b.id == target);
        assert_eq!(f.num_blocks(), 7 + 8);
        assert!(!f.is_uniform_level());
        // Children tile the parent volume.
        let kids: Vec<_> = f.blocks.iter().filter(|b| b.id.parent() == Some(target)).collect();
        assert_eq!(kids.len(), 8);
        let vol: f64 = kids.iter().map(|b| b.aabb.volume()).sum();
        assert!((vol - 1.0).abs() < 1e-12);
        // Workload conserved.
        assert!((f.total_workload() - 8.0 * 512.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_metric() {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(4.0, 1.0, 1.0));
        let mut f = SetupForest::uniform(domain, [4, 1, 1], [4, 4, 4]);
        f.num_processes = 2;
        f.blocks[0].rank = 0;
        f.blocks[1].rank = 0;
        f.blocks[2].rank = 1;
        f.blocks[3].rank = 1;
        assert!((f.imbalance() - 1.0).abs() < 1e-12);
        f.blocks[2].rank = 0;
        assert!((f.imbalance() - 1.5).abs() < 1e-12);
    }
}
