#![warn(missing_docs)]
//! Block-structured domain partitioning: a forest of octrees (paper §2.2).
//!
//! The simulation domain is subdivided into equally sized *blocks*; each
//! block is the root of an octree and can be recursively split into eight
//! children. Within each (leaf) block a uniform grid of lattice cells is
//! allocated by the simulation. Blocks are the unit of distribution: the
//! initialization phase builds a global [`SetupForest`] (memory scales with
//! the number of blocks), decides which blocks intersect the domain,
//! assigns workloads and balances blocks across processes; the simulation
//! then runs on fully distributed [`DistributedForest`] views in which each
//! process knows only its own blocks and the blocks of its immediate
//! neighborhood — per-process memory is independent of the total number of
//! processes (asserted by tests).
//!
//! The setup result can be serialized to the endian-independent,
//! size-optimized binary format of [`file`] ("only the lower-order bytes
//! that actually carry information are stored"), so very large partitions
//! can be computed once — even on a different machine — and loaded by the
//! production run.

pub mod balance;
pub mod distribute;
pub mod file;
pub mod id;
pub mod search;
pub mod setup;

pub use balance::{balance_with, morton_balance, skewed_balance};
pub use distribute::{
    dir_index, distribute, BlockLink, DistributedForest, LocalBlock, NEIGHBOR_DIRS,
};
pub use id::BlockId;
pub use search::{search_strong_partition, search_weak_partition, search_weak_partition_sampled};
pub use setup::{SetupBlock, SetupForest};
