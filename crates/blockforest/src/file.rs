//! The endian-independent, size-optimized block-structure file format
//! (paper §2.2).
//!
//! "The file itself is based on a custom endian-independent binary file
//! format which is designed for and heavily optimized towards minimal file
//! size: for simulation variables like process rank or block ID only the
//! lower-order bytes that actually carry information are stored. Even if,
//! for example, storing the process rank requires four bytes of main
//! memory during program execution, only two bytes of disk space are
//! required [...] for simulations with up to 65,536 processes."
//!
//! The format stores the forest geometry (domain box, root grid, cells per
//! block) once, then one fixed-width record per block containing only the
//! packed block ID, the owning rank and the fluid-cell workload, each at
//! the minimal byte width for the forest at hand. Everything else —
//! block boxes, integer coordinates, full-coverage flags — is recomputed
//! on load. All multi-byte values are little-endian by definition.

use crate::id::BlockId;
use crate::setup::SetupForest;
use bytes::{Buf, BufMut};
use trillium_geometry::{Aabb, Vec3};

/// Magic bytes identifying the format ("Trillium Block Forest 1").
pub const MAGIC: &[u8; 4] = b"TBF1";

/// Minimal number of bytes needed to store values up to `max`.
pub fn byte_width(max: u64) -> usize {
    let bits = 64 - max.leading_zeros() as usize;
    bits.div_ceil(8).max(1)
}

fn put_uint(buf: &mut Vec<u8>, v: u64, width: usize) {
    debug_assert!(width == 8 || v < (1u64 << (8 * width)));
    buf.put_uint_le(v, width);
}

fn get_uint(buf: &mut &[u8], width: usize) -> u64 {
    buf.get_uint_le(width)
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.put_f64_le(v);
}

fn get_f64(buf: &mut &[u8]) -> f64 {
    buf.get_f64_le()
}

/// Serializes a forest into the minimal binary representation.
pub fn save(forest: &SetupForest) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);

    for v in [forest.domain.min, forest.domain.max] {
        put_f64(&mut buf, v.x);
        put_f64(&mut buf, v.y);
        put_f64(&mut buf, v.z);
    }
    for d in 0..3 {
        put_uint(&mut buf, forest.roots[d] as u64, 4);
    }
    for d in 0..3 {
        put_uint(&mut buf, forest.cells_per_block[d] as u64, 4);
    }
    put_uint(&mut buf, forest.num_processes as u64, 4);
    put_uint(&mut buf, forest.blocks.len() as u64, 8);

    // Record widths: the minimal bytes that carry information.
    let max_id = forest.blocks.iter().map(|b| b.id.pack()).max().unwrap_or(0);
    let max_rank = forest.num_processes.saturating_sub(1) as u64;
    let max_work = forest.blocks.iter().map(|b| b.workload as u64).max().unwrap_or(0);
    let idw = byte_width(max_id);
    let rkw = byte_width(max_rank);
    let wkw = byte_width(max_work);
    buf.push(idw as u8);
    buf.push(rkw as u8);
    buf.push(wkw as u8);

    for b in &forest.blocks {
        put_uint(&mut buf, b.id.pack(), idw);
        put_uint(&mut buf, b.rank as u64, rkw);
        put_uint(&mut buf, b.workload as u64, wkw);
    }
    buf
}

/// Errors produced by [`load`].
#[derive(Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The magic bytes do not match.
    BadMagic,
    /// The data ended prematurely or a field is inconsistent.
    Truncated,
}

/// Deserializes a forest written by [`save`], reconstructing block boxes,
/// coordinates and coverage flags from the stored IDs and workloads.
pub fn load(data: &[u8]) -> Result<SetupForest, LoadError> {
    let mut buf = data;
    if buf.len() < 4 || &buf[..4] != MAGIC {
        return Err(LoadError::BadMagic);
    }
    buf.advance(4);
    let need =
        |buf: &&[u8], n: usize| if buf.len() < n { Err(LoadError::Truncated) } else { Ok(()) };

    need(&buf, 6 * 8 + 3 * 4 + 3 * 4 + 4 + 8 + 3)?;
    let min = Vec3 { x: get_f64(&mut buf), y: get_f64(&mut buf), z: get_f64(&mut buf) };
    let max = Vec3 { x: get_f64(&mut buf), y: get_f64(&mut buf), z: get_f64(&mut buf) };
    let domain = Aabb::new(min, max);
    let roots = [
        get_uint(&mut buf, 4) as usize,
        get_uint(&mut buf, 4) as usize,
        get_uint(&mut buf, 4) as usize,
    ];
    let cells_per_block = [
        get_uint(&mut buf, 4) as usize,
        get_uint(&mut buf, 4) as usize,
        get_uint(&mut buf, 4) as usize,
    ];
    let num_processes = get_uint(&mut buf, 4) as u32;
    let num_blocks = get_uint(&mut buf, 8) as usize;
    let idw = buf.get_u8() as usize;
    let rkw = buf.get_u8() as usize;
    let wkw = buf.get_u8() as usize;
    need(&buf, num_blocks * (idw + rkw + wkw))?;

    let mut blocks = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        let id = BlockId::unpack(get_uint(&mut buf, idw));
        let rank = get_uint(&mut buf, rkw) as u32;
        let workload = get_uint(&mut buf, wkw) as f64;
        // Geometry, coordinates and coverage flags are derived from the
        // ID — the file stores only the bytes that carry information.
        blocks.push(SetupForest::block_from_id(
            &domain,
            roots,
            cells_per_block,
            id,
            workload,
            rank,
        ));
    }
    // Periodicity is scenario metadata, not stored in the file format.
    Ok(SetupForest { domain, roots, cells_per_block, blocks, num_processes, periodic: [false; 3] })
}

/// Convenience: save to a filesystem path.
pub fn save_to_path(forest: &SetupForest, path: &std::path::Path) -> std::io::Result<usize> {
    let data = save(forest);
    std::fs::write(path, &data)?;
    Ok(data.len())
}

/// Convenience: load from a filesystem path.
pub fn load_from_path(path: &std::path::Path) -> std::io::Result<SetupForest> {
    let data = std::fs::read(path)?;
    load(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::morton_balance;
    use trillium_geometry::vec3::vec3;

    fn sample_forest() -> SetupForest {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(4.0, 4.0, 4.0));
        let mut f = SetupForest::uniform(domain, [4, 4, 4], [16, 16, 16]);
        // Refine one block to exercise the ID paths, then assign varying
        // integer workloads (fluid-cell counts are always integers).
        let target = f.blocks[10].id;
        f.refine_where(|b| b.id == target);
        for (i, b) in f.blocks.iter_mut().enumerate() {
            b.workload = (100 + 37 * i) as f64;
            b.fully_inside = false;
        }
        morton_balance(&mut f, 12);
        f
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let f = sample_forest();
        let data = save(&f);
        let g = load(&data).expect("load");
        assert_eq!(g.roots, f.roots);
        assert_eq!(g.cells_per_block, f.cells_per_block);
        assert_eq!(g.num_processes, f.num_processes);
        assert_eq!(g.num_blocks(), f.num_blocks());
        assert_eq!(g.domain, f.domain);
        for (a, b) in f.blocks.iter().zip(&g.blocks) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.coords, b.coords);
            assert!((a.aabb.min - b.aabb.min).norm() < 1e-12);
            assert!((a.aabb.max - b.aabb.max).norm() < 1e-12);
        }
    }

    #[test]
    fn byte_widths_are_minimal() {
        assert_eq!(byte_width(0), 1);
        assert_eq!(byte_width(255), 1);
        assert_eq!(byte_width(256), 2);
        assert_eq!(byte_width(65_535), 2);
        assert_eq!(byte_width(65_536), 3);
        assert_eq!(byte_width(u64::MAX), 8);
    }

    /// The paper's example: for up to 65,536 processes, a rank costs two
    /// bytes on disk (even though it occupies four in memory).
    #[test]
    fn rank_width_matches_paper_example() {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0));
        let mut f = SetupForest::uniform(domain, [2, 2, 2], [8, 8, 8]);
        f.num_processes = 65_536;
        for (i, b) in f.blocks.iter_mut().enumerate() {
            b.rank = (i * 8000) as u32;
        }
        let data = save(&f);
        // Rank width byte is the second of the three width bytes after the
        // fixed header.
        let header = 4 + 48 + 12 + 12 + 4 + 8;
        assert_eq!(data[header + 1], 2, "rank width for 65,536 processes");
        // And one more process pushes it to three bytes.
        f.num_processes = 65_537;
        let data = save(&f);
        assert_eq!(data[header + 1], 3);
    }

    #[test]
    fn corrupted_data_is_rejected() {
        let f = sample_forest();
        let mut data = save(&f);
        assert_eq!(load(&data[..3]).unwrap_err(), LoadError::BadMagic);
        data[0] = b'X';
        assert_eq!(load(&data).unwrap_err(), LoadError::BadMagic);
        let data = save(&f);
        assert_eq!(load(&data[..data.len() - 2]).unwrap_err(), LoadError::Truncated);
    }

    /// Size check against the paper's headline: a forest with half a
    /// million blocks/processes stays in the tens-of-MiB range — ours is
    /// well under 10 MiB because we store only ID + rank + workload.
    #[test]
    fn half_million_block_file_is_small() {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(80.0, 80.0, 80.0));
        let mut f = SetupForest::uniform(domain, [80, 80, 80], [100, 100, 100]);
        morton_balance(&mut f, 512_000);
        let data = save(&f);
        let per_block = (data.len() - 91) as f64 / f.num_blocks() as f64;
        // ID (3 bytes: 512000 << 4 needs 23 bits) + rank (3) + workload (3).
        assert_eq!(per_block, 9.0, "bytes per block");
        assert!(data.len() < 10 * 1024 * 1024, "file size {} bytes", data.len());
        // Round trip at scale.
        let g = load(&data).expect("load");
        assert_eq!(g.num_blocks(), 512_000);
        assert_eq!(g.blocks[777].rank, f.blocks[777].rank);
    }
}
