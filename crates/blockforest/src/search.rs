//! Domain-partitioning parameter search (paper §2.3).
//!
//! "To perform weak scaling experiments, we seek a domain partitioning
//! yielding a given number of blocks with a fixed block size while varying
//! the isotropic spatial resolution dx. For strong scaling experiments, we
//! have to find a fitting block size for a given number of blocks and a
//! fixed dx. We solve both problems by performing a binary search in the
//! respective parameter space. [...] As the number of resulting blocks is
//! not monotonic [...] we use the domain partitioning that yields the most
//! blocks but does not exceed the specified target."

use crate::setup::SetupForest;
use trillium_geometry::SignedDistance;

/// Result of a partitioning search.
#[derive(Debug)]
pub struct PartitionSearch {
    /// The chosen forest (most blocks ≤ target).
    pub forest: SetupForest,
    /// The resolution the forest was built with.
    pub dx: f64,
    /// Cubic block edge length in cells (strong scaling only).
    pub block_edge: usize,
}

/// Weak scaling: fixed block size in cells, find the isotropic resolution
/// `dx` whose partitioning yields the most blocks not exceeding
/// `target_blocks`.
pub fn search_weak_partition<S: SignedDistance + ?Sized>(
    sdf: &S,
    cells_per_block: [usize; 3],
    target_blocks: usize,
    iterations: usize,
) -> PartitionSearch {
    search_weak_partition_impl(sdf, cells_per_block, target_blocks, iterations, None)
}

/// Like [`search_weak_partition`] but building candidate forests with
/// sampled workloads (`samples³` probes per block) — the fast path for
/// very large targets in the scaling harness.
pub fn search_weak_partition_sampled<S: SignedDistance + ?Sized>(
    sdf: &S,
    cells_per_block: [usize; 3],
    target_blocks: usize,
    iterations: usize,
    samples: usize,
) -> PartitionSearch {
    search_weak_partition_impl(sdf, cells_per_block, target_blocks, iterations, Some(samples))
}

fn search_weak_partition_impl<S: SignedDistance + ?Sized>(
    sdf: &S,
    cells_per_block: [usize; 3],
    target_blocks: usize,
    iterations: usize,
    samples: Option<usize>,
) -> PartitionSearch {
    assert!(target_blocks >= 1);
    let bb = sdf.bounding_box();
    let ext = bb.extents();
    let max_edge = ext.x.max(ext.y).max(ext.z);
    // dx bounds: one block covering everything .. absurdly fine.
    let mut dx_hi = max_edge / cells_per_block[0] as f64 * 2.0;
    // Lower bound via the volume heuristic: blocks scale like dx^-3 near
    // the surface-dominated regime, dx^-3 overall; start generously fine.
    let mut dx_lo = dx_hi / (4.0 * (target_blocks as f64).powf(1.0 / 2.0) + 8.0);

    let count = |dx: f64| match samples {
        Some(s) => SetupForest::from_domain_sampled(sdf, dx, cells_per_block, s),
        None => SetupForest::from_domain(sdf, dx, cells_per_block),
    };

    // Ensure the bracket actually brackets the target.
    let mut lo_forest = count(dx_lo);
    let mut guard = 0;
    while lo_forest.num_blocks() <= target_blocks && guard < 8 {
        dx_lo /= 2.0;
        lo_forest = count(dx_lo);
        guard += 1;
    }

    let mut best: Option<(SetupForest, f64)> = None;
    let consider = |f: SetupForest, dx: f64, best: &mut Option<(SetupForest, f64)>| {
        if f.num_blocks() <= target_blocks
            && best.as_ref().map_or(true, |(bf, _)| f.num_blocks() > bf.num_blocks())
        {
            *best = Some((f, dx));
        }
    };

    let hi_forest = count(dx_hi);
    consider(hi_forest, dx_hi, &mut best);
    consider(lo_forest, dx_lo, &mut best);

    for _ in 0..iterations {
        let dx = (dx_lo * dx_hi).sqrt(); // geometric midpoint: dx spans decades
        let f = count(dx);
        let n = f.num_blocks();
        consider(f, dx, &mut best);
        if n > target_blocks {
            dx_lo = dx; // too fine: coarsen
        } else {
            dx_hi = dx; // within target: refine further
        }
    }
    let (forest, dx) = best.expect("weak-scaling search found no feasible partitioning");
    let block_edge = cells_per_block[0];
    PartitionSearch { forest, dx, block_edge }
}

/// Strong scaling: fixed resolution `dx`, cubic blocks; find the block
/// edge length (in cells) whose partitioning yields the most blocks not
/// exceeding `target_blocks`. Searched over `edge_range` (inclusive).
pub fn search_strong_partition<S: SignedDistance + ?Sized>(
    sdf: &S,
    dx: f64,
    target_blocks: usize,
    edge_range: (usize, usize),
    iterations: usize,
) -> PartitionSearch {
    assert!(edge_range.0 >= 2 && edge_range.0 <= edge_range.1);
    let count = |edge: usize| SetupForest::from_domain(sdf, dx, [edge, edge, edge]);

    let mut best: Option<(SetupForest, usize)> = None;
    let consider = |f: SetupForest, e: usize, best: &mut Option<(SetupForest, usize)>| {
        if f.num_blocks() <= target_blocks
            && best.as_ref().map_or(true, |(bf, _)| f.num_blocks() > bf.num_blocks())
        {
            *best = Some((f, e));
        }
    };

    // Binary search: larger edges give fewer blocks (approximately
    // monotone); track the best feasible candidate like the paper does.
    let (mut lo, mut hi) = edge_range;
    for _ in 0..iterations {
        if lo > hi {
            break;
        }
        let mid = (lo + hi) / 2;
        let f = count(mid);
        let n = f.num_blocks();
        consider(f, mid, &mut best);
        if n > target_blocks {
            lo = mid + 1; // too many blocks: grow blocks
        } else if n < target_blocks {
            hi = mid.saturating_sub(1); // room left: shrink blocks
        } else {
            break; // exact hit
        }
    }
    let (forest, block_edge) = best.expect("strong-scaling search found no feasible partitioning");
    PartitionSearch { forest, dx, block_edge }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_geometry::sdf::AnalyticSdf;
    use trillium_geometry::vec3::vec3;

    fn capsule() -> AnalyticSdf {
        AnalyticSdf::Capsule { a: vec3(0.0, 0.0, 0.0), b: vec3(6.0, 0.0, 0.0), radius: 0.5 }
    }

    #[test]
    fn weak_search_approaches_target_from_below() {
        let target = 64;
        let r = search_weak_partition(&capsule(), [8, 8, 8], target, 24);
        let n = r.forest.num_blocks();
        assert!(n <= target, "exceeded target: {n}");
        assert!(n >= target / 2, "too far below target: {n}");
        assert!(r.dx > 0.0);
        // Every block carries fluid.
        assert!(r.forest.blocks.iter().all(|b| b.workload > 0.0));
    }

    #[test]
    fn weak_search_scales_with_target() {
        let small = search_weak_partition(&capsule(), [8, 8, 8], 16, 20);
        let large = search_weak_partition(&capsule(), [8, 8, 8], 256, 20);
        assert!(large.forest.num_blocks() > 2 * small.forest.num_blocks());
        assert!(large.dx < small.dx, "finer resolution for more blocks");
    }

    #[test]
    fn strong_search_fixed_resolution() {
        let dx = 0.05;
        let target = 100;
        let r = search_strong_partition(&capsule(), dx, target, (4, 40), 16);
        assert_eq!(r.dx, dx);
        let n = r.forest.num_blocks();
        assert!(n <= target, "exceeded target: {n}");
        assert!(n >= target / 3, "too far below target: {n}");
        // Total fluid cells is resolution-determined, independent of the
        // partitioning.
        let fluid = r.forest.total_workload();
        let expect = (std::f64::consts::PI * 0.25 * 6.0 + 4.0 / 3.0 * std::f64::consts::PI * 0.125)
            / dx.powi(3);
        assert!((fluid - expect).abs() / expect < 0.05, "{fluid} vs {expect}");
    }

    #[test]
    fn strong_search_smaller_blocks_for_more_targets() {
        let dx = 0.05;
        let few = search_strong_partition(&capsule(), dx, 20, (4, 48), 16);
        let many = search_strong_partition(&capsule(), dx, 400, (4, 48), 16);
        assert!(many.block_edge < few.block_edge);
        assert!(many.forest.num_blocks() > few.forest.num_blocks());
    }
}
