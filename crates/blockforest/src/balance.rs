//! Initial, static load balancing of setup blocks onto processes.
//!
//! Two strategies are provided, mirroring the paper:
//!
//! * [`morton_balance`] — blocks are ordered along a Morton (Z-order)
//!   space-filling curve and the curve is cut into contiguous chunks of
//!   (approximately) equal workload. Fast, locality-preserving, the
//!   default for dense regular domains.
//! * graph partitioning (METIS in the paper) lives in the `partition`
//!   crate and is plugged in through [`balance_with`]; it additionally
//!   minimizes the communication volume between processes.

use crate::setup::SetupForest;

/// Interleaves the lower 42 bits of three coordinates into a Morton code
/// (x in bit 0, y in bit 1, z in bit 2 of each triple). Setup-phase only,
/// so the straightforward bit loop is plenty fast.
pub fn morton_code(x: u64, y: u64, z: u64) -> u128 {
    let mut out = 0u128;
    for i in 0..42u32 {
        out |= (((x >> i) & 1) as u128) << (3 * i)
            | (((y >> i) & 1) as u128) << (3 * i + 1)
            | (((z >> i) & 1) as u128) << (3 * i + 2);
    }
    out
}

/// Assigns blocks to `num_processes` ranks by cutting the Morton curve into
/// chunks of approximately equal workload. Every rank receives a contiguous
/// curve segment, so blocks on one process neighbor each other spatially
/// ("blocks on one process are ideally neighboring each other to exploit
/// fast local communication", §2.3).
pub fn morton_balance(forest: &mut SetupForest, num_processes: u32) {
    assert!(num_processes > 0);
    // Mixed-level forests: scale coordinates to the finest level so curve
    // positions nest.
    let max_level = forest.blocks.iter().map(|b| b.id.level()).max().unwrap_or(0);
    let mut order: Vec<usize> = (0..forest.blocks.len()).collect();
    order.sort_by_key(|&i| {
        let b = &forest.blocks[i];
        let c = b.coords;
        let shift = (max_level - b.id.level()) as u64;
        (morton_code((c[0] as u64) << shift, (c[1] as u64) << shift, (c[2] as u64) << shift), b.id)
    });

    let total: f64 = forest.total_workload();
    let per_rank = total / num_processes as f64;
    let mut acc = 0.0;
    let mut rank = 0u32;
    for &i in &order {
        // Advance to the rank whose quota this block's start falls into,
        // never beyond the last rank.
        while rank + 1 < num_processes
            && acc + forest.blocks[i].workload * 0.5 >= per_rank * (rank + 1) as f64
        {
            rank += 1;
        }
        forest.blocks[i].rank = rank;
        acc += forest.blocks[i].workload;
    }
    forest.num_processes = num_processes;
}

/// Deliberately *unbalances* the Morton assignment: rank 0 receives the
/// first `fraction` of the total workload along the curve and the
/// remaining ranks split the rest evenly. This is a test/ablation
/// fixture for the runtime rebalancer — it reproduces the skew that
/// develops in practice when per-cell cost drifts away from the static
/// cell-count estimate, without needing a cost model to do so.
pub fn skewed_balance(forest: &mut SetupForest, num_processes: u32, fraction: f64) {
    assert!(num_processes > 0);
    assert!((0.0..1.0).contains(&fraction));
    morton_balance(forest, num_processes);
    if num_processes == 1 {
        return;
    }
    // Re-cut the curve: rank 0's quota is `fraction` of the total, the
    // others share the remainder. Reuse the Morton order by sorting rank
    // assignments (morton_balance made them contiguous along the curve).
    let total = forest.total_workload();
    let mut order: Vec<usize> = (0..forest.blocks.len()).collect();
    order.sort_by_key(|&i| (forest.blocks[i].rank, forest.blocks[i].id));
    let rest = total * (1.0 - fraction) / (num_processes - 1) as f64;
    let quota = |rank: u32| if rank == 0 { total * fraction } else { rest };
    let mut rank = 0u32;
    let mut acc = 0.0;
    for &i in &order {
        let w = forest.blocks[i].workload;
        while rank + 1 < num_processes && acc + 0.5 * w >= quota(rank) {
            rank += 1;
            acc = 0.0;
        }
        forest.blocks[i].rank = rank;
        acc += w;
    }
    forest.num_processes = num_processes;
}

/// Balances with a caller-supplied assignment function mapping each block
/// (workload, neighbors come from the caller's own analysis) to a rank.
/// Used to plug in the graph partitioner.
pub fn balance_with<F: FnMut(usize) -> u32>(
    forest: &mut SetupForest,
    num_processes: u32,
    mut assign: F,
) {
    for (i, b) in forest.blocks.iter_mut().enumerate() {
        let r = assign(i);
        assert!(r < num_processes, "assignment out of range");
        b.rank = r;
    }
    forest.num_processes = num_processes;
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_geometry::vec3::vec3;
    use trillium_geometry::Aabb;

    #[test]
    fn morton_code_orders_locally() {
        // The eight corners of a 2³ cube enumerate 0..8 in octant order.
        let mut codes = Vec::new();
        for z in 0..2 {
            for y in 0..2 {
                for x in 0..2 {
                    codes.push(morton_code(x, y, z));
                }
            }
        }
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted);
        assert_eq!(codes[0], 0);
        assert_eq!(codes[7], 7);
    }

    #[test]
    fn morton_code_handles_large_coordinates() {
        let a = morton_code(1 << 20, 0, 0);
        let b = morton_code(0, 1 << 20, 0);
        let c = morton_code(0, 0, 1 << 20);
        assert!(a < b && b < c);
        assert_eq!(morton_code((1 << 21) - 1, (1 << 21) - 1, (1 << 21) - 1).count_ones(), 63);
    }

    #[test]
    fn balance_distributes_workload_evenly() {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(8.0, 8.0, 8.0));
        let mut f = SetupForest::uniform(domain, [8, 8, 8], [10, 10, 10]);
        morton_balance(&mut f, 64);
        assert_eq!(f.num_processes, 64);
        // 512 equal blocks over 64 ranks: exactly 8 each.
        let w = f.rank_workloads();
        assert!(w.iter().all(|&x| (x - 8.0 * 1000.0).abs() < 1e-9), "{w:?}");
        assert!((f.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balance_with_unequal_workloads_stays_reasonable() {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(8.0, 8.0, 1.0));
        let mut f = SetupForest::uniform(domain, [8, 8, 1], [10, 10, 10]);
        // Make workloads vary.
        for (i, b) in f.blocks.iter_mut().enumerate() {
            b.workload = 100.0 + (i % 7) as f64 * 50.0;
        }
        morton_balance(&mut f, 8);
        let imb = f.imbalance();
        assert!(imb < 1.35, "imbalance {imb}");
        // All ranks used.
        let w = f.rank_workloads();
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn skewed_balance_overloads_rank_zero() {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(8.0, 8.0, 8.0));
        let mut f = SetupForest::uniform(domain, [8, 8, 8], [10, 10, 10]);
        skewed_balance(&mut f, 4, 0.6);
        let w = f.rank_workloads();
        let total: f64 = w.iter().sum();
        // Rank 0 holds roughly 60% of the work; every rank holds some.
        assert!(w[0] / total > 0.5, "{w:?}");
        assert!(w.iter().all(|&x| x > 0.0), "{w:?}");
        assert!(f.imbalance() > 1.8, "imbalance {}", f.imbalance());
    }

    #[test]
    fn one_block_per_process_target() {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(4.0, 4.0, 4.0));
        let mut f = SetupForest::uniform(domain, [4, 4, 4], [8, 8, 8]);
        morton_balance(&mut f, 64);
        let mut counts = vec![0; 64];
        for b in &f.blocks {
            counts[b.rank as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn curve_chunks_are_spatially_compact() {
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(8.0, 8.0, 8.0));
        let mut f = SetupForest::uniform(domain, [8, 8, 8], [4, 4, 4]);
        morton_balance(&mut f, 64);
        // Each rank's 8 blocks must fit in a small bounding box (Morton
        // chunks of size 8 on an aligned grid are 2×2×2 cubes).
        for r in 0..64 {
            let mut bb = Aabb::EMPTY;
            for b in f.blocks.iter().filter(|b| b.rank == r) {
                bb.grow_box(&b.aabb);
            }
            let e = bb.extents();
            assert!(e.x <= 2.0 + 1e-9 && e.y <= 2.0 + 1e-9 && e.z <= 2.0 + 1e-9);
        }
    }
}
