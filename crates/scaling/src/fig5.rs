//! Fig 5: SMT levels of the optimized TRT kernel on a JUQUEEN node.

use serde::Serialize;
use trillium_perfmodel::smt::SmtModel;

/// One point of an SMT curve.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5Row {
    /// SMT ways (1, 2 or 4).
    pub ways: u32,
    /// Active cores.
    pub cores: u32,
    /// Modeled MLUPS.
    pub mlups: f64,
}

/// SMT curves for 1–16 cores at 1-, 2- and 4-way SMT.
pub fn fig5_series() -> Vec<Fig5Row> {
    let m = SmtModel::juqueen_trt();
    let mut rows = Vec::new();
    for ways in [1, 2, 4] {
        for cores in 1..=16 {
            rows.push(Fig5Row { ways, cores, mlups: m.mlups(cores, ways) });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_shape() {
        let rows = fig5_series();
        assert_eq!(rows.len(), 48);
        let at = |w: u32, c: u32| rows.iter().find(|r| r.ways == w && r.cores == c).unwrap().mlups;
        // Monotone in SMT level everywhere.
        for c in [1, 4, 8, 16] {
            assert!(at(1, c) <= at(2, c));
            assert!(at(2, c) <= at(4, c));
        }
        // 4-way at the full node sits at the bandwidth limit (§4.1:
        // utilizing 4-way SMT is crucial).
        assert!((at(4, 16) - 76.2).abs() < 2.5);
        // 1-way cannot come close.
        assert!(at(1, 16) < 0.65 * at(4, 16));
    }
}
