//! Communication-hiding term of the step-time model.
//!
//! The overlapped driver schedule (see `trillium-core::driver`) posts all
//! ghost sends, sweeps each block's *interior core* — the cells whose
//! pull stencil never reads the ghost layer — while the messages are in
//! flight, and only then drains the network to finish the boundary
//! shells. On a real machine with asynchronous progression this hides
//! communication behind the interior sweep, so the modeled step time is
//!
//! ```text
//! t = t_kernel + max(t_comm − t_interior, 0)      (+ overheads)
//! ```
//!
//! rather than the synchronous `t_kernel + t_comm`. For a cubic block of
//! edge `e` cells and a stencil reach of one (D3Q19 with a one-cell ghost
//! layer), the interior core holds `(e − 2)³` of the `e³` cells, so
//! `t_interior ≈ t_kernel · ((e − 2)/e)³`. The term degrades gracefully
//! exactly where it should: large blocks hide nearly all communication
//! (the fraction → 1), while the tiny blocks of deep strong scaling hide
//! almost nothing — which is why overlap does not rescue strong-scaling
//! efficiency at extreme core counts (Fig 8).

/// Fraction of a cubic block's cells in the interior core for stencil
/// reach 1: `((e − 2)/e)³`, clamped to zero for degenerate blocks.
pub fn interior_fraction(edge: usize) -> f64 {
    if edge <= 2 {
        return 0.0;
    }
    let f = (edge - 2) as f64 / edge as f64;
    f * f * f
}

/// Communication time *not* hidden by the overlapped schedule:
/// `max(t_comm − t_kernel · interior_fraction(edge), 0)`.
pub fn unhidden_comm_time(t_kernel: f64, t_comm: f64, edge: usize) -> f64 {
    (t_comm - t_kernel * interior_fraction(edge)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_fraction_shape() {
        assert_eq!(interior_fraction(2), 0.0);
        assert_eq!(interior_fraction(1), 0.0);
        let f16 = interior_fraction(16);
        let f170 = interior_fraction(170);
        assert!(f16 > 0.6 && f16 < 0.7, "{f16}");
        assert!(f170 > 0.96, "{f170}");
        assert!(f170 > f16, "larger blocks hide more");
    }

    #[test]
    fn hiding_clamps_at_zero() {
        // Interior compute longer than comm: everything hidden.
        assert_eq!(unhidden_comm_time(1.0, 0.5, 100), 0.0);
        // Tiny blocks hide nothing.
        assert_eq!(unhidden_comm_time(1.0, 0.5, 2), 0.5);
        // Partial hiding in between.
        let u = unhidden_comm_time(0.1, 0.5, 16);
        assert!(u > 0.0 && u < 0.5, "{u}");
    }
}
