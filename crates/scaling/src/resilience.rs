//! Optimal checkpoint interval at machine scale (Young/Daly).
//!
//! The resilient driver (`trillium-core::recovery`) checkpoints the
//! distributed block forest every K steps and rolls back on failure.
//! The choice of K is a classic trade-off: checkpoint too often and the
//! I/O overhead dominates; too rarely and every failure throws away a
//! long replay window. At the paper's scale the trade-off is acute —
//! JUQUEEN's 28,672 nodes turn a per-node MTBF of years into a system
//! MTBF of hours.
//!
//! This module implements the first-order Young model and Daly's
//! higher-order refinement for the optimal interval, plus the resulting
//! waste fraction
//!
//! ```text
//! waste(τ) ≈ C/τ + τ/(2M) + R/M
//! ```
//!
//! where `C` is the checkpoint commit time, `R` the restart time, `M`
//! the system MTBF and `τ` the compute time between checkpoints. The
//! Young optimum is `τ* = sqrt(2 C M)`; Daly's correction subtracts the
//! checkpoint time itself (`τ_Daly = sqrt(2 C (M + R)) - C`). The
//! checkpoint commit time is sized from the actual forest snapshot the
//! runtime writes: both halves of the 19-PDF double buffer + 1 flag
//! byte per cell, streamed to the parallel file system at an aggregate
//! bandwidth.

use serde::Serialize;
use trillium_machine::MachineSpec;

/// Inputs of the checkpoint-interval model.
#[derive(Copy, Clone, Debug, Serialize)]
pub struct ResilienceModel {
    /// Mean time between failures of a single node, in hours. Field
    /// experience on BlueGene/Q-class machines is O(10⁴–10⁵) node-hours
    /// per failure.
    pub node_mtbf_hours: f64,
    /// Cells per node in the run being protected (sizes the snapshot).
    pub cells_per_node: f64,
    /// Aggregate parallel-file-system bandwidth in GiB/s available for
    /// checkpoint commits.
    pub pfs_bandwidth_gib: f64,
    /// Restart time in seconds: re-reading the snapshot plus job
    /// relaunch latency.
    pub restart_seconds: f64,
    /// Wall-clock seconds per time step (sets the step-granular
    /// interval the runtime can actually honor).
    pub step_seconds: f64,
}

impl Default for ResilienceModel {
    fn default() -> Self {
        Self {
            node_mtbf_hours: 50_000.0,
            cells_per_node: 64.0 * 64.0 * 64.0 * 64.0,
            pfs_bandwidth_gib: 100.0,
            restart_seconds: 120.0,
            step_seconds: 0.5,
        }
    }
}

/// One row of the checkpoint-interval table.
#[derive(Clone, Debug, Serialize)]
pub struct ResilienceRow {
    /// Number of nodes used by the run.
    pub nodes: u64,
    /// System mean time between failures in hours (node MTBF / nodes).
    pub system_mtbf_hours: f64,
    /// Checkpoint commit time in seconds (snapshot bytes over the PFS
    /// bandwidth).
    pub checkpoint_seconds: f64,
    /// Young's optimal interval `sqrt(2 C M)` in seconds.
    pub tau_young_seconds: f64,
    /// Daly's refined interval `sqrt(2 C (M + R)) - C` in seconds.
    pub tau_daly_seconds: f64,
    /// Young interval rounded to whole time steps (what the runtime's
    /// `checkpoint_every` should be set to), at least one.
    pub steps_between_checkpoints: u64,
    /// Expected fraction of wall-clock time lost to checkpoints,
    /// re-work and restarts at the Young-optimal interval.
    pub waste_fraction: f64,
    /// Expected failures per 24-hour run at this scale.
    pub failures_per_day: f64,
}

/// Snapshot size per node in bytes: the forest checkpoint stores both
/// halves of the 19-PDF double-precision double buffer plus one flag
/// byte per cell, with negligible framing. Both buffers must travel
/// because cells outside the sparse sweep's coverage alternate between
/// them with step parity.
pub fn snapshot_bytes_per_node(model: &ResilienceModel) -> f64 {
    model.cells_per_node * (2.0 * 19.0 * 8.0 + 1.0)
}

/// Expected waste fraction of an interval `tau` (compute seconds between
/// checkpoints) for checkpoint time `c`, restart time `r` and system
/// MTBF `m`, all in seconds: `c/tau + tau/(2m) + r/m`.
pub fn waste_fraction(tau: f64, c: f64, r: f64, m: f64) -> f64 {
    c / tau + tau / (2.0 * m) + r / m
}

/// Evaluates the model for a run on `nodes` nodes of `machine`.
pub fn predict(model: &ResilienceModel, nodes: u64, machine: &MachineSpec) -> ResilienceRow {
    let nodes = nodes.clamp(1, machine.total_nodes());
    let system_mtbf_hours = model.node_mtbf_hours / nodes as f64;
    let m = system_mtbf_hours * 3600.0;

    // Commit time: every node's snapshot streams to the shared file
    // system, so the aggregate payload divides the aggregate bandwidth.
    let payload = snapshot_bytes_per_node(model) * nodes as f64;
    let c = payload / (model.pfs_bandwidth_gib * 1024.0 * 1024.0 * 1024.0);

    let tau_young = (2.0 * c * m).sqrt();
    let tau_daly = ((2.0 * c * (m + model.restart_seconds)).sqrt() - c).max(c);
    let steps = (tau_young / model.step_seconds).round().max(1.0) as u64;

    ResilienceRow {
        nodes,
        system_mtbf_hours,
        checkpoint_seconds: c,
        tau_young_seconds: tau_young,
        tau_daly_seconds: tau_daly,
        steps_between_checkpoints: steps,
        waste_fraction: waste_fraction(tau_young, c, model.restart_seconds, m),
        failures_per_day: 24.0 / system_mtbf_hours,
    }
}

/// The interval table from 2^0 up to the full machine, doubling the
/// node count each row.
pub fn resilience_series(model: &ResilienceModel, machine: &MachineSpec) -> Vec<ResilienceRow> {
    let mut rows = Vec::new();
    let mut nodes = 1u64;
    while nodes < machine.total_nodes() {
        rows.push(predict(model, nodes, machine));
        nodes *= 2;
    }
    rows.push(predict(model, machine.total_nodes(), machine));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_interval_shrinks_as_the_machine_grows() {
        let m = ResilienceModel::default();
        let machine = MachineSpec::juqueen();
        let rows = resilience_series(&m, &machine);
        assert_eq!(rows.last().unwrap().nodes, machine.total_nodes());
        // System MTBF falls linearly with nodes...
        for w in rows.windows(2) {
            assert!(w[1].system_mtbf_hours < w[0].system_mtbf_hours);
        }
        // ...and at full scale failures are a daily event, so the
        // optimal interval must be materially shorter than a day.
        let last = rows.last().unwrap();
        assert!(last.failures_per_day > 1.0, "failures/day {}", last.failures_per_day);
        assert!(last.tau_young_seconds < 12.0 * 3600.0);
    }

    #[test]
    fn young_optimum_minimizes_the_waste_model() {
        let m = ResilienceModel::default();
        let machine = MachineSpec::supermuc();
        let row = predict(&m, machine.total_nodes(), &machine);
        let mtbf = row.system_mtbf_hours * 3600.0;
        let at = |tau: f64| waste_fraction(tau, row.checkpoint_seconds, m.restart_seconds, mtbf);
        let opt = at(row.tau_young_seconds);
        for f in [0.25, 0.5, 2.0, 4.0] {
            assert!(at(row.tau_young_seconds * f) >= opt, "not optimal at ×{f}");
        }
        assert!(row.waste_fraction < 1.0);
    }

    #[test]
    fn daly_refinement_stays_close_below_the_young_interval() {
        let m = ResilienceModel::default();
        let machine = MachineSpec::juqueen();
        for row in resilience_series(&m, &machine) {
            assert!(row.tau_daly_seconds <= row.tau_young_seconds + 1e-9);
            assert!(row.tau_daly_seconds > 0.5 * row.tau_young_seconds);
            assert!(row.steps_between_checkpoints >= 1);
        }
    }
}
