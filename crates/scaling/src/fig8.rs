//! Fig 8: strong scaling on the vascular geometry.
//!
//! A fixed, rather small domain (the paper: 2.1 M fluid cells at 0.1 mm,
//! 16.9 M at 0.05 mm) is partitioned into ever more, ever smaller blocks
//! as the core count grows. Smaller blocks fit the geometry better but
//! spend less time in the optimized kernel and more in communication and
//! per-block framework overhead, so for every core count the experiment
//! sweeps block sizes and reports the best result — exactly the paper's
//! procedure ("we conducted the strong scaling experiments with varying
//! numbers and varying sizes of blocks; we report the maximum performance
//! achieved").

use crate::fig6::DENSE_OVERHEAD;
use crate::fig7::{covered_ratio, Fig7Config};
use serde::Serialize;
use trillium_blockforest::SetupForest;
use trillium_geometry::SignedDistance;
use trillium_machine::MachineSpec;
use trillium_perfmodel::roofline_mlups;

/// Per-block framework overhead (control flow, sweep dispatch, boundary
/// bookkeeping) in seconds, per machine. Calibrated so the strong-scaling
/// peaks land in the paper's range (SuperMUC: thousands of steps/s; the
/// slower in-order JUQUEEN cores pay ~6× more per block, which is why its
/// efficiency declines earlier — §4.3).
pub fn block_overhead(machine: &MachineSpec) -> f64 {
    match machine.name {
        "SuperMUC" => 22e-6,
        "JUQUEEN" => 130e-6,
        _ => 30e-6,
    }
}

/// One point of the Fig 8 curves.
#[derive(Clone, Debug, Serialize)]
pub struct Fig8Row {
    /// Total cores.
    pub cores: u64,
    /// MFLUPS per core at the best block size.
    pub mflups_per_core: f64,
    /// Time steps per second at the best block size.
    pub timesteps_per_s: f64,
    /// The winning cubic block edge (cells).
    pub best_edge: usize,
    /// Blocks per process at the winning configuration.
    pub blocks_per_proc: f64,
}

/// Evaluates one (core count, block edge) candidate; returns
/// (steps/s, MFLUPS/core, blocks_per_proc) or None if infeasible.
fn candidate(
    sdf: &dyn SignedDistance,
    machine: &MachineSpec,
    cfg: &Fig7Config,
    cores: u64,
    forest: &SetupForest,
    edge: usize,
) -> Option<(f64, f64, f64)> {
    let blocks = forest.num_blocks();
    if blocks == 0 {
        return None;
    }
    let procs = (cores / cfg.cores_per_proc as u64).max(1);
    // The paper saw up to 64 blocks per core as optimal at small scale;
    // beyond ~128 blocks/process memory and bookkeeping explode.
    let blocks_per_proc = (blocks as f64 / procs as f64).ceil().max(1.0);
    if blocks_per_proc > 256.0 {
        return None;
    }

    let fluid_total = forest.total_workload();
    let ratio = covered_ratio(sdf, forest, edge, cfg.coverage_sample_blocks);
    let covered_per_block = (fluid_total / blocks as f64 * ratio).min((edge * edge * edge) as f64);

    // Process-level kernel rate: its threads' cores at the dense rate.
    let per_core_rate =
        roofline_mlups(machine.lbm_bw_gib, 19) * machine.sockets_per_node as f64 * 1e6
            / machine.cores_per_node() as f64
            / DENSE_OVERHEAD;
    let proc_rate = per_core_rate * cfg.cores_per_proc as f64;
    let t_kernel = blocks_per_proc * covered_per_block / proc_rate;

    // Communication per block: dense faces/edges.
    let face = (edge * edge * 5 * 8) as u64;
    let edge_b = (edge * 8) as u64;
    let mut msgs = vec![face; 6];
    msgs.extend(vec![edge_b; 12]);
    let t_comm = machine.network.exchange_time(&msgs, cores) * blocks_per_proc / cfg.threads as f64;

    // Framework overhead per block.
    let t_ovh = blocks_per_proc * block_overhead(machine);

    // Comm hides behind the interior-core sweep; the small blocks of deep
    // strong scaling have almost no interior, so little hides there.
    let t = t_kernel + crate::overlap::unhidden_comm_time(t_kernel, t_comm, edge) + t_ovh;
    let steps_per_s = 1.0 / t;
    let mflups_per_core = fluid_total / cores as f64 / t / 1e6;
    Some((steps_per_s, mflups_per_core, blocks_per_proc))
}

/// Evaluates one core count, sweeping block edges and returning the best.
pub fn fig8_point(
    sdf: &dyn SignedDistance,
    machine: &MachineSpec,
    cfg: &Fig7Config,
    dx: f64,
    cores: u64,
    edges: &[usize],
) -> Fig8Row {
    let mut best: Option<Fig8Row> = None;
    for &edge in edges {
        let forest = SetupForest::from_domain_sampled(sdf, dx, [edge, edge, edge], cfg.samples);
        if let Some((steps, mflups, bpp)) = candidate(sdf, machine, cfg, cores, &forest, edge) {
            let row = Fig8Row {
                cores,
                mflups_per_core: mflups,
                timesteps_per_s: steps,
                best_edge: edge,
                blocks_per_proc: bpp,
            };
            if best.as_ref().map_or(true, |b| row.timesteps_per_s > b.timesteps_per_s) {
                best = Some(row);
            }
        }
    }
    best.expect("no feasible block size for this core count")
}

/// The paper's block-edge sweep range (9³ … 46³).
pub fn paper_edges() -> Vec<usize> {
    vec![9, 11, 13, 16, 20, 24, 28, 34, 40, 46]
}

/// A strong-scaling series over power-of-two core counts.
pub fn fig8_series(
    sdf: &dyn SignedDistance,
    machine: &MachineSpec,
    cfg: &Fig7Config,
    dx: f64,
    core_range: (u32, u32),
    edges: &[usize],
) -> Vec<Fig8Row> {
    (core_range.0..=core_range.1)
        .map(|p| fig8_point(sdf, machine, cfg, dx, 1u64 << p, edges))
        .collect()
}

/// Picks `dx` so the domain holds approximately `target_fluid` cells
/// (the paper's 0.1 mm ↔ 2.1 M and 0.05 mm ↔ 16.9 M configurations,
/// transplanted to the synthetic tree).
pub fn dx_for_fluid_cells(sdf: &dyn SignedDistance, target_fluid: f64, probe_dx: f64) -> f64 {
    // Measure the fluid volume once at a probe resolution.
    let f = SetupForest::from_domain_sampled(sdf, probe_dx, [16, 16, 16], 5);
    let fluid_at_probe = f.total_workload();
    let volume = fluid_at_probe * probe_dx.powi(3);
    (volume / target_fluid).cbrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::test_tree;

    fn cfg() -> Fig7Config {
        Fig7Config {
            block_edge: 0, // unused in fig8
            threads: 4,
            cores_per_proc: 4,
            samples: 4,
            coverage_sample_blocks: 3,
        }
    }

    #[test]
    fn dx_calibration_hits_fluid_target() {
        let t = test_tree();
        let dx = dx_for_fluid_cells(&t, 300_000.0, 0.2);
        let f = SetupForest::from_domain_sampled(&t, dx, [16, 16, 16], 5);
        let fluid = f.total_workload();
        assert!((fluid - 300_000.0).abs() / 300_000.0 < 0.25, "fluid {fluid}");
    }

    /// Fig 8a/8c shape: absolute rate (time steps per second) increases
    /// with cores; per-core efficiency eventually declines.
    #[test]
    fn supermuc_strong_scaling_shape() {
        let t = test_tree();
        let m = MachineSpec::supermuc();
        let dx = dx_for_fluid_cells(&t, 200_000.0, 0.2);
        let edges = vec![8, 12, 16, 24, 32];
        let rows = fig8_series(&t, &m, &cfg(), dx, (4, 12), &edges);
        // steps/s grows over the range (small domain, SuperMUC regime).
        assert!(
            rows.last().unwrap().timesteps_per_s > 4.0 * rows[0].timesteps_per_s,
            "{} -> {}",
            rows[0].timesteps_per_s,
            rows.last().unwrap().timesteps_per_s
        );
        // Efficiency declines at large scale.
        assert!(rows.last().unwrap().mflups_per_core < rows[0].mflups_per_core);
        // The optimal block size shrinks as cores grow (paper: 34³ at 16
        // cores down to 9³ at 32768).
        assert!(rows.last().unwrap().best_edge <= rows[0].best_edge);
    }

    /// §4.3: JUQUEEN's per-core efficiency declines earlier/faster than
    /// SuperMUC's because the slow in-order cores pay more framework
    /// overhead per block.
    #[test]
    fn juqueen_declines_faster_than_supermuc() {
        let t = test_tree();
        let dx = dx_for_fluid_cells(&t, 200_000.0, 0.2);
        let edges = vec![8, 12, 16, 24, 32];
        let sm = MachineSpec::supermuc();
        let jq = MachineSpec::juqueen();
        let cfg_sm = cfg();
        let cfg_jq = Fig7Config { cores_per_proc: 1, ..cfg() };
        let sm_lo = fig8_point(&t, &sm, &cfg_sm, dx, 1 << 5, &edges);
        let sm_hi = fig8_point(&t, &sm, &cfg_sm, dx, 1 << 12, &edges);
        let jq_lo = fig8_point(&t, &jq, &cfg_jq, dx, 1 << 5, &edges);
        let jq_hi = fig8_point(&t, &jq, &cfg_jq, dx, 1 << 12, &edges);
        let eff_sm = (sm_hi.mflups_per_core / sm_lo.mflups_per_core).min(1.0);
        let eff_jq = (jq_hi.mflups_per_core / jq_lo.mflups_per_core).min(1.0);
        assert!(eff_jq < eff_sm, "JUQUEEN {eff_jq} vs SuperMUC {eff_sm}");
    }
}
