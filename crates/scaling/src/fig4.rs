//! Fig 4: ECM model of the TRT kernel vs. clock frequency on SuperMUC.

use serde::Serialize;
use trillium_perfmodel::EcmModel;

/// One point of an ECM curve.
#[derive(Clone, Debug, Serialize)]
pub struct Fig4Row {
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Active cores on the socket.
    pub cores: u32,
    /// Modeled MLUPS.
    pub mlups: f64,
}

/// ECM curves at the paper's two operating points, 2.7 GHz and 1.6 GHz,
/// for 1–8 cores.
pub fn fig4_series() -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for clock in [2.7, 1.6] {
        let m = EcmModel::supermuc_trt_simd(clock);
        for cores in 1..=8 {
            rows.push(Fig4Row { clock_ghz: clock, cores, mlups: m.mlups(cores) });
        }
    }
    rows
}

/// The energy analysis behind Fig 4: at the reduced clock the socket
/// still reaches the given fraction of full-clock performance. The paper
/// reports 93 % performance at 25 % less energy.
pub fn performance_retention(low_ghz: f64, high_ghz: f64) -> f64 {
    EcmModel::supermuc_trt_simd(low_ghz).mlups(8) / EcmModel::supermuc_trt_simd(high_ghz).mlups(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_frequencies_eight_cores_each() {
        let rows = fig4_series();
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().filter(|r| r.clock_ghz == 1.6).count() == 8);
    }

    /// Paper: "the ECM model suggests an optimal clock frequency of
    /// 1.6 GHz, at which [...] still 93 % of the performance can be
    /// achieved. The performance penalty of 7 % is due to slightly slower
    /// bandwidths at lower clock speeds."
    #[test]
    fn ninety_three_percent_at_1_6_ghz() {
        let r = performance_retention(1.6, 2.7);
        assert!((r - 0.93).abs() < 0.01, "retention {r}");
    }

    /// The low-clock curve saturates later (needs all eight cores) — the
    /// operating-point argument of §4.1.
    #[test]
    fn low_clock_saturates_later() {
        let rows = fig4_series();
        let at =
            |f: f64, c: u32| rows.iter().find(|r| r.clock_ghz == f && r.cores == c).unwrap().mlups;
        // At 2.7 GHz, going from 6 to 8 cores gains nothing.
        assert!((at(2.7, 6) - at(2.7, 8)).abs() < 1e-9);
        // At 1.6 GHz, 8 cores still add performance over 6.
        assert!(at(1.6, 8) > at(1.6, 6) + 1.0);
    }
}
