//! The reference coronary tree used by all vascular experiments.

use trillium_geometry::{VascularTree, VascularTreeParams};

/// The synthetic coronary-artery tree standing in for the paper's CTA
/// dataset (substitution documented in DESIGN.md). Ten bifurcation
/// generations give 1023 branches with radii spanning a factor ~9 —
/// comparable to a coronary tree from the main stem down to small
/// side branches — and a bounding-box fluid fraction of a few tenths of
/// a percent, matching the paper's "about 0.3 %".
pub fn paper_tree() -> VascularTree {
    VascularTree::generate(&VascularTreeParams {
        seed: 20130817, // fixed: all experiments share one geometry
        generations: 10,
        root_radius: 1.8,  // mm (left main coronary artery calibre)
        root_length: 14.0, // mm
        length_ratio: 0.78,
        murray_exponent: 3.0,
        asymmetry: 0.4,
        branch_angle: 1.15,
        jitter: 0.3,
        segments_per_branch: 3,
        tortuosity: 0.35,
    })
}

/// A reduced tree (fewer generations) for fast tests.
pub fn test_tree() -> VascularTree {
    VascularTree::generate(&VascularTreeParams {
        seed: 20130817,
        generations: 6,
        root_radius: 1.8,
        root_length: 14.0,
        length_ratio: 0.78,
        murray_exponent: 3.0,
        asymmetry: 0.4,
        branch_angle: 1.15,
        jitter: 0.3,
        segments_per_branch: 2,
        tortuosity: 0.35,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_geometry::SignedDistance;

    #[test]
    fn paper_tree_is_coronary_like() {
        let t = paper_tree();
        assert_eq!(t.num_segments(), (1 << 10) as usize * 3 - 3); // 1023 branches × 3 segments
        assert_eq!(t.outlets.len(), 512);
        let frac = t.fluid_fraction_estimate(40_000, 1);
        assert!(frac < 0.02, "tree too dense: {frac}");
        assert!(frac > 0.0005, "tree too sparse: {frac}");
        // Bounding box tens of millimetres across.
        let e = t.bounding_box().extents();
        assert!(e.x > 10.0 && e.y > 10.0 && e.z > 10.0, "{e:?}");
    }
}
