//! Predicted benefit of runtime load rebalancing at scale.
//!
//! The paper's balancer assigns blocks from *a-priori* workload estimates
//! (§2.3). At runtime the estimate is wrong by some relative error per
//! block — boundary handling, sparse coverage, and machine noise — and on
//! P ranks the *slowest* rank sets the pace. This module models how that
//! straggler effect grows with machine size and how much of it runtime
//! rebalancing (`trillium-rebalance`) recovers, up to the paper's full
//! JUQUEEN scale of 2^19 ranks.
//!
//! The model: per-rank cost is a sum of `blocks_per_rank` independent
//! per-block costs with coefficient of variation `block_cv`, so the
//! per-rank relative spread is `block_cv / sqrt(blocks_per_rank)`. The
//! expected maximum of P such (approximately normal) rank costs exceeds
//! the mean by about `sqrt(2 ln P)` standard deviations — the classic
//! extreme-value growth that makes the max/avg ratio creep up with scale
//! even when each rank is individually well estimated. Measured-cost
//! rebalancing re-cuts with *known* costs; its residual imbalance is set
//! by block granularity (you cannot split a block) plus the detector's
//! firing threshold.

use serde::Serialize;
use trillium_machine::MachineSpec;

/// Inputs of the rebalance-benefit model.
#[derive(Copy, Clone, Debug, Serialize)]
pub struct RebalanceModel {
    /// Relative error (coefficient of variation) of the static per-block
    /// workload estimate. ~0.10–0.30 for sparse vascular geometries where
    /// cell counts mispredict boundary-sweep cost.
    pub block_cv: f64,
    /// Blocks per rank (the paper typically runs a single block per
    /// process at full scale, more on partially filled machines).
    pub blocks_per_rank: u32,
    /// Cells per block per axis (migration payload sizing).
    pub cells_per_block: [usize; 3],
    /// Steps between imbalance checks (amortization window for the
    /// migration cost).
    pub every_n_steps: u64,
    /// Residual max/avg ratio the runtime rebalancer tolerates before it
    /// fires (the detector threshold).
    pub threshold: f64,
}

impl Default for RebalanceModel {
    fn default() -> Self {
        Self {
            block_cv: 0.2,
            blocks_per_rank: 4,
            cells_per_block: [64, 64, 64],
            every_n_steps: 100,
            threshold: 1.05,
        }
    }
}

/// One row of the predicted-benefit table.
#[derive(Clone, Debug, Serialize)]
pub struct RebalanceRow {
    /// Number of ranks.
    pub ranks: u64,
    /// Predicted max/avg load ratio without runtime rebalancing.
    pub static_ratio: f64,
    /// Predicted max/avg load ratio with measured-cost rebalancing.
    pub rebalanced_ratio: f64,
    /// Parallel efficiency without rebalancing (avg/max).
    pub static_efficiency: f64,
    /// Parallel efficiency with rebalancing.
    pub rebalanced_efficiency: f64,
    /// Predicted throughput gain from rebalancing (ratio of the two
    /// efficiencies).
    pub speedup: f64,
    /// Migration cost amortized per time step, as a fraction of the step:
    /// payload of the migrating blocks over the network, spread across
    /// `every_n_steps` steps.
    pub migration_overhead: f64,
}

/// Expected exceedance of the maximum of `p` standardized normal rank
/// costs over their mean, in standard deviations: the Fisher–Tippett
/// asymptotic `sqrt(2 ln p)` with the standard second-order correction.
fn expected_max_sigma(p: f64) -> f64 {
    if p <= 1.0 {
        return 0.0;
    }
    let b = (2.0 * p.ln()).sqrt();
    // Second-order term; clamp for very small p where it overshoots.
    (b - (p.ln().ln() + (4.0 * std::f64::consts::PI).ln()) / (2.0 * b)).max(0.0)
}

/// Evaluates the model for `ranks` ranks.
pub fn predict(model: &RebalanceModel, ranks: u64, machine: &MachineSpec) -> RebalanceRow {
    let rank_cv = model.block_cv / (model.blocks_per_rank as f64).sqrt();
    let static_ratio = 1.0 + rank_cv * expected_max_sigma(ranks as f64);

    // Rebalancing with measured costs is limited by block granularity —
    // the curve cut can misplace at most one block per rank boundary —
    // and by the threshold below which the detector never fires.
    let granularity = 1.0 + model.block_cv / model.blocks_per_rank as f64;
    let rebalanced_ratio = model.threshold.max(granularity).min(static_ratio);

    // Migration traffic: in steady state only the estimate *drift* moves,
    // roughly the excess fraction of blocks on overloaded ranks. Each
    // block ships its full PDF + flag state once per rebalance.
    let cells: f64 = model.cells_per_block.iter().map(|&c| c as f64).product();
    let payload_bytes = cells * (19.0 * 8.0 + 1.0);
    let moving_fraction = ((static_ratio - rebalanced_ratio) / static_ratio).clamp(0.0, 1.0);
    let migrate_seconds =
        machine.network.exchange_time(&[(payload_bytes * moving_fraction) as u64], ranks);
    // Step time scale: a bandwidth-bound sweep of one block per rank.
    let step_seconds = cells * 19.0 * 8.0 * 2.0
        / (machine.lbm_bw_gib * 1024.0 * 1024.0 * 1024.0 / machine.cores_per_node() as f64);
    let migration_overhead = migrate_seconds / (step_seconds * model.every_n_steps as f64);

    RebalanceRow {
        ranks,
        static_ratio,
        rebalanced_ratio,
        static_efficiency: 1.0 / static_ratio,
        rebalanced_efficiency: 1.0 / rebalanced_ratio,
        speedup: static_ratio / rebalanced_ratio,
        migration_overhead,
    }
}

/// The predicted-benefit table from 2^5 up to 2^19 ranks (the paper's
/// full-machine JUQUEEN run uses 2^19 = 524,288 processes in its largest
/// configuration class).
pub fn rebalance_series(model: &RebalanceModel, machine: &MachineSpec) -> Vec<RebalanceRow> {
    (5..=19).map(|p| predict(model, 1u64 << p, machine)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straggler_effect_grows_with_scale() {
        let m = RebalanceModel::default();
        let machine = MachineSpec::juqueen();
        let rows = rebalance_series(&m, &machine);
        assert_eq!(rows.len(), 15);
        assert_eq!(rows.last().unwrap().ranks, 1 << 19);
        for w in rows.windows(2) {
            assert!(w[1].static_ratio > w[0].static_ratio, "max/avg must grow with P");
        }
        // At full scale the static straggler effect is material...
        let last = rows.last().unwrap();
        assert!(last.static_ratio > 1.4, "static ratio {}", last.static_ratio);
        // ...and rebalancing recovers most of it.
        assert!(last.speedup > 1.2, "speedup {}", last.speedup);
        assert!(last.rebalanced_ratio < 1.15);
    }

    #[test]
    fn rebalanced_ratio_is_bounded_by_granularity_and_threshold() {
        let machine = MachineSpec::juqueen();
        // One block per rank: granularity bound dominates (whole-block
        // moves cannot fix intra-block skew).
        let coarse = RebalanceModel { blocks_per_rank: 1, ..RebalanceModel::default() };
        let r = predict(&coarse, 1 << 19, &machine);
        assert!(r.rebalanced_ratio >= 1.0 + coarse.block_cv / 1.0 - 1e-12);
        // Many blocks per rank: the threshold floor dominates.
        let fine = RebalanceModel { blocks_per_rank: 64, ..RebalanceModel::default() };
        let r = predict(&fine, 1 << 19, &machine);
        assert!((r.rebalanced_ratio - fine.threshold).abs() < 1e-12);
        // More blocks per rank always helps (or ties).
        assert!(
            predict(&fine, 1 << 19, &machine).rebalanced_ratio
                <= predict(&coarse, 1 << 19, &machine).rebalanced_ratio
        );
    }

    #[test]
    fn migration_overhead_is_amortized_small() {
        let m = RebalanceModel::default();
        let machine = MachineSpec::juqueen();
        for row in rebalance_series(&m, &machine) {
            assert!(
                row.migration_overhead < 0.1,
                "overhead {} at {} ranks",
                row.migration_overhead,
                row.ranks
            );
            assert!(row.migration_overhead >= 0.0);
        }
    }

    #[test]
    fn perfectly_estimated_workload_needs_no_rebalancing() {
        let machine = MachineSpec::supermuc();
        let m = RebalanceModel { block_cv: 0.0, ..RebalanceModel::default() };
        let r = predict(&m, 1 << 19, &machine);
        assert!((r.static_ratio - 1.0).abs() < 1e-12);
        assert!((r.speedup - 1.0).abs() < 1e-12);
    }
}
