#![warn(missing_docs)]
//! The scaling-experiment harness: regenerates every figure of the
//! paper's evaluation (§4) from the machine models, the performance
//! models, and real geometric computations on the synthetic coronary
//! tree.
//!
//! Each module produces the data series of one figure as plain structs
//! (serializable to JSON/TSV by the `trillium-bench` binaries):
//!
//! * [`fig1`] — domain partitionings of the coronary tree with a target
//!   of one block per process (nodeboard and full machine),
//! * [`fig3`] — single-node kernel-tier comparison (model series; the
//!   bench binaries add host-measured series),
//! * [`fig4`] — ECM model vs. frequency,
//! * [`fig5`] — SMT levels on a JUQUEEN node,
//! * [`fig6`] — weak scaling on dense regular domains (MLUPS/core and
//!   MPI share for the pure-MPI and hybrid configurations),
//! * [`fig7`] — weak scaling on the vascular geometry (MFLUPS/core and
//!   fluid fraction; real partitioning of the synthetic tree),
//! * [`fig8`] — strong scaling on the vascular geometry (MFLUPS/core and
//!   time steps per second, maximized over block sizes),
//! * [`headline`] — the in-text headline numbers (§4.2/§4.3 and the
//!   §2.2 file-size claims),
//! * [`overlap`] — the communication-hiding term the overlapped driver
//!   schedule adds to the step-time model (fig 7/8 use it),
//! * [`rebalance`] — predicted benefit of runtime load rebalancing
//!   (extreme-value straggler model) up to 2^19 ranks,
//! * [`resilience`] — Young/Daly optimal checkpoint interval and waste
//!   fraction versus machine size for the resilient driver.

pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod headline;
pub mod overlap;
pub mod rebalance;
pub mod resilience;
pub mod tree;

pub use tree::paper_tree;
