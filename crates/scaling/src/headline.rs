//! The in-text headline numbers of §4.2/§4.3.

use crate::fig6::{evaluate, HybridConfig};
use serde::Serialize;
use trillium_machine::MachineSpec;
use trillium_perfmodel::bytes_per_lup;

/// One headline comparison row: what the paper reports vs. what the
/// models/computations reproduce.
#[derive(Clone, Debug, Serialize)]
pub struct HeadlineRow {
    /// What the number is.
    pub quantity: String,
    /// The paper's value.
    pub paper: f64,
    /// Our reproduced value.
    pub ours: f64,
}

/// Aggregated memory-bandwidth fraction of a weak-scaling run: the
/// paper's §4.2 formulas, e.g.
/// `1.93e12 · 19 · 3 · 8 / 2^30 GiB/s ÷ (458752/16 · 42.4 GiB/s) = 67.4 %`.
pub fn bandwidth_fraction(glups_total: f64, nodes: f64, node_stream_bw_gib: f64) -> f64 {
    let used_gib = glups_total * 1e9 * bytes_per_lup(19) / (1024.0 * 1024.0 * 1024.0);
    used_gib / (nodes * node_stream_bw_gib)
}

/// FLOP rate of an LBM run: the TRT kernel performs ≈ 200 double
/// operations per cell update (fused stream–collide, D3Q19).
pub const FLOPS_PER_LUP: f64 = 200.0;

/// Reproduces the §4.2 headline table.
pub fn headlines() -> Vec<HeadlineRow> {
    let mut rows = Vec::new();

    // SuperMUC largest dense weak scaling: 2^17 cores, 3.43 M cells/core.
    let sm = MachineSpec::supermuc();
    let r = evaluate(&sm, &HybridConfig { procs_per_node: 16, threads: 1 }, 1 << 17, 3_430_000.0);
    let sm_glups = r.mlups_per_core * (1u64 << 17) as f64 / 1e3;
    rows.push(HeadlineRow {
        quantity: "SuperMUC 2^17 cores GLUPS".into(),
        paper: 837.0,
        ours: sm_glups,
    });
    rows.push(HeadlineRow {
        quantity: "SuperMUC cells (1e11)".into(),
        paper: 4.5,
        ours: 3_430_000.0 * (1u64 << 17) as f64 / 1e11,
    });
    // Paper: 54.2 % of the bandwidth of 2^13 nodes (2^17 cores / 16),
    // with 40 GiB/s STREAM per socket (80 per node).
    rows.push(HeadlineRow {
        quantity: "SuperMUC bandwidth fraction (%)".into(),
        paper: 54.2,
        ours: bandwidth_fraction(sm_glups, (1u64 << 13) as f64, 2.0 * sm.stream_bw_gib) * 100.0,
    });
    rows.push(HeadlineRow {
        quantity: "SuperMUC TFLOPS".into(),
        paper: 166.0,
        ours: sm_glups * FLOPS_PER_LUP / 1e3,
    });

    // JUQUEEN full machine: 458,752 cores, 1.728 M cells/core.
    let jq = MachineSpec::juqueen();
    let r = evaluate(
        &jq,
        &HybridConfig { procs_per_node: 64, threads: 1 },
        jq.total_cores,
        1_728_000.0,
    );
    let jq_glups = r.mlups_per_core * jq.total_cores as f64 / 1e3;
    rows.push(HeadlineRow {
        quantity: "JUQUEEN full machine GLUPS".into(),
        paper: 1930.0,
        ours: jq_glups,
    });
    rows.push(HeadlineRow {
        quantity: "JUQUEEN cells (1e11)".into(),
        paper: 7.9,
        ours: 1_728_000.0 * jq.total_cores as f64 / 1e11,
    });
    rows.push(HeadlineRow {
        quantity: "JUQUEEN bandwidth fraction (%)".into(),
        paper: 67.4,
        ours: bandwidth_fraction(jq_glups, jq.total_nodes() as f64, jq.stream_bw_gib) * 100.0,
    });
    rows.push(HeadlineRow {
        quantity: "JUQUEEN TFLOPS".into(),
        paper: 383.0,
        ours: jq_glups * FLOPS_PER_LUP / 1e3,
    });
    rows.push(HeadlineRow {
        quantity: "JUQUEEN threads (millions)".into(),
        paper: 1.8,
        ours: jq.total_cores as f64 * jq.smt_ways as f64 / 1e6,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's own §4.2 arithmetic must be reproduced exactly: given
    /// the paper's measured GLUPS, the bandwidth fractions come out at
    /// 54.2 % and 67.4 %.
    #[test]
    fn paper_bandwidth_arithmetic() {
        let sm = bandwidth_fraction(837.0, (1u64 << 13) as f64, 80.0);
        assert!((sm - 0.542).abs() < 0.005, "SuperMUC {sm}");
        let jq = bandwidth_fraction(1930.0, 458_752.0 / 16.0, 42.4);
        assert!((jq - 0.674).abs() < 0.005, "JUQUEEN {jq}");
    }

    /// Our model's headline values stay within ~25 % of the paper's
    /// (shape-level agreement; the substrate is a model, not the testbed).
    #[test]
    fn headline_values_are_in_range() {
        for row in headlines() {
            let rel = (row.ours - row.paper).abs() / row.paper;
            assert!(rel < 0.25, "{}: paper {} vs ours {}", row.quantity, row.paper, row.ours);
        }
    }

    /// The cell-count claims are exact restatements (no model involved).
    #[test]
    fn cell_counts_match_exactly() {
        let rows = headlines();
        let cells = |q: &str| rows.iter().find(|r| r.quantity.contains(q)).unwrap();
        let sm = cells("SuperMUC cells");
        assert!((sm.ours - 4.5).abs() < 0.01);
        let jq = cells("JUQUEEN cells");
        assert!((jq.ours - 7.9).abs() < 0.03);
    }
}
