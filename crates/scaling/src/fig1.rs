//! Fig 1: domain partitioning of the coronary tree with a target of one
//! block per process.
//!
//! The paper shows the partitioning for one JUQUEEN nodeboard
//! (512 processes → 485 blocks) and the whole machine (458,752 processes →
//! 458,184 blocks): the achieved block count approaches the target from
//! below, and the fit improves with scale because finer partitionings
//! adapt better to the sparse geometry.

use serde::Serialize;
use trillium_blockforest::search_weak_partition_sampled;
use trillium_geometry::SignedDistance;

/// Result of one one-block-per-process partitioning.
#[derive(Clone, Debug, Serialize)]
pub struct Fig1Row {
    /// Target processes (= target blocks).
    pub processes: usize,
    /// Blocks achieved by the partition search.
    pub blocks: usize,
    /// Spatial resolution chosen by the search (geometry units per cell).
    pub dx: f64,
    /// blocks / processes.
    pub fill: f64,
}

/// Partitions `sdf` with a target of one `edge³`-cell block per process.
pub fn fig1_point(
    sdf: &dyn SignedDistance,
    edge: usize,
    processes: usize,
    samples: usize,
) -> Fig1Row {
    let r = search_weak_partition_sampled(sdf, [edge, edge, edge], processes, 30, samples);
    let blocks = r.forest.num_blocks();
    Fig1Row { processes, blocks, dx: r.dx, fill: blocks as f64 / processes as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::test_tree;

    /// Scaled-down analogue of Fig 1: the search respects the target from
    /// below and the fill factor improves with scale — the paper's 485/512
    /// (94.7 %) at nodeboard scale vs 458,184/458,752 (99.9 %) at full
    /// machine.
    #[test]
    fn fill_factor_improves_with_scale() {
        let t = test_tree();
        let small = fig1_point(&t, 16, 128, 4);
        let large = fig1_point(&t, 16, 2048, 4);
        assert!(small.blocks <= small.processes);
        assert!(large.blocks <= large.processes);
        assert!(small.fill > 0.5, "small fill {}", small.fill);
        assert!(large.fill >= small.fill, "fill regressed: {} vs {}", small.fill, large.fill);
        assert!(large.fill > 0.85, "large fill {}", large.fill);
        // Finer resolution at larger scale.
        assert!(large.dx < small.dx);
    }
}
