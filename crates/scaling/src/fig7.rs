//! Fig 7: weak scaling on the complex vascular geometry.
//!
//! For every core count the domain is re-partitioned (real geometric
//! computation on the synthetic coronary tree) with a target of up to
//! four blocks per process; the plotted quantities are the *fluid
//! fraction* of the allocated blocks — which rises with the core count
//! because more, smaller-in-space blocks fit the vessel tree better
//! (cf. Fig 1) — and MFLUPS per core, which rises with it: the
//! row-interval kernels traverse fewer dead cells and the (fluid-blind)
//! communication is amortized over more fluid per block.

use crate::fig6::DENSE_OVERHEAD;
use serde::Serialize;
use trillium_blockforest::search_weak_partition_sampled;
use trillium_field::{RowIntervals, Shape};
use trillium_geometry::voxelize::{voxelize_block, VoxelizeConfig};
use trillium_geometry::SignedDistance;
use trillium_machine::MachineSpec;
use trillium_perfmodel::roofline_mlups;

/// One point of the Fig 7 curves.
#[derive(Clone, Debug, Serialize)]
pub struct Fig7Row {
    /// Total cores.
    pub cores: u64,
    /// Blocks in the partitioning.
    pub blocks: usize,
    /// MFLUPS per core.
    pub mflups_per_core: f64,
    /// Fluid fraction of all allocated blocks.
    pub fluid_fraction: f64,
    /// Resolution chosen by the partition search.
    pub dx: f64,
}

/// Experiment parameters (block size and process shape differ per
/// machine, §4.3).
#[derive(Copy, Clone, Debug)]
pub struct Fig7Config {
    /// Cubic block edge in cells (SuperMUC: 170, JUQUEEN: 80).
    pub block_edge: usize,
    /// Threads per process (both machines use 4).
    pub threads: u32,
    /// Cores per process (SuperMUC 4P4T: 4; JUQUEEN 16P4T: 1 — the four
    /// threads are SMT).
    pub cores_per_proc: u32,
    /// Workload sampling resolution for forest construction.
    pub samples: usize,
    /// How many partially covered blocks to voxelize (at reduced
    /// resolution) for the covered-cells estimate.
    pub coverage_sample_blocks: usize,
}

impl Fig7Config {
    /// The paper's configuration for a machine (with scaled-down sampling
    /// defaults suitable for a workstation run).
    pub fn paper(machine: &MachineSpec) -> Self {
        match machine.name {
            "SuperMUC" => Fig7Config {
                block_edge: 170,
                threads: 4,
                cores_per_proc: 4,
                samples: 4,
                coverage_sample_blocks: 6,
            },
            _ => Fig7Config {
                block_edge: 80,
                threads: 4,
                cores_per_proc: 1,
                samples: 4,
                coverage_sample_blocks: 6,
            },
        }
    }
}

/// Estimates the covered/fluid cell ratio of the row-interval kernels by
/// voxelizing a few partially covered blocks (at a capped resolution so
/// the estimate stays cheap).
pub fn covered_ratio(
    sdf: &dyn SignedDistance,
    forest: &trillium_blockforest::SetupForest,
    block_edge: usize,
    sample_blocks: usize,
) -> f64 {
    let partial: Vec<&trillium_blockforest::SetupBlock> =
        forest.blocks.iter().filter(|b| !b.fully_inside).collect();
    if partial.is_empty() {
        return 1.0;
    }
    let res = block_edge.clamp(4, 40);
    let shape = Shape::new(res, res, res, 1);
    let mut covered = 0usize;
    let mut fluid = 0usize;
    let step = (partial.len() / sample_blocks.max(1)).max(1);
    for b in partial.iter().step_by(step).take(sample_blocks.max(1)) {
        let dx = b.aabb.extents().x / res as f64;
        let flags = voxelize_block(sdf, b.aabb.min, dx, shape, &VoxelizeConfig::default());
        let ri = RowIntervals::build(&flags);
        covered += ri.covered_cells();
        fluid += ri.fluid_cells;
    }
    if fluid == 0 {
        1.0
    } else {
        (covered as f64 / fluid as f64).max(1.0)
    }
}

/// Evaluates one core count.
pub fn fig7_point(
    sdf: &dyn SignedDistance,
    machine: &MachineSpec,
    cfg: &Fig7Config,
    cores: u64,
) -> Fig7Row {
    let procs = (cores / cfg.cores_per_proc as u64).max(1);
    // "We allocate up to four blocks on every process."
    let target_blocks = (procs * 4) as usize;
    let e = cfg.block_edge;
    let search = search_weak_partition_sampled(sdf, [e, e, e], target_blocks, 28, cfg.samples);
    let forest = search.forest;
    let blocks = forest.num_blocks();
    let block_cells = (e * e * e) as f64;
    let fluid_total = forest.total_workload();
    let fluid_fraction = fluid_total / (block_cells * blocks as f64);

    // Kernel time: covered cells per core at the dense per-core rate.
    let ratio = covered_ratio(sdf, &forest, cfg.block_edge, cfg.coverage_sample_blocks);
    let covered_total = (fluid_total * ratio).min(block_cells * blocks as f64);
    let per_core_rate =
        roofline_mlups(machine.lbm_bw_gib, 19) * machine.sockets_per_node as f64 * 1e6
            / machine.cores_per_node() as f64
            / DENSE_OVERHEAD;
    let t_kernel = covered_total / cores as f64 / per_core_rate;

    // Communication: fluid-blind, dense block faces ("the amount of data
    // communicated between neighboring blocks is the same as for densely
    // populated blocks").
    let blocks_per_proc = (blocks as f64 / procs as f64).max(1.0);
    let face = (e * e * 5 * 8) as u64;
    let edge_b = (e * 8) as u64;
    let mut msgs = vec![face; 6];
    msgs.extend(vec![edge_b; 12]);
    let t_comm = machine.network.exchange_time(&msgs, cores) * blocks_per_proc / cfg.threads as f64;

    // The overlapped schedule hides comm behind the interior-core sweep.
    let t = t_kernel + crate::overlap::unhidden_comm_time(t_kernel, t_comm, e);
    Fig7Row {
        cores,
        blocks,
        mflups_per_core: fluid_total / cores as f64 / t / 1e6,
        fluid_fraction,
        dx: search.dx,
    }
}

/// A full weak-scaling series over power-of-two core counts.
pub fn fig7_series(
    sdf: &dyn SignedDistance,
    machine: &MachineSpec,
    cfg: &Fig7Config,
    core_range: (u32, u32),
) -> Vec<Fig7Row> {
    (core_range.0..=core_range.1).map(|p| fig7_point(sdf, machine, cfg, 1u64 << p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::test_tree;

    /// The defining Fig 7 shape at reduced scale: both the fluid fraction
    /// and MFLUPS/core *increase* with the core count — the opposite of
    /// ordinary weak scaling, caused by the better geometric fit of more,
    /// smaller blocks.
    #[test]
    fn efficiency_rises_with_scale() {
        let t = test_tree();
        let m = MachineSpec::juqueen();
        let cfg = Fig7Config {
            block_edge: 16,
            threads: 4,
            cores_per_proc: 1,
            samples: 4,
            coverage_sample_blocks: 4,
        };
        let lo = fig7_point(&t, &m, &cfg, 1 << 5);
        let hi = fig7_point(&t, &m, &cfg, 1 << 9);
        assert!(
            hi.fluid_fraction > lo.fluid_fraction,
            "{} vs {}",
            lo.fluid_fraction,
            hi.fluid_fraction
        );
        assert!(
            hi.mflups_per_core > lo.mflups_per_core,
            "{} vs {}",
            lo.mflups_per_core,
            hi.mflups_per_core
        );
        // Sparse geometry: efficiency well below the dense rate.
        let dense = roofline_mlups(m.lbm_bw_gib, 19) / m.cores_per_node() as f64;
        assert!(hi.mflups_per_core < dense);
        assert!(hi.blocks > lo.blocks);
        assert!(hi.dx < lo.dx);
    }

    #[test]
    fn covered_ratio_at_least_one() {
        let t = test_tree();
        let cfg = Fig7Config {
            block_edge: 16,
            threads: 4,
            cores_per_proc: 1,
            samples: 4,
            coverage_sample_blocks: 4,
        };
        let search = search_weak_partition_sampled(&t, [16, 16, 16], 64, 20, 4);
        let r = covered_ratio(&t, &search.forest, cfg.block_edge, cfg.coverage_sample_blocks);
        assert!((1.0..4.0).contains(&r), "covered ratio {r}");
    }
}
