//! Fig 3: single-node comparison of the kernel optimization ladder.
//!
//! Model series (tier models calibrated from the paper's anchor points);
//! the `fig3_kernels` bench binary adds real measured series for the host
//! using the actual kernels of `trillium-kernels`.

use serde::Serialize;
use trillium_machine::MachineSpec;
use trillium_perfmodel::{KernelTier, TierModel};

/// One point of a kernel-ladder curve.
#[derive(Clone, Debug, Serialize)]
pub struct Fig3Row {
    /// Machine name.
    pub machine: String,
    /// Kernel tier label.
    pub tier: String,
    /// Collision operator label.
    pub collision: String,
    /// Active cores.
    pub cores: u32,
    /// Modeled MLUPS.
    pub mlups: f64,
}

/// All tier × collision × core-count series for one machine
/// (SuperMUC: one socket, 1–8 cores; JUQUEEN: one node, 1–16 cores,
/// matching the paper's measurement setup).
pub fn fig3_series(machine: &MachineSpec) -> Vec<Fig3Row> {
    let max_cores = match machine.name {
        "SuperMUC" => 8, // one socket, "to be comparable to literature"
        _ => machine.cores_per_node(),
    };
    let mut rows = Vec::new();
    for (tier, tname) in [
        (KernelTier::Generic, "Generic"),
        (KernelTier::Specialized, "D3Q19"),
        (KernelTier::Simd, "SIMD"),
    ] {
        for (trt, cname) in [(false, "SRT"), (true, "TRT")] {
            let model = TierModel::new(machine, tier, trt);
            for cores in 1..=max_cores {
                rows.push(Fig3Row {
                    machine: machine.name.to_string(),
                    tier: tname.to_string(),
                    collision: cname.to_string(),
                    cores,
                    mlups: model.mlups(cores),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_cover_all_combinations() {
        let rows = fig3_series(&MachineSpec::supermuc());
        assert_eq!(rows.len(), 3 * 2 * 8);
        let rows = fig3_series(&MachineSpec::juqueen());
        assert_eq!(rows.len(), 3 * 2 * 16);
    }

    /// The headline property of Fig 3: at the full socket/node the SIMD
    /// SRT and TRT kernels coincide ("despite the increased complexity of
    /// the TRT kernel, it is as fast as the SRT kernel").
    #[test]
    fn simd_srt_equals_trt_at_full_socket() {
        for m in [MachineSpec::supermuc(), MachineSpec::juqueen()] {
            let rows = fig3_series(&m);
            let max = rows.iter().map(|r| r.cores).max().unwrap();
            let at = |t: &str, c: &str| {
                rows.iter()
                    .find(|r| r.tier == t && r.collision == c && r.cores == max)
                    .unwrap()
                    .mlups
            };
            assert_eq!(at("SIMD", "SRT"), at("SIMD", "TRT"), "{}", m.name);
            // And the ladder is ordered at the top.
            assert!(at("Generic", "TRT") < at("D3Q19", "TRT"));
            assert!(at("D3Q19", "TRT") < at("SIMD", "TRT"));
        }
    }
}
