//! Fig 6: weak scaling on dense, regular domains.
//!
//! "We performed weak scaling experiments with two simple scenarios: the
//! lid-driven cavity problem and channel flow around a fixed obstacle
//! [...] On SuperMUC we compare three different versions of our framework:
//! one pure MPI parallelization (16 processes per node) and two
//! MPI/OpenMP hybrid versions" (§4.2). The model combines the
//! bandwidth-saturated node kernel rate, a calibrated framework/boundary
//! overhead, a per-thread hybrid overhead, and the machine's network
//! model for the ghost-exchange time — producing MLUPS/core and the MPI
//! communication share per configuration and core count.

use serde::Serialize;
use trillium_machine::MachineSpec;
use trillium_perfmodel::roofline_mlups;

/// Calibrated ratio of total sweep time (kernel + boundary handling +
/// framework) to the pure bandwidth-bound kernel time on dense domains.
/// From the paper's Fig 6 baselines: 16×8.3 MLUPS/core ≈ 76 % of the
/// 2×87.8 MLUPS socket roofline on SuperMUC, and similarly on JUQUEEN.
pub const DENSE_OVERHEAD: f64 = 1.28;

/// Per-additional-thread hybrid overhead (thread fork/join and NUMA
/// effects), calibrated so the 2P8T curve of Fig 6a sits visibly below
/// pure MPI.
pub const THREAD_OVERHEAD: f64 = 0.013;

/// One weak-scaling configuration: α processes per node, β threads each.
#[derive(Copy, Clone, Debug, Serialize)]
pub struct HybridConfig {
    /// Processes per node.
    pub procs_per_node: u32,
    /// Threads per process.
    pub threads: u32,
}

impl HybridConfig {
    /// Display label, e.g. "16P1T".
    pub fn label(&self) -> String {
        format!("{}P{}T", self.procs_per_node, self.threads)
    }
}

/// The paper's three configurations per machine.
pub fn paper_configs(machine: &MachineSpec) -> Vec<HybridConfig> {
    match machine.name {
        "SuperMUC" => vec![
            HybridConfig { procs_per_node: 16, threads: 1 },
            HybridConfig { procs_per_node: 4, threads: 4 },
            HybridConfig { procs_per_node: 2, threads: 8 },
        ],
        "JUQUEEN" => vec![
            HybridConfig { procs_per_node: 64, threads: 1 },
            HybridConfig { procs_per_node: 16, threads: 4 },
            HybridConfig { procs_per_node: 8, threads: 8 },
        ],
        _ => vec![HybridConfig { procs_per_node: machine.cores_per_node(), threads: 1 }],
    }
}

/// One point of a weak-scaling curve.
#[derive(Clone, Debug, Serialize)]
pub struct Fig6Row {
    /// Configuration label (αPβT).
    pub config: String,
    /// Total cores.
    pub cores: u64,
    /// MLUPS per core (parallel efficiency proxy, as plotted).
    pub mlups_per_core: f64,
    /// Fraction of step time spent in MPI communication.
    pub mpi_fraction: f64,
}

/// Evaluates the weak-scaling model for one machine at the paper's
/// per-core cell count.
pub fn fig6_series(machine: &MachineSpec, cells_per_core: f64) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    let max_pow = (machine.total_cores as f64).log2().floor() as u32;
    for config in paper_configs(machine) {
        for p in 5..=max_pow {
            let cores = 1u64 << p;
            rows.push(evaluate(machine, &config, cores, cells_per_core));
        }
        // Full machine if it is not a power of two.
        if machine.total_cores != 1 << max_pow {
            rows.push(evaluate(machine, &config, machine.total_cores, cells_per_core));
        }
    }
    rows
}

/// Evaluates one (config, cores) point.
pub fn evaluate(
    machine: &MachineSpec,
    config: &HybridConfig,
    cores: u64,
    cells_per_core: f64,
) -> Fig6Row {
    let cores_per_node = machine.cores_per_node() as f64;
    // Node kernel rate: sockets saturate their memory interfaces.
    let node_roof = roofline_mlups(machine.lbm_bw_gib, 19) * machine.sockets_per_node as f64;
    let hybrid = 1.0 + THREAD_OVERHEAD * (config.threads as f64 - 1.0);
    let node_rate = node_roof / DENSE_OVERHEAD / hybrid * 1e6; // cells/s

    let cells_per_node = cells_per_core * cores_per_node;
    let t_kernel = cells_per_node / node_rate;

    // Ghost messages of one process: a cube of cells_per_proc cells sends
    // 6 faces × 5 PDFs and 12 edges × 1 PDF.
    let cells_per_proc = cells_per_node / config.procs_per_node as f64;
    let edge = cells_per_proc.cbrt();
    let face_bytes = (edge * edge * 5.0 * 8.0) as u64;
    let edge_bytes = (edge * 8.0) as u64;
    let mut msgs = vec![face_bytes; 6];
    msgs.extend(vec![edge_bytes; 12]);
    // Per-process bandwidth share grows with threads (fewer processes per
    // node share the same injection bandwidth).
    let bw_scale = config.threads as f64;
    let t_comm = machine.network.exchange_time(&msgs, cores) / bw_scale;

    let t = t_kernel + t_comm;
    Fig6Row {
        config: config.label(),
        cores,
        mlups_per_core: cells_per_core / t / 1e6,
        mpi_fraction: t_comm / t,
    }
}

/// The paper's cells-per-core for each machine (§4.2).
pub fn paper_cells_per_core(machine: &MachineSpec) -> f64 {
    match machine.name {
        "SuperMUC" => 3_430_000.0,
        "JUQUEEN" => 1_728_000.0,
        _ => 1_000_000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(machine: MachineSpec) -> Vec<Fig6Row> {
        let c = paper_cells_per_core(&machine);
        fig6_series(&machine, c)
    }

    /// Fig 6a shape: MLUPS/core starts above 8, declines past one island,
    /// and the MPI share grows with the core count.
    #[test]
    fn supermuc_declines_across_islands() {
        let rows = series(MachineSpec::supermuc());
        let mpi: Vec<&Fig6Row> = rows.iter().filter(|r| r.config == "16P1T").collect();
        let first = mpi.first().unwrap();
        let last = mpi.last().unwrap();
        assert!(first.cores == 32 && last.cores >= 131_072);
        assert!((8.0..9.5).contains(&first.mlups_per_core), "baseline {}", first.mlups_per_core);
        // Efficiency declines noticeably (paper: ~8.3 -> ~6.6).
        let eff = last.mlups_per_core / first.mlups_per_core;
        assert!((0.70..0.92).contains(&eff), "efficiency {eff}");
        // MPI fraction grows monotonically in the multi-island regime.
        assert!(last.mpi_fraction > 2.0 * first.mpi_fraction);
        assert!((0.10..0.30).contains(&last.mpi_fraction), "{}", last.mpi_fraction);
    }

    /// Fig 6b shape: JUQUEEN is nearly flat — parallel efficiency ≥ 90 %
    /// at the full machine, stable MPI share.
    #[test]
    fn juqueen_stays_efficient_to_full_machine() {
        let rows = series(MachineSpec::juqueen());
        let mpi: Vec<&Fig6Row> = rows.iter().filter(|r| r.config == "64P1T").collect();
        let first = mpi.first().unwrap();
        let last = mpi.iter().find(|r| r.cores == 458_752).unwrap();
        assert!((3.2..4.2).contains(&first.mlups_per_core), "baseline {}", first.mlups_per_core);
        let eff = last.mlups_per_core / first.mlups_per_core;
        assert!(eff > 0.90, "parallel efficiency {eff} (paper: 92 %)");
        // MPI share stable: within 1.5x across the whole range.
        let fr: Vec<f64> = mpi.iter().map(|r| r.mpi_fraction).collect();
        let (lo, hi) =
            (fr.iter().cloned().fold(1.0, f64::min), fr.iter().cloned().fold(0.0, f64::max));
        assert!(hi / lo < 1.5, "MPI share varies too much: {lo}..{hi}");
        assert!((0.04..0.12).contains(&hi));
    }

    /// The headline rate: the largest JUQUEEN weak-scaling run updates
    /// close to 1.93 trillion cells per second (§4.2).
    #[test]
    fn juqueen_full_machine_approaches_paper_rate() {
        let m = MachineSpec::juqueen();
        let cfg = HybridConfig { procs_per_node: 64, threads: 1 };
        let row = evaluate(&m, &cfg, m.total_cores, 1_728_000.0);
        let total_glups = row.mlups_per_core * m.total_cores as f64 / 1e3;
        // Paper: 1.93 TLUPS = 1930 GLUPS.
        assert!((1500.0..2200.0).contains(&total_glups), "total {total_glups} GLUPS");
    }

    /// SuperMUC's largest run: ~837 GLUPS over 2^17 cores (§4.2).
    #[test]
    fn supermuc_full_run_approaches_paper_rate() {
        let m = MachineSpec::supermuc();
        let cfg = HybridConfig { procs_per_node: 16, threads: 1 };
        let row = evaluate(&m, &cfg, 1 << 17, 3_430_000.0);
        let total_glups = row.mlups_per_core * (1u64 << 17) as f64 / 1e3;
        assert!((700.0..1000.0).contains(&total_glups), "total {total_glups} GLUPS");
    }

    /// Hybrid configurations sit slightly below pure MPI at the baseline
    /// (thread overhead) — the Fig 6a ordering.
    #[test]
    fn hybrid_versions_slightly_slower_at_baseline() {
        let m = MachineSpec::supermuc();
        let c = 3_430_000.0;
        let pure = evaluate(&m, &HybridConfig { procs_per_node: 16, threads: 1 }, 1024, c);
        let h4 = evaluate(&m, &HybridConfig { procs_per_node: 4, threads: 4 }, 1024, c);
        let h8 = evaluate(&m, &HybridConfig { procs_per_node: 2, threads: 8 }, 1024, c);
        assert!(pure.mlups_per_core > h4.mlups_per_core);
        assert!(h4.mlups_per_core > h8.mlups_per_core);
        // But the gap stays small (within ~12 %).
        assert!(h8.mlups_per_core > 0.88 * pure.mlups_per_core);
    }
}
