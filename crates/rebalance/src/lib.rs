//! Runtime load monitoring and distributed rebalance planning.
//!
//! The static balancers in `trillium-blockforest` distribute blocks once,
//! before the run, using cell counts as the workload estimate. At runtime
//! the estimate drifts: boundary sweeps, sparse coverage, and machine
//! noise make the *measured* cost per block diverge from its cell count,
//! and on skewed vascular geometries the divergence is structural. This
//! crate closes the loop (paper §2.3's "load balancing ... based on the
//! measured execution times"):
//!
//! * [`EwmaCostModel`] — smooths per-block wall-clock samples taken from
//!   each `stream_collide` sweep and ghost exchange into a stable cost.
//! * [`ImbalanceDetector`] — turns the global max/avg load ratio into a
//!   rebalance trigger with hysteresis, so transient spikes don't cause
//!   migration storms.
//! * [`plan_rebalance`] — computes a new owner for every block from the
//!   measured costs, preferring the multilevel graph partitioner and
//!   falling back to a Morton space-filling-curve cut when the graph
//!   gain is below a floor.
//! * [`plan_rebalance_hetero`] — the heterogeneous variant: given a
//!   [`RankPool`] of per-rank modeled speeds (assembled from
//!   per-(backend, tier) [`BackendTierTable`] rates), it balances
//!   modeled wall time instead of raw cost, so GPU-class ranks receive
//!   proportionally more work than CPU sockets.
//!
//! The crate is deliberately communication-free: callers allgather
//! [`BlockRecord`]s (via `trillium-comm`) and every rank runs the same
//! deterministic plan on the same sorted input, so no coordination round
//! is needed to agree on the outcome. The migration protocol that acts
//! on a plan lives in `trillium-core::migrate`, next to the block state
//! it has to serialize.

pub mod cost;
pub mod detector;
pub mod hetero;
pub mod plan;

pub use cost::EwmaCostModel;
pub use detector::ImbalanceDetector;
pub use hetero::{
    hetero_load_ratio, makespan, plan_rebalance_hetero, rank_times, BackendTierRate,
    BackendTierTable, RankPool,
};
pub use plan::{
    plan_rebalance, BlockRecord, Migration, PlanError, PlanMethod, PlanOptions, RebalancePlan,
};
