//! Heterogeneous rank pools: per-(backend, tier) cost tables and a
//! capability-weighted placement planner.
//!
//! [`plan_rebalance`](crate::plan_rebalance) balances *cost* under the
//! assumption that every rank retires cost at the same rate — true on the
//! paper's homogeneous machines, false the moment a node pool mixes CPU
//! sockets with GPU-class accelerators. This module adds the missing
//! piece: a [`BackendTierTable`] mapping (backend, kernel tier) labels to
//! modeled update rates (from `trillium-perfmodel`'s tier and GPU-class
//! models), a [`RankPool`] assigning one such capability to each rank,
//! and [`plan_rebalance_hetero`], which cuts the Morton curve into
//! chunks of work *proportional to each rank's speed* so that per-rank
//! wall time — not per-rank work — is balanced.
//!
//! Labels are plain strings (the `BackendKind::label()` /
//! `Tier`-style lowercase names) so this crate does not depend on the
//! kernel crate; the bench harness assembles tables from the perfmodel
//! crate and passes them down.

use crate::plan::{load_ratio, scaled_coords, BlockRecord, Migration, PlanMethod, RebalancePlan};
use trillium_blockforest::balance::morton_code;

/// One row of a backend/tier cost table: the modeled update rate of one
/// (backend, tier) combination in MLUPS.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackendTierRate {
    /// Backend label (`"portable"`, `"avx2"`, `"workgroup"`).
    pub backend: &'static str,
    /// Kernel tier label (`"generic"`, `"specialized"`, `"simd"`).
    pub tier: &'static str,
    /// Modeled rate in MLUPS.
    pub mlups: f64,
}

/// Modeled update rates per (backend, tier), the lookup the placement
/// planner and the scaling harness share.
#[derive(Clone, Debug, Default)]
pub struct BackendTierTable {
    rows: Vec<BackendTierRate>,
}

impl BackendTierTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or overwrites) the rate of one (backend, tier) pair.
    pub fn set(&mut self, backend: &'static str, tier: &'static str, mlups: f64) {
        assert!(mlups > 0.0, "rates must be positive");
        match self.rows.iter_mut().find(|r| r.backend == backend && r.tier == tier) {
            Some(r) => r.mlups = mlups,
            None => self.rows.push(BackendTierRate { backend, tier, mlups }),
        }
    }

    /// Modeled MLUPS of one (backend, tier) pair, if tabulated.
    pub fn mlups(&self, backend: &str, tier: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.backend == backend && r.tier == tier).map(|r| r.mlups)
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[BackendTierRate] {
        &self.rows
    }
}

/// The capability of every rank in a (possibly heterogeneous) pool:
/// `speeds[r]` is the modeled rate at which rank `r` retires block cost,
/// in cost units per second (MLUPS when cost is measured in cells).
#[derive(Clone, Debug)]
pub struct RankPool {
    speeds: Vec<f64>,
}

impl RankPool {
    /// A pool from explicit per-rank speeds (all must be positive).
    pub fn from_speeds(speeds: Vec<f64>) -> Self {
        assert!(!speeds.is_empty(), "pool needs at least one rank");
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        Self { speeds }
    }

    /// A pool where each rank runs one tabulated (backend, tier)
    /// combination. Panics if a combination is missing from the table —
    /// a placement computed with a silently-defaulted speed would be
    /// wrong on every rank.
    pub fn from_assignments(table: &BackendTierTable, ranks: &[(&str, &str)]) -> Self {
        let speeds = ranks
            .iter()
            .map(|&(b, t)| {
                table.mlups(b, t).unwrap_or_else(|| panic!("no rate tabulated for ({b}, {t})"))
            })
            .collect();
        Self::from_speeds(speeds)
    }

    /// A homogeneous pool: `n` ranks of identical speed.
    pub fn uniform(n: u32, speed: f64) -> Self {
        Self::from_speeds(vec![speed; n as usize])
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u32 {
        self.speeds.len() as u32
    }

    /// Per-rank speeds.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }
}

/// Per-rank wall time under an assignment: rank `r`'s summed block cost
/// divided by its speed.
pub fn rank_times(records: &[BlockRecord], assignment: &[u32], pool: &RankPool) -> Vec<f64> {
    let mut work = vec![0.0f64; pool.speeds.len()];
    for (r, &a) in records.iter().zip(assignment) {
        work[a as usize] += r.cost;
    }
    work.iter().zip(&pool.speeds).map(|(w, s)| w / s).collect()
}

/// Makespan (slowest rank's wall time) under an assignment.
pub fn makespan(records: &[BlockRecord], assignment: &[u32], pool: &RankPool) -> f64 {
    rank_times(records, assignment, pool).into_iter().fold(0.0, f64::max)
}

/// Time-based load ratio: max over avg of per-rank wall times. The
/// heterogeneous analogue of the cost ratio `load_ratio` computes — on a
/// uniform pool the two coincide.
pub fn hetero_load_ratio(records: &[BlockRecord], assignment: &[u32], pool: &RankPool) -> f64 {
    let times = rank_times(records, assignment, pool);
    let total: f64 = times.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let max = times.iter().fold(0.0f64, |m, &v| m.max(v));
    max * times.len() as f64 / total
}

/// Cuts the Morton curve into per-rank chunks of cost proportional to
/// each rank's speed (the heterogeneous generalization of the equal-cost
/// SFC cut).
fn morton_assignment_weighted(records: &[BlockRecord], pool: &RankPool) -> Vec<u32> {
    let num_ranks = pool.num_ranks();
    let max_level = records.iter().map(|r| r.level).max().unwrap_or(0);
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| {
        let c = scaled_coords(&records[i], max_level);
        (morton_code(c[0], c[1], c[2]), records[i].id)
    });
    let total: f64 = records.iter().map(|r| r.cost).sum();
    let speed_total: f64 = pool.speeds.iter().sum();
    // Cumulative quota boundary after rank r: total · Σ_{i≤r} speed_i / Σ speed.
    let mut bound = Vec::with_capacity(num_ranks as usize);
    let mut acc_speed = 0.0;
    for &s in &pool.speeds {
        acc_speed += s;
        bound.push(total * acc_speed / speed_total);
    }
    let mut assignment = vec![0u32; records.len()];
    let mut acc = 0.0;
    let mut rank = 0u32;
    for &i in &order {
        let w = records[i].cost;
        while rank + 1 < num_ranks && acc + 0.5 * w >= bound[rank as usize] {
            rank += 1;
        }
        assignment[i] = rank;
        acc += w;
    }
    assignment
}

/// Computes a deterministic placement of the gathered records on a
/// heterogeneous rank pool, balancing modeled wall time rather than raw
/// cost.
///
/// Unlike the homogeneous planner, parts are *pinned* to ranks: the
/// chunk sized for a fast rank must land on that rank, so no
/// owner-overlap relabeling is applied (relabeling would re-introduce
/// exactly the capability mismatch this planner removes). Every rank
/// calling this with the same records and pool obtains the same plan.
///
/// `min_ratio` is the time-ratio floor below which the current
/// assignment is kept (same semantics as
/// [`PlanOptions::min_ratio`](crate::PlanOptions)).
pub fn plan_rebalance_hetero(
    mut records: Vec<BlockRecord>,
    pool: &RankPool,
    min_ratio: f64,
) -> RebalancePlan {
    records.sort_by_key(|r| r.id);
    let current: Vec<u32> = records.iter().map(|r| r.owner).collect();
    let old_ratio = hetero_load_ratio(&records, &current, pool);
    let total_cost: f64 = records.iter().map(|r| r.cost).sum();

    if pool.num_ranks() == 1 || total_cost <= 0.0 || old_ratio <= min_ratio {
        return RebalancePlan {
            assignment: current,
            migrations: Vec::new(),
            method: PlanMethod::NoOp,
            old_ratio,
            new_ratio: old_ratio,
            records,
        };
    }

    let assignment = morton_assignment_weighted(&records, pool);
    let new_ratio = hetero_load_ratio(&records, &assignment, pool);
    let migrations: Vec<Migration> = records
        .iter()
        .zip(&assignment)
        .filter(|(r, &a)| r.owner != a)
        .map(|(r, &a)| Migration { id: r.id, from: r.owner, to: a })
        .collect();
    // Keep the cost-ratio field meaningful for observers that compare
    // plans: expose the *time* ratios, which is what this planner
    // optimizes, but never accept a plan worse than doing nothing.
    if new_ratio >= old_ratio {
        return RebalancePlan {
            assignment: records.iter().map(|r| r.owner).collect(),
            migrations: Vec::new(),
            method: PlanMethod::NoOp,
            old_ratio,
            new_ratio: old_ratio,
            records,
        };
    }
    RebalancePlan {
        records,
        assignment,
        migrations,
        method: PlanMethod::MortonSfc,
        old_ratio,
        new_ratio,
    }
}

/// The cost-ratio a homogeneous observer would report for an assignment
/// (re-exported convenience for harnesses comparing uniform vs
/// heterogeneous placement of the same records).
pub fn cost_ratio(records: &[BlockRecord], assignment: &[u32], num_ranks: u32) -> f64 {
    load_ratio(records, assignment, num_ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_records(n: u32, ranks: u32, cost: f64) -> Vec<BlockRecord> {
        let mut out = Vec::new();
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let i = (z * n + y) * n + x;
                    out.push(BlockRecord {
                        id: i as u64 + 1,
                        owner: i % ranks,
                        coords: [x, y, z],
                        level: 0,
                        cost,
                        fluid_cells: 1000,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn table_lookup_and_overwrite() {
        let mut t = BackendTierTable::new();
        t.set("avx2", "simd", 87.8);
        t.set("workgroup", "simd", 500.0);
        t.set("avx2", "simd", 90.0);
        assert_eq!(t.mlups("avx2", "simd"), Some(90.0));
        assert_eq!(t.mlups("portable", "simd"), None);
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn pool_from_assignments_resolves_rates() {
        let mut t = BackendTierTable::new();
        t.set("avx2", "simd", 80.0);
        t.set("workgroup", "simd", 400.0);
        let pool = RankPool::from_assignments(&t, &[("avx2", "simd"), ("workgroup", "simd")]);
        assert_eq!(pool.speeds(), &[80.0, 400.0]);
    }

    /// On a uniform pool the weighted cut reduces to the equal-cost cut:
    /// the time ratio equals the cost ratio.
    #[test]
    fn uniform_pool_matches_cost_balance() {
        let records = grid_records(4, 4, 1.0);
        let pool = RankPool::uniform(4, 100.0);
        let plan = plan_rebalance_hetero(records, &pool, 1.05);
        let t = hetero_load_ratio(&plan.records, &plan.assignment, &pool);
        let c = cost_ratio(&plan.records, &plan.assignment, 4);
        assert!((t - c).abs() < 1e-12);
        assert!(t < 1.05, "uniform grid balances: {t}");
    }

    /// A fast rank must receive proportionally more work: on a 2-rank
    /// pool with a 4x speed gap, time balance puts ~80 % of the cost on
    /// the fast rank, and the resulting makespan beats the equal-split.
    #[test]
    fn fast_ranks_take_proportionally_more_work() {
        let records = grid_records(4, 2, 1.0); // 64 blocks, unit cost
        let pool = RankPool::from_speeds(vec![400.0, 100.0]);
        let plan = plan_rebalance_hetero(records.clone(), &pool, 1.05);
        assert_eq!(plan.method, PlanMethod::MortonSfc);
        let mut per_rank = [0.0f64; 2];
        for (r, &a) in plan.records.iter().zip(&plan.assignment) {
            per_rank[a as usize] += r.cost;
        }
        assert!(per_rank[0] > 3.5 * per_rank[1], "fast rank got {per_rank:?}");
        // Equal split (32/32) leaves the slow rank as a 0.32 s straggler;
        // the weighted cut's makespan must be close to the 0.128 s ideal.
        let equal: Vec<u32> = (0..64).map(|i| if i < 32 { 0 } else { 1 }).collect();
        let m_eq = makespan(&plan.records, &equal, &pool);
        let m_ht = makespan(&plan.records, &plan.assignment, &pool);
        assert!(m_ht < 0.6 * m_eq, "hetero {m_ht} vs equal {m_eq}");
    }

    #[test]
    fn plan_is_deterministic() {
        let records = grid_records(3, 3, 2.0);
        let mut shuffled = records.clone();
        shuffled.reverse();
        let pool = RankPool::from_speeds(vec![100.0, 300.0, 100.0]);
        let a = plan_rebalance_hetero(records, &pool, 1.05);
        let b = plan_rebalance_hetero(shuffled, &pool, 1.05);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn balanced_in_time_is_a_noop() {
        // One block per rank, cost proportional to speed: already
        // time-balanced even though cost is wildly skewed.
        let mut records = grid_records(1, 1, 1.0);
        records[0].cost = 4.0;
        let mut r2 = records[0];
        r2.id = 2;
        r2.owner = 1;
        r2.coords = [1, 0, 0];
        r2.cost = 1.0;
        records.push(r2);
        records[0].owner = 0;
        let pool = RankPool::from_speeds(vec![400.0, 100.0]);
        let plan = plan_rebalance_hetero(records, &pool, 1.05);
        assert_eq!(plan.method, PlanMethod::NoOp);
        assert!(plan.migrations.is_empty());
    }
}
