//! Per-block cost model from measured sweep times.

use std::collections::HashMap;

/// Exponentially weighted moving average of per-block execution cost.
///
/// One sample per block per time step (the measured wall time of its
/// `stream_collide` sweep plus its share of the ghost exchange). The
/// EWMA absorbs timer jitter and OS noise while tracking real drift
/// within a few epochs: `cost ← (1−α)·cost + α·sample`, seeded with the
/// first sample directly so startup doesn't ramp from zero.
#[derive(Clone, Debug)]
pub struct EwmaCostModel {
    alpha: f64,
    costs: HashMap<u64, f64>,
}

impl EwmaCostModel {
    /// Creates a model with smoothing factor `alpha` in `(0, 1]`; higher
    /// alpha reacts faster but is noisier. `0.2` works well for per-step
    /// sampling.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, costs: HashMap::new() }
    }

    /// Folds one measured sample (seconds) for the block into its cost.
    pub fn update(&mut self, block: u64, seconds: f64) {
        match self.costs.get_mut(&block) {
            Some(c) => *c += self.alpha * (seconds - *c),
            None => {
                self.costs.insert(block, seconds);
            }
        }
    }

    /// Smoothed cost of one block, or zero if never sampled.
    pub fn cost(&self, block: u64) -> f64 {
        self.costs.get(&block).copied().unwrap_or(0.0)
    }

    /// Sum of all block costs: this rank's modeled load per step.
    pub fn total(&self) -> f64 {
        self.costs.values().sum()
    }

    /// Number of blocks with at least one sample.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// True if no block has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Drops a block that migrated away (its cost history moves with the
    /// receiving rank only in the sense that the receiver re-learns it;
    /// measured cost is machine-local, so carrying the number over would
    /// be wrong on heterogeneous nodes).
    pub fn forget(&mut self, block: u64) {
        self.costs.remove(&block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_directly() {
        let mut m = EwmaCostModel::new(0.2);
        m.update(7, 1.0);
        assert_eq!(m.cost(7), 1.0);
    }

    #[test]
    fn ewma_converges_to_new_level() {
        let mut m = EwmaCostModel::new(0.5);
        m.update(1, 1.0);
        for _ in 0..20 {
            m.update(1, 3.0);
        }
        assert!((m.cost(1) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn ewma_damps_a_single_spike() {
        let mut m = EwmaCostModel::new(0.2);
        for _ in 0..10 {
            m.update(1, 1.0);
        }
        m.update(1, 100.0);
        // One outlier moves the estimate by at most alpha * jump.
        assert!(m.cost(1) < 1.0 + 0.2 * 99.0 + 1e-9);
        assert!(m.cost(1) > 1.0);
    }

    #[test]
    fn totals_and_forget() {
        let mut m = EwmaCostModel::new(1.0);
        m.update(1, 2.0);
        m.update(2, 3.0);
        assert_eq!(m.len(), 2);
        assert!((m.total() - 5.0).abs() < 1e-12);
        m.forget(1);
        assert_eq!(m.len(), 1);
        assert!((m.total() - 3.0).abs() < 1e-12);
        assert_eq!(m.cost(1), 0.0);
    }
}
