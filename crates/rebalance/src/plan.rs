//! Deterministic repartitioning of the measured-cost block graph.

use bytes::{Buf, BufMut};
use trillium_blockforest::balance::morton_code;
use trillium_partition::{partition_kway, Graph, PartitionOptions};

/// Everything the planner needs to know about one block, as gathered
/// from its owning rank. 41 bytes on the wire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockRecord {
    /// Packed `BlockId` (globally unique).
    pub id: u64,
    /// Current owner rank.
    pub owner: u32,
    /// Block coordinates on its refinement level.
    pub coords: [u32; 3],
    /// Refinement level (coords scale to the finest level by shifting).
    pub level: u8,
    /// Measured (EWMA-smoothed) cost per step, seconds.
    pub cost: f64,
    /// Interior fluid cells (proxy for interface size, not for cost).
    pub fluid_cells: u64,
}

impl BlockRecord {
    /// Serialized size in bytes.
    pub const WIRE_SIZE: usize = 8 + 4 + 12 + 1 + 8 + 8;

    /// Appends the wire encoding to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64_le(self.id);
        buf.put_u32_le(self.owner);
        for c in self.coords {
            buf.put_u32_le(c);
        }
        buf.put_u8(self.level);
        buf.put_f64_le(self.cost);
        buf.put_u64_le(self.fluid_cells);
    }

    /// Decodes one record from the front of `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Self {
        let id = buf.get_u64_le();
        let owner = buf.get_u32_le();
        let coords = [buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le()];
        let level = buf.get_u8();
        let cost = buf.get_f64_le();
        let fluid_cells = buf.get_u64_le();
        BlockRecord { id, owner, coords, level, cost, fluid_cells }
    }
}

/// Encodes a rank's records back-to-back (allgather payload).
pub fn encode_records(records: &[BlockRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * BlockRecord::WIRE_SIZE);
    for r in records {
        r.encode(&mut buf);
    }
    buf
}

/// Decodes a back-to-back record buffer.
pub fn decode_records(mut data: &[u8]) -> Vec<BlockRecord> {
    assert_eq!(data.len() % BlockRecord::WIRE_SIZE, 0, "truncated record buffer");
    let mut out = Vec::with_capacity(data.len() / BlockRecord::WIRE_SIZE);
    while !data.is_empty() {
        out.push(BlockRecord::decode(&mut data));
    }
    out
}

/// One block move prescribed by a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// Packed id of the block to move.
    pub id: u64,
    /// Current owner.
    pub from: u32,
    /// New owner.
    pub to: u32,
}

/// Which algorithm produced the accepted assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMethod {
    /// Multilevel k-way partitioning of the measured-cost block graph.
    Graph,
    /// Morton space-filling-curve cut by cost quota (fallback).
    MortonSfc,
    /// Load was already balanced (or unmeasurable); nothing moves.
    NoOp,
}

/// Planner knobs.
#[derive(Clone, Copy, Debug)]
pub struct PlanOptions {
    /// Minimum relative improvement of the load ratio the graph
    /// partitioner must predict for its plan to be accepted; below this
    /// floor the Morton-curve cut is used instead. The graph plan
    /// minimizes edge cut *subject to* balance tolerance, so on oddly
    /// shaped cost distributions it can leave more imbalance on the
    /// table than the curve cut, which optimizes balance alone.
    pub min_graph_gain: f64,
    /// Seed for the (randomized but deterministic) graph partitioner.
    /// Every rank must use the same seed to compute the same plan.
    pub seed: u64,
    /// Ratio below which the plan is a no-op regardless of method: moving
    /// blocks to chase a few percent costs more than it recovers.
    pub min_ratio: f64,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self { min_graph_gain: 0.05, seed: 12345, min_ratio: 1.05 }
    }
}

/// A defect in a [`RebalancePlan`] detected by validation: a migration
/// that cannot be executed as stated. Executors skip the offending
/// migration (and report it) instead of crashing the rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A migration references a block id absent from the plan records
    /// (possible after a concurrent refine/owner remap).
    UnknownBlock {
        /// Packed id of the missing block.
        id: u64,
    },
    /// A migration's source equals its destination — nothing to move.
    SelfMigration {
        /// Packed id of the block.
        id: u64,
    },
    /// A migration's `from` disagrees with the record's current owner,
    /// so the stated source rank does not hold the block.
    OwnerMismatch {
        /// Packed id of the block.
        id: u64,
        /// Owner according to the plan records.
        expected: u32,
        /// Source rank the migration names.
        found: u32,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownBlock { id } => {
                write!(f, "migration references block {id} missing from the plan records")
            }
            PlanError::SelfMigration { id } => {
                write!(f, "migration of block {id} has identical source and destination")
            }
            PlanError::OwnerMismatch { id, expected, found } => {
                write!(
                    f,
                    "migration of block {id} names source rank {found}, records say {expected}"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// The agreed outcome of one rebalance decision.
#[derive(Clone, Debug)]
pub struct RebalancePlan {
    /// Records sorted by block id (the canonical order all ranks share).
    pub records: Vec<BlockRecord>,
    /// New owner per record, parallel to `records`.
    pub assignment: Vec<u32>,
    /// Blocks whose owner changes.
    pub migrations: Vec<Migration>,
    /// Accepted algorithm.
    pub method: PlanMethod,
    /// Measured max/avg load ratio before the plan.
    pub old_ratio: f64,
    /// Predicted max/avg load ratio under the accepted assignment.
    pub new_ratio: f64,
}

impl RebalancePlan {
    /// Looks up the record of block `id` (binary search — records are
    /// sorted by id), or reports the defect a migration naming this id
    /// would have.
    pub fn record_for(&self, id: u64) -> Result<&BlockRecord, PlanError> {
        self.records
            .binary_search_by_key(&id, |r| r.id)
            .map(|i| &self.records[i])
            .map_err(|_| PlanError::UnknownBlock { id })
    }

    /// Checks one migration against the records.
    pub fn validate_migration(&self, m: &Migration) -> Result<(), PlanError> {
        let rec = self.record_for(m.id)?;
        if m.from == m.to {
            return Err(PlanError::SelfMigration { id: m.id });
        }
        if rec.owner != m.from {
            return Err(PlanError::OwnerMismatch { id: m.id, expected: rec.owner, found: m.from });
        }
        Ok(())
    }

    /// Removes every invalid migration from the plan and returns the
    /// defects found (empty for the plans [`plan_rebalance`] itself
    /// produces — this guards plans that were mutated, merged with a
    /// concurrent refine, or decoded from elsewhere). Deterministic, so
    /// every rank sanitizing the same plan keeps the same migrations.
    pub fn sanitize(&mut self) -> Vec<PlanError> {
        let mut errors = Vec::new();
        let records = std::mem::take(&mut self.records);
        self.migrations.retain(|m| {
            let valid = match records.binary_search_by_key(&m.id, |r| r.id) {
                Err(_) => Err(PlanError::UnknownBlock { id: m.id }),
                Ok(_) if m.from == m.to => Err(PlanError::SelfMigration { id: m.id }),
                Ok(i) if records[i].owner != m.from => Err(PlanError::OwnerMismatch {
                    id: m.id,
                    expected: records[i].owner,
                    found: m.from,
                }),
                Ok(_) => Ok(()),
            };
            match valid {
                Ok(()) => true,
                Err(e) => {
                    errors.push(e);
                    false
                }
            }
        });
        self.records = records;
        errors
    }
}

pub(crate) fn load_ratio(records: &[BlockRecord], assignment: &[u32], num_ranks: u32) -> f64 {
    let mut per_rank = vec![0.0f64; num_ranks as usize];
    for (r, &a) in records.iter().zip(assignment) {
        per_rank[a as usize] += r.cost;
    }
    let total: f64 = per_rank.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let max = per_rank.iter().fold(0.0f64, |m, &v| m.max(v));
    max * num_ranks as f64 / total
}

/// Scales coords to the finest level present so adjacency nests.
pub(crate) fn scaled_coords(r: &BlockRecord, max_level: u8) -> [u64; 3] {
    let s = (max_level - r.level) as u64;
    [(r.coords[0] as u64) << s, (r.coords[1] as u64) << s, (r.coords[2] as u64) << s]
}

/// Cuts the Morton curve into per-rank chunks of equal measured cost.
fn morton_assignment(records: &[BlockRecord], num_ranks: u32) -> Vec<u32> {
    let max_level = records.iter().map(|r| r.level).max().unwrap_or(0);
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| {
        let c = scaled_coords(&records[i], max_level);
        (morton_code(c[0], c[1], c[2]), records[i].id)
    });
    let total: f64 = records.iter().map(|r| r.cost).sum();
    let per_rank = total / num_ranks as f64;
    let mut assignment = vec![0u32; records.len()];
    let mut acc = 0.0;
    let mut rank = 0u32;
    for &i in &order {
        let w = records[i].cost;
        while rank + 1 < num_ranks && acc + 0.5 * w >= per_rank * (rank + 1) as f64 {
            rank += 1;
        }
        assignment[i] = rank;
        acc += w;
    }
    assignment
}

/// Builds the block graph: vertices weighted by measured cost, edges
/// between face-adjacent blocks weighted by an interface-area proxy
/// (fluid_cells^(2/3) of the smaller block), so the partitioner trades
/// cut ghost-exchange volume against load balance.
fn cost_graph(records: &[BlockRecord]) -> Graph {
    use std::collections::HashMap;
    let max_level = records.iter().map(|r| r.level).max().unwrap_or(0);
    let by_coords: HashMap<([u64; 3], u8), usize> = records
        .iter()
        .enumerate()
        .map(|(i, r)| ((scaled_coords(r, max_level), r.level), i))
        .collect();
    let mut edges = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let c = scaled_coords(r, max_level);
        let step = 1u64 << (max_level - r.level);
        for axis in 0..3 {
            let mut n = c;
            n[axis] += step;
            // Same-level face neighbor (the uniform-forest common case;
            // level transitions simply contribute no edge and are kept
            // together by the balance constraint instead).
            if let Some(&j) = by_coords.get(&(n, r.level)) {
                let w = (records[i].fluid_cells.min(records[j].fluid_cells) as f64)
                    .powf(2.0 / 3.0)
                    .max(1.0);
                edges.push((i as u32, j as u32, w));
            }
        }
    }
    let vwgt: Vec<f64> = records.iter().map(|r| r.cost).collect();
    Graph::from_edges(records.len(), &edges, Some(vwgt))
}

/// Relabels partition parts to maximize cost overlap with the current
/// owners. Partitioners number their parts arbitrarily: a perfectly
/// balanced assignment with permuted labels would migrate *every* block
/// while changing nothing about the balance. The load ratio is
/// label-invariant, so greedily matching parts to the owners they
/// already mostly live on minimizes migration volume for free.
fn remap_to_owners(records: &[BlockRecord], assignment: &mut [u32], num_ranks: u32) {
    let n = num_ranks as usize;
    let mut overlap = vec![0.0f64; n * n]; // [part][owner]
    for (r, &a) in records.iter().zip(assignment.iter()) {
        overlap[a as usize * n + r.owner as usize] += r.cost;
    }
    let mut part_to_rank = vec![u32::MAX; n];
    let mut rank_taken = vec![false; n];
    for _ in 0..n {
        let mut best = (0usize, 0usize, -1.0f64);
        for p in 0..n {
            if part_to_rank[p] != u32::MAX {
                continue;
            }
            for r in 0..n {
                if !rank_taken[r] && overlap[p * n + r] > best.2 {
                    best = (p, r, overlap[p * n + r]);
                }
            }
        }
        part_to_rank[best.0] = best.1 as u32;
        rank_taken[best.1] = true;
    }
    for a in assignment.iter_mut() {
        *a = part_to_rank[*a as usize];
    }
}

/// Computes a deterministic rebalance plan from the gathered records.
///
/// Every rank calls this with the same record set (any order — records
/// are canonicalized by id) and identical `opts`, and obtains the same
/// plan, so the decision needs no extra agreement round.
pub fn plan_rebalance(
    mut records: Vec<BlockRecord>,
    num_ranks: u32,
    opts: &PlanOptions,
) -> RebalancePlan {
    assert!(num_ranks > 0);
    records.sort_by_key(|r| r.id);
    let current: Vec<u32> = records.iter().map(|r| r.owner).collect();
    let old_ratio = load_ratio(&records, &current, num_ranks);
    let total_cost: f64 = records.iter().map(|r| r.cost).sum();

    let noop = |records: Vec<BlockRecord>, old_ratio: f64| RebalancePlan {
        assignment: records.iter().map(|r| r.owner).collect(),
        migrations: Vec::new(),
        method: PlanMethod::NoOp,
        old_ratio,
        new_ratio: old_ratio,
        records,
    };
    if num_ranks == 1 || total_cost <= 0.0 || old_ratio <= opts.min_ratio {
        return noop(records, old_ratio);
    }

    // Preferred: multilevel k-way partitioning of the cost graph.
    let graph = cost_graph(&records);
    let popts = PartitionOptions { seed: opts.seed, ..PartitionOptions::default() };
    let mut graph_assign = partition_kway(&graph, num_ranks as usize, &popts);
    remap_to_owners(&records, &mut graph_assign, num_ranks);
    let graph_ratio = load_ratio(&records, &graph_assign, num_ranks);
    let graph_gain = (old_ratio - graph_ratio) / old_ratio;

    let (assignment, method, new_ratio) = if graph_gain >= opts.min_graph_gain {
        (graph_assign, PlanMethod::Graph, graph_ratio)
    } else {
        // Fallback: pure balance optimization along the Morton curve.
        let mut sfc = morton_assignment(&records, num_ranks);
        remap_to_owners(&records, &mut sfc, num_ranks);
        let sfc_ratio = load_ratio(&records, &sfc, num_ranks);
        if (old_ratio - sfc_ratio) / old_ratio >= opts.min_graph_gain {
            (sfc, PlanMethod::MortonSfc, sfc_ratio)
        } else {
            return noop(records, old_ratio);
        }
    };

    let migrations = records
        .iter()
        .zip(&assignment)
        .filter(|(r, &a)| r.owner != a)
        .map(|(r, &a)| Migration { id: r.id, from: r.owner, to: a })
        .collect();
    RebalancePlan { records, assignment, migrations, method, old_ratio, new_ratio }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A uniform grid of blocks, all owned as `owner_of` says, with the
    /// given per-block cost function.
    fn grid_records<FO, FC>(n: u32, owner_of: FO, cost_of: FC) -> Vec<BlockRecord>
    where
        FO: Fn(u32, u32, u32) -> u32,
        FC: Fn(u32, u32, u32) -> f64,
    {
        let mut out = Vec::new();
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let i = (z * n + y) * n + x;
                    out.push(BlockRecord {
                        id: i as u64 + 1,
                        owner: owner_of(x, y, z),
                        coords: [x, y, z],
                        level: 0,
                        cost: cost_of(x, y, z),
                        fluid_cells: 1000,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn records_roundtrip_on_the_wire() {
        let r = BlockRecord {
            id: 0xDEAD_BEEF,
            owner: 3,
            coords: [5, 6, 7],
            level: 2,
            cost: 0.125,
            fluid_cells: 4096,
        };
        let buf = encode_records(&[r, r]);
        assert_eq!(buf.len(), 2 * BlockRecord::WIRE_SIZE);
        let back = decode_records(&buf);
        assert_eq!(back, vec![r, r]);
    }

    #[test]
    fn balanced_load_is_a_noop() {
        let records = grid_records(4, |x, _, _| x % 4, |_, _, _| 1.0);
        let plan = plan_rebalance(records, 4, &PlanOptions::default());
        assert_eq!(plan.method, PlanMethod::NoOp);
        assert!(plan.migrations.is_empty());
        assert!((plan.old_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_load_produces_migrations_and_better_ratio() {
        // Rank 0 owns half the grid; uniform cost.
        let records = grid_records(4, |x, _, _| if x < 2 { 0 } else { 1 + x % 3 }, |_, _, _| 1.0);
        let plan = plan_rebalance(records, 4, &PlanOptions::default());
        assert_ne!(plan.method, PlanMethod::NoOp);
        assert!(!plan.migrations.is_empty());
        assert!(plan.new_ratio < plan.old_ratio, "{} !< {}", plan.new_ratio, plan.old_ratio);
        assert!(plan.new_ratio < 1.3, "predicted ratio {}", plan.new_ratio);
        // Every migration's `from` matches the record's owner.
        for m in &plan.migrations {
            assert_eq!(plan.validate_migration(m), Ok(()));
            let rec = plan.record_for(m.id).expect("planned migrations reference known blocks");
            assert_eq!(rec.owner, m.from);
            assert_ne!(m.from, m.to);
        }
    }

    #[test]
    fn record_lookup_reports_unknown_blocks() {
        let records = grid_records(2, |x, _, _| x, |_, _, _| 1.0);
        let plan = plan_rebalance(records, 2, &PlanOptions::default());
        assert!(plan.record_for(1).is_ok());
        assert_eq!(plan.record_for(0xFFFF), Err(PlanError::UnknownBlock { id: 0xFFFF }));
    }

    #[test]
    fn sanitize_drops_invalid_migrations_and_keeps_valid_ones() {
        let records = grid_records(4, |x, _, _| if x < 2 { 0 } else { 1 + x % 3 }, |_, _, _| 1.0);
        let mut plan = plan_rebalance(records, 4, &PlanOptions::default());
        assert!(!plan.migrations.is_empty());
        let valid = plan.migrations.clone();
        let owner0 = plan.records[0].owner;
        // Inject one of each defect, as a concurrent refine/remap would.
        plan.migrations.push(Migration { id: 0xDEAD_0000_0001, from: 0, to: 1 });
        plan.migrations.push(Migration { id: plan.records[0].id, from: 2, to: 2 });
        plan.migrations.push(Migration { id: plan.records[0].id, from: owner0 + 1, to: owner0 });
        let errors = plan.sanitize();
        assert_eq!(plan.migrations, valid, "valid migrations survive untouched");
        assert_eq!(errors.len(), 3);
        assert!(matches!(errors[0], PlanError::UnknownBlock { id: 0xDEAD_0000_0001 }));
        assert!(matches!(errors[1], PlanError::SelfMigration { .. }));
        assert!(matches!(errors[2], PlanError::OwnerMismatch { .. }));
        // A clean plan sanitizes to itself.
        assert!(plan.sanitize().is_empty());
    }

    #[test]
    fn plan_is_deterministic_and_order_independent() {
        let records =
            grid_records(4, |x, _, _| if x < 2 { 0 } else { 1 }, |x, _, _| 1.0 + x as f64);
        let mut shuffled = records.clone();
        shuffled.reverse();
        let a = plan_rebalance(records, 4, &PlanOptions::default());
        let b = plan_rebalance(shuffled, 4, &PlanOptions::default());
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.method, b.method);
    }

    #[test]
    fn costs_drive_the_cut_not_cell_counts() {
        // Equal cell counts everywhere, but the x=0 slab is 10x more
        // expensive (e.g. boundary-heavy blocks). By cell count the
        // initial x-parity split is perfectly balanced — only measured
        // cost reveals the skew, and the planner must split the
        // expensive slab across both ranks.
        let records = grid_records(4, |x, _, _| x % 2, |x, _, _| if x == 0 { 10.0 } else { 1.0 });
        let plan = plan_rebalance(records, 2, &PlanOptions::default());
        assert_ne!(plan.method, PlanMethod::NoOp);
        // Count expensive blocks per new rank: they must split ~evenly.
        let mut expensive = [0u32; 2];
        for (r, &a) in plan.records.iter().zip(&plan.assignment) {
            if r.cost > 1.0 {
                expensive[a as usize] += 1;
            }
        }
        assert!(expensive[0] >= 6 && expensive[0] <= 10, "{expensive:?}");
    }

    #[test]
    fn graph_fallback_floor_forces_sfc_or_noop() {
        // With an impossible gain floor the graph plan is always
        // rejected; the SFC fallback must still improve a gross skew.
        let records = grid_records(3, |_, _, _| 0, |_, _, _| 1.0);
        let opts = PlanOptions { min_graph_gain: 0.0, ..PlanOptions::default() };
        let plan = plan_rebalance(records.clone(), 3, &opts);
        assert!(plan.new_ratio <= plan.old_ratio);
        // Floor of 2.0 (200% gain) is unreachable for the graph; SFC can
        // still reach it here (old ratio 3.0 → 1.0 is a 67% gain, below
        // 200%), so the plan degrades to NoOp.
        let opts = PlanOptions { min_graph_gain: 2.0, ..PlanOptions::default() };
        let plan = plan_rebalance(records, 3, &opts);
        assert_eq!(plan.method, PlanMethod::NoOp);
    }

    #[test]
    fn label_permutations_do_not_migrate() {
        // An assignment that permutes part labels but keeps the same
        // groups must be remapped onto the current owners: zero moves.
        let records = grid_records(2, |x, _, _| x, |_, _, _| 1.0);
        let mut assignment: Vec<u32> = records.iter().map(|r| 1 - r.owner).collect();
        remap_to_owners(&records, &mut assignment, 2);
        let owners: Vec<u32> = records.iter().map(|r| r.owner).collect();
        assert_eq!(assignment, owners);
    }

    #[test]
    fn single_rank_never_migrates() {
        let records = grid_records(2, |_, _, _| 0, |x, _, _| x as f64 + 1.0);
        let plan = plan_rebalance(records, 1, &PlanOptions::default());
        assert_eq!(plan.method, PlanMethod::NoOp);
        assert!(plan.migrations.is_empty());
    }
}
