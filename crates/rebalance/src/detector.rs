//! Imbalance detection with hysteresis.

/// Decides *when* to rebalance from the global load ratio.
///
/// The load ratio is `max_rank_cost / avg_rank_cost` (1.0 is perfect).
/// Migration is expensive — serialized PDF fields cross the network and
/// every rank rebuilds its communication schedule — so the detector only
/// fires after the ratio has exceeded `threshold` for `hysteresis`
/// *consecutive* observations. A single slow epoch (page faults, a
/// competing job burst) therefore never triggers migration, while a
/// structural imbalance fires after a bounded delay.
#[derive(Clone, Debug)]
pub struct ImbalanceDetector {
    threshold: f64,
    hysteresis: u32,
    consecutive: u32,
    cooldown: u32,
    cooling: u32,
}

impl ImbalanceDetector {
    /// `threshold` is the max/avg ratio above which an epoch counts as
    /// imbalanced (must be ≥ 1); `hysteresis` is how many consecutive
    /// imbalanced epochs arm the trigger (≥ 1).
    pub fn new(threshold: f64, hysteresis: u32) -> Self {
        assert!(threshold >= 1.0, "a max/avg ratio below 1 is impossible");
        assert!(hysteresis >= 1);
        Self { threshold, hysteresis, consecutive: 0, cooldown: 0, cooling: 0 }
    }

    /// After a trigger, ignore the next `epochs` observations entirely.
    ///
    /// Right after a migration the EWMA cost model is stale: migrated
    /// blocks are re-seeded from a single sample and the remaining
    /// blocks' averages still carry pre-migration history, so the
    /// measured ratio bounces for a few epochs even when the new
    /// assignment is good. Observing during that window re-fires on
    /// noise and thrashes blocks back and forth.
    pub fn with_cooldown(mut self, epochs: u32) -> Self {
        self.cooldown = epochs;
        self
    }

    /// Feeds one epoch's load ratio; returns true when a rebalance should
    /// run now. Firing resets the streak, so the next trigger again needs
    /// `hysteresis` consecutive bad epochs (measured post-migration, and
    /// only after any configured cooldown window has passed).
    pub fn observe(&mut self, ratio: f64) -> bool {
        if self.cooling > 0 {
            self.cooling -= 1;
            return false;
        }
        if ratio > self.threshold {
            self.consecutive += 1;
            if self.consecutive >= self.hysteresis {
                self.consecutive = 0;
                self.cooling = self.cooldown;
                return true;
            }
        } else {
            self.consecutive = 0;
        }
        false
    }

    /// The configured trigger threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Current length of the imbalanced-epoch streak.
    pub fn streak(&self) -> u32 {
        self.consecutive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_after_consecutive_epochs() {
        let mut d = ImbalanceDetector::new(1.5, 3);
        assert!(!d.observe(2.0));
        assert!(!d.observe(2.0));
        assert!(d.observe(2.0));
    }

    #[test]
    fn transient_spike_is_ignored() {
        let mut d = ImbalanceDetector::new(1.5, 2);
        assert!(!d.observe(3.0)); // spike
        assert!(!d.observe(1.1)); // back to normal: streak resets
        assert!(!d.observe(3.0));
        assert!(d.observe(3.0));
    }

    #[test]
    fn firing_resets_the_streak() {
        let mut d = ImbalanceDetector::new(1.2, 2);
        assert!(!d.observe(2.0));
        assert!(d.observe(2.0));
        // Needs two more bad epochs before firing again.
        assert!(!d.observe(2.0));
        assert!(d.observe(2.0));
    }

    #[test]
    fn balanced_runs_never_fire() {
        let mut d = ImbalanceDetector::new(1.3, 1);
        for _ in 0..100 {
            assert!(!d.observe(1.05));
        }
        assert_eq!(d.streak(), 0);
    }

    #[test]
    fn cooldown_suppresses_refire_after_trigger() {
        let mut d = ImbalanceDetector::new(1.2, 2).with_cooldown(3);
        assert!(!d.observe(2.0));
        assert!(d.observe(2.0));
        // The next three observations fall in the cooldown window and are
        // discarded, even though they exceed the threshold.
        assert!(!d.observe(5.0));
        assert!(!d.observe(5.0));
        assert!(!d.observe(5.0));
        assert_eq!(d.streak(), 0);
        // After the window, a fresh streak is required again.
        assert!(!d.observe(2.0));
        assert!(d.observe(2.0));
    }

    #[test]
    fn infinite_threshold_disables_triggering() {
        let mut d = ImbalanceDetector::new(f64::INFINITY, 1);
        for _ in 0..10 {
            assert!(!d.observe(1e12));
        }
    }
}
