//! Typed metrics: counters, accumulators, gauges and log₂ histograms.
//!
//! Keys are plain `&str` names (dotted, e.g. `comm.messages_sent`); the
//! registry stores them in first-use order and looks them up by linear
//! scan — registries hold a handful of entries and the hot-path cost is
//! a few string compares, no hashing and no allocation after the first
//! use of each name.

use serde_json::{json, Value};
use std::cell::RefCell;

/// Histogram bucket count: log₂ buckets over microseconds, so bucket
/// `i` holds observations in `(2^(i-1), 2^i]` µs — 32 buckets span
/// sub-µs to ~35 minutes.
const BUCKETS: usize = 32;

#[derive(Clone, Debug)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram { count: 0, sum: 0.0, min: f64::INFINITY, max: 0.0, buckets: [0; BUCKETS] }
    }

    fn observe(&mut self, secs: f64) {
        self.count += 1;
        self.sum += secs;
        self.min = self.min.min(secs);
        self.max = self.max.max(secs);
        self.buckets[bucket_of(secs)] += 1;
    }
}

fn bucket_of(secs: f64) -> usize {
    let us = secs * 1e6;
    if us <= 1.0 {
        0
    } else {
        (us.log2().ceil() as usize).min(BUCKETS - 1)
    }
}

/// Upper bound (seconds) of bucket `i`.
fn bucket_bound(i: usize) -> f64 {
    (1u64 << i) as f64 * 1e-6
}

#[derive(Default)]
struct Inner {
    counters: Vec<(String, u64)>,
    fcounters: Vec<(String, f64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, Histogram)>,
}

/// Interior-mutable metrics registry; one per [`crate::Recorder`].
pub struct MetricsRegistry {
    enabled: bool,
    inner: RefCell<Inner>,
}

fn upsert<T, F: FnOnce() -> T>(v: &mut Vec<(String, T)>, name: &str, mk: F) -> usize {
    match v.iter().position(|(n, _)| n == name) {
        Some(i) => i,
        None => {
            v.push((name.to_string(), mk()));
            v.len() - 1
        }
    }
}

impl MetricsRegistry {
    /// A registry; `enabled == false` turns every method into a no-op.
    pub fn new(enabled: bool) -> Self {
        MetricsRegistry { enabled, inner: RefCell::new(Inner::default()) }
    }

    /// Adds `delta` to the `u64` counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let i = upsert(&mut inner.counters, name, || 0);
        inner.counters[i].1 += delta;
    }

    /// Adds `delta` seconds (or any `f64`) to the accumulator `name`.
    pub fn acc(&self, name: &str, delta: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let i = upsert(&mut inner.fcounters, name, || 0.0);
        inner.fcounters[i].1 += delta;
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let i = upsert(&mut inner.gauges, name, || 0.0);
        inner.gauges[i].1 = value;
    }

    /// Records one observation (seconds) into histogram `name`.
    pub fn observe(&self, name: &str, secs: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let i = upsert(&mut inner.hists, name, Histogram::new);
        inner.hists[i].1.observe(secs);
    }

    /// Copies the current state into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            fcounters: inner.fcounters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .hists
                .iter()
                .map(|(n, h)| {
                    (
                        n.clone(),
                        HistogramSnapshot {
                            count: h.count,
                            sum: h.sum,
                            min: if h.count == 0 { 0.0 } else { h.min },
                            max: h.max,
                            buckets: h
                                .buckets
                                .iter()
                                .enumerate()
                                .filter(|(_, &c)| c > 0)
                                .map(|(i, &c)| (bucket_bound(i), c))
                                .collect(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Immutable histogram state: summary moments plus the non-empty log₂
/// buckets as `(upper_bound_seconds, count)`.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (seconds).
    pub sum: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Immutable registry state, produced by [`MetricsRegistry::snapshot`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `u64` counters in first-use order.
    pub counters: Vec<(String, u64)>,
    /// `f64` accumulators in first-use order.
    pub fcounters: Vec<(String, f64)>,
    /// Gauges in first-use order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms in first-use order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Counter value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Accumulator value (0.0 when never touched).
    pub fn fcounter(&self, name: &str) -> f64 {
        self.fcounters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0.0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram state, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Merges `other` into `self`: counters and accumulators add,
    /// gauges take `other`'s value, histogram moments add (buckets are
    /// merged by bound). Used to aggregate per-rank snapshots.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (n, v) in &other.counters {
            let i = upsert(&mut self.counters, n, || 0);
            self.counters[i].1 += v;
        }
        for (n, v) in &other.fcounters {
            let i = upsert(&mut self.fcounters, n, || 0.0);
            self.fcounters[i].1 += v;
        }
        for (n, v) in &other.gauges {
            let i = upsert(&mut self.gauges, n, || 0.0);
            self.gauges[i].1 = *v;
        }
        for (n, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(sn, _)| sn == n) {
                None => self.histograms.push((n.clone(), h.clone())),
                Some((_, mine)) => {
                    mine.sum += h.sum;
                    mine.max = mine.max.max(h.max);
                    mine.min = if mine.count == 0 {
                        h.min
                    } else if h.count == 0 {
                        mine.min
                    } else {
                        mine.min.min(h.min)
                    };
                    mine.count += h.count;
                    for &(bound, c) in &h.buckets {
                        match mine.buckets.iter_mut().find(|(b, _)| *b == bound) {
                            Some((_, mc)) => *mc += c,
                            None => mine.buckets.push((bound, c)),
                        }
                    }
                    mine.buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
                }
            }
        }
    }

    /// Flattens the snapshot into a JSON object: counters and
    /// accumulators keyed by name, histograms as
    /// `{count, sum, min, max, mean}` summaries.
    pub fn to_json(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::new();
        for (n, v) in &self.counters {
            fields.push((n.clone(), json!(*v)));
        }
        for (n, v) in &self.fcounters {
            fields.push((n.clone(), json!(*v)));
        }
        for (n, v) in &self.gauges {
            fields.push((n.clone(), json!(*v)));
        }
        for (n, h) in &self.histograms {
            fields.push((
                n.clone(),
                json!({
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean(),
                }),
            ));
        }
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let m = MetricsRegistry::new(true);
        m.add("a", 2);
        m.add("a", 3);
        m.acc("t", 0.5);
        m.acc("t", 0.25);
        m.gauge("g", 1.0);
        m.gauge("g", 4.0);
        let s = m.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.fcounter("t"), 0.75);
        assert_eq!(s.gauge("g"), Some(4.0));
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_are_log2_microseconds() {
        let m = MetricsRegistry::new(true);
        // 0.5 µs → bucket 0 (≤1 µs); 3 µs → (2,4] µs; 1 ms → (512,1024] µs.
        m.observe("h", 0.5e-6);
        m.observe("h", 3e-6);
        m.observe("h", 1e-3);
        let s = m.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert!((h.sum - (0.5e-6 + 3e-6 + 1e-3)).abs() < 1e-12);
        assert_eq!(h.buckets.len(), 3);
        assert_eq!(h.buckets[0], (1e-6, 1));
        assert_eq!(h.buckets[1], (4e-6, 1));
        assert_eq!(h.buckets[2], ((1u64 << 10) as f64 * 1e-6, 1));
        assert_eq!(h.min, 0.5e-6);
        assert_eq!(h.max, 1e-3);
    }

    /// The bucket boundaries are half-open on the left: bucket `i`
    /// holds `(2^(i-1), 2^i]` µs, so an observation of *exactly* a
    /// power of two lands in the bucket it bounds, not the next one.
    #[test]
    fn exact_powers_of_two_land_on_their_bucket_bound() {
        // 1 µs is the inclusive upper bound of bucket 0.
        assert_eq!(bucket_of(1e-6), 0);
        for i in 1..20usize {
            let us = (1u64 << i) as f64;
            assert_eq!(bucket_of(us * 1e-6), i, "exactly 2^{i} µs");
            // The bound value itself is that bucket's reported bound.
            assert_eq!(bucket_bound(i), us * 1e-6);
            // Just above the bound spills into the next bucket.
            assert_eq!(bucket_of(us * 1.0001 * 1e-6), i + 1, "just above 2^{i} µs");
        }
    }

    /// Everything at or below one microsecond — including zero and
    /// denormal-scale durations — is bucket 0, never a negative index
    /// or a panic from `log2` of a tiny value.
    #[test]
    fn sub_microsecond_observations_collapse_into_bucket_zero() {
        for secs in [0.0, 1e-12, 4.9e-7, 1e-6] {
            assert_eq!(bucket_of(secs), 0, "{secs}s");
        }
        let m = MetricsRegistry::new(true);
        m.observe("h", 0.0);
        m.observe("h", 1e-9);
        let h = m.snapshot().histogram("h").cloned().unwrap();
        assert_eq!(h.buckets, vec![(1e-6, 2)]);
        assert_eq!(h.min, 0.0);
    }

    /// Durations beyond the ~35-minute top bound saturate into the top
    /// bucket instead of indexing out of range.
    #[test]
    fn overlong_observations_saturate_into_the_top_bucket() {
        let top_bound = bucket_bound(BUCKETS - 1);
        assert_eq!(bucket_of(top_bound), BUCKETS - 1);
        for secs in [top_bound * 1.01, 1e5, 1e12, f64::MAX] {
            assert_eq!(bucket_of(secs), BUCKETS - 1, "{secs}s");
        }
        let m = MetricsRegistry::new(true);
        m.observe("h", 1e6); // ~11.6 days
        let h = m.snapshot().histogram("h").cloned().unwrap();
        assert_eq!(h.buckets, vec![(top_bound, 1)]);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let m = MetricsRegistry::new(false);
        m.add("a", 1);
        m.acc("b", 1.0);
        m.gauge("c", 1.0);
        m.observe("d", 1.0);
        let s = m.snapshot();
        assert!(s.counters.is_empty() && s.fcounters.is_empty());
        assert!(s.gauges.is_empty() && s.histograms.is_empty());
    }

    #[test]
    fn merge_aggregates_ranks() {
        let a = MetricsRegistry::new(true);
        a.add("msgs", 3);
        a.observe("step", 0.010);
        let b = MetricsRegistry::new(true);
        b.add("msgs", 4);
        b.observe("step", 0.030);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counter("msgs"), 7);
        let h = s.histogram("step").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.sum - 0.040).abs() < 1e-12);
        assert_eq!(h.min, 0.010);
        assert_eq!(h.max, 0.030);
    }

    #[test]
    fn snapshot_to_json_is_flat() {
        let m = MetricsRegistry::new(true);
        m.add("n", 2);
        m.observe("h", 1e-3);
        let v = m.snapshot().to_json();
        let text = v.to_string();
        assert!(text.contains("\"n\":2"), "{text}");
        assert!(text.contains("\"count\":1"), "{text}");
    }
}
