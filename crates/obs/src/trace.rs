//! Chrome `trace_event` export.
//!
//! The format is the JSON Object Format of the Trace Event
//! specification: `{"traceEvents": [...]}` where each complete event
//! (`"ph": "X"`) carries a microsecond timestamp `ts`, duration `dur`,
//! and a `(pid, tid)` lane. We map the whole run to `pid 0` and each
//! rank to `tid == rank`, so a multi-rank run renders as stacked
//! per-rank timelines in `chrome://tracing` or Perfetto.

use crate::span::RankObs;
use serde_json::{json, Value};

/// One captured span occurrence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Slice label (the [`crate::SpanKind::name`]).
    pub name: &'static str,
    /// Time step the span belonged to.
    pub step: u64,
    /// Start, microseconds since the shared epoch.
    pub ts_us: f64,
    /// Attributed duration in microseconds (elapsed minus exclusions,
    /// so per-kind sums reproduce the accumulated totals).
    pub dur_us: f64,
}

/// Assembles the Chrome `trace_event` JSON for a set of rank snapshots:
/// one metadata event naming each lane, then every captured span as a
/// complete (`"X"`) event with `pid 0`, `tid == rank` and the time step
/// in `args`.
pub fn chrome_trace<'a, I>(ranks: I) -> Value
where
    I: IntoIterator<Item = &'a RankObs>,
{
    let mut events: Vec<Value> = Vec::new();
    for obs in ranks {
        events.push(json!({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": obs.rank,
            "args": { "name": format!("rank {}", obs.rank) },
        }));
        for e in &obs.events {
            events.push(json!({
                "name": e.name,
                "cat": "sim",
                "ph": "X",
                "ts": e.ts_us,
                "dur": e.dur_us,
                "pid": 0,
                "tid": obs.rank,
                "args": { "step": e.step },
            }));
        }
    }
    json!({ "traceEvents": events, "displayTimeUnit": "ms" })
}

/// [`chrome_trace`] serialized to a compact JSON string, ready to write
/// to a `.json` file.
pub fn chrome_trace_string<'a, I>(ranks: I) -> String
where
    I: IntoIterator<Item = &'a RankObs>,
{
    chrome_trace(ranks).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ObsConfig, Recorder, SpanKind};

    #[test]
    fn trace_has_a_lane_per_rank_and_a_slice_per_span() {
        let mut obs = Vec::new();
        for rank in 0..2u32 {
            let rec = Recorder::new(rank, ObsConfig::trace());
            rec.set_step(4);
            drop(rec.span(SpanKind::Kernel));
            drop(rec.span(SpanKind::GhostPack));
            obs.push(rec.finish());
        }
        let v = chrome_trace(&obs);
        let Value::Object(fields) = &v else { panic!("not an object") };
        let events = fields.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v).unwrap();
        let Value::Array(events) = events else { panic!("not an array") };
        // 2 metadata + 2×2 span events.
        assert_eq!(events.len(), 6);
        let text = v.to_string();
        assert!(text.contains("\"ph\":\"M\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"name\":\"kernel\""));
        assert!(text.contains("\"step\":4"));
        assert!(text.contains("\"name\":\"rank 1\""));
    }

    #[test]
    fn trace_round_trips_through_serde_json() {
        let rec = Recorder::new(0, ObsConfig::trace());
        drop(rec.span(SpanKind::Step));
        let obs = [rec.finish()];
        let text = chrome_trace_string(&obs);
        let parsed = serde_json::from_str(&text).expect("export must be valid JSON");
        assert_eq!(parsed.to_string(), text, "round-trip must be stable");
    }
}
