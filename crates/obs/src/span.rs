//! RAII timing spans with per-rank accumulation.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::trace::TraceEvent;
use std::cell::{Cell, RefCell};
use std::time::Instant;

/// What a span measures. One accumulator per kind per rank; the kind's
/// [`SpanKind::name`] is the slice label in an exported trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One whole time step (any schedule). Encloses the kinds below.
    Step,
    /// Fused stream–collide sweep (synchronous schedule).
    Kernel,
    /// Interior-core sweep of the overlapped schedule.
    KernelInterior,
    /// Ghost-shell sweep of the overlapped schedule.
    KernelShell,
    /// Boundary-condition sweeps.
    Boundary,
    /// Ghost-exchange *work*: packing, sending, local unpacking.
    GhostPack,
    /// Ghost-message drain: receive + unpack of remote slabs. Blocked
    /// stall is carved out via [`Span::exclude`], so this is disjoint
    /// from [`SpanKind::Stall`].
    GhostDrain,
    /// Blocked in a ghost receive while runnable local compute was still
    /// pending — zero by construction for the overlapped schedule.
    Stall,
    /// Coordinated checkpoint: agreement plus snapshot.
    Checkpoint,
    /// Rollback recovery: the recovery barrier plus state restore.
    Recovery,
    /// Rebalance epoch boundary: load all-reduce, planning, migration.
    RebalanceEpoch,
    /// Block migration transfer inside a rebalance round.
    Migration,
}

impl SpanKind {
    /// Every kind, in declaration order (== accumulator order).
    pub const ALL: [SpanKind; 12] = [
        SpanKind::Step,
        SpanKind::Kernel,
        SpanKind::KernelInterior,
        SpanKind::KernelShell,
        SpanKind::Boundary,
        SpanKind::GhostPack,
        SpanKind::GhostDrain,
        SpanKind::Stall,
        SpanKind::Checkpoint,
        SpanKind::Recovery,
        SpanKind::RebalanceEpoch,
        SpanKind::Migration,
    ];

    /// Number of kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable label used in traces and metric dumps.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Step => "step",
            SpanKind::Kernel => "kernel",
            SpanKind::KernelInterior => "kernel_interior",
            SpanKind::KernelShell => "kernel_shell",
            SpanKind::Boundary => "boundary",
            SpanKind::GhostPack => "ghost_pack",
            SpanKind::GhostDrain => "ghost_drain",
            SpanKind::Stall => "stall",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Recovery => "recovery",
            SpanKind::RebalanceEpoch => "rebalance_epoch",
            SpanKind::Migration => "migration",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Runtime toggle for the observability layer.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Accumulate per-kind span totals and metrics (the numbers behind
    /// `RankResult` timing fields). On by default; the per-span cost is
    /// two monotonic clock reads.
    pub timing: bool,
    /// Additionally capture one [`TraceEvent`] per span for chrome-trace
    /// export. Off by default (events allocate).
    pub events: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { timing: true, events: false }
    }
}

impl ObsConfig {
    /// Everything off: spans are no-op guards, metrics early-return.
    pub fn off() -> Self {
        ObsConfig { timing: false, events: false }
    }

    /// Timing plus full event capture (chrome-trace export).
    pub fn trace() -> Self {
        ObsConfig { timing: true, events: true }
    }

    /// True when the recorder does anything at all.
    pub fn enabled(&self) -> bool {
        self.timing || self.events
    }
}

/// Per-rank span/metric recorder. Interior-mutable so any number of
/// live guards can share `&Recorder`; not `Sync` — each rank thread
/// owns exactly one (thread-local accumulation without locks).
pub struct Recorder {
    cfg: ObsConfig,
    rank: u32,
    /// Common time origin of all ranks' traces (lane alignment).
    epoch: Instant,
    /// This recorder's creation time — the rank's wall-clock origin.
    start: Instant,
    step: Cell<u64>,
    totals: [Cell<f64>; SpanKind::COUNT],
    counts: [Cell<u64>; SpanKind::COUNT],
    events: RefCell<Vec<TraceEvent>>,
    metrics: MetricsRegistry,
}

impl Recorder {
    /// A recorder whose trace epoch is its own creation time.
    pub fn new(rank: u32, cfg: ObsConfig) -> Self {
        let now = Instant::now();
        Self::with_epoch(rank, cfg, now)
    }

    /// A recorder timestamping trace events relative to `epoch` —
    /// drivers capture one `Instant` before spawning ranks so all lanes
    /// share an origin.
    pub fn with_epoch(rank: u32, cfg: ObsConfig, epoch: Instant) -> Self {
        Recorder {
            cfg,
            rank,
            epoch,
            start: Instant::now(),
            step: Cell::new(0),
            totals: std::array::from_fn(|_| Cell::new(0.0)),
            counts: std::array::from_fn(|_| Cell::new(0)),
            events: RefCell::new(Vec::new()),
            metrics: MetricsRegistry::new(cfg.timing || cfg.events),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> ObsConfig {
        self.cfg
    }

    /// Tags subsequently recorded spans with time step `t`.
    pub fn set_step(&self, t: u64) {
        self.step.set(t);
    }

    /// Opens a span of `kind`; the guard records on drop (or
    /// [`Span::finish`]). No-op when the recorder is disabled.
    pub fn span(&self, kind: SpanKind) -> Span<'_> {
        let start = if self.cfg.enabled() { Some(Instant::now()) } else { None };
        Span { rec: self, kind, start, excluded: 0.0 }
    }

    /// Seconds since the shared epoch (0.0 when disabled). For derived
    /// quantities like hidden-communication time that subtract two
    /// clock readings.
    pub fn clock(&self) -> f64 {
        if self.cfg.enabled() {
            self.epoch.elapsed().as_secs_f64()
        } else {
            0.0
        }
    }

    /// Wall seconds since this recorder was created (0.0 when disabled).
    pub fn wall(&self) -> f64 {
        if self.cfg.enabled() {
            self.start.elapsed().as_secs_f64()
        } else {
            0.0
        }
    }

    /// Accumulated seconds for `kind` so far.
    pub fn total(&self, kind: SpanKind) -> f64 {
        self.totals[kind.index()].get()
    }

    /// Closed spans of `kind` so far.
    pub fn count(&self, kind: SpanKind) -> u64 {
        self.counts[kind.index()].get()
    }

    /// The metrics registry (counters, gauges, histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Consumes the recorder into an immutable per-rank snapshot.
    pub fn finish(self) -> RankObs {
        let wall = self.wall();
        RankObs {
            rank: self.rank,
            totals: std::array::from_fn(|i| self.totals[i].get()),
            counts: std::array::from_fn(|i| self.counts[i].get()),
            wall,
            events: self.events.into_inner(),
            metrics: self.metrics.snapshot(),
        }
    }

    fn record(&self, kind: SpanKind, start: Instant, elapsed: f64, excluded: f64) {
        let attributed = (elapsed - excluded).max(0.0);
        let i = kind.index();
        self.totals[i].set(self.totals[i].get() + attributed);
        self.counts[i].set(self.counts[i].get() + 1);
        if self.cfg.events {
            self.events.borrow_mut().push(TraceEvent {
                name: kind.name(),
                step: self.step.get(),
                ts_us: start.duration_since(self.epoch).as_secs_f64() * 1e6,
                dur_us: attributed * 1e6,
            });
        }
    }
}

/// RAII span guard: measures from creation to drop, minus any
/// [`Span::exclude`]d seconds.
pub struct Span<'r> {
    rec: &'r Recorder,
    kind: SpanKind,
    start: Option<Instant>,
    excluded: f64,
}

impl Span<'_> {
    /// Subtracts `secs` from this span's attributed time — used when a
    /// nested span of a different kind already claimed them, keeping
    /// top-level categories disjoint.
    pub fn exclude(&mut self, secs: f64) {
        self.excluded += secs;
    }

    /// Closes the span now and returns its attributed seconds (elapsed
    /// minus exclusions; 0.0 when the recorder is disabled).
    pub fn finish(mut self) -> f64 {
        let secs = self.close();
        std::mem::forget(self);
        secs
    }

    fn close(&mut self) -> f64 {
        match self.start.take() {
            Some(start) => {
                let elapsed = start.elapsed().as_secs_f64();
                self.rec.record(self.kind, start, elapsed, self.excluded);
                (elapsed - self.excluded).max(0.0)
            }
            None => 0.0,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// Opens a [`Span`] for the rest of the enclosing scope:
/// `span!(rec, Kernel)` is `let _guard = rec.span(SpanKind::Kernel);`.
#[macro_export]
macro_rules! span {
    ($rec:expr, $kind:ident) => {
        let _span_guard = $rec.span($crate::SpanKind::$kind);
    };
}

/// Immutable per-rank observability snapshot, produced by
/// [`Recorder::finish`].
#[derive(Clone, Debug)]
pub struct RankObs {
    /// Rank index (the trace lane).
    pub rank: u32,
    /// Accumulated seconds per [`SpanKind`], indexed by declaration
    /// order (see [`RankObs::total`]).
    pub totals: [f64; SpanKind::COUNT],
    /// Closed spans per kind.
    pub counts: [u64; SpanKind::COUNT],
    /// Wall seconds from recorder creation to [`Recorder::finish`] —
    /// the per-rank budget the category totals must fit into
    /// (`kernel + boundary + comm + stall ≤ wall`).
    pub wall: f64,
    /// Captured trace events (empty unless [`ObsConfig::events`]).
    pub events: Vec<TraceEvent>,
    /// Final metrics snapshot.
    pub metrics: MetricsSnapshot,
}

impl RankObs {
    /// Accumulated seconds for `kind`.
    pub fn total(&self, kind: SpanKind) -> f64 {
        self.totals[kind.index()]
    }

    /// Closed spans of `kind`.
    pub fn count(&self, kind: SpanKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Sums the per-event durations of `kind` in the captured trace,
    /// in seconds — equals [`RankObs::total`] up to float rounding
    /// (the acceptance check that the trace reproduces the timings).
    pub fn trace_total(&self, kind: SpanKind) -> f64 {
        let name = kind.name();
        self.events.iter().filter(|e| e.name == name).map(|e| e.dur_us).sum::<f64>() * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(secs: f64) {
        let t0 = Instant::now();
        while t0.elapsed().as_secs_f64() < secs {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn spans_accumulate_per_kind() {
        let rec = Recorder::new(0, ObsConfig::default());
        for _ in 0..3 {
            let g = rec.span(SpanKind::Kernel);
            spin(1e-4);
            drop(g);
        }
        {
            span!(rec, Boundary);
            spin(1e-4);
        }
        assert_eq!(rec.count(SpanKind::Kernel), 3);
        assert_eq!(rec.count(SpanKind::Boundary), 1);
        assert!(rec.total(SpanKind::Kernel) >= 3e-4);
        assert!(rec.total(SpanKind::Boundary) >= 1e-4);
        assert_eq!(rec.total(SpanKind::Stall), 0.0);
        let obs = rec.finish();
        assert!(obs.wall >= obs.total(SpanKind::Kernel) + obs.total(SpanKind::Boundary));
        assert!(obs.events.is_empty(), "events off by default");
    }

    #[test]
    fn exclusion_keeps_categories_disjoint() {
        let rec = Recorder::new(0, ObsConfig::default());
        let mut outer = rec.span(SpanKind::GhostDrain);
        spin(1e-4);
        let inner = rec.span(SpanKind::Stall);
        spin(2e-4);
        let stall = inner.finish();
        outer.exclude(stall);
        spin(1e-4);
        let drain = outer.finish();
        assert!(stall >= 2e-4);
        assert!(drain >= 2e-4, "drain keeps its own time");
        let total = rec.total(SpanKind::GhostDrain) + rec.total(SpanKind::Stall);
        // Disjoint: the sum equals the real elapsed range, not more.
        assert!((total - (drain + stall)).abs() < 1e-12);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::new(0, ObsConfig::off());
        let g = rec.span(SpanKind::Kernel);
        spin(1e-4);
        assert_eq!(g.finish(), 0.0);
        rec.metrics().add("comm.messages_sent", 5);
        rec.metrics().observe("driver.step_seconds", 0.1);
        assert_eq!(rec.clock(), 0.0);
        assert_eq!(rec.wall(), 0.0);
        let obs = rec.finish();
        assert_eq!(obs.total(SpanKind::Kernel), 0.0);
        assert_eq!(obs.count(SpanKind::Kernel), 0);
        assert_eq!(obs.metrics.counter("comm.messages_sent"), 0);
        assert!(obs.events.is_empty());
    }

    #[test]
    fn events_reproduce_totals() {
        let rec = Recorder::new(3, ObsConfig::trace());
        rec.set_step(7);
        for _ in 0..4 {
            let g = rec.span(SpanKind::KernelShell);
            spin(5e-5);
            drop(g);
        }
        let obs = rec.finish();
        assert_eq!(obs.events.len(), 4);
        assert!(obs.events.iter().all(|e| e.step == 7 && e.name == "kernel_shell"));
        let tol = 1e-9 * obs.events.len() as f64;
        assert!(
            (obs.trace_total(SpanKind::KernelShell) - obs.total(SpanKind::KernelShell)).abs()
                <= tol
        );
    }

    #[test]
    fn shared_epoch_orders_lanes() {
        let epoch = Instant::now();
        let a = Recorder::with_epoch(0, ObsConfig::trace(), epoch);
        {
            span!(a, Step);
            spin(1e-4);
        }
        let b = Recorder::with_epoch(1, ObsConfig::trace(), epoch);
        {
            span!(b, Step);
            spin(1e-4);
        }
        let (oa, ob) = (a.finish(), b.finish());
        assert!(oa.events[0].ts_us < ob.events[0].ts_us, "later span, later timestamp");
    }
}
