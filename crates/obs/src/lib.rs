#![warn(missing_docs)]
//! Unified observability: spans, metrics and chrome-trace export.
//!
//! The paper's whole evaluation (§4) is an exercise in knowing *where
//! time goes* — kernel vs. boundary vs. communication vs. stall — and
//! waLBerla ships a dedicated timing-pool facility for exactly that
//! reason. This crate is the trillium equivalent: one audited
//! implementation replacing the three generations of hand-rolled
//! `Instant::now()` bookkeeping that used to be copy-pasted across the
//! driver schedules.
//!
//! Three layers, one [`Recorder`] per rank:
//!
//! * **Spans** — RAII scopes ([`Recorder::span`], or the [`span!`]
//!   macro) accumulating wall seconds per [`SpanKind`]. The recorder
//!   uses interior mutability, so overlapping guards share a plain
//!   `&Recorder`; accumulation is thread-local by construction (each
//!   rank thread owns its recorder — no locks, no atomics on the hot
//!   path). A guard can [`Span::exclude`] seconds measured by a nested
//!   guard, which keeps top-level categories disjoint: the ghost-drain
//!   span carves out the blocked-stall span it contains.
//! * **Metrics** — a typed registry ([`MetricsRegistry`]) of `u64`
//!   counters, `f64` accumulators, gauges and log₂ histograms, keyed by
//!   name. The drivers feed it message/byte counts, fault-injection
//!   tallies, checkpoint/rollback counts, per-block EWMA costs and the
//!   per-step wall-time histogram.
//! * **Events** — optional per-span capture ([`ObsConfig::events`])
//!   exportable as Chrome `trace_event` JSON via [`chrome_trace`]: one
//!   timeline lane per rank, one slice per span, timestamps on a common
//!   epoch. Open the file in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev). The overlapped schedule's
//!   invariant — no stall slices while runnable work remains — is
//!   *visible in the trace*, not just asserted in tests.
//!
//! Everything is zero-cost when disabled: [`ObsConfig::off`] makes
//! every span a no-op guard (no clock reads, no event pushes) and every
//! metric call an early return.

pub mod metrics;
pub mod span;
pub mod trace;

pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use span::{ObsConfig, RankObs, Recorder, Span, SpanKind};
pub use trace::{chrome_trace, chrome_trace_string, TraceEvent};
