//! Boundary conditions: no-slip bounce back, velocity bounce back and
//! pressure anti bounce back (paper §2.1, referencing Ginzburg et al.).
//!
//! # Realization
//!
//! All compute kernels in this crate pull unconditionally from all 19
//! neighbors. Boundary conditions are realized by a *preparatory sweep*
//! that runs before the compute sweep of each time step: for every boundary
//! cell `w` and every direction `q` whose target `w + c_q` is an interior
//! fluid cell, the preparatory sweep writes into `f[w][q]` exactly the
//! value the fluid cell must receive when it pulls direction `q` from `w`:
//!
//! * **no slip**: `f[w][q] = f̃[x][q̄]` — plain reflection of the fluid
//!   cell's post-collision PDF,
//! * **velocity bounce back** (wall moving with `u_w`):
//!   `f[w][q] = f̃[x][q̄] + 6 w_q ρ₀ (c_q · u_w)` with `ρ₀ = 1`,
//! * **pressure anti bounce back** (prescribed wall density `ρ_w`):
//!   `f[w][q] = −f̃[x][q̄] + 2 f^{eq+}_q(ρ_w, u_x)` where `f^{eq+}` is the
//!   symmetric equilibrium part and `u_x` the fluid neighbor's velocity.
//!
//! Each `(w, q)` pair serves exactly one fluid target, so the assignment is
//! well defined even when one wall cell borders several fluid cells.
//! Because the hull of the fluid region is computed with a morphological
//! dilation w.r.t. the stencil (paper §2.3), every pull of a fluid cell hits
//! either a fluid or a boundary cell — never an unclassified one.

use trillium_field::{CellFlags, FlagField, FlagOps, PdfField};
use trillium_lattice::equilibrium::equilibrium_even;
use trillium_lattice::LatticeModel;

/// Parameters of the boundary conditions of one block.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BoundaryParams {
    /// Wall velocity for [`CellFlags::VELOCITY`] cells (lattice units).
    pub wall_velocity: [f64; 3],
    /// Prescribed density for [`CellFlags::PRESSURE`] cells.
    pub pressure_density: f64,
    /// Prescribed density for [`CellFlags::PRESSURE_ALT`] cells (second
    /// opening, e.g. the outlet of a pressure-driven channel).
    pub pressure_density_alt: f64,
}

impl Default for BoundaryParams {
    fn default() -> Self {
        BoundaryParams { wall_velocity: [0.0; 3], pressure_density: 1.0, pressure_density_alt: 1.0 }
    }
}

/// Which wall cells a preparatory sweep visits; see
/// [`apply_boundaries_interior`] / [`apply_boundaries_ghost`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum WallSelection {
    /// All wall cells (ghost layer and interior obstacles).
    All,
    /// Only wall cells at interior coordinates (obstacles).
    Interior,
    /// Only wall cells in the ghost layer.
    Ghost,
}

/// Runs the preparatory boundary sweep on the (source) field `f`.
///
/// Must be called after ghost-layer synchronization and before the
/// stream–collide sweep of every time step.
pub fn apply_boundaries<M: LatticeModel, F: PdfField<M>>(
    f: &mut F,
    flags: &FlagField,
    params: &BoundaryParams,
) {
    apply_boundaries_selected::<M, F>(f, flags, params, WallSelection::All)
}

/// The preparatory sweep restricted to wall cells at *interior*
/// coordinates (in-block obstacles). These cells are never written by
/// ghost-layer unpacking, and every value written depends only on interior
/// fluid PDFs, so this half can run before ghost synchronization
/// completes — the boundary-prep part of the communication-hiding step.
pub fn apply_boundaries_interior<M: LatticeModel, F: PdfField<M>>(
    f: &mut F,
    flags: &FlagField,
    params: &BoundaryParams,
) {
    apply_boundaries_selected::<M, F>(f, flags, params, WallSelection::Interior)
}

/// The preparatory sweep restricted to wall cells in the *ghost layer*
/// (domain hull and remote wall slabs). Must run after ghost unpacking:
/// on wall cells inside exchanged slabs the boundary value overwrites the
/// neighbor's PDFs, exactly as in the synchronous step order. Together
/// with [`apply_boundaries_interior`] this visits every wall cell that
/// [`apply_boundaries`] visits, exactly once, writing bitwise the same
/// values (each `(w, q)` write depends only on interior fluid PDFs, which
/// neither half modifies).
pub fn apply_boundaries_ghost<M: LatticeModel, F: PdfField<M>>(
    f: &mut F,
    flags: &FlagField,
    params: &BoundaryParams,
) {
    apply_boundaries_selected::<M, F>(f, flags, params, WallSelection::Ghost)
}

fn apply_boundaries_selected<M: LatticeModel, F: PdfField<M>>(
    f: &mut F,
    flags: &FlagField,
    params: &BoundaryParams,
    sel: WallSelection,
) {
    let shape = f.shape();
    let mut fluid_pdfs = vec![0.0; M::Q];
    for (wx, wy, wz) in shape.with_ghosts().iter() {
        match sel {
            WallSelection::All => {}
            WallSelection::Interior => {
                if !shape.is_interior(wx, wy, wz) {
                    continue;
                }
            }
            WallSelection::Ghost => {
                if shape.is_interior(wx, wy, wz) {
                    continue;
                }
            }
        }
        let flag = flags.flags(wx, wy, wz);
        if !flag.is_boundary() {
            continue;
        }
        for q in 1..M::Q {
            let c = M::velocities()[q];
            let (tx, ty, tz) = (wx + c[0] as i32, wy + c[1] as i32, wz + c[2] as i32);
            if !shape.is_interior(tx, ty, tz) || !flags.flags(tx, ty, tz).is_fluid() {
                continue;
            }
            let qi = M::inv(q);
            let reflected = f.get(tx, ty, tz, qi);
            let value = if flag.intersects(CellFlags::NOSLIP) {
                reflected
            } else if flag.intersects(CellFlags::VELOCITY) {
                let cu = c[0] as f64 * params.wall_velocity[0]
                    + c[1] as f64 * params.wall_velocity[1]
                    + c[2] as f64 * params.wall_velocity[2];
                reflected + 6.0 * M::w(q) * cu
            } else {
                // PRESSURE / PRESSURE_ALT: anti bounce back against the
                // symmetric equilibrium at the prescribed density and the
                // fluid neighbor's velocity.
                let rho_w = if flag.intersects(CellFlags::PRESSURE) {
                    params.pressure_density
                } else {
                    params.pressure_density_alt
                };
                f.get_cell(tx, ty, tz, &mut fluid_pdfs);
                let u = trillium_lattice::velocity::<M>(&fluid_pdfs);
                -reflected + 2.0 * equilibrium_even::<M>(q, rho_w, u)
            };
            f.set(wx, wy, wz, q, value);
        }
    }
}

/// Momentum-exchange force on the boundary cells matched by `mask`
/// (Ladd's momentum-exchange algorithm): for every bounce-back link from
/// a fluid cell `x` toward a wall cell `w` (fluid-to-wall direction `q̄`),
/// the momentum handed to the wall per time step is
/// `(f̃_{q̄}(x) + f_q(x, t+Δt)) c_{q̄}`. Must be called *after*
/// [`apply_boundaries`] (the wall cells then hold the post-streaming
/// values the fluid will pull) and before the compute sweep.
///
/// Returns the force in lattice units (momentum per time step). Used for
/// drag/lift evaluation on obstacles and walls — the quantity a coupled
/// rigid-body engine (the paper's `pe`) consumes.
pub fn momentum_exchange_force<M: LatticeModel, F: PdfField<M>>(
    f: &F,
    flags: &FlagField,
    mask: CellFlags,
) -> [f64; 3] {
    let shape = f.shape();
    let mut force = [0.0; 3];
    for (wx, wy, wz) in shape.with_ghosts().iter() {
        let flag = flags.flags(wx, wy, wz);
        if !flag.intersects(mask) || !flag.is_boundary() {
            continue;
        }
        for q in 1..M::Q {
            let c = M::velocities()[q];
            let (tx, ty, tz) = (wx + c[0] as i32, wy + c[1] as i32, wz + c[2] as i32);
            if !shape.is_interior(tx, ty, tz) || !flags.flags(tx, ty, tz).is_fluid() {
                continue;
            }
            let qi = M::inv(q); // fluid-to-wall direction
            let outgoing = f.get(tx, ty, tz, qi); // f̃_{q̄}(x): leaves toward the wall
            let incoming = f.get(wx, wy, wz, q); // f_q(x, t+Δt): comes back
            let ci = M::velocities()[qi];
            for d in 0..3 {
                force[d] += (outgoing + incoming) * ci[d] as f64;
            }
        }
    }
    force
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic;
    use trillium_field::{AosPdfField, Shape};
    use trillium_lattice::{Relaxation, D3Q19, MAGIC_TRT};

    /// Builds a fully enclosed box: interior all fluid, the ghost layer is
    /// the wall.
    fn boxed_flags(shape: Shape, wall: CellFlags) -> FlagField {
        let mut flags = FlagField::new(shape);
        for (x, y, z) in shape.interior().iter() {
            flags.set_flags(x, y, z, CellFlags::FLUID);
        }
        for (x, y, z) in shape.with_ghosts().iter() {
            if !shape.is_interior(x, y, z) {
                flags.set_flags(x, y, z, wall);
            }
        }
        flags
    }

    fn step(
        src: &mut AosPdfField<D3Q19>,
        dst: &mut AosPdfField<D3Q19>,
        flags: &FlagField,
        params: &BoundaryParams,
        rel: Relaxation,
    ) {
        apply_boundaries::<D3Q19, _>(src, flags, params);
        generic::stream_collide_trt(src, dst, rel);
        src.swap(dst);
    }

    /// A closed box of resting fluid with no-slip walls must stay exactly
    /// at rest and conserve mass to round-off.
    #[test]
    fn resting_fluid_in_noslip_box_is_invariant() {
        let shape = Shape::cube(6);
        let flags = boxed_flags(shape, CellFlags::NOSLIP);
        let mut src = AosPdfField::<D3Q19>::new(shape);
        let mut dst = AosPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.0; 3]);
        let params = BoundaryParams::default();
        let rel = Relaxation::trt_from_tau(0.9, MAGIC_TRT);
        let mass0 = src.total_mass();
        for _ in 0..20 {
            step(&mut src, &mut dst, &flags, &params, rel);
        }
        assert!((src.total_mass() - mass0).abs() < 1e-10);
        for (x, y, z) in shape.interior().iter() {
            let u = src.velocity(x, y, z);
            for d in 0..3 {
                assert!(u[d].abs() < 1e-13, "spurious velocity {u:?} at ({x},{y},{z})");
            }
        }
    }

    /// No-slip bounce back conserves mass even for moving fluid.
    #[test]
    fn noslip_box_conserves_mass_with_flow() {
        let shape = Shape::cube(6);
        let flags = boxed_flags(shape, CellFlags::NOSLIP);
        let mut src = AosPdfField::<D3Q19>::new(shape);
        let mut dst = AosPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.0; 3]);
        // Put a velocity bump in the middle.
        let mut feq = [0.0; 19];
        trillium_lattice::equilibrium_all::<D3Q19>(1.0, [0.05, 0.02, -0.01], &mut feq);
        src.set_cell(3, 3, 3, &feq);
        let params = BoundaryParams::default();
        let rel = Relaxation::trt_from_tau(0.8, MAGIC_TRT);
        let mass0 = src.total_mass();
        for _ in 0..50 {
            step(&mut src, &mut dst, &flags, &params, rel);
        }
        assert!(
            (src.total_mass() - mass0).abs() / mass0 < 1e-12,
            "mass drifted: {} -> {}",
            mass0,
            src.total_mass()
        );
    }

    /// A box whose lid moves tangentially (velocity bounce back) must drag
    /// the fluid: after some steps the cells near the lid move in the lid
    /// direction.
    #[test]
    fn moving_lid_drags_fluid() {
        let shape = Shape::cube(8);
        let mut flags = boxed_flags(shape, CellFlags::NOSLIP);
        // Lid: top ghost plane (z = 8) drives in +x.
        for x in -1..=(shape.nx as i32) {
            for y in -1..=(shape.ny as i32) {
                flags.set_flags(x, y, shape.nz as i32, CellFlags::VELOCITY);
            }
        }
        let mut src = AosPdfField::<D3Q19>::new(shape);
        let mut dst = AosPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.0; 3]);
        let params = BoundaryParams { wall_velocity: [0.05, 0.0, 0.0], ..Default::default() };
        let rel = Relaxation::trt_from_tau(0.9, MAGIC_TRT);
        for _ in 0..100 {
            step(&mut src, &mut dst, &flags, &params, rel);
        }
        // Fluid just below the lid follows the lid.
        let u_top = src.velocity(4, 4, 7);
        assert!(u_top[0] > 1e-3, "lid did not drag fluid: {u_top:?}");
        // Fluid at the bottom moves much less.
        let u_bot = src.velocity(4, 4, 0);
        assert!(u_top[0] > 5.0 * u_bot[0].abs());
    }

    /// The split preparatory sweep (interior wall cells, then ghost-layer
    /// wall cells) must write bitwise the same field as the single full
    /// sweep — in either order, since all writes depend only on fluid
    /// PDFs. This is the property the overlapped driver relies on.
    #[test]
    fn split_boundary_sweep_is_bitwise_identical() {
        let shape = Shape::cube(6);
        let mut flags = boxed_flags(shape, CellFlags::NOSLIP);
        // An interior obstacle so the interior half is non-trivial.
        flags.set_flags(2, 3, 3, CellFlags::NOSLIP);
        flags.set_flags(3, 3, 3, CellFlags::VELOCITY);
        // A pressure opening on one ghost face.
        for y in -1..=(shape.ny as i32) {
            for z in -1..=(shape.nz as i32) {
                flags.set_flags(-1, y, z, CellFlags::PRESSURE);
            }
        }
        let mut full = AosPdfField::<D3Q19>::new(shape);
        full.fill_equilibrium(1.0, [0.0; 3]);
        for (i, v) in full.data_mut().iter_mut().enumerate() {
            *v += 1e-4 * (((i * 2654435761) % 997) as f64 / 997.0 - 0.5);
        }
        let mut split_a = full.clone();
        let mut split_b = full.clone();
        let params = BoundaryParams {
            wall_velocity: [0.03, -0.01, 0.0],
            pressure_density: 1.02,
            ..Default::default()
        };
        apply_boundaries::<D3Q19, _>(&mut full, &flags, &params);
        apply_boundaries_interior::<D3Q19, _>(&mut split_a, &flags, &params);
        apply_boundaries_ghost::<D3Q19, _>(&mut split_a, &flags, &params);
        apply_boundaries_ghost::<D3Q19, _>(&mut split_b, &flags, &params);
        apply_boundaries_interior::<D3Q19, _>(&mut split_b, &flags, &params);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                let r = full.get(x, y, z, q);
                assert!(r == split_a.get(x, y, z, q), "interior-first at ({x},{y},{z}) q={q}");
                assert!(r == split_b.get(x, y, z, q), "ghost-first at ({x},{y},{z}) q={q}");
            }
        }
    }

    /// Pressure anti bounce back drives the local density toward the
    /// prescribed value.
    #[test]
    fn pressure_boundary_imposes_density() {
        let shape = Shape::cube(6);
        let mut flags = boxed_flags(shape, CellFlags::NOSLIP);
        // One face (x = -1 plane) becomes a pressure opening at rho = 1.05.
        for y in -1..=(shape.ny as i32) {
            for z in -1..=(shape.nz as i32) {
                flags.set_flags(-1, y, z, CellFlags::PRESSURE);
            }
        }
        let mut src = AosPdfField::<D3Q19>::new(shape);
        let mut dst = AosPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.0; 3]);
        let params = BoundaryParams { pressure_density: 1.05, ..Default::default() };
        let rel = Relaxation::trt_from_tau(0.9, MAGIC_TRT);
        let rho_before = src.density(0, 3, 3);
        for _ in 0..60 {
            step(&mut src, &mut dst, &flags, &params, rel);
        }
        let rho_after = src.density(0, 3, 3);
        assert!(
            rho_after > rho_before + 0.01,
            "density not driven up: {rho_before} -> {rho_after}"
        );
    }
}
