//! Cell-update accounting for MLUPS / MFLUPS reporting and per-sweep
//! wall-clock timing (the raw signal for runtime load balancing).

/// Counters returned by every kernel sweep.
///
/// The paper (§4) distinguishes MLUPS ("million lattice cell updates per
/// second" — every cell *traversed* by the kernel, including non-fluid
/// cells) from MFLUPS (only fluid cells actually processed). A sweep
/// reports both so the harness can compute either rate.
///
/// `seconds` carries measured wall time when the caller timed the sweep
/// (kernels themselves return it as zero; the block driver fills it in).
/// It feeds the rebalance subsystem's per-block cost model, where
/// measured time — not cell counts — is the load signal.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct SweepStats {
    /// Cells traversed by the kernel (the LUPS numerator).
    pub cells: u64,
    /// Fluid cells actually processed (the FLUPS numerator).
    pub fluid_cells: u64,
    /// Measured wall time of the sweep(s), if timed; zero otherwise.
    pub seconds: f64,
}

impl SweepStats {
    /// A sweep over a dense, all-fluid region of `n` cells.
    pub fn dense(n: u64) -> Self {
        SweepStats { cells: n, fluid_cells: n, seconds: 0.0 }
    }

    /// Returns the same counters with measured wall time attached.
    pub fn timed(self, seconds: f64) -> Self {
        SweepStats { seconds, ..self }
    }

    /// Accumulates another sweep's counters (and its measured time).
    pub fn merge(&mut self, other: SweepStats) {
        self.cells += other.cells;
        self.fluid_cells += other.fluid_cells;
        self.seconds += other.seconds;
    }

    /// MLUPS given the elapsed wall time of the sweep(s).
    pub fn mlups(&self, seconds: f64) -> f64 {
        self.cells as f64 / seconds / 1e6
    }

    /// MFLUPS given the elapsed wall time of the sweep(s).
    pub fn mflups(&self, seconds: f64) -> f64 {
        self.fluid_cells as f64 / seconds / 1e6
    }

    /// MFLUPS from the accumulated measured time (NaN if never timed).
    pub fn measured_mflups(&self) -> f64 {
        self.fluid_cells as f64 / self.seconds / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_stats_count_all_cells_as_fluid() {
        let s = SweepStats::dense(1000);
        assert_eq!(s.cells, 1000);
        assert_eq!(s.fluid_cells, 1000);
        assert_eq!(s.seconds, 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SweepStats { cells: 10, fluid_cells: 7, seconds: 0.5 };
        a.merge(SweepStats { cells: 5, fluid_cells: 5, seconds: 0.25 });
        assert_eq!(a, SweepStats { cells: 15, fluid_cells: 12, seconds: 0.75 });
    }

    #[test]
    fn rates() {
        let s = SweepStats::dense(2_000_000).timed(2.0);
        assert!((s.mlups(1.0) - 2.0).abs() < 1e-12);
        assert!((s.mflups(2.0) - 1.0).abs() < 1e-12);
        assert!((s.measured_mflups() - 1.0).abs() < 1e-12);
    }
}
