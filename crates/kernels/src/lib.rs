#![warn(missing_docs)]
//! LBM compute kernels: the optimization ladder of the SC'13 paper (§4.1)
//! plus boundary handling and the sparse-block strategies of §4.3.
//!
//! # Kernel tiers
//!
//! 1. [`generic`] — a naive, textbook-style stream-pull kernel written for
//!    arbitrary lattice models (the paper's "Generic" curves in Fig. 3).
//! 2. [`d3q19`] — a kernel specialized to the D3Q19 model with fused
//!    streaming and collision and common-subexpression elimination in the
//!    macroscopic-value calculation (the "D3Q19" curves).
//! 3. [`soa`] — the SIMD tier: Structure-of-Arrays layout with the inner
//!    loop split and the update performed in a by-direction rather than
//!    by-cell manner, reducing concurrent load/store streams so the
//!    compiler vectorizes the inner loops (the "SIMD" curves). [`avx`]
//!    provides an explicit AVX2+FMA intrinsics variant with runtime
//!    feature detection.
//!
//! Each tier implements both collision operators, SRT and TRT; with
//! `λ_e = λ_o` the TRT kernels reduce exactly to SRT.
//!
//! # Update schemes
//!
//! The two-field (A/B) *stream-pull* pattern is the default: fields store
//! post-collision values; a sweep gathers `f̃_q(x − c_q, t)` from the source
//! field (completing the streaming step), computes moments, collides, and
//! writes post-collision values at `t + Δt` to the destination field.
//! Boundary conditions are realized by a preparatory [`boundary`] sweep
//! that writes the appropriate values into boundary cells of the source
//! field so the compute kernels can pull unconditionally.
//!
//! [`inplace`] adds the single-buffer *AA-pattern* alternative
//! ([`dispatch::Tier::InPlace`]): the storage convention alternates
//! between a transport sweep (pull-identical reads, stores rotated one hop
//! downstream into the opposite direction's grid) and a purely cell-local
//! sweep, tracked by `SoaPdfField::parity`. It halves the per-update
//! memory traffic (no write-allocate stream, no second buffer) and is
//! bitwise identical to the resolved pull tier step for step. The
//! preparatory boundary sweep works unchanged at both parities through the
//! parity-mapped field accessors.

pub mod avx;
pub mod backend;
pub mod boundary;
pub mod d3q19;
pub mod dispatch;
pub mod generic;
pub mod inplace;
pub mod mrt;
pub mod soa;
pub mod sparse;
pub mod stats;

pub use backend::{Avx2Backend, Backend, BackendKind, PortableBackend, WorkgroupBackend};
pub use boundary::{
    apply_boundaries, apply_boundaries_ghost, apply_boundaries_interior, BoundaryParams,
};
pub use dispatch::{
    sweep_aos, sweep_aos_region, sweep_inplace, sweep_inplace_region, sweep_soa, sweep_soa_region,
    Tier,
};
pub use stats::SweepStats;

/// Which collision operator a kernel run uses; all are parameterized by a
/// [`trillium_lattice::Relaxation`], from which the MRT variants derive
/// their viscosity-linked moment rates.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Collision {
    /// Single-relaxation-time (LBGK).
    Srt,
    /// Two-relaxation-time (Ginzburg et al.).
    Trt,
    /// Multiple-relaxation-time (d'Humières Gram–Schmidt moment basis).
    Mrt,
    /// MRT with the Smagorinsky large-eddy closure (effective τ per cell
    /// from the local non-equilibrium strain rate, `C_s` =
    /// [`trillium_lattice::mrt::CS_SMAGORINSKY`]).
    MrtLes,
}

impl Collision {
    /// All collision operators, in increasing modeling sophistication.
    pub const ALL: [Collision; 4] =
        [Collision::Srt, Collision::Trt, Collision::Mrt, Collision::MrtLes];

    /// Short lowercase label, as used in bench JSON series.
    pub fn label(self) -> &'static str {
        match self {
            Collision::Srt => "srt",
            Collision::Trt => "trt",
            Collision::Mrt => "mrt",
            Collision::MrtLes => "mrt-les",
        }
    }

    /// The Smagorinsky constant the operator runs with (`None` when the
    /// LES closure is off). Centralized so every dispatch path and driver
    /// schedule resolves the same `C_s`.
    pub fn smagorinsky(self) -> Option<f64> {
        match self {
            Collision::MrtLes => Some(trillium_lattice::CS_SMAGORINSKY),
            _ => None,
        }
    }

    /// Whether this operator relaxes in moment space (MRT family).
    pub fn is_mrt(self) -> bool {
        matches!(self, Collision::Mrt | Collision::MrtLes)
    }
}
