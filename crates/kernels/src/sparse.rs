//! Sparse-block kernels: the three strategies of paper §4.3 for blocks only
//! partially covered by the computational domain.
//!
//! 1. [`stream_collide_trt_conditional`] — a conditional statement in the
//!    innermost loop executes the stream and collide steps only for fluid
//!    cells. Simple, but the branch "induces a major performance penalty"
//!    and is "incompatible with vectorization".
//! 2. [`stream_collide_trt_cell_list`] — the coordinates of a block's fluid
//!    cells are stored in an array and the kernel loops over this array.
//!    Removes the branch, still no vectorization (scattered accesses).
//! 3. [`stream_collide_trt_row_intervals`] — for every line of lattice
//!    cells the index of the first and last fluid cell is stored, "similar
//!    to the compressed storage scheme of a sparse matrix", and the kernel
//!    runs on the contiguous spans. This is the production scheme: it
//!    vectorizes and fits vascular geometries with few but consecutive
//!    fluid cells per row.
//!
//! All three produce identical results on fluid cells. Cells covered by a
//! row interval that are not fluid are traversed and overwritten with
//! meaningless values (exactly as in the paper); they are never read by any
//! fluid cell's pull because the boundary hull separates fluid from
//! unclassified cells. The returned [`SweepStats`] distinguish traversed
//! cells (LUPS) from processed fluid cells (FLUPS).

use crate::d3q19::collide_trt_cell;
use crate::soa::RowScratch;
use crate::stats::SweepStats;
use trillium_field::{FlagField, FlagOps, FluidCellList, PdfField, RowIntervals, SoaPdfField};
use trillium_lattice::d3q19::{dir, C, PAIRS, Q, W as WEIGHTS};
use trillium_lattice::{Relaxation, D3Q19};

/// Per-direction pull offsets in cell units for a SoA field.
#[inline(always)]
fn offsets(sy: isize, sz: isize) -> [isize; Q] {
    let mut off = [0isize; Q];
    for q in 0..Q {
        off[q] = C[q][0] as isize + C[q][1] as isize * sy + C[q][2] as isize * sz;
    }
    off
}

/// Scalar stream–collide of a single cell on SoA storage.
#[inline(always)]
fn update_cell(
    sdirs: &[&[f64]],
    ddirs: &mut [&mut [f64]],
    cell: usize,
    off: &[isize; Q],
    le: f64,
    lo: f64,
) {
    let mut f = [0.0; Q];
    for q in 0..Q {
        f[q] = sdirs[q][(cell as isize - off[q]) as usize];
    }
    let rho = trillium_lattice::density::<D3Q19>(&f);
    let j = trillium_lattice::momentum::<D3Q19>(&f);
    let u = [j[0] / rho, j[1] / rho, j[2] / rho];
    let mut out = [0.0; Q];
    collide_trt_cell(&f, rho, u, le, lo, &mut out);
    for q in 0..Q {
        ddirs[q][cell] = out[q];
    }
}

/// Strategy 1: conditional in the innermost loop.
pub fn stream_collide_trt_conditional(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    flags: &FlagField,
    rel: Relaxation,
) -> SweepStats {
    assert_eq!(src.shape(), dst.shape());
    assert_eq!(src.shape(), flags.shape());
    let shape = src.shape();
    let off = offsets(shape.stride_y() as isize, shape.stride_z() as isize);
    let (le, lo) = (rel.lambda_e, rel.lambda_o);
    let sdirs: Vec<&[f64]> = (0..Q).map(|q| src.dir(q)).collect();
    let mut ddirs = dst.dirs_mut();
    let mut fluid = 0u64;
    for (x, y, z) in shape.interior().iter() {
        if flags.flags(x, y, z).is_fluid() {
            update_cell(&sdirs, &mut ddirs, shape.idx(x, y, z), &off, le, lo);
            fluid += 1;
        }
    }
    SweepStats { cells: shape.interior_cells() as u64, fluid_cells: fluid, seconds: 0.0 }
}

/// Strategy 2: loop over an explicit fluid-cell list.
pub fn stream_collide_trt_cell_list(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    list: &FluidCellList,
    rel: Relaxation,
) -> SweepStats {
    assert_eq!(src.shape(), dst.shape());
    let shape = src.shape();
    let off = offsets(shape.stride_y() as isize, shape.stride_z() as isize);
    let (le, lo) = (rel.lambda_e, rel.lambda_o);
    let sdirs: Vec<&[f64]> = (0..Q).map(|q| src.dir(q)).collect();
    let mut ddirs = dst.dirs_mut();
    for &(x, y, z) in &list.cells {
        update_cell(&sdirs, &mut ddirs, shape.idx(x, y, z), &off, le, lo);
    }
    SweepStats { cells: list.len() as u64, fluid_cells: list.len() as u64, seconds: 0.0 }
}

/// Strategy 3: vectorizable sweep over per-row first/last fluid intervals.
pub fn stream_collide_trt_row_intervals(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    intervals: &RowIntervals,
    rel: Relaxation,
) -> SweepStats {
    let mut stats =
        stream_collide_trt_row_intervals_region(src, dst, intervals, rel, &src.shape().interior());
    stats.cells = intervals.covered_cells() as u64;
    stats.fluid_cells = intervals.fluid_cells as u64;
    stats
}

/// [`stream_collide_trt_row_intervals`] restricted to the spans' overlap
/// with `region` (a subset of the interior). Each span is clipped against
/// the region's x range and skipped when its row lies outside the region's
/// y/z ranges; the per-cell arithmetic is element-wise, so sweeping a
/// partition of the interior region by region is bitwise identical to one
/// full interval sweep.
pub fn stream_collide_trt_row_intervals_region(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    intervals: &RowIntervals,
    rel: Relaxation,
    region: &trillium_field::Region,
) -> SweepStats {
    assert_eq!(src.shape(), dst.shape());
    let shape = src.shape();
    assert!(shape.ghost >= 1);
    debug_assert_eq!(region.intersect(&shape.interior()), region.clone());
    let (le, lo) = (rel.lambda_e, rel.lambda_o);
    let (sy, sz) = (shape.stride_y() as isize, shape.stride_z() as isize);
    let mut scr = RowScratch::new(shape.nx);
    let sdirs: Vec<&[f64]> = (0..Q).map(|q| src.dir(q)).collect();
    let mut ddirs = dst.dirs_mut();
    let mut covered = 0usize;

    for span in &intervals.spans {
        if !region.y.contains(&span.y) || !region.z.contains(&span.z) {
            continue;
        }
        let x_begin = span.x_begin.max(region.x.start);
        let x_end = span.x_end.min(region.x.end);
        if x_end <= x_begin {
            continue;
        }
        let n = (x_end - x_begin) as usize;
        covered += n;
        let base = shape.idx(x_begin, span.y, span.z);

        // Moment pass over the span.
        {
            let (rho, ux, uy, uz) =
                (&mut scr.rho[..n], &mut scr.ux[..n], &mut scr.uy[..n], &mut scr.uz[..n]);
            rho.fill(0.0);
            ux.fill(0.0);
            uy.fill(0.0);
            uz.fill(0.0);
            for q in 0..Q {
                let offq = C[q][0] as isize + C[q][1] as isize * sy + C[q][2] as isize * sz;
                let s = &sdirs[q][(base as isize - offq) as usize..][..n];
                let (cx, cy, cz) = (C[q][0] as f64, C[q][1] as f64, C[q][2] as f64);
                for x in 0..n {
                    let v = s[x];
                    rho[x] += v;
                    if cx != 0.0 {
                        ux[x] = cx.mul_add(v, ux[x]);
                    }
                    if cy != 0.0 {
                        uy[x] = cy.mul_add(v, uy[x]);
                    }
                    if cz != 0.0 {
                        uz[x] = cz.mul_add(v, uz[x]);
                    }
                }
            }
            let bb = &mut scr.base[..n];
            for x in 0..n {
                let inv = 1.0 / rho[x];
                let (vx, vy, vz) = (ux[x] * inv, uy[x] * inv, uz[x] * inv);
                ux[x] = vx;
                uy[x] = vy;
                uz[x] = vz;
                let u2 = vz.mul_add(vz, vy.mul_add(vy, vx * vx));
                bb[x] = (-1.5f64).mul_add(u2, 1.0);
            }
        }

        // Rest direction.
        {
            let s0 = &sdirs[dir::C][base..base + n];
            let d0 = &mut ddirs[dir::C][base..base + n];
            for x in 0..n {
                let feq = WEIGHTS[0] * (scr.rho[x] * scr.base[x]);
                d0[x] = le.mul_add(s0[x] - feq, s0[x]);
            }
        }

        // Antiparallel pairs.
        for &(a, b) in PAIRS.iter() {
            let offa = C[a][0] as isize + C[a][1] as isize * sy + C[a][2] as isize * sz;
            let sa = &sdirs[a][(base as isize - offa) as usize..][..n];
            let sb = &sdirs[b][(base as isize + offa) as usize..][..n];
            let (da, db) = {
                let (lo_half, hi_half) = ddirs.split_at_mut(b);
                (&mut lo_half[a][base..base + n], &mut hi_half[0][base..base + n])
            };
            let c = [C[a][0] as f64, C[a][1] as f64, C[a][2] as f64];
            let wq = WEIGHTS[a];
            for x in 0..n {
                let cu = c[2].mul_add(scr.uz[x], c[1].mul_add(scr.uy[x], c[0] * scr.ux[x]));
                let t = wq * scr.rho[x];
                let feq_even = t * (4.5f64.mul_add(cu * cu, scr.base[x]));
                let feq_odd = (3.0 * t) * cu;
                let (fa, fb) = (sa[x], sb[x]);
                let d_even = le * (0.5 * (fa + fb) - feq_even);
                let d_odd = lo * (0.5 * (fa - fb) - feq_odd);
                da[x] = fa + (d_even + d_odd);
                db[x] = fb + (d_even - d_odd);
            }
        }
    }
    // Fluid-ness is not tracked per sub-span, so the region variant
    // reports traversed (covered) cells for both counters; the full-sweep
    // wrapper replaces them with the exact interval totals.
    SweepStats { cells: covered as u64, fluid_cells: covered as u64, seconds: 0.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soa;
    use trillium_field::{CellFlags, Shape};
    use trillium_lattice::MAGIC_TRT;

    /// Builds a sparse flag field: a tube of fluid along x plus scattered
    /// fluid cells, the rest unclassified (the hull is irrelevant for the
    /// pure kernel comparison as long as all pulled values are identical,
    /// which holds because all strategies share one source field).
    fn sparse_flags(shape: Shape) -> FlagField {
        let mut flags = FlagField::new(shape);
        for (x, y, z) in shape.interior().iter() {
            let in_tube = (y - 3).abs() <= 1 && (z - 3).abs() <= 1;
            let scattered = (x + 2 * y + 3 * z) % 7 == 0 && x >= 2 && x < shape.nx as i32 - 2;
            if in_tube || scattered {
                flags.set_flags(x, y, z, CellFlags::FLUID);
            }
        }
        flags
    }

    fn perturbed(shape: Shape) -> SoaPdfField<D3Q19> {
        let mut f = SoaPdfField::<D3Q19>::new(shape);
        f.fill_equilibrium(1.0, [0.01, -0.005, 0.02]);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                let v = f.get(x, y, z, q)
                    + 1e-4 * (((x * 3 + y * 5 + z * 7 + q as i32 * 11) % 13) as f64 - 6.0);
                f.set(x, y, z, q, v);
            }
        }
        f
    }

    /// All three strategies must produce identical PDFs on fluid cells, and
    /// the conditional strategy must match the dense kernel there too.
    #[test]
    fn strategies_agree_on_fluid_cells() {
        let shape = Shape::cube(8);
        let flags = sparse_flags(shape);
        let src = perturbed(shape);
        let rel = Relaxation::trt_from_tau(0.78, MAGIC_TRT);

        let mut d_cond = SoaPdfField::<D3Q19>::new(shape);
        let mut d_list = SoaPdfField::<D3Q19>::new(shape);
        let mut d_rows = SoaPdfField::<D3Q19>::new(shape);
        let mut d_dense = SoaPdfField::<D3Q19>::new(shape);

        let s_cond = stream_collide_trt_conditional(&src, &mut d_cond, &flags, rel);
        let list = FluidCellList::build(&flags);
        let s_list = stream_collide_trt_cell_list(&src, &mut d_list, &list, rel);
        let intervals = RowIntervals::build(&flags);
        let s_rows = stream_collide_trt_row_intervals(&src, &mut d_rows, &intervals, rel);
        soa::stream_collide_trt(&src, &mut d_dense, rel);

        assert_eq!(s_cond.fluid_cells, s_list.fluid_cells);
        assert_eq!(s_list.fluid_cells, s_rows.fluid_cells);
        assert!(s_rows.cells >= s_rows.fluid_cells);
        assert_eq!(s_cond.cells, shape.interior_cells() as u64);

        for (x, y, z) in shape.interior().iter() {
            if !flags.flags(x, y, z).is_fluid() {
                continue;
            }
            for q in 0..19 {
                let c = d_cond.get(x, y, z, q);
                let l = d_list.get(x, y, z, q);
                let r = d_rows.get(x, y, z, q);
                let dd = d_dense.get(x, y, z, q);
                assert!((c - l).abs() < 1e-15, "cond vs list at ({x},{y},{z}) q={q}");
                assert!((c - r).abs() < 1e-14, "cond vs rows at ({x},{y},{z}) q={q}");
                assert!((c - dd).abs() < 1e-14, "cond vs dense at ({x},{y},{z}) q={q}");
            }
        }
    }

    /// Sweeping the row intervals clipped to the interior core plus the
    /// boundary shells must be bitwise identical to one full interval
    /// sweep, and must traverse each covered cell exactly once.
    #[test]
    fn row_interval_region_partition_is_bitwise_identical() {
        let shape = Shape::cube(8);
        let flags = sparse_flags(shape);
        let src = perturbed(shape);
        let rel = Relaxation::trt_from_tau(0.78, MAGIC_TRT);
        let intervals = RowIntervals::build(&flags);

        let mut full = SoaPdfField::<D3Q19>::new(shape);
        let s_full = stream_collide_trt_row_intervals(&src, &mut full, &intervals, rel);

        let mut split = SoaPdfField::<D3Q19>::new(shape);
        let core = shape.interior_core(1);
        let mut cells =
            stream_collide_trt_row_intervals_region(&src, &mut split, &intervals, rel, &core).cells;
        for r in &shape.shell_regions(1) {
            cells +=
                stream_collide_trt_row_intervals_region(&src, &mut split, &intervals, rel, r).cells;
        }
        assert_eq!(cells, s_full.cells, "covered cells traversed exactly once");
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                assert!(
                    full.get(x, y, z, q) == split.get(x, y, z, q),
                    "row-interval split differs at ({x},{y},{z}) q={q}"
                );
            }
        }
    }

    #[test]
    fn stats_reflect_sparsity() {
        let shape = Shape::cube(8);
        let flags = sparse_flags(shape);
        let fluid = flags.count_fluid() as u64;
        let src = perturbed(shape);
        let rel = Relaxation::trt_from_tau(0.8, MAGIC_TRT);
        let mut dst = SoaPdfField::<D3Q19>::new(shape);

        let s = stream_collide_trt_conditional(&src, &mut dst, &flags, rel);
        assert_eq!(s.fluid_cells, fluid);
        assert!(s.cells > s.fluid_cells, "scenario must actually be sparse");

        let intervals = RowIntervals::build(&flags);
        let s = stream_collide_trt_row_intervals(&src, &mut dst, &intervals, rel);
        assert_eq!(s.fluid_cells, fluid);
        assert!(s.cells <= shape.interior_cells() as u64);
        assert!(s.cells >= fluid);
    }

    /// On a fully fluid block, all sparse strategies coincide with the
    /// dense kernel everywhere and traverse exactly the interior.
    #[test]
    fn dense_block_degenerates_to_dense_kernel() {
        let shape = Shape::cube(6);
        let mut flags = FlagField::new(shape);
        for (x, y, z) in shape.interior().iter() {
            flags.set_flags(x, y, z, CellFlags::FLUID);
        }
        let src = perturbed(shape);
        let rel = Relaxation::trt_from_tau(0.85, MAGIC_TRT);
        let intervals = RowIntervals::build(&flags);
        let mut d_rows = SoaPdfField::<D3Q19>::new(shape);
        let mut d_dense = SoaPdfField::<D3Q19>::new(shape);
        let s = stream_collide_trt_row_intervals(&src, &mut d_rows, &intervals, rel);
        soa::stream_collide_trt(&src, &mut d_dense, rel);
        assert_eq!(s.cells, shape.interior_cells() as u64);
        assert_eq!(s.cells, s.fluid_cells);
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                assert!((d_rows.get(x, y, z, q) - d_dense.get(x, y, z, q)).abs() < 1e-15);
            }
        }
    }
}
