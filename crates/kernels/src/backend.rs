//! Compute backends: device-shaped kernel dispatch for heterogeneous
//! nodes.
//!
//! The kernel modules of this crate implement one *tier ladder*
//! (generic → specialized → SoA → AVX2 → in-place) for a homogeneous CPU.
//! Heterogeneous machines add a second axis: the *backend* a block's
//! sweeps execute on. Following the patch-based heterogeneous GPU–CPU
//! designs (Feichtinger et al.), every block carries a [`BackendKind`]
//! and the driver dispatches its sweeps through the matching [`Backend`]
//! implementation:
//!
//! * [`PortableBackend`] — the portable split-loop SoA kernels
//!   ([`crate::soa`], the scalar paths of [`crate::inplace`]); runs on
//!   any host.
//! * [`Avx2Backend`] — the AVX2+FMA intrinsics paths ([`crate::avx`],
//!   the vectorized paths of [`crate::inplace`]); resolves to
//!   [`PortableBackend`] when the CPU lacks AVX2+FMA (same contract as
//!   [`crate::dispatch::Tier::resolve`]).
//! * [`WorkgroupBackend`] — a GPU-*style* execution shape run on the CPU
//!   for correctness: the sweep region is tiled into fixed-size
//!   work-groups (the CTA/thread-block analogue), iterated in grid
//!   order, each group swept with a group-local order by the portable
//!   region kernels. The container has no GPU, so the *performance* of a
//!   GPU-class device is modeled analytically in `trillium-machine` /
//!   `trillium-perfmodel`; this backend supplies the matching execution
//!   semantics so placement decisions can be validated end to end.
//!
//! # Bitwise equivalence across backends
//!
//! All three backends produce **bitwise identical** PDFs. Two properties
//! make this hold:
//!
//! 1. the portable kernels perform the *same fused (`mul_add`) operation
//!    sequence* as the AVX2 lanes and their scalar tails, and
//!    `f64::mul_add` is the IEEE correctly-rounded fused operation on
//!    every host;
//! 2. sweeping any partition of the interior region by region is bitwise
//!    identical to one full sweep (the slot-ownership/element-wise
//!    argument pinned by `region_partition_is_bitwise_identical`), so
//!    the workgroup tiling cannot change results either.
//!
//! This is not a luxury: the heterogeneous partitioner migrates blocks
//! *between* backends mid-run, and the resilience layer replays steps
//! after recovery. Rounding differences between backends would fork
//! trajectories at every migration and break the driver's bitwise
//! recovery guarantees. The `backend_equivalence` gate in CI pins the
//! equivalence across all four driver schedules.

use crate::stats::SweepStats;
use crate::Collision;
use trillium_field::{PdfField, Region, RowIntervals, SoaPdfField};
use trillium_lattice::{Relaxation, D3Q19};

/// Identity of the compute backend a block's sweeps execute on.
///
/// Carried by block state the way the collision operator is: it is *not*
/// part of the checkpoint wire format and is re-stamped by whoever
/// rebuilds a block (driver, migration, recovery).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Portable split-loop SoA kernels; runs anywhere.
    Portable,
    /// AVX2+FMA intrinsics; resolves to `Portable` without AVX2+FMA.
    /// The default — identical to the pre-backend dispatch behavior.
    #[default]
    Avx2,
    /// GPU-style work-group-tiled execution (CPU emulation; the GPU-class
    /// *cost* is modeled in `trillium-perfmodel`).
    Workgroup,
}

impl BackendKind {
    /// All backends, portable first.
    pub const ALL: [BackendKind; 3] =
        [BackendKind::Portable, BackendKind::Avx2, BackendKind::Workgroup];

    /// Short lowercase label, as used in bench JSON and job specs.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Portable => "portable",
            BackendKind::Avx2 => "avx2",
            BackendKind::Workgroup => "workgroup",
        }
    }

    /// Parses a job-spec / CLI label. Inverse of [`BackendKind::label`].
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "portable" => Some(BackendKind::Portable),
            "avx2" => Some(BackendKind::Avx2),
            "workgroup" => Some(BackendKind::Workgroup),
            _ => None,
        }
    }

    /// The backend that actually executes on the running host:
    /// [`BackendKind::Avx2`] degrades to [`BackendKind::Portable`] when
    /// the CPU lacks AVX2+FMA. Like `Tier::resolve`, reports must label
    /// series with the *resolved* backend so measurements are never
    /// misattributed.
    pub fn resolve(self) -> BackendKind {
        match self {
            BackendKind::Avx2 if !crate::avx::available() => BackendKind::Portable,
            b => b,
        }
    }

    /// The dispatch object for this backend.
    pub fn dispatch(self) -> &'static dyn Backend {
        match self {
            BackendKind::Portable => &PortableBackend,
            BackendKind::Avx2 => &Avx2Backend,
            BackendKind::Workgroup => &WorkgroupBackend,
        }
    }
}

/// Sweep dispatch for one compute backend.
///
/// Owns every sweep shape a block needs: dense two-field pull, sparse
/// row-interval pull, and single-buffer in-place — full-interior and
/// region-restricted — for all collision operators. `Srt`/`Trt` run the
/// TRT-form kernels (SRT via equal rates, exactly as the block layer
/// always has); the MRT family runs the shared moment-space sweeps.
pub trait Backend: Sync {
    /// The identity this dispatch object implements.
    fn kind(&self) -> BackendKind;

    /// Dense two-field pull sweep restricted to `region` (a subset of the
    /// interior). Partitioning the interior into regions is bitwise
    /// identical to one full sweep.
    fn sweep_pull_region(
        &self,
        collision: Collision,
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats;

    /// Single-buffer (AA-pattern) sweep restricted to `region`. The sweep
    /// variant follows the field's parity; the caller flips it after the
    /// last region of a step.
    fn sweep_inplace_region(
        &self,
        collision: Collision,
        f: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats;

    /// Sparse row-interval pull sweep clipped to `region`.
    fn sweep_sparse_region(
        &self,
        collision: Collision,
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        intervals: &RowIntervals,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats;

    /// Dense pull sweep over the full interior.
    fn sweep_pull(
        &self,
        collision: Collision,
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
    ) -> SweepStats {
        let region = src.shape().interior();
        self.sweep_pull_region(collision, src, dst, rel, &region)
    }

    /// In-place sweep over the full interior (parity contract as above).
    fn sweep_inplace(
        &self,
        collision: Collision,
        f: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
    ) -> SweepStats {
        let region = f.shape().interior();
        self.sweep_inplace_region(collision, f, rel, &region)
    }

    /// Sparse sweep over the full interior. Region sweeps cannot
    /// attribute fluid-ness per sub-span, so the full-sweep entry reports
    /// the exact interval totals (same convention as the sparse module).
    fn sweep_sparse(
        &self,
        collision: Collision,
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        intervals: &RowIntervals,
        rel: Relaxation,
    ) -> SweepStats {
        let region = src.shape().interior();
        let mut stats = self.sweep_sparse_region(collision, src, dst, intervals, rel, &region);
        stats.cells = intervals.covered_cells() as u64;
        stats.fluid_cells = intervals.fluid_cells as u64;
        stats
    }
}

/// Portable split-loop backend (no intrinsics anywhere on the sweep
/// path); the reference the other backends must match bitwise.
pub struct PortableBackend;

impl Backend for PortableBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Portable
    }

    fn sweep_pull_region(
        &self,
        collision: Collision,
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        if collision.is_mrt() {
            crate::mrt::stream_collide_mrt_region(src, dst, rel, collision.smagorinsky(), region)
        } else {
            crate::soa::stream_collide_trt_region(src, dst, rel, region)
        }
    }

    fn sweep_inplace_region(
        &self,
        collision: Collision,
        f: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        if collision.is_mrt() {
            crate::mrt::stream_collide_mrt_inplace_region(f, rel, collision.smagorinsky(), region)
        } else {
            crate::inplace::stream_collide_trt_portable_region(f, rel, region)
        }
    }

    fn sweep_sparse_region(
        &self,
        collision: Collision,
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        intervals: &RowIntervals,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        if collision.is_mrt() {
            crate::mrt::stream_collide_mrt_row_intervals_region(
                src,
                dst,
                intervals,
                rel,
                collision.smagorinsky(),
                region,
            )
        } else {
            crate::sparse::stream_collide_trt_row_intervals_region(src, dst, intervals, rel, region)
        }
    }
}

/// AVX2+FMA backend: the hand-vectorized paths, with built-in resolution
/// to the portable kernels on hosts without AVX2+FMA.
pub struct Avx2Backend;

impl Backend for Avx2Backend {
    fn kind(&self) -> BackendKind {
        BackendKind::Avx2
    }

    fn sweep_pull_region(
        &self,
        collision: Collision,
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        if collision.is_mrt() {
            // The MRT moment-space sweep is a single shared scalar
            // routine; there is no intrinsics variant to select.
            crate::mrt::stream_collide_mrt_region(src, dst, rel, collision.smagorinsky(), region)
        } else {
            crate::avx::stream_collide_trt_region(src, dst, rel, region)
        }
    }

    fn sweep_inplace_region(
        &self,
        collision: Collision,
        f: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        if collision.is_mrt() {
            crate::mrt::stream_collide_mrt_inplace_region(f, rel, collision.smagorinsky(), region)
        } else {
            crate::inplace::stream_collide_trt_region(f, rel, region)
        }
    }

    fn sweep_sparse_region(
        &self,
        collision: Collision,
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        intervals: &RowIntervals,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        // The row-interval kernel is shared: its spans are swept by the
        // same split-loop passes on both CPU backends.
        PortableBackend.sweep_sparse_region(collision, src, dst, intervals, rel, region)
    }
}

/// Work-group edge lengths in cells: 32 cells along x (a coalesced
/// warp-width row run) × 2 × 2 rows — 128 cells per group, the classic
/// CTA occupancy shape.
pub const WORKGROUP: [i32; 3] = [32, 2, 2];

/// GPU-style backend: the sweep region is tiled into [`WORKGROUP`]-sized
/// groups, iterated in grid order (x fastest, then y, then z — the block
/// index order of a GPU grid launch), each group swept with a
/// group-local order by the portable region kernels.
///
/// Because region partitioning is bitwise-exact for every kernel, this
/// backend is bitwise identical to the others; only its *cost* differs,
/// which is what the GPU-class model in `trillium-perfmodel` captures.
pub struct WorkgroupBackend;

impl WorkgroupBackend {
    /// Invokes `sweep` once per work-group tile of `region`, in grid
    /// order, merging the per-group stats.
    fn for_each_group(region: &Region, mut sweep: impl FnMut(&Region) -> SweepStats) -> SweepStats {
        let mut stats = SweepStats::default();
        let mut z = region.z.start;
        while z < region.z.end {
            let z_end = (z + WORKGROUP[2]).min(region.z.end);
            let mut y = region.y.start;
            while y < region.y.end {
                let y_end = (y + WORKGROUP[1]).min(region.y.end);
                let mut x = region.x.start;
                while x < region.x.end {
                    let x_end = (x + WORKGROUP[0]).min(region.x.end);
                    let group = Region { x: x..x_end, y: y..y_end, z: z..z_end };
                    stats.merge(sweep(&group));
                    x = x_end;
                }
                y = y_end;
            }
            z = z_end;
        }
        stats
    }
}

impl Backend for WorkgroupBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Workgroup
    }

    fn sweep_pull_region(
        &self,
        collision: Collision,
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        Self::for_each_group(region, |group| {
            PortableBackend.sweep_pull_region(collision, src, dst, rel, group)
        })
    }

    fn sweep_inplace_region(
        &self,
        collision: Collision,
        f: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        Self::for_each_group(region, |group| {
            PortableBackend.sweep_inplace_region(collision, f, rel, group)
        })
    }

    fn sweep_sparse_region(
        &self,
        collision: Collision,
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        intervals: &RowIntervals,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        Self::for_each_group(region, |group| {
            PortableBackend.sweep_sparse_region(collision, src, dst, intervals, rel, group)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_field::{CellFlags, FlagField, FlagOps, PdfField, Shape};
    use trillium_lattice::MAGIC_TRT;

    fn perturbed(shape: Shape) -> SoaPdfField<D3Q19> {
        let mut f = SoaPdfField::<D3Q19>::new(shape);
        f.fill_equilibrium(1.0, [0.02, -0.01, 0.015]);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                let v = f.get(x, y, z, q)
                    + 1e-4 * (((x * 7 + y * 13 + z * 29 + q as i32 * 31) % 17) as f64 - 8.0);
                f.set(x, y, z, q, v);
            }
        }
        f
    }

    fn rel_for(c: Collision) -> Relaxation {
        match c {
            Collision::Srt => Relaxation::srt_from_tau(0.8),
            _ => Relaxation::trt_from_tau(0.8, MAGIC_TRT),
        }
    }

    /// Every backend produces bitwise identical PDFs on the dense pull
    /// sweep, for every collision operator. Odd nx keeps the vector-tail
    /// and workgroup-tile boundaries misaligned.
    #[test]
    fn backends_agree_bitwise_on_dense_pull() {
        let shape = Shape::new(37, 6, 5, 1);
        let src = perturbed(shape);
        for collision in Collision::ALL {
            let rel = rel_for(collision);
            let mut reference: Option<SoaPdfField<D3Q19>> = None;
            for kind in BackendKind::ALL {
                let mut dst = SoaPdfField::<D3Q19>::new(shape);
                let stats = kind.dispatch().sweep_pull(collision, &src, &mut dst, rel);
                assert_eq!(stats.cells, shape.interior_cells() as u64, "{kind:?} cell count");
                match &reference {
                    None => reference = Some(dst),
                    Some(r) => {
                        assert_eq!(r.data(), dst.data(), "{kind:?}/{collision:?} deviates")
                    }
                }
            }
        }
    }

    /// Backend equality for the single-buffer scheme at both parities.
    #[test]
    fn backends_agree_bitwise_on_inplace() {
        let shape = Shape::new(35, 5, 4, 1);
        let src = perturbed(shape);
        for collision in Collision::ALL {
            let rel = rel_for(collision);
            for parity in [false, true] {
                let mut reference: Option<SoaPdfField<D3Q19>> = None;
                for kind in BackendKind::ALL {
                    let mut f = src.clone();
                    f.set_parity(parity);
                    kind.dispatch().sweep_inplace(collision, &mut f, rel);
                    match &reference {
                        None => reference = Some(f),
                        Some(r) => assert_eq!(
                            r.data(),
                            f.data(),
                            "{kind:?}/{collision:?} parity {parity} deviates"
                        ),
                    }
                }
            }
        }
    }

    /// Backend equality on a sparse (row-interval) block, and the
    /// full-sweep stats convention holds for every backend.
    #[test]
    fn backends_agree_bitwise_on_sparse() {
        let shape = Shape::cube(8);
        let mut flags = FlagField::new(shape);
        for (x, y, z) in shape.interior().iter() {
            if (y - 3).abs() <= 1 && (z - 3).abs() <= 1 {
                flags.set_flags(x, y, z, CellFlags::FLUID);
            }
        }
        let intervals = RowIntervals::build(&flags);
        let src = perturbed(shape);
        for collision in Collision::ALL {
            let rel = rel_for(collision);
            let mut reference: Option<SoaPdfField<D3Q19>> = None;
            for kind in BackendKind::ALL {
                let mut dst = SoaPdfField::<D3Q19>::new(shape);
                let stats =
                    kind.dispatch().sweep_sparse(collision, &src, &mut dst, &intervals, rel);
                assert_eq!(stats.fluid_cells, intervals.fluid_cells as u64, "{kind:?}");
                assert_eq!(stats.cells, intervals.covered_cells() as u64, "{kind:?}");
                match &reference {
                    None => reference = Some(dst),
                    Some(r) => {
                        assert_eq!(r.data(), dst.data(), "{kind:?}/{collision:?} deviates")
                    }
                }
            }
        }
    }

    /// The workgroup grid must traverse every cell of a region exactly
    /// once, for region offsets that don't align with the group size.
    #[test]
    fn workgroup_tiling_covers_regions_exactly_once() {
        for region in [
            Region { x: 0..33, y: 0..5, z: 0..3 },
            Region { x: 1..32, y: 3..4, z: 2..7 },
            Region { x: 0..64, y: 0..2, z: 0..2 },
            Region { x: 5..6, y: 1..2, z: 3..4 },
        ] {
            let mut cells = 0u64;
            let stats = WorkgroupBackend::for_each_group(&region, |g| {
                assert!(g.x.len() <= WORKGROUP[0] as usize);
                assert!(g.y.len() <= WORKGROUP[1] as usize);
                assert!(g.z.len() <= WORKGROUP[2] as usize);
                cells += g.num_cells() as u64;
                SweepStats::dense(g.num_cells() as u64)
            });
            assert_eq!(cells, region.num_cells() as u64);
            assert_eq!(stats.cells, region.num_cells() as u64);
        }
    }

    /// `resolve` degrades only `Avx2`, and only on hosts without
    /// AVX2+FMA; labels round-trip through `parse`.
    #[test]
    fn resolve_and_labels_round_trip() {
        for kind in BackendKind::ALL {
            let r = kind.resolve();
            if crate::avx::available() {
                assert_eq!(r, kind);
            } else {
                assert_eq!(r, if kind == BackendKind::Avx2 { BackendKind::Portable } else { kind });
            }
            assert_eq!(r.resolve(), r, "resolve must be idempotent");
            assert_eq!(BackendKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.dispatch().kind(), kind);
        }
        assert_eq!(BackendKind::parse("cuda"), None);
        assert_eq!(BackendKind::default(), BackendKind::Avx2);
    }
}
