//! Tier 3: SIMD-friendly kernels on Structure-of-Arrays fields.
//!
//! The paper (§4.1) describes the transformation enabling vectorization:
//! the SoA layout stores all PDFs of one direction contiguously, and the
//! innermost loop is *split*, performing the update "in a by-direction
//! rather than a by-cell manner", which "significantly reduces the number
//! of concurrent load/store streams". This module implements that
//! transformation portably: each x-row is processed in passes —
//!
//! 1. a *moment pass* per direction accumulating density and momentum into
//!    row scratch buffers (1 load stream + 4 scratch streams),
//! 2. a *finalize pass* turning momenta into velocities and the shared
//!    equilibrium base term,
//! 3. a *pair pass* per antiparallel direction pair applying the TRT (or
//!    SRT) collision and storing both destinations.
//!
//! All inner loops are branch-free, stride-1 loops over `f64` slices that
//! LLVM auto-vectorizes; [`crate::avx`] provides a hand-vectorized AVX2+FMA
//! variant of the same structure. Because the pull offset of a direction is
//! constant along a row, "streaming" is expressed as reading each source
//! line at a shifted base index — no gather instructions are needed.

use crate::stats::SweepStats;
use trillium_field::{PdfField, Region, Shape, SoaPdfField};
use trillium_lattice::d3q19::{dir, C, Q, W as WEIGHTS};
use trillium_lattice::{Relaxation, D3Q19};

/// Reusable per-row scratch buffers for the split-loop kernels.
pub struct RowScratch {
    /// Density per cell of the current row.
    pub rho: Vec<f64>,
    /// Velocity x (momenta during accumulation).
    pub ux: Vec<f64>,
    /// Velocity y.
    pub uy: Vec<f64>,
    /// Velocity z.
    pub uz: Vec<f64>,
    /// Shared equilibrium base term `1 − 1.5 u²`.
    pub base: Vec<f64>,
}

impl RowScratch {
    /// Allocates scratch for rows of length `nx`.
    pub fn new(nx: usize) -> Self {
        RowScratch {
            rho: vec![0.0; nx],
            ux: vec![0.0; nx],
            uy: vec![0.0; nx],
            uz: vec![0.0; nx],
            base: vec![0.0; nx],
        }
    }
}

/// Linear base index (into a direction grid) of the cell `(x, y, z)` —
/// the first cell of the (sub-)row being processed.
#[inline(always)]
fn row_base(shape: &Shape, x: i32, y: i32, z: i32) -> usize {
    shape.idx(x, y, z)
}

/// The pull-shifted source line of direction `q` for a row starting at
/// linear index `base`, `n` cells long.
#[inline(always)]
fn src_line<'a>(
    dirs: &'a [&'a [f64]],
    q: usize,
    base: usize,
    sy: isize,
    sz: isize,
    n: usize,
) -> &'a [f64] {
    let off = C[q][0] as isize + C[q][1] as isize * sy + C[q][2] as isize * sz;
    let start = (base as isize - off) as usize;
    &dirs[q][start..start + n]
}

/// Accumulates ρ and momentum over all directions into the scratch rows,
/// then converts to velocity and the equilibrium base term.
#[inline(always)]
fn moment_passes(
    sdirs: &[&[f64]],
    base: usize,
    sy: isize,
    sz: isize,
    n: usize,
    scr: &mut RowScratch,
) {
    let (rho, ux, uy, uz) =
        (&mut scr.rho[..n], &mut scr.ux[..n], &mut scr.uy[..n], &mut scr.uz[..n]);
    rho.fill(0.0);
    ux.fill(0.0);
    uy.fill(0.0);
    uz.fill(0.0);
    for q in 0..Q {
        let s = src_line(sdirs, q, base, sy, sz, n);
        let (cx, cy, cz) = (C[q][0] as f64, C[q][1] as f64, C[q][2] as f64);
        // One load stream, up to four scratch streams. The fused `mul_add`
        // and the explicit skip of zero velocity components mirror the
        // AVX2+FMA kernel operation for operation, so the portable and
        // vectorized tiers produce bitwise identical PDFs — the property
        // the backend equivalence gate pins.
        for x in 0..n {
            let v = s[x];
            rho[x] += v;
            if cx != 0.0 {
                ux[x] = cx.mul_add(v, ux[x]);
            }
            if cy != 0.0 {
                uy[x] = cy.mul_add(v, uy[x]);
            }
            if cz != 0.0 {
                uz[x] = cz.mul_add(v, uz[x]);
            }
        }
    }
    let bb = &mut scr.base[..n];
    for x in 0..n {
        let inv = 1.0 / rho[x];
        let vx = ux[x] * inv;
        let vy = uy[x] * inv;
        let vz = uz[x] * inv;
        ux[x] = vx;
        uy[x] = vy;
        uz[x] = vz;
        let u2 = vz.mul_add(vz, vy.mul_add(vy, vx * vx));
        bb[x] = (-1.5f64).mul_add(u2, 1.0);
    }
}

/// TRT pair pass over one row: applies the collision to the antiparallel
/// pair `(a, b)` and stores both destination lines.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn trt_pair_row(
    sa: &[f64],
    sb: &[f64],
    da: &mut [f64],
    db: &mut [f64],
    c: [f64; 3],
    wq: f64,
    scr: &RowScratch,
    le: f64,
    lo: f64,
    n: usize,
) {
    let (rho, ux, uy, uz, base) =
        (&scr.rho[..n], &scr.ux[..n], &scr.uy[..n], &scr.uz[..n], &scr.base[..n]);
    for x in 0..n {
        let cu = c[2].mul_add(uz[x], c[1].mul_add(uy[x], c[0] * ux[x]));
        let t = wq * rho[x];
        let feq_even = t * (4.5f64.mul_add(cu * cu, base[x]));
        let feq_odd = (3.0 * t) * cu;
        let fa = sa[x];
        let fb = sb[x];
        let d_even = le * (0.5 * (fa + fb) - feq_even);
        let d_odd = lo * (0.5 * (fa - fb) - feq_odd);
        da[x] = fa + (d_even + d_odd);
        db[x] = fb + (d_even - d_odd);
    }
}

/// One fused stream–collide sweep with the TRT operator on SoA fields,
/// split-loop / by-direction (the paper's "SIMD" tier, portable variant).
pub fn stream_collide_trt(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
) -> SweepStats {
    stream_collide_trt_region(src, dst, rel, &src.shape().interior())
}

/// [`stream_collide_trt`] restricted to `region` (a subset of the
/// interior). All passes are element-wise per cell, so sweeping a
/// partition of the interior region by region produces bitwise the same
/// PDFs as one full sweep — the property the overlapped driver relies on.
pub fn stream_collide_trt_region(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    assert_eq!(src.shape(), dst.shape());
    let shape = src.shape();
    assert!(shape.ghost >= 1);
    debug_assert_eq!(region.intersect(&shape.interior()), region.clone());
    let (le, lo) = (rel.lambda_e, rel.lambda_o);
    let (sy, sz) = (shape.stride_y() as isize, shape.stride_z() as isize);
    let n = region.x.len();
    if n == 0 {
        return SweepStats::dense(0);
    }
    let mut scr = RowScratch::new(n);

    let sdirs: Vec<&[f64]> = (0..Q).map(|q| src.dir(q)).collect();
    let mut ddirs = dst.dirs_mut();

    for z in region.z.clone() {
        for y in region.y.clone() {
            let base = row_base(&shape, region.x.start, y, z);
            moment_passes(&sdirs, base, sy, sz, n, &mut scr);

            // Rest direction: purely even relaxation.
            {
                let s0 = src_line(&sdirs, dir::C, base, sy, sz, n);
                let d0 = &mut ddirs[dir::C][base..base + n];
                let w0 = WEIGHTS[0];
                for x in 0..n {
                    let feq = w0 * (scr.rho[x] * scr.base[x]);
                    d0[x] = le.mul_add(s0[x] - feq, s0[x]);
                }
            }

            // Antiparallel pairs.
            for &(a, b) in trillium_lattice::d3q19::PAIRS.iter() {
                let sa = src_line(&sdirs, a, base, sy, sz, n);
                let sb = src_line(&sdirs, b, base, sy, sz, n);
                // Split the destination vector to borrow two lines at once.
                let (da, db) = {
                    debug_assert!(a < b);
                    let (lo_half, hi_half) = ddirs.split_at_mut(b);
                    (&mut lo_half[a][base..base + n], &mut hi_half[0][base..base + n])
                };
                let c = [C[a][0] as f64, C[a][1] as f64, C[a][2] as f64];
                trt_pair_row(sa, sb, da, db, c, WEIGHTS[a], &scr, le, lo, n);
            }
        }
    }
    SweepStats::dense(region.num_cells() as u64)
}

/// One fused stream–collide sweep with the SRT operator on SoA fields,
/// split-loop / by-direction.
pub fn stream_collide_srt(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
) -> SweepStats {
    stream_collide_srt_region(src, dst, rel, &src.shape().interior())
}

/// [`stream_collide_srt`] restricted to `region`; see
/// [`stream_collide_trt_region`] for the partition guarantee.
pub fn stream_collide_srt_region(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    assert!(rel.is_srt(), "SRT kernel requires equal relaxation rates");
    assert_eq!(src.shape(), dst.shape());
    let shape = src.shape();
    assert!(shape.ghost >= 1);
    debug_assert_eq!(region.intersect(&shape.interior()), region.clone());
    let omega = -rel.lambda_e;
    let om1 = 1.0 - omega;
    let (sy, sz) = (shape.stride_y() as isize, shape.stride_z() as isize);
    let n = region.x.len();
    if n == 0 {
        return SweepStats::dense(0);
    }
    let mut scr = RowScratch::new(n);

    let sdirs: Vec<&[f64]> = (0..Q).map(|q| src.dir(q)).collect();
    let mut ddirs = dst.dirs_mut();

    for z in region.z.clone() {
        for y in region.y.clone() {
            let base = row_base(&shape, region.x.start, y, z);
            moment_passes(&sdirs, base, sy, sz, n, &mut scr);
            for q in 0..Q {
                let s = src_line(&sdirs, q, base, sy, sz, n);
                let d = &mut ddirs[q][base..base + n];
                let (cx, cy, cz) = (C[q][0] as f64, C[q][1] as f64, C[q][2] as f64);
                let tw = omega * WEIGHTS[q];
                for x in 0..n {
                    let cu = cz.mul_add(scr.uz[x], cy.mul_add(scr.uy[x], cx * scr.ux[x]));
                    let inner = 3.0f64.mul_add(cu, 4.5f64.mul_add(cu * cu, scr.base[x]));
                    let t = tw * scr.rho[x];
                    d[x] = om1.mul_add(s[x], t * inner);
                }
            }
        }
    }
    SweepStats::dense(region.num_cells() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic;
    use trillium_field::AosPdfField;
    use trillium_lattice::MAGIC_TRT;

    fn perturbed_pair(shape: Shape) -> (SoaPdfField<D3Q19>, AosPdfField<D3Q19>) {
        let mut soa = SoaPdfField::<D3Q19>::new(shape);
        let mut aos = AosPdfField::<D3Q19>::new(shape);
        soa.fill_equilibrium(1.0, [0.01, 0.02, -0.015]);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                let v = soa.get(x, y, z, q)
                    + 1e-4 * (((x * 7 + y * 13 + z * 29 + q as i32 * 31) % 11) as f64 - 5.0);
                soa.set(x, y, z, q, v);
                aos.set(x, y, z, q, v);
            }
        }
        (soa, aos)
    }

    #[test]
    fn soa_trt_matches_generic() {
        let shape = Shape::new(6, 4, 3, 1);
        let (soa, aos) = perturbed_pair(shape);
        let rel = Relaxation::trt_from_tau(0.81, MAGIC_TRT);
        let mut d_soa = SoaPdfField::<D3Q19>::new(shape);
        let mut d_gen = AosPdfField::<D3Q19>::new(shape);
        stream_collide_trt(&soa, &mut d_soa, rel);
        generic::stream_collide_trt(&aos, &mut d_gen, rel);
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                let (a, b) = (d_soa.get(x, y, z, q), d_gen.get(x, y, z, q));
                assert!((a - b).abs() < 1e-14, "q={q} at ({x},{y},{z}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn soa_srt_matches_generic() {
        let shape = Shape::new(5, 3, 4, 1);
        let (soa, aos) = perturbed_pair(shape);
        let rel = Relaxation::srt_from_tau(0.95);
        let mut d_soa = SoaPdfField::<D3Q19>::new(shape);
        let mut d_gen = AosPdfField::<D3Q19>::new(shape);
        stream_collide_srt(&soa, &mut d_soa, rel);
        generic::stream_collide_srt(&aos, &mut d_gen, rel);
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                let (a, b) = (d_soa.get(x, y, z, q), d_gen.get(x, y, z, q));
                assert!((a - b).abs() < 1e-14, "q={q} at ({x},{y},{z}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn equilibrium_fixed_point() {
        let shape = Shape::cube(5);
        let mut src = SoaPdfField::<D3Q19>::new(shape);
        let mut dst = SoaPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.02, [0.03, 0.0, -0.01]);
        stream_collide_trt(&src, &mut dst, Relaxation::trt_from_viscosity(0.02));
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                assert!((src.get(x, y, z, q) - dst.get(x, y, z, q)).abs() < 1e-14);
            }
        }
    }
}
