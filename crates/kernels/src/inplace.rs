//! Tier 4: single-buffer in-place stream–collide (the AA pattern).
//!
//! The two-field pull scheme of [`crate::soa`]/[`crate::avx`] moves three
//! cache lines per PDF and cell update: the load from `src`, the store to
//! `dst` and the write-allocate of the `dst` line. The AA pattern (Bailey
//! et al.) updates a *single* buffer and thereby drops the write-allocate
//! stream entirely — every store hits a line the sweep just loaded — for
//! 38 instead of 57 cache lines per eight-cell work unit (see
//! `trillium_perfmodel::ecm`).
//!
//! # Storage parities
//!
//! The trick is to let the storage convention alternate between steps
//! (tracked by [`SoaPdfField::parity`]):
//!
//! * **transport sweep** (even step, parity 0 → 1): the buffer is in
//!   canonical layout. Cell `x` *pulls* `f_q = buf[x − c_q][q]` — exactly
//!   the reads of the pull kernels — collides, and stores the
//!   post-collision `f̃_q(x)` to `buf[x + c_q][q̄]`: one hop downstream in
//!   the *opposite* direction's grid. Afterwards the logical value
//!   `(x, q)` lives at storage slot `(x + c_q, q̄)`.
//! * **local sweep** (odd step, parity 1 → 0): cell `x` finds its
//!   streamed-in populations *in place* — `f_q(x) = buf[x][q̄]` — collides
//!   entirely cell-locally and stores `f̃_q(x)` back to the canonical slot
//!   `buf[x][q]`, restoring parity 0.
//!
//! Storage slot `(w, p)` is read by exactly one cell (`w + c_p`) and
//! written by exactly that same cell in either sweep, so any cell order
//! and any partition of the interior into regions produces bitwise
//! identical results — the same property the overlapped driver relies on
//! for the pull tiers.
//!
//! # Bitwise equivalence with the pull reference
//!
//! The sweeps here perform, per lattice cell, the *identical* sequence of
//! floating-point operations as the resolved pull tier: when AVX2+FMA is
//! available the vectorized paths mirror [`crate::avx`] instruction for
//! instruction (including the fused scalar tail), otherwise the portable
//! paths mirror [`crate::soa`]. Only load/store *addresses* differ, so an
//! in-place run is bitwise identical to a pull run step for step — the
//! equivalence the dispatch and driver tests assert.
//!
//! The kernels never flip [`SoaPdfField::parity`] themselves: a full
//! interior update may be split across region calls (interior core +
//! shell), so the owner of the step (e.g. `trillium-core`'s `BlockSim`)
//! flips the flag exactly once after the last region of a sweep.

use crate::soa::RowScratch;
use crate::stats::SweepStats;
use trillium_field::{PdfField, Region, Shape, SoaPdfField};
use trillium_lattice::d3q19::{C, INVERSE, PAIRS, Q, W as WEIGHTS};
use trillium_lattice::{Relaxation, D3Q19};

/// One full in-place TRT sweep over the interior. Reads the sweep variant
/// (transport vs. local) from the field's current [`SoaPdfField::parity`];
/// the caller flips the parity afterwards.
pub fn stream_collide_trt(f: &mut SoaPdfField<D3Q19>, rel: Relaxation) -> SweepStats {
    let region = f.shape().interior();
    stream_collide_trt_region(f, rel, &region)
}

/// [`stream_collide_trt`] restricted to `region` (a subset of the
/// interior). Sweeping a partition of the interior region by region is
/// bitwise identical to one full sweep (slot-ownership argument in the
/// module docs).
pub fn stream_collide_trt_region(
    f: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::avx::available() {
            // SAFETY: feature availability checked above.
            return unsafe { imp::stream_collide_trt_avx2(f, rel, region) };
        }
    }
    scalar::stream_collide_trt(f, rel, region)
}

/// One full in-place SRT sweep over the interior (same parity contract as
/// [`stream_collide_trt`]).
pub fn stream_collide_srt(f: &mut SoaPdfField<D3Q19>, rel: Relaxation) -> SweepStats {
    let region = f.shape().interior();
    stream_collide_srt_region(f, rel, &region)
}

/// [`stream_collide_srt`] restricted to `region`; see
/// [`stream_collide_trt_region`] for the partition guarantee.
pub fn stream_collide_srt_region(
    f: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    assert!(rel.is_srt(), "SRT kernel requires equal relaxation rates");
    #[cfg(target_arch = "x86_64")]
    {
        if crate::avx::available() {
            // SAFETY: feature availability checked above.
            return unsafe { imp::stream_collide_srt_avx2(f, rel, region) };
        }
    }
    scalar::stream_collide_srt(f, rel, region)
}

/// [`stream_collide_trt_region`] pinned to the portable (non-intrinsics)
/// path regardless of host SIMD support — the in-place sweep of the
/// portable and workgroup backends. Bitwise identical to the vectorized
/// path because both perform the same fused operation sequence.
pub fn stream_collide_trt_portable_region(
    f: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    scalar::stream_collide_trt(f, rel, region)
}

/// [`stream_collide_srt_region`] pinned to the portable path; see
/// [`stream_collide_trt_portable_region`].
pub fn stream_collide_srt_portable_region(
    f: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    assert!(rel.is_srt(), "SRT kernel requires equal relaxation rates");
    scalar::stream_collide_srt(f, rel, region)
}

/// Shared per-sweep setup: validates shape/region and returns the raw
/// per-direction line pointers into the single buffer. Raw pointers are
/// required because the in-place pair passes read and write the same two
/// lines (each element is loaded before its slot is overwritten).
fn line_ptrs(f: &mut SoaPdfField<D3Q19>, region: &Region) -> (Shape, Vec<*mut f64>) {
    let shape = f.shape();
    assert!(shape.ghost >= 1);
    debug_assert_eq!(region.intersect(&shape.interior()), region.clone());
    let alloc = shape.alloc_cells();
    let base = f.data_mut().as_mut_ptr();
    (shape, (0..Q).map(|q| unsafe { base.add(q * alloc) }).collect())
}

/// Pull-style row offset of direction `q` (cells, in linear index units).
#[inline(always)]
fn offq(q: usize, sy: isize, sz: isize) -> isize {
    C[q][0] as isize + C[q][1] as isize * sy + C[q][2] as isize * sz
}

/// Portable in-place sweeps mirroring [`crate::soa`]'s arithmetic.
mod scalar {
    use super::*;

    /// Moment + finalize passes of one row. At parity 0 this reads the
    /// pull-shifted lines (identical addresses and order to
    /// `soa::moment_passes`); at parity 1 it reads the unshifted inverse
    /// line of each direction. The accumulation arithmetic is the soa
    /// kernel's, expression for expression.
    ///
    /// # Safety
    /// `lines[q] + base ± offsets` must stay inside the allocation for
    /// `n` elements — guaranteed for interior rows with `ghost >= 1`.
    unsafe fn moment_passes(
        lines: &[*mut f64],
        parity: bool,
        base: usize,
        sy: isize,
        sz: isize,
        n: usize,
        scr: &mut RowScratch,
    ) {
        let (rho, ux, uy, uz) =
            (&mut scr.rho[..n], &mut scr.ux[..n], &mut scr.uy[..n], &mut scr.uz[..n]);
        rho.fill(0.0);
        ux.fill(0.0);
        uy.fill(0.0);
        uz.fill(0.0);
        for q in 0..Q {
            let s = if parity {
                lines[INVERSE[q]].add(base)
            } else {
                lines[q].offset(base as isize - offq(q, sy, sz))
            };
            let (cx, cy, cz) = (C[q][0] as f64, C[q][1] as f64, C[q][2] as f64);
            for x in 0..n {
                let v = *s.add(x);
                rho[x] += v;
                if cx != 0.0 {
                    ux[x] = cx.mul_add(v, ux[x]);
                }
                if cy != 0.0 {
                    uy[x] = cy.mul_add(v, uy[x]);
                }
                if cz != 0.0 {
                    uz[x] = cz.mul_add(v, uz[x]);
                }
            }
        }
        let bb = &mut scr.base[..n];
        for x in 0..n {
            let inv = 1.0 / rho[x];
            let vx = ux[x] * inv;
            let vy = uy[x] * inv;
            let vz = uz[x] * inv;
            ux[x] = vx;
            uy[x] = vy;
            uz[x] = vz;
            let u2 = vz.mul_add(vz, vy.mul_add(vy, vx * vx));
            bb[x] = (-1.5f64).mul_add(u2, 1.0);
        }
    }

    /// Load/store addresses of the antiparallel pair `(a, b)` for one row.
    /// Returns `(src_a, src_b, dst_a, dst_b)` where `dst_a` receives the
    /// post-collision value of logical direction `a`.
    ///
    /// Parity 0 (transport): loads are pull-identical; `f̃_a(x)` goes to
    /// `(x + c_a, b)` — the slot `f_b` was just loaded from — and vice
    /// versa. Parity 1 (local): loads are the swapped unshifted lines and
    /// stores restore the canonical slots.
    #[inline(always)]
    unsafe fn pair_lines(
        lines: &[*mut f64],
        parity: bool,
        a: usize,
        b: usize,
        base: usize,
        oa: isize,
    ) -> (*const f64, *const f64, *mut f64, *mut f64) {
        if parity {
            let pa = lines[a].add(base);
            let pb = lines[b].add(base);
            (pb as *const f64, pa as *const f64, pa, pb)
        } else {
            let pa = lines[a].offset(base as isize - oa);
            let pb = lines[b].offset(base as isize + oa);
            (pa as *const f64, pb as *const f64, pb, pa)
        }
    }

    pub fn stream_collide_trt(
        f: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        let parity = f.parity();
        let (shape, lines) = line_ptrs(f, region);
        let (le, lo) = (rel.lambda_e, rel.lambda_o);
        let (sy, sz) = (shape.stride_y() as isize, shape.stride_z() as isize);
        let n = region.x.len();
        if n == 0 {
            return SweepStats::dense(0);
        }
        let mut scr = RowScratch::new(n);

        for z in region.z.clone() {
            for y in region.y.clone() {
                let base = shape.idx(region.x.start, y, z);
                // SAFETY: interior rows with ghost >= 1; slot ownership
                // (module docs) makes the in-place stores race-free.
                unsafe {
                    moment_passes(&lines, parity, base, sy, sz, n, &mut scr);

                    // Rest direction: the canonical slot at either parity.
                    {
                        let p0 = lines[0].add(base);
                        let w0 = WEIGHTS[0];
                        for x in 0..n {
                            let s0 = *p0.add(x);
                            let feq = w0 * (scr.rho[x] * scr.base[x]);
                            *p0.add(x) = le.mul_add(s0 - feq, s0);
                        }
                    }

                    for &(a, b) in PAIRS.iter() {
                        let oa = offq(a, sy, sz);
                        let (sa, sb, da, db) = pair_lines(&lines, parity, a, b, base, oa);
                        let c = [C[a][0] as f64, C[a][1] as f64, C[a][2] as f64];
                        let wq = WEIGHTS[a];
                        for x in 0..n {
                            let cu =
                                c[2].mul_add(scr.uz[x], c[1].mul_add(scr.uy[x], c[0] * scr.ux[x]));
                            let t = wq * scr.rho[x];
                            let feq_even = t * (4.5f64.mul_add(cu * cu, scr.base[x]));
                            let feq_odd = (3.0 * t) * cu;
                            let fa = *sa.add(x);
                            let fb = *sb.add(x);
                            let d_even = le * (0.5 * (fa + fb) - feq_even);
                            let d_odd = lo * (0.5 * (fa - fb) - feq_odd);
                            *da.add(x) = fa + (d_even + d_odd);
                            *db.add(x) = fb + (d_even - d_odd);
                        }
                    }
                }
            }
        }
        SweepStats::dense(region.num_cells() as u64)
    }

    pub fn stream_collide_srt(
        f: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        let parity = f.parity();
        let (shape, lines) = line_ptrs(f, region);
        let omega = -rel.lambda_e;
        let om1 = 1.0 - omega;
        let (sy, sz) = (shape.stride_y() as isize, shape.stride_z() as isize);
        let n = region.x.len();
        if n == 0 {
            return SweepStats::dense(0);
        }
        let mut scr = RowScratch::new(n);

        for z in region.z.clone() {
            for y in region.y.clone() {
                let base = shape.idx(region.x.start, y, z);
                // SAFETY: see the TRT sweep.
                unsafe {
                    moment_passes(&lines, parity, base, sy, sz, n, &mut scr);

                    {
                        let p0 = lines[0].add(base);
                        // cu = 0 for the rest direction, so `inner` is
                        // just the equilibrium base term.
                        let tw = omega * WEIGHTS[0];
                        for x in 0..n {
                            let inner = scr.base[x];
                            let t = tw * scr.rho[x];
                            *p0.add(x) = om1.mul_add(*p0.add(x), t * inner);
                        }
                    }

                    // Unlike the pull kernel, opposite directions must be
                    // processed jointly: direction `a`'s store lands in the
                    // slot direction `b` reads. Each element still sees the
                    // by-direction pull arithmetic verbatim.
                    for &(a, b) in PAIRS.iter() {
                        let oa = offq(a, sy, sz);
                        let (sa, sb, da, db) = pair_lines(&lines, parity, a, b, base, oa);
                        let ca = [C[a][0] as f64, C[a][1] as f64, C[a][2] as f64];
                        let cb = [C[b][0] as f64, C[b][1] as f64, C[b][2] as f64];
                        let twa = omega * WEIGHTS[a];
                        let twb = omega * WEIGHTS[b];
                        for x in 0..n {
                            let fa = *sa.add(x);
                            let fb = *sb.add(x);
                            let cua = ca[2]
                                .mul_add(scr.uz[x], ca[1].mul_add(scr.uy[x], ca[0] * scr.ux[x]));
                            let inner_a =
                                3.0f64.mul_add(cua, 4.5f64.mul_add(cua * cua, scr.base[x]));
                            let ta = twa * scr.rho[x];
                            let cub = cb[2]
                                .mul_add(scr.uz[x], cb[1].mul_add(scr.uy[x], cb[0] * scr.ux[x]));
                            let inner_b =
                                3.0f64.mul_add(cub, 4.5f64.mul_add(cub * cub, scr.base[x]));
                            let tb = twb * scr.rho[x];
                            *da.add(x) = om1.mul_add(fa, ta * inner_a);
                            *db.add(x) = om1.mul_add(fb, tb * inner_b);
                        }
                    }
                }
            }
        }
        SweepStats::dense(region.num_cells() as u64)
    }
}

/// AVX2+FMA in-place sweeps mirroring [`crate::avx`]'s instruction
/// sequence (vector body and fused scalar tail) with in-place addressing.
#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;
    use std::arch::x86_64::*;

    const LANES: usize = 4;

    /// Vectorized moment + finalize passes; same address scheme as the
    /// scalar module, same instruction sequence as `avx::imp`.
    ///
    /// # Safety
    /// Caller guarantees AVX2+FMA and in-bounds row addressing.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn moment_passes(
        lines: &[*mut f64],
        parity: bool,
        base: usize,
        sy: isize,
        sz: isize,
        n: usize,
        scr: &mut RowScratch,
    ) {
        let (rho, ux, uy, uz) =
            (&mut scr.rho[..n], &mut scr.ux[..n], &mut scr.uy[..n], &mut scr.uz[..n]);
        rho.fill(0.0);
        ux.fill(0.0);
        uy.fill(0.0);
        uz.fill(0.0);
        for q in 0..Q {
            let s = if parity {
                lines[INVERSE[q]].add(base)
            } else {
                lines[q].offset(base as isize - offq(q, sy, sz))
            };
            let (cx, cy, cz) = (C[q][0] as f64, C[q][1] as f64, C[q][2] as f64);
            let vcx = _mm256_set1_pd(cx);
            let vcy = _mm256_set1_pd(cy);
            let vcz = _mm256_set1_pd(cz);
            let mut x = 0;
            while x + LANES <= n {
                let v = _mm256_loadu_pd(s.add(x));
                let r = _mm256_add_pd(_mm256_loadu_pd(rho.as_ptr().add(x)), v);
                _mm256_storeu_pd(rho.as_mut_ptr().add(x), r);
                if cx != 0.0 {
                    let a = _mm256_fmadd_pd(vcx, v, _mm256_loadu_pd(ux.as_ptr().add(x)));
                    _mm256_storeu_pd(ux.as_mut_ptr().add(x), a);
                }
                if cy != 0.0 {
                    let a = _mm256_fmadd_pd(vcy, v, _mm256_loadu_pd(uy.as_ptr().add(x)));
                    _mm256_storeu_pd(uy.as_mut_ptr().add(x), a);
                }
                if cz != 0.0 {
                    let a = _mm256_fmadd_pd(vcz, v, _mm256_loadu_pd(uz.as_ptr().add(x)));
                    _mm256_storeu_pd(uz.as_mut_ptr().add(x), a);
                }
                x += LANES;
            }
            while x < n {
                let v = *s.add(x);
                rho[x] += v;
                if cx != 0.0 {
                    ux[x] = cx.mul_add(v, ux[x]);
                }
                if cy != 0.0 {
                    uy[x] = cy.mul_add(v, uy[x]);
                }
                if cz != 0.0 {
                    uz[x] = cz.mul_add(v, uz[x]);
                }
                x += 1;
            }
        }
        {
            let ebase = &mut scr.base[..n];
            let one = _mm256_set1_pd(1.0);
            let c15 = _mm256_set1_pd(1.5);
            let mut x = 0;
            while x + LANES <= n {
                let r = _mm256_loadu_pd(rho.as_ptr().add(x));
                let inv = _mm256_div_pd(one, r);
                let vx = _mm256_mul_pd(_mm256_loadu_pd(ux.as_ptr().add(x)), inv);
                let vy = _mm256_mul_pd(_mm256_loadu_pd(uy.as_ptr().add(x)), inv);
                let vz = _mm256_mul_pd(_mm256_loadu_pd(uz.as_ptr().add(x)), inv);
                _mm256_storeu_pd(ux.as_mut_ptr().add(x), vx);
                _mm256_storeu_pd(uy.as_mut_ptr().add(x), vy);
                _mm256_storeu_pd(uz.as_mut_ptr().add(x), vz);
                let u2 = _mm256_fmadd_pd(vz, vz, _mm256_fmadd_pd(vy, vy, _mm256_mul_pd(vx, vx)));
                let b = _mm256_fnmadd_pd(c15, u2, one);
                _mm256_storeu_pd(ebase.as_mut_ptr().add(x), b);
                x += LANES;
            }
            while x < n {
                let inv = 1.0 / rho[x];
                let (vx, vy, vz) = (ux[x] * inv, uy[x] * inv, uz[x] * inv);
                ux[x] = vx;
                uy[x] = vy;
                uz[x] = vz;
                let u2 = vz.mul_add(vz, vy.mul_add(vy, vx * vx));
                ebase[x] = (-1.5f64).mul_add(u2, 1.0);
                x += 1;
            }
        }
    }

    /// Same addressing contract as `scalar::pair_lines`.
    #[inline(always)]
    unsafe fn pair_lines(
        lines: &[*mut f64],
        parity: bool,
        a: usize,
        b: usize,
        base: usize,
        oa: isize,
    ) -> (*const f64, *const f64, *mut f64, *mut f64) {
        if parity {
            let pa = lines[a].add(base);
            let pb = lines[b].add(base);
            (pb as *const f64, pa as *const f64, pa, pb)
        } else {
            let pa = lines[a].offset(base as isize - oa);
            let pb = lines[b].offset(base as isize + oa);
            (pa as *const f64, pb as *const f64, pb, pa)
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stream_collide_trt_avx2(
        f: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        let parity = f.parity();
        let (shape, lines) = line_ptrs(f, region);
        let (le, lo) = (rel.lambda_e, rel.lambda_o);
        let (sy, sz) = (shape.stride_y() as isize, shape.stride_z() as isize);
        let n = region.x.len();
        if n == 0 {
            return SweepStats::dense(0);
        }
        let mut scr = RowScratch::new(n);

        for z in region.z.clone() {
            for y in region.y.clone() {
                let base = shape.idx(region.x.start, y, z);
                moment_passes(&lines, parity, base, sy, sz, n, &mut scr);
                let (rho, ux, uy, uz, ebase) =
                    (&scr.rho[..n], &scr.ux[..n], &scr.uy[..n], &scr.uz[..n], &scr.base[..n]);

                // ---- rest direction ----------------------------------
                {
                    let p0 = lines[0].add(base);
                    let w0 = _mm256_set1_pd(WEIGHTS[0]);
                    let vle = _mm256_set1_pd(le);
                    let mut x = 0;
                    while x + LANES <= n {
                        let f0 = _mm256_loadu_pd(p0.add(x));
                        let feq = _mm256_mul_pd(
                            w0,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(rho.as_ptr().add(x)),
                                _mm256_loadu_pd(ebase.as_ptr().add(x)),
                            ),
                        );
                        let out = _mm256_fmadd_pd(vle, _mm256_sub_pd(f0, feq), f0);
                        _mm256_storeu_pd(p0.add(x), out);
                        x += LANES;
                    }
                    while x < n {
                        let s0 = *p0.add(x);
                        let feq = WEIGHTS[0] * (rho[x] * ebase[x]);
                        *p0.add(x) = le.mul_add(s0 - feq, s0);
                        x += 1;
                    }
                }

                // ---- pair passes -------------------------------------
                for &(a, b) in PAIRS.iter() {
                    let oa = offq(a, sy, sz);
                    let (sa, sb, da, db) = pair_lines(&lines, parity, a, b, base, oa);
                    let c = [C[a][0] as f64, C[a][1] as f64, C[a][2] as f64];
                    let wq = WEIGHTS[a];

                    let vcx = _mm256_set1_pd(c[0]);
                    let vcy = _mm256_set1_pd(c[1]);
                    let vcz = _mm256_set1_pd(c[2]);
                    let vwq = _mm256_set1_pd(wq);
                    let vle = _mm256_set1_pd(le);
                    let vlo = _mm256_set1_pd(lo);
                    let vhalf = _mm256_set1_pd(0.5);
                    let v45 = _mm256_set1_pd(4.5);
                    let v3 = _mm256_set1_pd(3.0);

                    let mut x = 0;
                    while x + LANES <= n {
                        let vux = _mm256_loadu_pd(ux.as_ptr().add(x));
                        let vuy = _mm256_loadu_pd(uy.as_ptr().add(x));
                        let vuz = _mm256_loadu_pd(uz.as_ptr().add(x));
                        let cu = _mm256_fmadd_pd(
                            vcz,
                            vuz,
                            _mm256_fmadd_pd(vcy, vuy, _mm256_mul_pd(vcx, vux)),
                        );
                        let t = _mm256_mul_pd(vwq, _mm256_loadu_pd(rho.as_ptr().add(x)));
                        let cu2 = _mm256_mul_pd(cu, cu);
                        let inner =
                            _mm256_fmadd_pd(v45, cu2, _mm256_loadu_pd(ebase.as_ptr().add(x)));
                        let feq_even = _mm256_mul_pd(t, inner);
                        let feq_odd = _mm256_mul_pd(_mm256_mul_pd(v3, t), cu);
                        let fa = _mm256_loadu_pd(sa.add(x));
                        let fb = _mm256_loadu_pd(sb.add(x));
                        let fp = _mm256_mul_pd(vhalf, _mm256_add_pd(fa, fb));
                        let fm = _mm256_mul_pd(vhalf, _mm256_sub_pd(fa, fb));
                        let d_even = _mm256_mul_pd(vle, _mm256_sub_pd(fp, feq_even));
                        let d_odd = _mm256_mul_pd(vlo, _mm256_sub_pd(fm, feq_odd));
                        let oa2 = _mm256_add_pd(fa, _mm256_add_pd(d_even, d_odd));
                        let ob2 = _mm256_add_pd(fb, _mm256_sub_pd(d_even, d_odd));
                        _mm256_storeu_pd(da.add(x), oa2);
                        _mm256_storeu_pd(db.add(x), ob2);
                        x += LANES;
                    }
                    while x < n {
                        let cu = c[2].mul_add(uz[x], c[1].mul_add(uy[x], c[0] * ux[x]));
                        let t = wq * rho[x];
                        let feq_even = t * (4.5f64.mul_add(cu * cu, ebase[x]));
                        let feq_odd = (3.0 * t) * cu;
                        let (fa, fb) = (*sa.add(x), *sb.add(x));
                        let d_even = le * (0.5 * (fa + fb) - feq_even);
                        let d_odd = lo * (0.5 * (fa - fb) - feq_odd);
                        *da.add(x) = fa + (d_even + d_odd);
                        *db.add(x) = fb + (d_even - d_odd);
                        x += 1;
                    }
                }
            }
        }
        SweepStats::dense(region.num_cells() as u64)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stream_collide_srt_avx2(
        f: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        let parity = f.parity();
        let (shape, lines) = line_ptrs(f, region);
        let omega = -rel.lambda_e;
        let om1 = 1.0 - omega;
        let (sy, sz) = (shape.stride_y() as isize, shape.stride_z() as isize);
        let n = region.x.len();
        if n == 0 {
            return SweepStats::dense(0);
        }
        let mut scr = RowScratch::new(n);

        for z in region.z.clone() {
            for y in region.y.clone() {
                let base = shape.idx(region.x.start, y, z);
                moment_passes(&lines, parity, base, sy, sz, n, &mut scr);
                let (rho, ux, uy, uz, ebase) =
                    (&scr.rho[..n], &scr.ux[..n], &scr.uy[..n], &scr.uz[..n], &scr.base[..n]);

                // ---- rest direction (cu = 0 folds away) ---------------
                {
                    let p0 = lines[0].add(base);
                    let tw = omega * WEIGHTS[0];
                    let vtw = _mm256_set1_pd(tw);
                    let vom1 = _mm256_set1_pd(om1);
                    let mut x = 0;
                    while x + LANES <= n {
                        let inner = _mm256_loadu_pd(ebase.as_ptr().add(x));
                        let t = _mm256_mul_pd(vtw, _mm256_loadu_pd(rho.as_ptr().add(x)));
                        let fv = _mm256_loadu_pd(p0.add(x));
                        let out = _mm256_fmadd_pd(vom1, fv, _mm256_mul_pd(t, inner));
                        _mm256_storeu_pd(p0.add(x), out);
                        x += LANES;
                    }
                    while x < n {
                        let inner = ebase[x];
                        let t = tw * rho[x];
                        *p0.add(x) = om1.mul_add(*p0.add(x), t * inner);
                        x += 1;
                    }
                }

                // ---- joint pair passes (see scalar module) ------------
                for &(a, b) in PAIRS.iter() {
                    let oa = offq(a, sy, sz);
                    let (sa, sb, da, db) = pair_lines(&lines, parity, a, b, base, oa);
                    let ca = [C[a][0] as f64, C[a][1] as f64, C[a][2] as f64];
                    let cb = [C[b][0] as f64, C[b][1] as f64, C[b][2] as f64];
                    let twa = omega * WEIGHTS[a];
                    let twb = omega * WEIGHTS[b];
                    let vcax = _mm256_set1_pd(ca[0]);
                    let vcay = _mm256_set1_pd(ca[1]);
                    let vcaz = _mm256_set1_pd(ca[2]);
                    let vcbx = _mm256_set1_pd(cb[0]);
                    let vcby = _mm256_set1_pd(cb[1]);
                    let vcbz = _mm256_set1_pd(cb[2]);
                    let vtwa = _mm256_set1_pd(twa);
                    let vtwb = _mm256_set1_pd(twb);
                    let vom1 = _mm256_set1_pd(om1);
                    let v3 = _mm256_set1_pd(3.0);
                    let v45 = _mm256_set1_pd(4.5);
                    let mut x = 0;
                    while x + LANES <= n {
                        let vux = _mm256_loadu_pd(ux.as_ptr().add(x));
                        let vuy = _mm256_loadu_pd(uy.as_ptr().add(x));
                        let vuz = _mm256_loadu_pd(uz.as_ptr().add(x));
                        let vrho = _mm256_loadu_pd(rho.as_ptr().add(x));
                        let veb = _mm256_loadu_pd(ebase.as_ptr().add(x));
                        let fa = _mm256_loadu_pd(sa.add(x));
                        let fb = _mm256_loadu_pd(sb.add(x));

                        let cua = _mm256_fmadd_pd(
                            vcaz,
                            vuz,
                            _mm256_fmadd_pd(vcay, vuy, _mm256_mul_pd(vcax, vux)),
                        );
                        let inner_a = _mm256_fmadd_pd(
                            v3,
                            cua,
                            _mm256_fmadd_pd(v45, _mm256_mul_pd(cua, cua), veb),
                        );
                        let ta = _mm256_mul_pd(vtwa, vrho);
                        let out_a = _mm256_fmadd_pd(vom1, fa, _mm256_mul_pd(ta, inner_a));

                        let cub = _mm256_fmadd_pd(
                            vcbz,
                            vuz,
                            _mm256_fmadd_pd(vcby, vuy, _mm256_mul_pd(vcbx, vux)),
                        );
                        let inner_b = _mm256_fmadd_pd(
                            v3,
                            cub,
                            _mm256_fmadd_pd(v45, _mm256_mul_pd(cub, cub), veb),
                        );
                        let tb = _mm256_mul_pd(vtwb, vrho);
                        let out_b = _mm256_fmadd_pd(vom1, fb, _mm256_mul_pd(tb, inner_b));

                        _mm256_storeu_pd(da.add(x), out_a);
                        _mm256_storeu_pd(db.add(x), out_b);
                        x += LANES;
                    }
                    while x < n {
                        let fa = *sa.add(x);
                        let fb = *sb.add(x);
                        let cua = ca[2].mul_add(uz[x], ca[1].mul_add(uy[x], ca[0] * ux[x]));
                        let inner_a = 3.0f64.mul_add(cua, 4.5f64.mul_add(cua * cua, ebase[x]));
                        let ta = twa * rho[x];
                        let out_a = om1.mul_add(fa, ta * inner_a);
                        let cub = cb[2].mul_add(uz[x], cb[1].mul_add(uy[x], cb[0] * ux[x]));
                        let inner_b = 3.0f64.mul_add(cub, 4.5f64.mul_add(cub * cub, ebase[x]));
                        let tb = twb * rho[x];
                        let out_b = om1.mul_add(fb, tb * inner_b);
                        *da.add(x) = out_a;
                        *db.add(x) = out_b;
                        x += 1;
                    }
                }
            }
        }
        SweepStats::dense(region.num_cells() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{apply_boundaries, BoundaryParams};
    use crate::{avx, Collision};
    use trillium_field::{CellFlags, FlagField, FlagOps, PdfField};
    use trillium_lattice::MAGIC_TRT;

    fn perturbed(shape: Shape) -> SoaPdfField<D3Q19> {
        let mut f = SoaPdfField::<D3Q19>::new(shape);
        f.fill_equilibrium(1.0, [0.02, -0.01, 0.015]);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                let v = f.get(x, y, z, q)
                    + 1e-4 * (((x * 7 + y * 13 + z * 29 + q as i32 * 31) % 17) as f64 - 8.0);
                f.set(x, y, z, q, v);
            }
        }
        f
    }

    /// A fully enclosed no-slip box (ghost layer = wall).
    fn boxed_flags(shape: Shape) -> FlagField {
        let mut flags = FlagField::new(shape);
        for (x, y, z) in shape.interior().iter() {
            flags.set_flags(x, y, z, CellFlags::FLUID);
        }
        for (x, y, z) in shape.with_ghosts().iter() {
            if !shape.is_interior(x, y, z) {
                flags.set_flags(x, y, z, CellFlags::NOSLIP);
            }
        }
        flags
    }

    /// The transport sweep reads exactly what the pull kernel reads, so a
    /// single in-place step must be bitwise identical to one pull step —
    /// observed through the parity-mapped accessors.
    #[test]
    fn transport_sweep_matches_one_pull_step_bitwise() {
        let shape = Shape::new(13, 5, 4, 1); // odd nx exercises the tail
        let src = perturbed(shape);
        let rel = Relaxation::trt_from_tau(0.81, MAGIC_TRT);

        let mut pull_dst = SoaPdfField::<D3Q19>::new(shape);
        avx::stream_collide_trt(&src, &mut pull_dst, rel);

        let mut aa = src.clone();
        stream_collide_trt(&mut aa, rel);
        aa.set_parity(true);

        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                assert_eq!(
                    aa.get(x, y, z, q).to_bits(),
                    pull_dst.get(x, y, z, q).to_bits(),
                    "q={q} at ({x},{y},{z})"
                );
            }
        }
    }

    /// Multi-step equivalence through both parities, with the boundary
    /// sweep running through the parity-mapped accessors each step.
    fn multi_step_matches_pull(collision: Collision) {
        let shape = Shape::new(9, 6, 5, 1);
        let flags = boxed_flags(shape);
        let params = BoundaryParams { wall_velocity: [0.04, 0.0, -0.01], ..Default::default() };
        let rel = match collision {
            Collision::Srt => Relaxation::srt_from_tau(0.9),
            _ => Relaxation::trt_from_tau(0.85, MAGIC_TRT),
        };

        let mut pull_src = perturbed(shape);
        let mut pull_dst = SoaPdfField::<D3Q19>::new(shape);
        let mut aa = pull_src.clone();

        for step in 0..6u64 {
            apply_boundaries::<D3Q19, _>(&mut pull_src, &flags, &params);
            match collision {
                Collision::Trt => avx::stream_collide_trt(&pull_src, &mut pull_dst, rel),
                Collision::Srt => avx::stream_collide_srt(&pull_src, &mut pull_dst, rel),
                c => panic!("{c:?} not exercised by this test"),
            };
            pull_src.swap(&mut pull_dst);

            apply_boundaries::<D3Q19, _>(&mut aa, &flags, &params);
            match collision {
                Collision::Trt => stream_collide_trt(&mut aa, rel),
                Collision::Srt => stream_collide_srt(&mut aa, rel),
                c => panic!("{c:?} not exercised by this test"),
            };
            aa.set_parity(!aa.parity());

            for (x, y, z) in shape.interior().iter() {
                for q in 0..19 {
                    assert_eq!(
                        aa.get(x, y, z, q).to_bits(),
                        pull_src.get(x, y, z, q).to_bits(),
                        "step {step} q={q} at ({x},{y},{z})"
                    );
                }
            }
        }
    }

    #[test]
    fn inplace_trt_matches_pull_over_both_parities() {
        multi_step_matches_pull(Collision::Trt);
    }

    #[test]
    fn inplace_srt_matches_pull_over_both_parities() {
        multi_step_matches_pull(Collision::Srt);
    }

    /// Region-partitioned sweeps (interior core + shell slabs, the overlap
    /// schedule's split) are bitwise identical to one full sweep — at both
    /// parities.
    #[test]
    fn region_partition_is_bitwise_identical() {
        let shape = Shape::new(11, 6, 5, 1);
        let rel = Relaxation::trt_from_tau(0.77, MAGIC_TRT);
        let mut whole = perturbed(shape);
        let mut split = whole.clone();

        for parity in [false, true] {
            whole.set_parity(parity);
            split.set_parity(parity);
            stream_collide_trt(&mut whole, rel);
            let mut cells =
                stream_collide_trt_region(&mut split, rel, &shape.interior_core(1)).cells;
            for r in shape.shell_regions(1) {
                cells += stream_collide_trt_region(&mut split, rel, &r).cells;
            }
            assert_eq!(cells, shape.interior_cells() as u64);
            assert_eq!(whole.data(), split.data(), "parity {parity}");
        }
    }
}
