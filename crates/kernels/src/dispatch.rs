//! Runtime kernel selection: maps (tier, collision operator) to the
//! corresponding sweep function — the programmatic face of the Fig 3
//! comparison, used by benches and by applications that want to pin a
//! tier explicitly.

use crate::stats::SweepStats;
use crate::Collision;
use trillium_field::{AosPdfField, Region, SoaPdfField};
use trillium_lattice::{Relaxation, D3Q19};

/// The three optimization stages of paper §4.1 plus the explicit
/// intrinsics variant.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Textbook kernel over the lattice-model abstraction (AoS).
    Generic,
    /// Fused, D3Q19-specialized kernel (AoS).
    Specialized,
    /// Portable split-loop SoA kernel.
    Soa,
    /// AVX2+FMA intrinsics (falls back to `Soa` when unavailable).
    Avx,
    /// Single-buffer AA-pattern update (SoA; halves the memory traffic).
    /// Vectorized when AVX2+FMA is available, portable otherwise.
    InPlace,
}

impl Tier {
    /// All tiers in ascending optimization order.
    pub const ALL: [Tier; 5] =
        [Tier::Generic, Tier::Specialized, Tier::Soa, Tier::Avx, Tier::InPlace];

    /// Whether this tier operates on AoS fields (`true`) or SoA (`false`).
    pub fn uses_aos(self) -> bool {
        matches!(self, Tier::Generic | Tier::Specialized)
    }

    /// Whether this tier updates a single buffer in place (AA pattern)
    /// rather than streaming between two fields.
    pub fn is_inplace(self) -> bool {
        matches!(self, Tier::InPlace)
    }

    /// The tier that actually executes when this one is requested on the
    /// running host. [`Tier::Avx`] and [`Tier::InPlace`] silently use
    /// portable code when the CPU lacks AVX2+FMA; benchmarks must label
    /// their series with the *resolved* tier so measurements are never
    /// misattributed.
    pub fn resolve(self) -> Tier {
        match self {
            Tier::Avx if !crate::avx::available() => Tier::Soa,
            t => t,
        }
    }

    /// Short lowercase label of the tier, as used in bench JSON series.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Generic => "generic",
            Tier::Specialized => "d3q19",
            Tier::Soa => "soa",
            Tier::Avx => "avx",
            Tier::InPlace => "inplace",
        }
    }
}

/// Runs one sweep of the chosen AoS tier. Panics if the tier is SoA-based.
pub fn sweep_aos(
    tier: Tier,
    collision: Collision,
    src: &AosPdfField<D3Q19>,
    dst: &mut AosPdfField<D3Q19>,
    rel: Relaxation,
) -> SweepStats {
    match (tier, collision) {
        (Tier::Generic, Collision::Srt) => crate::generic::stream_collide_srt(src, dst, rel),
        (Tier::Generic, Collision::Trt) => crate::generic::stream_collide_trt(src, dst, rel),
        (Tier::Specialized, Collision::Srt) => crate::d3q19::stream_collide_srt(src, dst, rel),
        (Tier::Specialized, Collision::Trt) => crate::d3q19::stream_collide_trt(src, dst, rel),
        // The MRT family has a single scalar per-cell routine at every
        // tier; only the gather/scatter addressing is layout-specific.
        (Tier::Generic | Tier::Specialized, c) if c.is_mrt() => {
            crate::mrt::stream_collide_mrt(src, dst, rel, c.smagorinsky())
        }
        _ => panic!("{tier:?} is an SoA tier; use sweep_soa"),
    }
}

/// Runs one sweep of the chosen SoA tier. Panics if the tier is AoS-based.
pub fn sweep_soa(
    tier: Tier,
    collision: Collision,
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
) -> SweepStats {
    match (tier, collision) {
        (Tier::Soa, Collision::Srt) => crate::soa::stream_collide_srt(src, dst, rel),
        (Tier::Soa, Collision::Trt) => crate::soa::stream_collide_trt(src, dst, rel),
        (Tier::Avx, Collision::Srt) => crate::avx::stream_collide_srt(src, dst, rel),
        (Tier::Avx, Collision::Trt) => crate::avx::stream_collide_trt(src, dst, rel),
        (Tier::InPlace, _) => panic!("InPlace is a single-buffer tier; use sweep_inplace"),
        (Tier::Soa | Tier::Avx, c) if c.is_mrt() => {
            crate::mrt::stream_collide_mrt(src, dst, rel, c.smagorinsky())
        }
        _ => panic!("{tier:?} is an AoS tier; use sweep_aos"),
    }
}

/// Runs one single-buffer (AA-pattern) sweep of [`Tier::InPlace`]. The
/// sweep variant (transport vs. local) follows the field's current
/// [`SoaPdfField::parity`]; the caller flips the parity afterwards.
pub fn sweep_inplace(
    collision: Collision,
    f: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
) -> SweepStats {
    match collision {
        Collision::Srt => crate::inplace::stream_collide_srt(f, rel),
        Collision::Trt => crate::inplace::stream_collide_trt(f, rel),
        c => crate::mrt::stream_collide_mrt_inplace(f, rel, c.smagorinsky()),
    }
}

/// Region-restricted variant of [`sweep_inplace`]; same partition
/// guarantee as the two-field tiers.
pub fn sweep_inplace_region(
    collision: Collision,
    f: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    match collision {
        Collision::Srt => crate::inplace::stream_collide_srt_region(f, rel, region),
        Collision::Trt => crate::inplace::stream_collide_trt_region(f, rel, region),
        c => crate::mrt::stream_collide_mrt_inplace_region(f, rel, c.smagorinsky(), region),
    }
}

/// Region-restricted variant of [`sweep_aos`]: sweeps only the cells of
/// `region` (a subset of the interior). Sweeping a partition of the
/// interior region by region is bitwise identical to one full sweep, for
/// every tier — the contract behind the overlapped driver's interior/shell
/// split, pinned by `region_partition_is_bitwise_identical`.
pub fn sweep_aos_region(
    tier: Tier,
    collision: Collision,
    src: &AosPdfField<D3Q19>,
    dst: &mut AosPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    match (tier, collision) {
        (Tier::Generic, Collision::Srt) => {
            crate::generic::stream_collide_srt_region(src, dst, rel, region)
        }
        (Tier::Generic, Collision::Trt) => {
            crate::generic::stream_collide_trt_region(src, dst, rel, region)
        }
        (Tier::Specialized, Collision::Srt) => {
            crate::d3q19::stream_collide_srt_region(src, dst, rel, region)
        }
        (Tier::Specialized, Collision::Trt) => {
            crate::d3q19::stream_collide_trt_region(src, dst, rel, region)
        }
        (Tier::Generic | Tier::Specialized, c) if c.is_mrt() => {
            crate::mrt::stream_collide_mrt_region(src, dst, rel, c.smagorinsky(), region)
        }
        _ => panic!("{tier:?} is an SoA tier; use sweep_soa_region"),
    }
}

/// Region-restricted variant of [`sweep_soa`]; see [`sweep_aos_region`].
pub fn sweep_soa_region(
    tier: Tier,
    collision: Collision,
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    match (tier, collision) {
        (Tier::Soa, Collision::Srt) => crate::soa::stream_collide_srt_region(src, dst, rel, region),
        (Tier::Soa, Collision::Trt) => crate::soa::stream_collide_trt_region(src, dst, rel, region),
        (Tier::Avx, Collision::Srt) => crate::avx::stream_collide_srt_region(src, dst, rel, region),
        (Tier::Avx, Collision::Trt) => crate::avx::stream_collide_trt_region(src, dst, rel, region),
        (Tier::InPlace, _) => panic!("InPlace is a single-buffer tier; use sweep_inplace_region"),
        (Tier::Soa | Tier::Avx, c) if c.is_mrt() => {
            crate::mrt::stream_collide_mrt_region(src, dst, rel, c.smagorinsky(), region)
        }
        _ => panic!("{tier:?} is an AoS tier; use sweep_aos_region"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_field::{PdfField, Shape};
    use trillium_lattice::MAGIC_TRT;

    /// Every (tier, collision) combination produces the same macroscopic
    /// result through the dispatch layer.
    #[test]
    fn all_dispatch_paths_agree() {
        let shape = Shape::cube(5);
        let mut aos = AosPdfField::<D3Q19>::new(shape);
        let mut soa = SoaPdfField::<D3Q19>::new(shape);
        aos.fill_equilibrium(1.0, [0.02, -0.01, 0.01]);
        soa.fill_equilibrium(1.0, [0.02, -0.01, 0.01]);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                let v = aos.get(x, y, z, q) + 1e-4 * ((x + 2 * y + 3 * z + q as i32) % 5) as f64;
                aos.set(x, y, z, q, v);
                soa.set(x, y, z, q, v);
            }
        }
        for collision in Collision::ALL {
            let rel = match collision {
                Collision::Srt => Relaxation::srt_from_tau(0.8),
                _ => Relaxation::trt_from_tau(0.8, MAGIC_TRT),
            };
            let mut reference: Option<Vec<f64>> = None;
            for tier in Tier::ALL {
                let result: Vec<f64> = if tier.is_inplace() {
                    // Single-buffer tier: sweep a copy in place, then read
                    // the logical values through the parity-mapped
                    // accessors (the buffer is in rotated layout after the
                    // transport sweep).
                    let mut f = soa.clone();
                    sweep_inplace(collision, &mut f, rel);
                    f.set_parity(true);
                    shape
                        .interior()
                        .iter()
                        .flat_map(|(x, y, z)| (0..19).map(move |q| (x, y, z, q)))
                        .map(|(x, y, z, q)| f.get(x, y, z, q))
                        .collect()
                } else if tier.uses_aos() {
                    let mut dst = AosPdfField::<D3Q19>::new(shape);
                    sweep_aos(tier, collision, &aos, &mut dst, rel);
                    shape
                        .interior()
                        .iter()
                        .flat_map(|(x, y, z)| (0..19).map(move |q| (x, y, z, q)))
                        .map(|(x, y, z, q)| dst.get(x, y, z, q))
                        .collect()
                } else {
                    let mut dst = SoaPdfField::<D3Q19>::new(shape);
                    sweep_soa(tier, collision, &soa, &mut dst, rel);
                    shape
                        .interior()
                        .iter()
                        .flat_map(|(x, y, z)| (0..19).map(move |q| (x, y, z, q)))
                        .map(|(x, y, z, q)| dst.get(x, y, z, q))
                        .collect()
                };
                match &reference {
                    None => reference = Some(result),
                    Some(r) => {
                        for (a, b) in r.iter().zip(&result) {
                            assert!((a - b).abs() < 1e-13, "{tier:?}/{collision:?} deviates");
                        }
                    }
                }
            }
        }
    }

    /// Sweeping the interior core plus the boundary shells must equal one
    /// full sweep *bitwise* for every tier and collision operator — not
    /// just to tolerance. The overlapped driver depends on this exactness
    /// to keep the overlapped and synchronous paths bit-identical.
    #[test]
    fn region_partition_is_bitwise_identical() {
        // Odd nx so the AVX tail position differs between full rows and
        // shell sub-rows.
        let shape = Shape::new(11, 6, 5, 1);
        let mut aos = AosPdfField::<D3Q19>::new(shape);
        let mut soa = SoaPdfField::<D3Q19>::new(shape);
        aos.fill_equilibrium(1.0, [0.015, -0.02, 0.01]);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                let v = aos.get(x, y, z, q)
                    + 1e-4 * (((x * 7 + y * 13 + z * 29 + q as i32 * 31) % 17) as f64 - 8.0);
                aos.set(x, y, z, q, v);
                soa.set(x, y, z, q, v);
            }
        }
        let core = shape.interior_core(1);
        let shells = shape.shell_regions(1);
        assert!(!core.is_empty() && !shells.is_empty());
        for collision in Collision::ALL {
            let rel = match collision {
                Collision::Srt => Relaxation::srt_from_tau(0.8),
                _ => Relaxation::trt_from_tau(0.8, MAGIC_TRT),
            };
            for tier in Tier::ALL {
                if tier.is_inplace() {
                    let mut full = soa.clone();
                    let mut split = soa.clone();
                    let s_full = sweep_inplace(collision, &mut full, rel);
                    let mut cells = sweep_inplace_region(collision, &mut split, rel, &core).cells;
                    for r in &shells {
                        cells += sweep_inplace_region(collision, &mut split, rel, r).cells;
                    }
                    assert_eq!(cells, s_full.cells, "{tier:?}/{collision:?} cell count");
                    assert_eq!(full.data(), split.data(), "{tier:?}/{collision:?} differs");
                } else if tier.uses_aos() {
                    let mut full = AosPdfField::<D3Q19>::new(shape);
                    let mut split = AosPdfField::<D3Q19>::new(shape);
                    let s_full = sweep_aos(tier, collision, &aos, &mut full, rel);
                    let mut cells =
                        sweep_aos_region(tier, collision, &aos, &mut split, rel, &core).cells;
                    for r in &shells {
                        cells += sweep_aos_region(tier, collision, &aos, &mut split, rel, r).cells;
                    }
                    assert_eq!(cells, s_full.cells, "{tier:?}/{collision:?} cell count");
                    for (x, y, z) in shape.interior().iter() {
                        for q in 0..19 {
                            assert!(
                                full.get(x, y, z, q) == split.get(x, y, z, q),
                                "{tier:?}/{collision:?} differs at ({x},{y},{z}) q={q}"
                            );
                        }
                    }
                } else {
                    let mut full = SoaPdfField::<D3Q19>::new(shape);
                    let mut split = SoaPdfField::<D3Q19>::new(shape);
                    let s_full = sweep_soa(tier, collision, &soa, &mut full, rel);
                    let mut cells =
                        sweep_soa_region(tier, collision, &soa, &mut split, rel, &core).cells;
                    for r in &shells {
                        cells += sweep_soa_region(tier, collision, &soa, &mut split, rel, r).cells;
                    }
                    assert_eq!(cells, s_full.cells, "{tier:?}/{collision:?} cell count");
                    for (x, y, z) in shape.interior().iter() {
                        for q in 0..19 {
                            assert!(
                                full.get(x, y, z, q) == split.get(x, y, z, q),
                                "{tier:?}/{collision:?} differs at ({x},{y},{z}) q={q}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "SoA tier")]
    fn wrong_layout_is_rejected() {
        let shape = Shape::cube(3);
        let aos = AosPdfField::<D3Q19>::new(shape);
        let mut dst = AosPdfField::<D3Q19>::new(shape);
        sweep_aos(Tier::Avx, Collision::Trt, &aos, &mut dst, Relaxation::srt_from_tau(1.0));
    }

    #[test]
    #[should_panic(expected = "use sweep_inplace")]
    fn inplace_through_two_field_entry_is_rejected() {
        let shape = Shape::cube(3);
        let soa = SoaPdfField::<D3Q19>::new(shape);
        let mut dst = SoaPdfField::<D3Q19>::new(shape);
        sweep_soa(Tier::InPlace, Collision::Trt, &soa, &mut dst, Relaxation::srt_from_tau(1.0));
    }

    /// `resolve` reports the tier that actually runs: `Avx` degrades to
    /// `Soa` without AVX2+FMA, everything else (including `InPlace`, which
    /// carries its own portable path) is stable.
    #[test]
    fn resolve_reports_the_executing_tier() {
        for tier in Tier::ALL {
            let r = tier.resolve();
            if crate::avx::available() {
                assert_eq!(r, tier);
            } else {
                assert_eq!(r, if tier == Tier::Avx { Tier::Soa } else { tier });
            }
            assert_eq!(r.resolve(), r, "resolve must be idempotent");
        }
        assert_eq!(Tier::Avx.label(), "avx");
        assert_eq!(Tier::InPlace.label(), "inplace");
    }
}
