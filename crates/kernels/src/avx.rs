//! Explicit AVX2+FMA vectorization of the SoA TRT kernel.
//!
//! The paper's fastest kernels are hand-vectorized with SSE on SuperMUC and
//! QPX on Blue Gene/Q because "performing this complex code transformation
//! for arbitrary lattice models couldn't be done automatically by any of
//! the compilers" (§4.1). On x86-64 we provide the analogous hand-written
//! kernel with 256-bit AVX2 and fused multiply-add, processing four lattice
//! cells per instruction, with runtime feature detection and a scalar tail.
//!
//! The row structure is identical to [`crate::soa`]: a moment pass, a
//! finalize pass and per-pair collision passes over each x-row.

use crate::stats::SweepStats;
use trillium_field::{PdfField, Region, SoaPdfField};
use trillium_lattice::{Relaxation, D3Q19};

/// True if the running CPU supports the AVX2+FMA kernel.
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One fused stream–collide TRT sweep using AVX2+FMA intrinsics.
///
/// Falls back to the portable split-loop kernel when the CPU lacks AVX2 or
/// FMA, so callers can use this unconditionally as the "SIMD" tier.
pub fn stream_collide_trt(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
) -> SweepStats {
    stream_collide_trt_region(src, dst, rel, &src.shape().interior())
}

/// [`stream_collide_trt`] restricted to `region` (a subset of the
/// interior). The scalar tail performs the same fused operations as the
/// vector lanes, so results do not depend on where a row is cut: sweeping
/// a partition of the interior region by region is bitwise identical to
/// one full sweep.
pub fn stream_collide_trt_region(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    #[cfg(target_arch = "x86_64")]
    {
        if available() {
            // SAFETY: feature availability checked above.
            return unsafe { imp::stream_collide_trt_avx2(src, dst, rel, region) };
        }
    }
    crate::soa::stream_collide_trt_region(src, dst, rel, region)
}

/// One fused stream–collide SRT sweep using AVX2+FMA intrinsics (same
/// fallback behavior as [`stream_collide_trt`]).
pub fn stream_collide_srt(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
) -> SweepStats {
    stream_collide_srt_region(src, dst, rel, &src.shape().interior())
}

/// [`stream_collide_srt`] restricted to `region`; see
/// [`stream_collide_trt_region`] for the partition guarantee.
pub fn stream_collide_srt_region(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    assert!(rel.is_srt(), "SRT kernel requires equal relaxation rates");
    #[cfg(target_arch = "x86_64")]
    {
        if available() {
            // SAFETY: feature availability checked above.
            return unsafe { imp::stream_collide_srt_avx2(src, dst, rel, region) };
        }
    }
    crate::soa::stream_collide_srt_region(src, dst, rel, region)
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;
    use std::arch::x86_64::*;
    use trillium_lattice::d3q19::{dir, C, PAIRS, Q, W as WEIGHTS};

    const LANES: usize = 4;

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stream_collide_trt_avx2(
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        assert_eq!(src.shape(), dst.shape());
        let shape = src.shape();
        assert!(shape.ghost >= 1);
        debug_assert_eq!(region.intersect(&shape.interior()), region.clone());
        let (le, lo) = (rel.lambda_e, rel.lambda_o);
        let (sy, sz) = (shape.stride_y() as isize, shape.stride_z() as isize);
        let n = region.x.len();
        if n == 0 {
            return SweepStats::dense(0);
        }

        let mut rho = vec![0.0f64; n];
        let mut ux = vec![0.0f64; n];
        let mut uy = vec![0.0f64; n];
        let mut uz = vec![0.0f64; n];
        let mut ebase = vec![0.0f64; n];

        let sdirs: Vec<&[f64]> = (0..Q).map(|q| src.dir(q)).collect();
        let mut ddirs = dst.dirs_mut();

        let offq = |q: usize| C[q][0] as isize + C[q][1] as isize * sy + C[q][2] as isize * sz;

        for z in region.z.clone() {
            for y in region.y.clone() {
                let base = shape.idx(region.x.start, y, z);

                // ---- moment pass -------------------------------------
                rho.fill(0.0);
                ux.fill(0.0);
                uy.fill(0.0);
                uz.fill(0.0);
                for q in 0..Q {
                    let s = &sdirs[q][(base as isize - offq(q)) as usize..];
                    let (cx, cy, cz) = (C[q][0] as f64, C[q][1] as f64, C[q][2] as f64);
                    let vcx = _mm256_set1_pd(cx);
                    let vcy = _mm256_set1_pd(cy);
                    let vcz = _mm256_set1_pd(cz);
                    let mut x = 0;
                    while x + LANES <= n {
                        let v = _mm256_loadu_pd(s.as_ptr().add(x));
                        let r = _mm256_add_pd(_mm256_loadu_pd(rho.as_ptr().add(x)), v);
                        _mm256_storeu_pd(rho.as_mut_ptr().add(x), r);
                        if cx != 0.0 {
                            let a = _mm256_fmadd_pd(vcx, v, _mm256_loadu_pd(ux.as_ptr().add(x)));
                            _mm256_storeu_pd(ux.as_mut_ptr().add(x), a);
                        }
                        if cy != 0.0 {
                            let a = _mm256_fmadd_pd(vcy, v, _mm256_loadu_pd(uy.as_ptr().add(x)));
                            _mm256_storeu_pd(uy.as_mut_ptr().add(x), a);
                        }
                        if cz != 0.0 {
                            let a = _mm256_fmadd_pd(vcz, v, _mm256_loadu_pd(uz.as_ptr().add(x)));
                            _mm256_storeu_pd(uz.as_mut_ptr().add(x), a);
                        }
                        x += LANES;
                    }
                    // Scalar tail, bit-compatible with the FMA lanes: the
                    // same fused operations and the same skip of zero
                    // components, so results do not depend on where the
                    // vector/tail boundary falls (asserted by the
                    // cross-decomposition equality tests in trillium-core).
                    while x < n {
                        let v = s[x];
                        rho[x] += v;
                        if cx != 0.0 {
                            ux[x] = cx.mul_add(v, ux[x]);
                        }
                        if cy != 0.0 {
                            uy[x] = cy.mul_add(v, uy[x]);
                        }
                        if cz != 0.0 {
                            uz[x] = cz.mul_add(v, uz[x]);
                        }
                        x += 1;
                    }
                }

                // ---- finalize pass -----------------------------------
                {
                    let one = _mm256_set1_pd(1.0);
                    let c15 = _mm256_set1_pd(1.5);
                    let mut x = 0;
                    while x + LANES <= n {
                        let r = _mm256_loadu_pd(rho.as_ptr().add(x));
                        let inv = _mm256_div_pd(one, r);
                        let vx = _mm256_mul_pd(_mm256_loadu_pd(ux.as_ptr().add(x)), inv);
                        let vy = _mm256_mul_pd(_mm256_loadu_pd(uy.as_ptr().add(x)), inv);
                        let vz = _mm256_mul_pd(_mm256_loadu_pd(uz.as_ptr().add(x)), inv);
                        _mm256_storeu_pd(ux.as_mut_ptr().add(x), vx);
                        _mm256_storeu_pd(uy.as_mut_ptr().add(x), vy);
                        _mm256_storeu_pd(uz.as_mut_ptr().add(x), vz);
                        let u2 =
                            _mm256_fmadd_pd(vz, vz, _mm256_fmadd_pd(vy, vy, _mm256_mul_pd(vx, vx)));
                        let b = _mm256_fnmadd_pd(c15, u2, one);
                        _mm256_storeu_pd(ebase.as_mut_ptr().add(x), b);
                        x += LANES;
                    }
                    while x < n {
                        let inv = 1.0 / rho[x];
                        let (vx, vy, vz) = (ux[x] * inv, uy[x] * inv, uz[x] * inv);
                        ux[x] = vx;
                        uy[x] = vy;
                        uz[x] = vz;
                        let u2 = vz.mul_add(vz, vy.mul_add(vy, vx * vx));
                        ebase[x] = (-1.5f64).mul_add(u2, 1.0);
                        x += 1;
                    }
                }

                // ---- rest direction ----------------------------------
                {
                    let s0 = &sdirs[dir::C][base..base + n];
                    let d0 = &mut ddirs[dir::C][base..base + n];
                    let w0 = _mm256_set1_pd(WEIGHTS[0]);
                    let vle = _mm256_set1_pd(le);
                    let mut x = 0;
                    while x + LANES <= n {
                        let f0 = _mm256_loadu_pd(s0.as_ptr().add(x));
                        let feq = _mm256_mul_pd(
                            w0,
                            _mm256_mul_pd(
                                _mm256_loadu_pd(rho.as_ptr().add(x)),
                                _mm256_loadu_pd(ebase.as_ptr().add(x)),
                            ),
                        );
                        let out = _mm256_fmadd_pd(vle, _mm256_sub_pd(f0, feq), f0);
                        _mm256_storeu_pd(d0.as_mut_ptr().add(x), out);
                        x += LANES;
                    }
                    while x < n {
                        let feq = WEIGHTS[0] * (rho[x] * ebase[x]);
                        d0[x] = le.mul_add(s0[x] - feq, s0[x]);
                        x += 1;
                    }
                }

                // ---- pair passes -------------------------------------
                for &(a, b) in PAIRS.iter() {
                    let oa = offq(a);
                    let sa = &sdirs[a][(base as isize - oa) as usize..];
                    let sb = &sdirs[b][(base as isize + oa) as usize..];
                    let (da, db) = {
                        let (lo_half, hi_half) = ddirs.split_at_mut(b);
                        (&mut lo_half[a][base..base + n], &mut hi_half[0][base..base + n])
                    };
                    let c = [C[a][0] as f64, C[a][1] as f64, C[a][2] as f64];
                    let wq = WEIGHTS[a];

                    let vcx = _mm256_set1_pd(c[0]);
                    let vcy = _mm256_set1_pd(c[1]);
                    let vcz = _mm256_set1_pd(c[2]);
                    let vwq = _mm256_set1_pd(wq);
                    let vle = _mm256_set1_pd(le);
                    let vlo = _mm256_set1_pd(lo);
                    let vhalf = _mm256_set1_pd(0.5);
                    let v45 = _mm256_set1_pd(4.5);
                    let v3 = _mm256_set1_pd(3.0);

                    let mut x = 0;
                    while x + LANES <= n {
                        let vux = _mm256_loadu_pd(ux.as_ptr().add(x));
                        let vuy = _mm256_loadu_pd(uy.as_ptr().add(x));
                        let vuz = _mm256_loadu_pd(uz.as_ptr().add(x));
                        let cu = _mm256_fmadd_pd(
                            vcz,
                            vuz,
                            _mm256_fmadd_pd(vcy, vuy, _mm256_mul_pd(vcx, vux)),
                        );
                        let t = _mm256_mul_pd(vwq, _mm256_loadu_pd(rho.as_ptr().add(x)));
                        let cu2 = _mm256_mul_pd(cu, cu);
                        let inner =
                            _mm256_fmadd_pd(v45, cu2, _mm256_loadu_pd(ebase.as_ptr().add(x)));
                        let feq_even = _mm256_mul_pd(t, inner);
                        let feq_odd = _mm256_mul_pd(_mm256_mul_pd(v3, t), cu);
                        let fa = _mm256_loadu_pd(sa.as_ptr().add(x));
                        let fb = _mm256_loadu_pd(sb.as_ptr().add(x));
                        let fp = _mm256_mul_pd(vhalf, _mm256_add_pd(fa, fb));
                        let fm = _mm256_mul_pd(vhalf, _mm256_sub_pd(fa, fb));
                        let d_even = _mm256_mul_pd(vle, _mm256_sub_pd(fp, feq_even));
                        let d_odd = _mm256_mul_pd(vlo, _mm256_sub_pd(fm, feq_odd));
                        let oa2 = _mm256_add_pd(fa, _mm256_add_pd(d_even, d_odd));
                        let ob2 = _mm256_add_pd(fb, _mm256_sub_pd(d_even, d_odd));
                        _mm256_storeu_pd(da.as_mut_ptr().add(x), oa2);
                        _mm256_storeu_pd(db.as_mut_ptr().add(x), ob2);
                        x += LANES;
                    }
                    while x < n {
                        let cu = c[2].mul_add(uz[x], c[1].mul_add(uy[x], c[0] * ux[x]));
                        let t = wq * rho[x];
                        let feq_even = t * (4.5f64.mul_add(cu * cu, ebase[x]));
                        let feq_odd = (3.0 * t) * cu;
                        let (fa, fb) = (sa[x], sb[x]);
                        let d_even = le * (0.5 * (fa + fb) - feq_even);
                        let d_odd = lo * (0.5 * (fa - fb) - feq_odd);
                        da[x] = fa + (d_even + d_odd);
                        db[x] = fb + (d_even - d_odd);
                        x += 1;
                    }
                }
            }
        }
        SweepStats::dense(region.num_cells() as u64)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stream_collide_srt_avx2(
        src: &SoaPdfField<D3Q19>,
        dst: &mut SoaPdfField<D3Q19>,
        rel: Relaxation,
        region: &Region,
    ) -> SweepStats {
        assert_eq!(src.shape(), dst.shape());
        let shape = src.shape();
        assert!(shape.ghost >= 1);
        debug_assert_eq!(region.intersect(&shape.interior()), region.clone());
        let omega = -rel.lambda_e;
        let om1 = 1.0 - omega;
        let (sy, sz) = (shape.stride_y() as isize, shape.stride_z() as isize);
        let n = region.x.len();
        if n == 0 {
            return SweepStats::dense(0);
        }

        let mut rho = vec![0.0f64; n];
        let mut ux = vec![0.0f64; n];
        let mut uy = vec![0.0f64; n];
        let mut uz = vec![0.0f64; n];
        let mut ebase = vec![0.0f64; n];

        let sdirs: Vec<&[f64]> = (0..Q).map(|q| src.dir(q)).collect();
        let mut ddirs = dst.dirs_mut();
        let offq = |q: usize| C[q][0] as isize + C[q][1] as isize * sy + C[q][2] as isize * sz;

        for z in region.z.clone() {
            for y in region.y.clone() {
                let base = shape.idx(region.x.start, y, z);

                // ---- moment pass (identical to the TRT kernel) --------
                rho.fill(0.0);
                ux.fill(0.0);
                uy.fill(0.0);
                uz.fill(0.0);
                for q in 0..Q {
                    let s = &sdirs[q][(base as isize - offq(q)) as usize..];
                    let (cx, cy, cz) = (C[q][0] as f64, C[q][1] as f64, C[q][2] as f64);
                    let vcx = _mm256_set1_pd(cx);
                    let vcy = _mm256_set1_pd(cy);
                    let vcz = _mm256_set1_pd(cz);
                    let mut x = 0;
                    while x + LANES <= n {
                        let v = _mm256_loadu_pd(s.as_ptr().add(x));
                        let r = _mm256_add_pd(_mm256_loadu_pd(rho.as_ptr().add(x)), v);
                        _mm256_storeu_pd(rho.as_mut_ptr().add(x), r);
                        if cx != 0.0 {
                            let a = _mm256_fmadd_pd(vcx, v, _mm256_loadu_pd(ux.as_ptr().add(x)));
                            _mm256_storeu_pd(ux.as_mut_ptr().add(x), a);
                        }
                        if cy != 0.0 {
                            let a = _mm256_fmadd_pd(vcy, v, _mm256_loadu_pd(uy.as_ptr().add(x)));
                            _mm256_storeu_pd(uy.as_mut_ptr().add(x), a);
                        }
                        if cz != 0.0 {
                            let a = _mm256_fmadd_pd(vcz, v, _mm256_loadu_pd(uz.as_ptr().add(x)));
                            _mm256_storeu_pd(uz.as_mut_ptr().add(x), a);
                        }
                        x += LANES;
                    }
                    while x < n {
                        let v = s[x];
                        rho[x] += v;
                        if cx != 0.0 {
                            ux[x] = cx.mul_add(v, ux[x]);
                        }
                        if cy != 0.0 {
                            uy[x] = cy.mul_add(v, uy[x]);
                        }
                        if cz != 0.0 {
                            uz[x] = cz.mul_add(v, uz[x]);
                        }
                        x += 1;
                    }
                }

                // ---- finalize pass ------------------------------------
                {
                    let one = _mm256_set1_pd(1.0);
                    let c15 = _mm256_set1_pd(1.5);
                    let mut x = 0;
                    while x + LANES <= n {
                        let r = _mm256_loadu_pd(rho.as_ptr().add(x));
                        let inv = _mm256_div_pd(one, r);
                        let vx = _mm256_mul_pd(_mm256_loadu_pd(ux.as_ptr().add(x)), inv);
                        let vy = _mm256_mul_pd(_mm256_loadu_pd(uy.as_ptr().add(x)), inv);
                        let vz = _mm256_mul_pd(_mm256_loadu_pd(uz.as_ptr().add(x)), inv);
                        _mm256_storeu_pd(ux.as_mut_ptr().add(x), vx);
                        _mm256_storeu_pd(uy.as_mut_ptr().add(x), vy);
                        _mm256_storeu_pd(uz.as_mut_ptr().add(x), vz);
                        let u2 =
                            _mm256_fmadd_pd(vz, vz, _mm256_fmadd_pd(vy, vy, _mm256_mul_pd(vx, vx)));
                        let b = _mm256_fnmadd_pd(c15, u2, one);
                        _mm256_storeu_pd(ebase.as_mut_ptr().add(x), b);
                        x += LANES;
                    }
                    while x < n {
                        let inv = 1.0 / rho[x];
                        let (vx, vy, vz) = (ux[x] * inv, uy[x] * inv, uz[x] * inv);
                        ux[x] = vx;
                        uy[x] = vy;
                        uz[x] = vz;
                        let u2 = vz.mul_add(vz, vy.mul_add(vy, vx * vx));
                        ebase[x] = (-1.5f64).mul_add(u2, 1.0);
                        x += 1;
                    }
                }

                // ---- by-direction relaxation passes -------------------
                for q in 0..Q {
                    let s = &sdirs[q][(base as isize - offq(q)) as usize..];
                    let d = &mut ddirs[q][base..base + n];
                    let c = [C[q][0] as f64, C[q][1] as f64, C[q][2] as f64];
                    let tw = omega * WEIGHTS[q];
                    let vcx = _mm256_set1_pd(c[0]);
                    let vcy = _mm256_set1_pd(c[1]);
                    let vcz = _mm256_set1_pd(c[2]);
                    let vtw = _mm256_set1_pd(tw);
                    let vom1 = _mm256_set1_pd(om1);
                    let v3 = _mm256_set1_pd(3.0);
                    let v45 = _mm256_set1_pd(4.5);
                    let mut x = 0;
                    while x + LANES <= n {
                        let vux = _mm256_loadu_pd(ux.as_ptr().add(x));
                        let vuy = _mm256_loadu_pd(uy.as_ptr().add(x));
                        let vuz = _mm256_loadu_pd(uz.as_ptr().add(x));
                        let cu = _mm256_fmadd_pd(
                            vcz,
                            vuz,
                            _mm256_fmadd_pd(vcy, vuy, _mm256_mul_pd(vcx, vux)),
                        );
                        let inner = _mm256_fmadd_pd(
                            v3,
                            cu,
                            _mm256_fmadd_pd(
                                v45,
                                _mm256_mul_pd(cu, cu),
                                _mm256_loadu_pd(ebase.as_ptr().add(x)),
                            ),
                        );
                        let t = _mm256_mul_pd(vtw, _mm256_loadu_pd(rho.as_ptr().add(x)));
                        let f = _mm256_loadu_pd(s.as_ptr().add(x));
                        let out = _mm256_fmadd_pd(vom1, f, _mm256_mul_pd(t, inner));
                        _mm256_storeu_pd(d.as_mut_ptr().add(x), out);
                        x += LANES;
                    }
                    while x < n {
                        let cu = c[2].mul_add(uz[x], c[1].mul_add(uy[x], c[0] * ux[x]));
                        let inner = 3.0f64.mul_add(cu, 4.5f64.mul_add(cu * cu, ebase[x]));
                        let t = tw * rho[x];
                        d[x] = om1.mul_add(s[x], t * inner);
                        x += 1;
                    }
                }
            }
        }
        SweepStats::dense(region.num_cells() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soa;
    use trillium_field::Shape;
    use trillium_lattice::MAGIC_TRT;

    #[test]
    fn avx_matches_portable_soa() {
        let shape = Shape::new(13, 5, 4, 1); // odd nx exercises the tail
        let mut src = SoaPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.02, -0.01, 0.03]);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                let v = src.get(x, y, z, q)
                    + 1e-4 * (((x * 17 + y * 23 + z * 29 + q as i32 * 31) % 19) as f64 - 9.0);
                src.set(x, y, z, q, v);
            }
        }
        let rel = Relaxation::trt_from_tau(0.74, MAGIC_TRT);
        let mut d_avx = SoaPdfField::<D3Q19>::new(shape);
        let mut d_ref = SoaPdfField::<D3Q19>::new(shape);
        let stats = stream_collide_trt(&src, &mut d_avx, rel);
        soa::stream_collide_trt(&src, &mut d_ref, rel);
        assert_eq!(stats.cells, shape.interior_cells() as u64);
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                let (a, b) = (d_avx.get(x, y, z, q), d_ref.get(x, y, z, q));
                assert!((a - b).abs() < 1e-14, "q={q} at ({x},{y},{z}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn avx_srt_matches_portable_soa() {
        let shape = Shape::new(11, 4, 5, 1); // odd nx exercises the tail
        let mut src = SoaPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.015, -0.02, 0.01]);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                let v = src.get(x, y, z, q)
                    + 1e-4 * (((x * 5 + y * 11 + z * 17 + q as i32 * 13) % 23) as f64 - 11.0);
                src.set(x, y, z, q, v);
            }
        }
        let rel = trillium_lattice::Relaxation::srt_from_tau(0.88);
        let mut d_avx = SoaPdfField::<D3Q19>::new(shape);
        let mut d_ref = SoaPdfField::<D3Q19>::new(shape);
        stream_collide_srt(&src, &mut d_avx, rel);
        soa::stream_collide_srt(&src, &mut d_ref, rel);
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                let (a, b) = (d_avx.get(x, y, z, q), d_ref.get(x, y, z, q));
                assert!((a - b).abs() < 1e-14, "q={q} at ({x},{y},{z}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn feature_detection_is_consistent() {
        // Must not panic either way; on x86-64 CI machines AVX2 is common
        // but not guaranteed, so only check the call works.
        let _ = available();
    }
}
