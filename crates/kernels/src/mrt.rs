//! MRT and MRT+Smagorinsky sweeps for every storage layout and update
//! scheme.
//!
//! Unlike the SRT/TRT ladder, where each tier carries its own tuned
//! arithmetic, the MRT operator has exactly *one* per-cell implementation
//! — [`trillium_lattice::mrt::collide`] — and the sweeps here differ only
//! in how they gather the 19 populations into a cell-local array and
//! scatter the post-collision values back:
//!
//! * [`stream_collide_mrt`] / [`stream_collide_mrt_region`] — two-field
//!   pull on any [`PdfField`] layout (AoS or SoA).
//! * [`stream_collide_mrt_row_intervals`] — the sparse-block row-interval
//!   traversal of [`crate::sparse`], pulling only covered spans.
//! * [`stream_collide_mrt_inplace`] — the single-buffer AA pattern of
//!   [`crate::inplace`]: at even parity the gather is pull-identical and
//!   the scatter rotates one hop downstream into the opposite direction's
//!   slot; at odd parity both are cell-local through the inverse mapping.
//!
//! Because the gather produces the same 19 values everywhere and the
//! collision is the shared scalar routine, every tier, scheme, and region
//! partition is **bitwise identical** — a stronger guarantee than the
//! tolerance-based agreement of the SRT/TRT tiers, and the property the
//! schedule-invariance gate (`tests/mrt_equivalence.rs`) pins.
//!
//! The optional Smagorinsky constant turns on the LES closure inside the
//! shared collision; `None` runs plain MRT with the rates derived from
//! the [`Relaxation`].

use crate::stats::SweepStats;
use trillium_field::{PdfField, Region, RowIntervals, SoaPdfField};
use trillium_lattice::d3q19::{C, INVERSE, Q};
use trillium_lattice::mrt::{collide, MrtRates};
use trillium_lattice::{Relaxation, D3Q19};

/// One MRT stream(pull)–collide sweep over the interior of any PDF layout.
pub fn stream_collide_mrt<F: PdfField<D3Q19>>(
    src: &F,
    dst: &mut F,
    rel: Relaxation,
    smagorinsky: Option<f64>,
) -> SweepStats {
    stream_collide_mrt_region(src, dst, rel, smagorinsky, &src.shape().interior())
}

/// [`stream_collide_mrt`] restricted to `region` (a subset of the
/// interior). The per-cell arithmetic is element-wise, so sweeping a
/// partition of the interior region by region is bitwise identical to one
/// full sweep.
pub fn stream_collide_mrt_region<F: PdfField<D3Q19>>(
    src: &F,
    dst: &mut F,
    rel: Relaxation,
    smagorinsky: Option<f64>,
    region: &Region,
) -> SweepStats {
    assert_eq!(src.shape(), dst.shape());
    let rates = MrtRates::from_relaxation(rel);
    let mut f = [0.0; Q];
    for (x, y, z) in region.iter() {
        for q in 0..Q {
            let c = C[q];
            f[q] = src.get(x - c[0] as i32, y - c[1] as i32, z - c[2] as i32, q);
        }
        collide(&mut f, &rates, smagorinsky);
        for q in 0..Q {
            dst.set(x, y, z, q, f[q]);
        }
    }
    SweepStats::dense(region.num_cells() as u64)
}

/// Sparse-block MRT sweep over per-row fluid intervals (the production
/// scheme of paper §4.3, with the MRT operator in place of TRT).
pub fn stream_collide_mrt_row_intervals(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    intervals: &RowIntervals,
    rel: Relaxation,
    smagorinsky: Option<f64>,
) -> SweepStats {
    let mut stats = stream_collide_mrt_row_intervals_region(
        src,
        dst,
        intervals,
        rel,
        smagorinsky,
        &src.shape().interior(),
    );
    stats.cells = intervals.covered_cells() as u64;
    stats.fluid_cells = intervals.fluid_cells as u64;
    stats
}

/// [`stream_collide_mrt_row_intervals`] restricted to the spans' overlap
/// with `region`; same clipping and partition guarantee as the TRT
/// variant in [`crate::sparse`].
pub fn stream_collide_mrt_row_intervals_region(
    src: &SoaPdfField<D3Q19>,
    dst: &mut SoaPdfField<D3Q19>,
    intervals: &RowIntervals,
    rel: Relaxation,
    smagorinsky: Option<f64>,
    region: &Region,
) -> SweepStats {
    assert_eq!(src.shape(), dst.shape());
    let shape = src.shape();
    assert!(shape.ghost >= 1);
    debug_assert_eq!(region.intersect(&shape.interior()), region.clone());
    let rates = MrtRates::from_relaxation(rel);
    let (sy, sz) = (shape.stride_y() as isize, shape.stride_z() as isize);
    let mut off = [0isize; Q];
    for q in 0..Q {
        off[q] = C[q][0] as isize + C[q][1] as isize * sy + C[q][2] as isize * sz;
    }
    let sdirs: Vec<&[f64]> = (0..Q).map(|q| src.dir(q)).collect();
    let mut ddirs = dst.dirs_mut();
    let mut covered = 0usize;

    for span in &intervals.spans {
        if !region.y.contains(&span.y) || !region.z.contains(&span.z) {
            continue;
        }
        let x_begin = span.x_begin.max(region.x.start);
        let x_end = span.x_end.min(region.x.end);
        if x_end <= x_begin {
            continue;
        }
        let n = (x_end - x_begin) as usize;
        covered += n;
        let base = shape.idx(x_begin, span.y, span.z);
        let mut f = [0.0; Q];
        for cell in base..base + n {
            for q in 0..Q {
                f[q] = sdirs[q][(cell as isize - off[q]) as usize];
            }
            collide(&mut f, &rates, smagorinsky);
            for q in 0..Q {
                ddirs[q][cell] = f[q];
            }
        }
    }
    SweepStats { cells: covered as u64, fluid_cells: covered as u64, seconds: 0.0 }
}

/// One full in-place (AA-pattern) MRT sweep over the interior. The sweep
/// variant follows the field's current [`SoaPdfField::parity`]; the caller
/// flips the parity afterwards, exactly as for [`crate::inplace`].
pub fn stream_collide_mrt_inplace(
    f: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    smagorinsky: Option<f64>,
) -> SweepStats {
    let region = f.shape().interior();
    stream_collide_mrt_inplace_region(f, rel, smagorinsky, &region)
}

/// [`stream_collide_mrt_inplace`] restricted to `region`. Safe under any
/// partition: storage slot `(w, p)` is read and written by exactly one
/// cell (`w + c_p`) in either sweep variant, and the cell gathers all 19
/// populations before scattering any (see [`crate::inplace`] module docs).
pub fn stream_collide_mrt_inplace_region(
    field: &mut SoaPdfField<D3Q19>,
    rel: Relaxation,
    smagorinsky: Option<f64>,
    region: &Region,
) -> SweepStats {
    let parity = field.parity();
    let shape = field.shape();
    assert!(shape.ghost >= 1);
    debug_assert_eq!(region.intersect(&shape.interior()), region.clone());
    let rates = MrtRates::from_relaxation(rel);
    let alloc = shape.alloc_cells();
    let data = field.data_mut().as_mut_ptr();
    let lines: Vec<*mut f64> = (0..Q).map(|q| unsafe { data.add(q * alloc) }).collect();
    let (sy, sz) = (shape.stride_y() as isize, shape.stride_z() as isize);
    let mut off = [0isize; Q];
    for q in 0..Q {
        off[q] = C[q][0] as isize + C[q][1] as isize * sy + C[q][2] as isize * sz;
    }

    let mut f = [0.0; Q];
    for z in region.z.clone() {
        for y in region.y.clone() {
            for x in region.x.clone() {
                let base = shape.idx(x, y, z) as isize;
                // SAFETY: interior cells with ghost >= 1 keep base ± off[q]
                // inside the allocation; slot ownership (one reader ==
                // one writer == this cell) makes gather-then-scatter
                // race-free at both parities.
                unsafe {
                    if parity {
                        for q in 0..Q {
                            f[q] = *lines[INVERSE[q]].offset(base);
                        }
                        collide(&mut f, &rates, smagorinsky);
                        for q in 0..Q {
                            *lines[q].offset(base) = f[q];
                        }
                    } else {
                        for q in 0..Q {
                            f[q] = *lines[q].offset(base - off[q]);
                        }
                        collide(&mut f, &rates, smagorinsky);
                        for q in 0..Q {
                            *lines[INVERSE[q]].offset(base + off[q]) = f[q];
                        }
                    }
                }
            }
        }
    }
    SweepStats::dense(region.num_cells() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_field::{AosPdfField, CellFlags, FlagField, FlagOps, Shape};

    fn perturbed(shape: Shape) -> SoaPdfField<D3Q19> {
        let mut f = SoaPdfField::<D3Q19>::new(shape);
        f.fill_equilibrium(1.0, [0.02, -0.01, 0.015]);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                let v = f.get(x, y, z, q)
                    + 1e-4 * (((x * 7 + y * 13 + z * 29 + q as i32 * 31) % 17) as f64 - 8.0);
                f.set(x, y, z, q, v);
            }
        }
        f
    }

    /// AoS and SoA layouts produce bitwise identical MRT sweeps (one
    /// shared per-cell routine; only the gather/scatter addressing
    /// differs).
    #[test]
    fn layouts_agree_bitwise() {
        let shape = Shape::new(7, 5, 4, 1);
        let soa = perturbed(shape);
        let mut aos = AosPdfField::<D3Q19>::new(shape);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                aos.set(x, y, z, q, soa.get(x, y, z, q));
            }
        }
        let rel = Relaxation::trt_from_viscosity(0.03);
        for smag in [None, Some(0.17)] {
            let mut d_soa = SoaPdfField::<D3Q19>::new(shape);
            let mut d_aos = AosPdfField::<D3Q19>::new(shape);
            stream_collide_mrt(&soa, &mut d_soa, rel, smag);
            stream_collide_mrt(&aos, &mut d_aos, rel, smag);
            for (x, y, z) in shape.interior().iter() {
                for q in 0..19 {
                    assert_eq!(
                        d_soa.get(x, y, z, q).to_bits(),
                        d_aos.get(x, y, z, q).to_bits(),
                        "smag={smag:?} at ({x},{y},{z}) q={q}"
                    );
                }
            }
        }
    }

    /// The in-place transport sweep (parity 0) must match one pull sweep
    /// bitwise, observed through the parity-mapped accessors; the local
    /// sweep (parity 1) must restore canonical layout identically too.
    /// The domain is a closed no-slip box so the boundary sweep feeds both
    /// schemes the same streamed-in values each step (exactly as the
    /// driver does).
    #[test]
    fn inplace_matches_pull_over_both_parities() {
        use crate::boundary::{apply_boundaries, BoundaryParams};
        let shape = Shape::new(9, 6, 5, 1);
        let mut flags = FlagField::new(shape);
        for (x, y, z) in shape.interior().iter() {
            flags.set_flags(x, y, z, CellFlags::FLUID);
        }
        for (x, y, z) in shape.with_ghosts().iter() {
            if !shape.is_interior(x, y, z) {
                flags.set_flags(x, y, z, CellFlags::NOSLIP);
            }
        }
        let params = BoundaryParams { wall_velocity: [0.04, 0.0, -0.01], ..Default::default() };
        let rel = Relaxation::trt_from_viscosity(0.04);
        for smag in [None, Some(0.17)] {
            let mut pull_src = perturbed(shape);
            let mut pull_dst = SoaPdfField::<D3Q19>::new(shape);
            let mut aa = pull_src.clone();
            for step in 0..4u64 {
                apply_boundaries::<D3Q19, _>(&mut pull_src, &flags, &params);
                stream_collide_mrt(&pull_src, &mut pull_dst, rel, smag);
                pull_src.swap(&mut pull_dst);
                apply_boundaries::<D3Q19, _>(&mut aa, &flags, &params);
                stream_collide_mrt_inplace(&mut aa, rel, smag);
                aa.set_parity(!aa.parity());
                for (x, y, z) in shape.interior().iter() {
                    for q in 0..19 {
                        assert_eq!(
                            aa.get(x, y, z, q).to_bits(),
                            pull_src.get(x, y, z, q).to_bits(),
                            "smag={smag:?} step {step} q={q} at ({x},{y},{z})"
                        );
                    }
                }
            }
        }
    }

    /// Region-partitioned sweeps are bitwise identical to full sweeps for
    /// the pull, sparse, and in-place variants.
    #[test]
    fn region_partition_is_bitwise_identical() {
        let shape = Shape::new(11, 6, 5, 1);
        let src = perturbed(shape);
        let rel = Relaxation::trt_from_viscosity(0.02);
        let core = shape.interior_core(1);
        let shells = shape.shell_regions(1);

        // Pull.
        let mut full = SoaPdfField::<D3Q19>::new(shape);
        let mut split = SoaPdfField::<D3Q19>::new(shape);
        stream_collide_mrt(&src, &mut full, rel, Some(0.17));
        let mut cells = stream_collide_mrt_region(&src, &mut split, rel, Some(0.17), &core).cells;
        for r in &shells {
            cells += stream_collide_mrt_region(&src, &mut split, rel, Some(0.17), r).cells;
        }
        assert_eq!(cells, shape.interior_cells() as u64);
        assert_eq!(full.data(), split.data());

        // Sparse row intervals (dense flag field covers the interior).
        let mut flags = FlagField::new(shape);
        for (x, y, z) in shape.interior().iter() {
            flags.set_flags(x, y, z, CellFlags::FLUID);
        }
        let intervals = RowIntervals::build(&flags);
        let mut s_full = SoaPdfField::<D3Q19>::new(shape);
        let mut s_split = SoaPdfField::<D3Q19>::new(shape);
        stream_collide_mrt_row_intervals(&src, &mut s_full, &intervals, rel, None);
        stream_collide_mrt_row_intervals_region(&src, &mut s_split, &intervals, rel, None, &core);
        for r in &shells {
            stream_collide_mrt_row_intervals_region(&src, &mut s_split, &intervals, rel, None, r);
        }
        assert_eq!(s_full.data(), s_split.data());

        // In-place, both parities.
        let mut i_full = src.clone();
        let mut i_split = src.clone();
        for parity in [false, true] {
            i_full.set_parity(parity);
            i_split.set_parity(parity);
            stream_collide_mrt_inplace(&mut i_full, rel, Some(0.17));
            stream_collide_mrt_inplace_region(&mut i_split, rel, Some(0.17), &core);
            for r in &shells {
                stream_collide_mrt_inplace_region(&mut i_split, rel, Some(0.17), r);
            }
            assert_eq!(i_full.data(), i_split.data(), "parity {parity}");
        }
    }

    /// Sparse row intervals agree bitwise with the dense pull sweep on a
    /// fully fluid block.
    #[test]
    fn sparse_agrees_with_dense() {
        let shape = Shape::cube(6);
        let src = perturbed(shape);
        let rel = Relaxation::trt_from_viscosity(0.05);
        let mut flags = FlagField::new(shape);
        for (x, y, z) in shape.interior().iter() {
            flags.set_flags(x, y, z, CellFlags::FLUID);
        }
        let intervals = RowIntervals::build(&flags);
        for smag in [None, Some(0.17)] {
            let mut dense = SoaPdfField::<D3Q19>::new(shape);
            let mut rows = SoaPdfField::<D3Q19>::new(shape);
            stream_collide_mrt(&src, &mut dense, rel, smag);
            stream_collide_mrt_row_intervals(&src, &mut rows, &intervals, rel, smag);
            for (x, y, z) in shape.interior().iter() {
                for q in 0..19 {
                    assert_eq!(
                        dense.get(x, y, z, q).to_bits(),
                        rows.get(x, y, z, q).to_bits(),
                        "smag={smag:?} at ({x},{y},{z}) q={q}"
                    );
                }
            }
        }
    }
}
