//! Tier 2: kernels specialized to the D3Q19 model (paper §4.1).
//!
//! Compared to the generic tier, streaming and collision are fused into a
//! single pass over an Array-of-Structures field, pull offsets are
//! precomputed per direction, and the macroscopic-value calculation
//! eliminates common subexpressions: the density and the three momentum
//! components are accumulated from grouped sums, and the `c_q · u` products
//! are shared between antiparallel directions.

use crate::stats::SweepStats;
use trillium_field::{AosPdfField, PdfField, Region};
use trillium_lattice::d3q19::{dir, C, Q, W as WEIGHTS};
use trillium_lattice::{Relaxation, D3Q19};

/// Pull offsets in units of *cells* for each direction: the index of the
/// upwind neighbor is `cell − offset[q]`.
#[inline(always)]
fn pull_offsets(sy: isize, sz: isize) -> [isize; Q] {
    let mut off = [0isize; Q];
    let mut q = 0;
    while q < Q {
        off[q] = C[q][0] as isize + C[q][1] as isize * sy + C[q][2] as isize * sz;
        q += 1;
    }
    off
}

/// Gathers the 19 upwind PDFs of the cell with linear index `cell`.
#[inline(always)]
fn gather(src: &[f64], cell: usize, off: &[isize; Q]) -> [f64; Q] {
    let mut f = [0.0; Q];
    for q in 0..Q {
        let s = (cell as isize - off[q]) as usize * Q + q;
        debug_assert!(s < src.len());
        // SAFETY: `cell` is an interior cell and every pull offset stays
        // within the ghost-padded allocation (|c| <= 1 per axis, ghost >= 1).
        f[q] = unsafe { *src.get_unchecked(s) };
    }
    f
}

/// Macroscopic density and velocity with grouped (common-subexpression
/// eliminated) sums.
#[inline(always)]
fn moments(f: &[f64; Q]) -> (f64, [f64; 3]) {
    use dir::*;
    let px = f[E] + f[NE] + f[SE] + f[TE] + f[BE];
    let mx = f[W] + f[NW] + f[SW] + f[TW] + f[BW];
    let py = f[N] + f[NE] + f[NW] + f[TN] + f[BN];
    let my = f[S] + f[SE] + f[SW] + f[TS] + f[BS];
    let pz = f[T] + f[TN] + f[TS] + f[TW] + f[TE];
    let mz = f[B] + f[BN] + f[BS] + f[BW] + f[BE];
    // Density: reuse the axis groups; only the N/S and C terms are missing
    // from the x groups.
    let rho = px + mx + f[N] + f[S] + f[TN] + f[TS] + f[BN] + f[BS] + f[T] + f[B] + f[C];
    let inv = 1.0 / rho;
    (rho, [(px - mx) * inv, (py - my) * inv, (pz - mz) * inv])
}

/// One fused stream–collide sweep with the SRT operator, specialized to
/// D3Q19 in AoS layout.
pub fn stream_collide_srt(
    src: &AosPdfField<D3Q19>,
    dst: &mut AosPdfField<D3Q19>,
    rel: Relaxation,
) -> SweepStats {
    stream_collide_srt_region(src, dst, rel, &src.shape().interior())
}

/// [`stream_collide_srt`] restricted to `region` (a subset of the
/// interior). Cell updates are independent, so sweeping a partition of
/// the interior region by region is bitwise identical to one full sweep.
pub fn stream_collide_srt_region(
    src: &AosPdfField<D3Q19>,
    dst: &mut AosPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    assert!(rel.is_srt(), "SRT kernel requires equal relaxation rates");
    assert_eq!(src.shape(), dst.shape());
    let shape = src.shape();
    assert!(shape.ghost >= 1);
    debug_assert_eq!(region.intersect(&shape.interior()), region.clone());
    let omega = -rel.lambda_e;
    let off = pull_offsets(shape.stride_y() as isize, shape.stride_z() as isize);
    let s = src.data();
    let d = dst.data_mut();
    let nx = region.x.len();

    for z in region.z.clone() {
        for y in region.y.clone() {
            let row = shape.idx(region.x.start, y, z);
            for x in 0..nx {
                let cell = row + x;
                let f = gather(s, cell, &off);
                let (rho, u) = moments(&f);
                collide_srt_cell(&f, rho, u, omega, &mut d[cell * Q..cell * Q + Q]);
            }
        }
    }
    SweepStats::dense(region.num_cells() as u64)
}

/// SRT collision of one cell, shared with the sparse kernels.
#[inline(always)]
pub(crate) fn collide_srt_cell(f: &[f64; Q], rho: f64, u: [f64; 3], omega: f64, out: &mut [f64]) {
    let (ux, uy, uz) = (u[0], u[1], u[2]);
    let u2 = ux * ux + uy * uy + uz * uz;
    let base = 1.0 - 1.5 * u2;
    let om1 = 1.0 - omega;
    // Per-weight prefactors.
    let t0 = omega * rho * WEIGHTS[0];
    let t1 = omega * rho * WEIGHTS[1];
    let t2 = omega * rho * WEIGHTS[7];
    #[inline(always)]
    fn term(t: f64, cu: f64, base: f64) -> f64 {
        t * (base + 3.0 * cu + 4.5 * cu * cu)
    }
    use dir::*;
    out[C] = om1 * f[C] + t0 * base;
    out[N] = om1 * f[N] + term(t1, uy, base);
    out[S] = om1 * f[S] + term(t1, -uy, base);
    out[W] = om1 * f[W] + term(t1, -ux, base);
    out[E] = om1 * f[E] + term(t1, ux, base);
    out[T] = om1 * f[T] + term(t1, uz, base);
    out[B] = om1 * f[B] + term(t1, -uz, base);
    // Shared diagonal dot products.
    let xy = ux + uy;
    let xmy = ux - uy;
    let xz = ux + uz;
    let xmz = ux - uz;
    let yz = uy + uz;
    let ymz = uy - uz;
    out[NW] = om1 * f[NW] + term(t2, -xmy, base);
    out[NE] = om1 * f[NE] + term(t2, xy, base);
    out[SW] = om1 * f[SW] + term(t2, -xy, base);
    out[SE] = om1 * f[SE] + term(t2, xmy, base);
    out[TN] = om1 * f[TN] + term(t2, yz, base);
    out[TS] = om1 * f[TS] + term(t2, -ymz, base);
    out[TW] = om1 * f[TW] + term(t2, -xmz, base);
    out[TE] = om1 * f[TE] + term(t2, xz, base);
    out[BN] = om1 * f[BN] + term(t2, ymz, base);
    out[BS] = om1 * f[BS] + term(t2, -yz, base);
    out[BW] = om1 * f[BW] + term(t2, -xz, base);
    out[BE] = om1 * f[BE] + term(t2, xmz, base);
}

/// TRT collision of one cell, shared with the sparse kernels.
#[inline(always)]
pub(crate) fn collide_trt_cell(
    f: &[f64; Q],
    rho: f64,
    u: [f64; 3],
    le: f64,
    lo: f64,
    out: &mut [f64],
) {
    let (ux, uy, uz) = (u[0], u[1], u[2]);
    let u2 = ux * ux + uy * uy + uz * uz;
    let base = 1.0 - 1.5 * u2;
    let t0 = rho * WEIGHTS[0];
    let t1 = rho * WEIGHTS[1];
    let t2 = rho * WEIGHTS[7];

    use dir::*;
    // Rest direction is purely even.
    out[C] = f[C] + le * (f[C] - t0 * base);

    // One antiparallel pair: a carries +cu, b carries −cu.
    #[inline(always)]
    fn pair(
        f: &[f64; Q],
        out: &mut [f64],
        a: usize,
        b: usize,
        t: f64,
        cu: f64,
        base: f64,
        le: f64,
        lo: f64,
    ) {
        let feq_even = t * (base + 4.5 * cu * cu);
        let feq_odd = t * 3.0 * cu;
        let fp = 0.5 * (f[a] + f[b]);
        let fm = 0.5 * (f[a] - f[b]);
        let d_even = le * (fp - feq_even);
        let d_odd = lo * (fm - feq_odd);
        out[a] = f[a] + d_even + d_odd;
        out[b] = f[b] + d_even - d_odd;
    }
    pair(f, out, N, S, t1, uy, base, le, lo);
    pair(f, out, E, W, t1, ux, base, le, lo);
    pair(f, out, T, B, t1, uz, base, le, lo);
    let xy = ux + uy;
    let xmy = ux - uy;
    let xz = ux + uz;
    let xmz = ux - uz;
    let yz = uy + uz;
    let ymz = uy - uz;
    pair(f, out, NE, SW, t2, xy, base, le, lo);
    pair(f, out, SE, NW, t2, xmy, base, le, lo);
    pair(f, out, TN, BS, t2, yz, base, le, lo);
    pair(f, out, BN, TS, t2, ymz, base, le, lo);
    pair(f, out, TE, BW, t2, xz, base, le, lo);
    pair(f, out, BE, TW, t2, xmz, base, le, lo);
}

/// One fused stream–collide sweep with the TRT operator, specialized to
/// D3Q19 in AoS layout.
pub fn stream_collide_trt(
    src: &AosPdfField<D3Q19>,
    dst: &mut AosPdfField<D3Q19>,
    rel: Relaxation,
) -> SweepStats {
    stream_collide_trt_region(src, dst, rel, &src.shape().interior())
}

/// [`stream_collide_trt`] restricted to `region`; see
/// [`stream_collide_srt_region`] for the partition guarantee.
pub fn stream_collide_trt_region(
    src: &AosPdfField<D3Q19>,
    dst: &mut AosPdfField<D3Q19>,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    assert_eq!(src.shape(), dst.shape());
    let shape = src.shape();
    assert!(shape.ghost >= 1);
    debug_assert_eq!(region.intersect(&shape.interior()), region.clone());
    let (le, lo) = (rel.lambda_e, rel.lambda_o);
    let off = pull_offsets(shape.stride_y() as isize, shape.stride_z() as isize);
    let s = src.data();
    let d = dst.data_mut();
    let nx = region.x.len();

    for z in region.z.clone() {
        for y in region.y.clone() {
            let row = shape.idx(region.x.start, y, z);
            for x in 0..nx {
                let cell = row + x;
                let f = gather(s, cell, &off);
                let (rho, u) = moments(&f);
                collide_trt_cell(&f, rho, u, le, lo, &mut d[cell * Q..cell * Q + Q]);
            }
        }
    }
    SweepStats::dense(region.num_cells() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic;
    use trillium_field::Shape;
    use trillium_lattice::MAGIC_TRT;

    fn perturbed_field(shape: Shape) -> AosPdfField<D3Q19> {
        let mut f = AosPdfField::<D3Q19>::new(shape);
        f.fill_equilibrium(1.0, [0.01, -0.02, 0.015]);
        for (i, v) in f.data_mut().iter_mut().enumerate() {
            *v += 5e-4 * (((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5);
        }
        f
    }

    /// The specialized kernel must agree with the generic textbook kernel
    /// to floating-point reassociation tolerance — this is the correctness
    /// anchor of the optimization ladder.
    #[test]
    fn specialized_srt_matches_generic() {
        let shape = Shape::new(5, 4, 3, 1);
        let src = perturbed_field(shape);
        let rel = Relaxation::srt_from_tau(0.83);
        let mut d_spec = AosPdfField::<D3Q19>::new(shape);
        let mut d_gen = AosPdfField::<D3Q19>::new(shape);
        stream_collide_srt(&src, &mut d_spec, rel);
        generic::stream_collide_srt(&src, &mut d_gen, rel);
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                let (a, b) = (d_spec.get(x, y, z, q), d_gen.get(x, y, z, q));
                assert!((a - b).abs() < 1e-14, "q={q} at ({x},{y},{z}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn specialized_trt_matches_generic() {
        let shape = Shape::new(4, 5, 3, 1);
        let src = perturbed_field(shape);
        let rel = Relaxation::trt_from_tau(0.76, MAGIC_TRT);
        let mut d_spec = AosPdfField::<D3Q19>::new(shape);
        let mut d_gen = AosPdfField::<D3Q19>::new(shape);
        stream_collide_trt(&src, &mut d_spec, rel);
        generic::stream_collide_trt(&src, &mut d_gen, rel);
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                let (a, b) = (d_spec.get(x, y, z, q), d_gen.get(x, y, z, q));
                assert!((a - b).abs() < 1e-14, "q={q} at ({x},{y},{z}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn trt_with_equal_rates_matches_srt() {
        let shape = Shape::cube(4);
        let src = perturbed_field(shape);
        let tau = 0.9;
        let half = tau - 0.5;
        let mut d_srt = AosPdfField::<D3Q19>::new(shape);
        let mut d_trt = AosPdfField::<D3Q19>::new(shape);
        stream_collide_srt(&src, &mut d_srt, Relaxation::srt_from_tau(tau));
        stream_collide_trt(&src, &mut d_trt, Relaxation::trt_from_tau(tau, half * half));
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                assert!((d_srt.get(x, y, z, q) - d_trt.get(x, y, z, q)).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn moments_match_reference() {
        let mut f = [0.0; Q];
        for (q, v) in f.iter_mut().enumerate() {
            *v = WEIGHTS[q] + 1e-3 * (q as f64 - 9.0);
        }
        let (rho, u) = moments(&f);
        let rho_ref = trillium_lattice::density::<D3Q19>(&f);
        let j_ref = trillium_lattice::momentum::<D3Q19>(&f);
        assert!((rho - rho_ref).abs() < 1e-14);
        for d in 0..3 {
            assert!((u[d] - j_ref[d] / rho_ref).abs() < 1e-14);
        }
    }
}
