//! Tier 1: the generic, textbook-style stream-pull kernel.
//!
//! Written for arbitrary lattice models through the [`LatticeModel`] trait
//! and arbitrary storage layouts through the [`PdfField`] trait — "a naive,
//! textbook-style implementation of the LB method, very similar to the
//! mathematical formulation" (paper §4.1). Streaming gathers each PDF from
//! the upwind neighbor, then the collision operator relaxes toward
//! equilibrium. No common subexpressions are eliminated and no layout
//! assumptions are made; this is the baseline of Fig. 3.

use crate::stats::SweepStats;
use trillium_field::{PdfField, Region};
use trillium_lattice::equilibrium::{equilibrium_even, equilibrium_odd};
use trillium_lattice::{equilibrium, LatticeModel, Relaxation};

/// One fused stream(pull)–collide sweep with the SRT (LBGK) operator over
/// all interior cells. `rel` must satisfy `rel.is_srt()`.
pub fn stream_collide_srt<M: LatticeModel, F: PdfField<M>>(
    src: &F,
    dst: &mut F,
    rel: Relaxation,
) -> SweepStats {
    stream_collide_srt_region(src, dst, rel, &src.shape().interior())
}

/// [`stream_collide_srt`] restricted to `region` (a subset of the
/// interior). The per-cell arithmetic is identical to the full sweep, so
/// sweeping a partition of the interior region by region produces bitwise
/// the same PDFs as one full sweep.
pub fn stream_collide_srt_region<M: LatticeModel, F: PdfField<M>>(
    src: &F,
    dst: &mut F,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    assert!(rel.is_srt(), "SRT kernel requires equal relaxation rates");
    let omega = -rel.lambda_e;
    let mut f = vec![0.0; M::Q];
    for (x, y, z) in region.iter() {
        // Streaming: pull each PDF from the upwind neighbor.
        for q in 0..M::Q {
            let c = M::velocities()[q];
            f[q] = src.get(x - c[0] as i32, y - c[1] as i32, z - c[2] as i32, q);
        }
        // Macroscopic values.
        let rho = trillium_lattice::density::<M>(&f);
        let u = {
            let j = trillium_lattice::momentum::<M>(&f);
            [j[0] / rho, j[1] / rho, j[2] / rho]
        };
        // Collision: relax every direction toward equilibrium.
        for q in 0..M::Q {
            let feq = equilibrium::<M>(q, rho, u);
            dst.set(x, y, z, q, f[q] - omega * (f[q] - feq));
        }
    }
    SweepStats::dense(region.num_cells() as u64)
}

/// One fused stream(pull)–collide sweep with the TRT operator over all
/// interior cells. With `λ_e = λ_o` this produces the same result as
/// [`stream_collide_srt`] (paper Eq. 8).
pub fn stream_collide_trt<M: LatticeModel, F: PdfField<M>>(
    src: &F,
    dst: &mut F,
    rel: Relaxation,
) -> SweepStats {
    stream_collide_trt_region(src, dst, rel, &src.shape().interior())
}

/// [`stream_collide_trt`] restricted to `region` (a subset of the
/// interior); see [`stream_collide_srt_region`] for the partition
/// guarantee.
pub fn stream_collide_trt_region<M: LatticeModel, F: PdfField<M>>(
    src: &F,
    dst: &mut F,
    rel: Relaxation,
    region: &Region,
) -> SweepStats {
    let (le, lo) = (rel.lambda_e, rel.lambda_o);
    let mut f = vec![0.0; M::Q];
    for (x, y, z) in region.iter() {
        for q in 0..M::Q {
            let c = M::velocities()[q];
            f[q] = src.get(x - c[0] as i32, y - c[1] as i32, z - c[2] as i32, q);
        }
        let rho = trillium_lattice::density::<M>(&f);
        let u = {
            let j = trillium_lattice::momentum::<M>(&f);
            [j[0] / rho, j[1] / rho, j[2] / rho]
        };
        // Rest direction: purely even.
        let feq0 = equilibrium::<M>(0, rho, u);
        dst.set(x, y, z, 0, f[0] + le * (f[0] - feq0));
        // Antiparallel pairs: split into symmetric and antisymmetric parts.
        for &(a, b) in M::pairs() {
            let fp = 0.5 * (f[a] + f[b]);
            let fm = 0.5 * (f[a] - f[b]);
            let feq_p = equilibrium_even::<M>(a, rho, u);
            let feq_m = equilibrium_odd::<M>(a, rho, u);
            let d_even = le * (fp - feq_p);
            let d_odd = lo * (fm - feq_m);
            dst.set(x, y, z, a, f[a] + d_even + d_odd);
            dst.set(x, y, z, b, f[b] + d_even - d_odd);
        }
    }
    SweepStats::dense(region.num_cells() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_field::{AosPdfField, Shape};
    use trillium_lattice::{D3Q19, MAGIC_TRT};

    /// A uniform equilibrium state is a fixed point of the collision
    /// operator, and with periodic-free interior pulls from an equally
    /// initialized ghost layer it must be exactly preserved.
    #[test]
    fn equilibrium_is_fixed_point_srt() {
        let shape = Shape::cube(4);
        let mut src = AosPdfField::<D3Q19>::new(shape);
        let mut dst = AosPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.02, -0.01, 0.005]);
        let stats = stream_collide_srt(&src, &mut dst, Relaxation::srt_from_tau(0.8));
        assert_eq!(stats.cells, 64);
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                let (a, b) = (src.get(x, y, z, q), dst.get(x, y, z, q));
                assert!((a - b).abs() < 1e-14, "PDF {q} changed at ({x},{y},{z})");
            }
        }
    }

    #[test]
    fn equilibrium_is_fixed_point_trt() {
        let shape = Shape::cube(4);
        let mut src = AosPdfField::<D3Q19>::new(shape);
        let mut dst = AosPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(0.95, [0.0, 0.03, -0.02]);
        stream_collide_trt(&src, &mut dst, Relaxation::trt_from_tau(0.7, MAGIC_TRT));
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                assert!((src.get(x, y, z, q) - dst.get(x, y, z, q)).abs() < 1e-14);
            }
        }
    }

    /// TRT with λ_e = λ_o must coincide with SRT bit-for-bit up to rounding
    /// (paper Eq. 8).
    #[test]
    fn trt_reduces_to_srt() {
        let shape = Shape::cube(5);
        let mut src = AosPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.0; 3]);
        // Perturb to a non-equilibrium state.
        for (i, v) in src.data_mut().iter_mut().enumerate() {
            *v += 1e-3 * ((i % 17) as f64 - 8.0) / 8.0;
        }
        let tau = 0.9;
        let srt_rel = Relaxation::srt_from_tau(tau);
        // TRT with the magic parameter chosen so that λ_o = λ_e.
        let half = tau - 0.5;
        let trt_rel = Relaxation::trt_from_tau(tau, half * half);

        let mut dst_srt = AosPdfField::<D3Q19>::new(shape);
        let mut dst_trt = AosPdfField::<D3Q19>::new(shape);
        stream_collide_srt(&src, &mut dst_srt, srt_rel);
        stream_collide_trt(&src, &mut dst_trt, trt_rel);
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                let (a, b) = (dst_srt.get(x, y, z, q), dst_trt.get(x, y, z, q));
                assert!((a - b).abs() < 1e-13, "mismatch at ({x},{y},{z}) q={q}: {a} vs {b}");
            }
        }
    }

    /// Mass is conserved by collision; with an equilibrium ghost layer the
    /// streaming flux through the boundary is balanced too.
    #[test]
    fn collision_conserves_mass_and_momentum_locally() {
        let shape = Shape::cube(3);
        let mut src = AosPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.0; 3]);
        for (i, v) in src.data_mut().iter_mut().enumerate() {
            *v += 1e-4 * ((i % 7) as f64);
        }
        let mut dst = AosPdfField::<D3Q19>::new(shape);
        stream_collide_trt(&src, &mut dst, Relaxation::trt_from_viscosity(0.05));
        // Compare collision invariants cell-by-cell against the pulled
        // (post-streaming, pre-collision) state.
        for (x, y, z) in shape.interior().iter() {
            let mut f = [0.0; 19];
            for q in 0..19 {
                let c = trillium_lattice::d3q19::C[q];
                f[q] = src.get(x - c[0] as i32, y - c[1] as i32, z - c[2] as i32, q);
            }
            let rho_pre = trillium_lattice::density::<D3Q19>(&f);
            let j_pre = trillium_lattice::momentum::<D3Q19>(&f);
            let rho_post = dst.density(x, y, z);
            let u_post = dst.velocity(x, y, z);
            assert!((rho_pre - rho_post).abs() < 1e-13);
            for d in 0..3 {
                assert!((j_pre[d] - rho_post * u_post[d]).abs() < 1e-13);
            }
        }
    }

    /// Streaming actually moves PDFs: a pulse in direction E at one cell
    /// must arrive at the +x neighbor after one sweep.
    #[test]
    fn streaming_transports_pdfs() {
        use trillium_lattice::d3q19::dir;
        let shape = Shape::cube(4);
        let mut src = AosPdfField::<D3Q19>::new(shape);
        let mut dst = AosPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.0; 3]);
        let bump = 0.01;
        let base = src.get(1, 1, 1, dir::E);
        src.set(1, 1, 1, dir::E, base + bump);
        // With tau = 1 the post-collision state equals the equilibrium of
        // the pulled values; easier: use tau very large => collision ~ none.
        stream_collide_srt(&src, &mut dst, Relaxation::srt_from_tau(1e12));
        // The bumped PDF traveled east to (2,1,1).
        let received = dst.get(2, 1, 1, dir::E);
        let neighbor = dst.get(3, 1, 1, dir::E);
        assert!(received > neighbor + bump * 0.9, "pulse did not arrive");
    }
}
