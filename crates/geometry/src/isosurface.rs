//! Marching-tetrahedra isosurface extraction.
//!
//! Turns an implicit domain (a [`SignedDistance`]) into a watertight,
//! outward-oriented triangle mesh. This substitutes for the paper's CTA
//! segmentation pipeline: the procedural vascular tree is defined
//! implicitly and extracted here, after which the *mesh-based* machinery
//! (octree, pseudonormals, voxelization) operates exactly as it would on a
//! clinical dataset.
//!
//! Each grid cube is decomposed into six tetrahedra sharing the main
//! diagonal; the decomposition is mirror-consistent across cube faces, so
//! shared face diagonals match between neighboring cubes and the extracted
//! surface is closed. Surface vertices are deduplicated per grid edge,
//! which makes the connectivity watertight by construction.

use crate::mesh::TriMesh;
use crate::sdf::SignedDistance;
use crate::vec3::Vec3;
use std::collections::HashMap;

/// The six tetrahedra of a cube, as cube-corner indices. Corner `i` has
/// coordinates `((i & 1), (i >> 1) & 1, (i >> 2) & 1)` — note this is x in
/// bit 0, y in bit 1, z in bit 2. All six share the main diagonal 0–7.
const TETS: [[usize; 4]; 6] =
    [[0, 1, 3, 7], [0, 3, 2, 7], [0, 2, 6, 7], [0, 6, 4, 7], [0, 4, 5, 7], [0, 5, 1, 7]];

/// Extracts the zero isosurface of `sdf` on a regular grid with `cell`
/// spacing covering the domain's bounding box (inflated by two cells).
pub fn marching_tetrahedra<S: SignedDistance + ?Sized>(sdf: &S, cell: f64) -> TriMesh {
    assert!(cell > 0.0);
    let bb = sdf.bounding_box().inflated(2.0 * cell);
    let ext = bb.extents();
    let nx = (ext.x / cell).ceil() as usize + 1;
    let ny = (ext.y / cell).ceil() as usize + 1;
    let nz = (ext.z / cell).ceil() as usize + 1;

    // Sample the SDF at all grid points; nudge exact zeros so no surface
    // vertex coincides with a grid point (keeps triangles non-degenerate).
    let point = |i: usize, j: usize, k: usize| {
        bb.min + Vec3 { x: i as f64 * cell, y: j as f64 * cell, z: k as f64 * cell }
    };
    let mut values = vec![0.0f64; nx * ny * nz];
    let vidx = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let mut v = sdf.signed_distance(point(i, j, k));
                if v == 0.0 {
                    v = 1e-12;
                }
                values[vidx(i, j, k)] = v;
            }
        }
    }

    let mut mesh = TriMesh::default();
    // Deduplicate surface vertices by the (sorted) grid-point index pair of
    // the edge they sit on.
    let mut edge_vertices: HashMap<(usize, usize), u32> = HashMap::new();

    let mut vertex_on_edge =
        |mesh: &mut TriMesh, ga: usize, gb: usize, pa: Vec3, pb: Vec3, va: f64, vb: f64| -> u32 {
            let key = (ga.min(gb), ga.max(gb));
            *edge_vertices.entry(key).or_insert_with(|| {
                let t = va / (va - vb);
                let p = pa + (pb - pa) * t;
                mesh.vertices.push(p);
                mesh.colors.push(0);
                (mesh.vertices.len() - 1) as u32
            })
        };

    let emit = |mesh: &mut TriMesh, a: u32, b: u32, c: u32, inside_ref: Vec3| {
        if a == b || b == c || a == c {
            return;
        }
        let (pa, pb, pc) =
            (mesh.vertices[a as usize], mesh.vertices[b as usize], mesh.vertices[c as usize]);
        let n = (pb - pa).cross(pc - pa);
        let centroid = (pa + pb + pc) / 3.0;
        // Outward orientation: normal points away from the inside
        // reference point.
        if n.dot(centroid - inside_ref) >= 0.0 {
            mesh.triangles.push([a, b, c]);
        } else {
            mesh.triangles.push([a, c, b]);
        }
    };

    for k in 0..nz - 1 {
        for j in 0..ny - 1 {
            for i in 0..nx - 1 {
                // Cube corner grid ids, positions and values.
                let mut gid = [0usize; 8];
                let mut pos = [Vec3::ZERO; 8];
                let mut val = [0.0f64; 8];
                for c in 0..8 {
                    let (di, dj, dk) = (c & 1, (c >> 1) & 1, (c >> 2) & 1);
                    gid[c] = vidx(i + di, j + dj, k + dk);
                    pos[c] = point(i + di, j + dj, k + dk);
                    val[c] = values[gid[c]];
                }
                // Quick reject: cube entirely on one side.
                if val.iter().all(|&v| v > 0.0) || val.iter().all(|&v| v < 0.0) {
                    continue;
                }

                for tet in &TETS {
                    let ins: Vec<usize> = tet.iter().copied().filter(|&c| val[c] < 0.0).collect();
                    let outs: Vec<usize> = tet.iter().copied().filter(|&c| val[c] >= 0.0).collect();
                    match ins.len() {
                        0 | 4 => {}
                        1 => {
                            let a = ins[0];
                            let vs: Vec<u32> = outs
                                .iter()
                                .map(|&o| {
                                    vertex_on_edge(
                                        &mut mesh, gid[a], gid[o], pos[a], pos[o], val[a], val[o],
                                    )
                                })
                                .collect();
                            emit(&mut mesh, vs[0], vs[1], vs[2], pos[a]);
                        }
                        3 => {
                            let o = outs[0];
                            let vs: Vec<u32> = ins
                                .iter()
                                .map(|&a| {
                                    vertex_on_edge(
                                        &mut mesh, gid[a], gid[o], pos[a], pos[o], val[a], val[o],
                                    )
                                })
                                .collect();
                            let inside_ref = (pos[ins[0]] + pos[ins[1]] + pos[ins[2]]) / 3.0;
                            emit(&mut mesh, vs[0], vs[1], vs[2], inside_ref);
                        }
                        2 => {
                            let (a, b) = (ins[0], ins[1]);
                            let (c, d) = (outs[0], outs[1]);
                            let pac = vertex_on_edge(
                                &mut mesh, gid[a], gid[c], pos[a], pos[c], val[a], val[c],
                            );
                            let pad = vertex_on_edge(
                                &mut mesh, gid[a], gid[d], pos[a], pos[d], val[a], val[d],
                            );
                            let pbd = vertex_on_edge(
                                &mut mesh, gid[b], gid[d], pos[b], pos[d], val[b], val[d],
                            );
                            let pbc = vertex_on_edge(
                                &mut mesh, gid[b], gid[c], pos[b], pos[c], val[b], val[c],
                            );
                            let inside_ref = (pos[a] + pos[b]) * 0.5;
                            // Quad p_ac → p_ad → p_bd → p_bc, split along a
                            // private diagonal.
                            emit(&mut mesh, pac, pad, pbd, inside_ref);
                            emit(&mut mesh, pac, pbd, pbc, inside_ref);
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdf::AnalyticSdf;
    use crate::vec3::vec3;

    #[test]
    fn sphere_extraction_is_watertight_with_correct_volume() {
        let sdf = AnalyticSdf::Sphere { center: vec3(0.0, 0.0, 0.0), radius: 1.0 };
        let mesh = marching_tetrahedra(&sdf, 0.1);
        assert!(mesh.num_triangles() > 100);
        assert!(mesh.is_watertight(), "extracted sphere not watertight");
        let vol = 4.0 / 3.0 * std::f64::consts::PI;
        let v = mesh.signed_volume();
        assert!(v > 0.0, "inward oriented: {v}");
        assert!((v - vol).abs() / vol < 0.05, "volume {v} vs {vol}");
    }

    #[test]
    fn capsule_extraction_is_watertight() {
        let sdf =
            AnalyticSdf::Capsule { a: vec3(0.0, 0.0, 0.0), b: vec3(0.0, 0.0, 3.0), radius: 0.5 };
        let mesh = marching_tetrahedra(&sdf, 0.08);
        assert!(mesh.is_watertight());
        // Cylinder volume + sphere volume.
        let vol = std::f64::consts::PI * 0.25 * 3.0 + 4.0 / 3.0 * std::f64::consts::PI * 0.125;
        let v = mesh.signed_volume();
        assert!((v - vol).abs() / vol < 0.05, "volume {v} vs {vol}");
    }

    #[test]
    fn union_extraction_is_watertight() {
        let sdf = AnalyticSdf::Union(vec![
            AnalyticSdf::Sphere { center: vec3(0.0, 0.0, 0.0), radius: 0.8 },
            AnalyticSdf::Sphere { center: vec3(1.0, 0.0, 0.0), radius: 0.8 },
        ]);
        let mesh = marching_tetrahedra(&sdf, 0.07);
        assert!(mesh.is_watertight());
        assert!(mesh.signed_volume() > 4.0 / 3.0 * std::f64::consts::PI * 0.512);
    }

    /// The extracted mesh feeds the mesh SDF; round-tripping through
    /// extraction must approximately reproduce the analytic distances.
    #[test]
    fn extracted_mesh_sdf_roundtrip() {
        use crate::sdf::{MeshSdf, SignedDistance};
        let exact = AnalyticSdf::Sphere { center: vec3(0.0, 0.0, 0.0), radius: 1.0 };
        let mesh = marching_tetrahedra(&exact, 0.1);
        let sdf = MeshSdf::new(mesh);
        for p in [vec3(0.0, 0.0, 0.0), vec3(0.0, 1.6, 0.0), vec3(0.5, 0.5, 0.0)] {
            let (dm, de) = (sdf.signed_distance(p), exact.signed_distance(p));
            assert!((dm - de).abs() < 0.06, "at {p:?}: {dm} vs {de}");
        }
    }
}
