#![warn(missing_docs)]
//! Complex-geometry handling for massively parallel LBM simulations
//! (paper §2.3).
//!
//! Vascular geometries are described by triangle surface meshes. This crate
//! implements the full initialization pipeline of the paper:
//!
//! * [`mesh`] — indexed triangle meshes with per-vertex colors (the paper
//!   encodes inflow/outflow surfaces as vertex colors),
//! * [`tri_dist`] — 3-D point-to-triangle distance (Jones),
//! * [`pseudonormals`] — angle-weighted pseudonormals for numerically
//!   stable inside/outside classification (Bærentzen & Aanæs),
//! * [`octree`] — hierarchical subdivision of the triangle set
//!   (Payne & Toga) reducing the number of point–triangle tests,
//! * [`sdf`] — the implicit signed distance function `φ(p, Γ)` combining
//!   the above, and analytic reference distance fields,
//! * [`isosurface`] — marching-tetrahedra surface extraction, used to turn
//!   procedural implicit domains into watertight triangle meshes,
//! * [`vascular`] — a procedural coronary-artery-tree generator standing in
//!   for the paper's CTA dataset (see DESIGN.md for the substitution
//!   argument),
//! * [`voxelize`] — classification of blocks (intersection tests with
//!   circumsphere/insphere shortcuts) and cells (fluid marking, boundary
//!   hull, colored-cap boundary-condition assignment).

pub mod isosurface;
pub mod mesh;
pub mod meshio;
pub mod octree;
pub mod pseudonormals;
pub mod sdf;
pub mod tri_dist;
pub mod vascular;
pub mod vec3;
pub mod voxelize;

pub use mesh::{Aabb, TriMesh};
pub use meshio::{read_off, read_stl, write_off, write_stl};
pub use octree::TriangleOctree;
pub use sdf::{AnalyticSdf, MeshSdf, SignedDistance};
pub use vascular::{VascularTree, VascularTreeParams};
pub use vec3::Vec3;
pub use voxelize::{classify_block, voxelize_block, BlockCoverage, VoxelizeConfig};
