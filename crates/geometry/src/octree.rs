//! Hierarchical subdivision of geometric primitive sets into an octree
//! (paper §2.3, citing Payne & Toga) to accelerate closest-primitive
//! queries: instead of evaluating the distance against every primitive,
//! whole subtrees are pruned by comparing the query's current best
//! distance against node bounding boxes.
//!
//! [`Octree`] is generic over the primitive (it stores only indices and
//! boxes); [`TriangleOctree`] specializes it to mesh triangles — the
//! structure the paper uses for `t̂(p) = argmin_t d(p, t)` — and the
//! vascular tree reuses the same structure over capsule segments.

use crate::mesh::{Aabb, TriMesh};
use crate::tri_dist::{closest_point_triangle, Feature};
use crate::vec3::Vec3;

/// Maximum primitives per leaf before splitting.
const LEAF_SIZE: usize = 16;
/// Maximum tree depth (guards against degenerate inputs).
const MAX_DEPTH: usize = 12;

enum Node {
    Leaf { prims: Vec<u32> },
    Inner { children: Vec<(Aabb, Node)> },
}

/// A spatial octree over an indexed set of primitives.
pub struct Octree {
    root: Node,
    root_bb: Aabb,
}

impl Octree {
    /// Builds the octree from per-primitive bounding boxes.
    pub fn build(prim_bbs: &[Aabb]) -> Self {
        assert!(!prim_bbs.is_empty(), "cannot build an octree over nothing");
        let mut bb = Aabb::EMPTY;
        for b in prim_bbs {
            bb.grow_box(b);
        }
        let all: Vec<u32> = (0..prim_bbs.len() as u32).collect();
        let root = Self::build_node(prim_bbs, all, &bb, 0);
        Octree { root, root_bb: bb }
    }

    fn build_node(prim_bbs: &[Aabb], prims: Vec<u32>, bb: &Aabb, depth: usize) -> Node {
        if prims.len() <= LEAF_SIZE || depth >= MAX_DEPTH {
            return Node::Leaf { prims };
        }
        let c = bb.center();
        // Partition primitives among the eight octants by bounding-box
        // overlap; a primitive spanning several octants is replicated.
        let mut buckets: Vec<(Aabb, Vec<u32>)> = Vec::with_capacity(8);
        for oct in 0..8 {
            let min = Vec3 {
                x: if oct & 1 == 0 { bb.min.x } else { c.x },
                y: if oct & 2 == 0 { bb.min.y } else { c.y },
                z: if oct & 4 == 0 { bb.min.z } else { c.z },
            };
            let max = Vec3 {
                x: if oct & 1 == 0 { c.x } else { bb.max.x },
                y: if oct & 2 == 0 { c.y } else { bb.max.y },
                z: if oct & 4 == 0 { c.z } else { bb.max.z },
            };
            buckets.push((Aabb::new(min, max), Vec::new()));
        }
        for &t in &prims {
            let tb = &prim_bbs[t as usize];
            for (obb, list) in &mut buckets {
                let overlap = tb.min.x <= obb.max.x
                    && tb.max.x >= obb.min.x
                    && tb.min.y <= obb.max.y
                    && tb.max.y >= obb.min.y
                    && tb.min.z <= obb.max.z
                    && tb.max.z >= obb.min.z;
                if overlap {
                    list.push(t);
                }
            }
        }
        // If splitting does not reduce the largest bucket meaningfully
        // (e.g. all primitives cross the center), stop subdividing.
        let max_bucket = buckets.iter().map(|(_, l)| l.len()).max().unwrap_or(0);
        if max_bucket + max_bucket / 4 >= prims.len() {
            return Node::Leaf { prims };
        }
        let children = buckets
            .into_iter()
            .filter(|(_, l)| !l.is_empty())
            .map(|(obb, l)| {
                let node = Self::build_node(prim_bbs, l, &obb, depth + 1);
                (obb, node)
            })
            .collect();
        Node::Inner { children }
    }

    /// Bounding box of the whole primitive set.
    pub fn aabb(&self) -> Aabb {
        self.root_bb
    }

    /// Finds the primitive minimizing `dist_sq_of(i)` with best-first
    /// descent and box pruning. Returns `(index, dist_sq)`.
    pub fn nearest(&self, p: Vec3, dist_sq_of: &mut dyn FnMut(usize) -> f64) -> (usize, f64) {
        let mut best = (usize::MAX, f64::INFINITY);
        Self::nearest_rec(&self.root, p, dist_sq_of, &mut best);
        debug_assert!(best.0 != usize::MAX);
        best
    }

    fn nearest_rec(
        node: &Node,
        p: Vec3,
        dist_sq_of: &mut dyn FnMut(usize) -> f64,
        best: &mut (usize, f64),
    ) {
        match node {
            Node::Leaf { prims } => {
                for &t in prims {
                    let d2 = dist_sq_of(t as usize);
                    if d2 < best.1 {
                        *best = (t as usize, d2);
                    }
                }
            }
            Node::Inner { children } => {
                // Visit children closest-first for effective pruning.
                let mut order: Vec<(f64, usize)> =
                    children.iter().enumerate().map(|(i, (bb, _))| (bb.dist_sq(p), i)).collect();
                order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for (d2, i) in order {
                    if d2 >= best.1 {
                        break;
                    }
                    Self::nearest_rec(&children[i].1, p, dist_sq_of, best);
                }
            }
        }
    }
}

/// Result of a nearest-triangle query.
#[derive(Copy, Clone, Debug)]
pub struct NearestHit {
    /// Index of the closest triangle `t̂(p)`.
    pub triangle: usize,
    /// Closest point on that triangle.
    pub point: Vec3,
    /// The feature of the triangle the closest point lies on.
    pub feature: Feature,
    /// Squared distance to the query point.
    pub dist_sq: f64,
}

/// An octree over the triangles of one mesh.
pub struct TriangleOctree {
    tree: Octree,
}

impl TriangleOctree {
    /// Builds the octree over all triangles of `mesh`.
    pub fn build(mesh: &TriMesh) -> Self {
        assert!(mesh.num_triangles() > 0, "cannot build an octree over an empty mesh");
        let tri_bbs: Vec<Aabb> = (0..mesh.num_triangles()).map(|t| mesh.tri_aabb(t)).collect();
        TriangleOctree { tree: Octree::build(&tri_bbs) }
    }

    /// Bounding box of the whole triangle set.
    pub fn aabb(&self) -> Aabb {
        self.tree.aabb()
    }

    /// Finds the triangle of `mesh` closest to `p` (the `t̂(p)` of the
    /// paper).
    pub fn nearest(&self, mesh: &TriMesh, p: Vec3) -> NearestHit {
        let (t, d2) = self.tree.nearest(p, &mut |i| {
            let [a, b, c] = mesh.tri(i);
            crate::tri_dist::dist_sq_triangle(p, a, b, c)
        });
        // Recompute the winner's closest point and feature once.
        let [a, b, c] = mesh.tri(t);
        let (cp, feature) = closest_point_triangle(p, a, b, c);
        NearestHit { triangle: t, point: cp, feature, dist_sq: d2 }
    }

    /// Brute-force nearest triangle — reference implementation for tests.
    pub fn nearest_brute_force(mesh: &TriMesh, p: Vec3) -> NearestHit {
        let mut best = NearestHit {
            triangle: usize::MAX,
            point: Vec3::ZERO,
            feature: Feature::Face,
            dist_sq: f64::INFINITY,
        };
        for t in 0..mesh.num_triangles() {
            let [a, b, c] = mesh.tri(t);
            let (cp, feature) = closest_point_triangle(p, a, b, c);
            let d2 = cp.dist_sq(p);
            if d2 < best.dist_sq {
                best = NearestHit { triangle: t, point: cp, feature, dist_sq: d2 };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::vec3;

    #[test]
    fn octree_matches_brute_force_on_sphere() {
        let m = TriMesh::make_sphere(vec3(0.0, 0.0, 0.0), 1.0, 16, 32);
        let tree = TriangleOctree::build(&m);
        let queries = [
            vec3(2.0, 0.0, 0.0),
            vec3(0.0, 0.0, 0.0),
            vec3(0.5, 0.5, 0.5),
            vec3(-3.0, 1.0, 0.2),
            vec3(0.1, -0.2, 0.95),
            vec3(10.0, 10.0, 10.0),
        ];
        for p in queries {
            let fast = tree.nearest(&m, p);
            let slow = TriangleOctree::nearest_brute_force(&m, p);
            assert!(
                (fast.dist_sq - slow.dist_sq).abs() < 1e-12,
                "distance mismatch at {p:?}: {} vs {}",
                fast.dist_sq,
                slow.dist_sq
            );
        }
    }

    #[test]
    fn sphere_distance_is_radius_offset() {
        let m = TriMesh::make_sphere(vec3(0.0, 0.0, 0.0), 1.0, 48, 96);
        let tree = TriangleOctree::build(&m);
        // A point at radius 3: distance must be close to 2.
        let hit = tree.nearest(&m, vec3(3.0, 0.0, 0.0));
        assert!((hit.dist_sq.sqrt() - 2.0).abs() < 0.01);
        // Center: distance close to 1 (inradius of the tessellation).
        let hit = tree.nearest(&m, vec3(0.0, 0.0, 0.0));
        assert!((hit.dist_sq.sqrt() - 1.0).abs() < 0.01);
    }

    #[test]
    fn octree_on_many_random_queries() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let m = TriMesh::make_tube(vec3(0.0, 0.0, 0.0), vec3(0.0, 0.0, 10.0), 1.0, 32, 1, 2);
        let tree = TriangleOctree::build(&m);
        for _ in 0..200 {
            let p =
                vec3(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0), rng.gen_range(-2.0..12.0));
            let fast = tree.nearest(&m, p);
            let slow = TriangleOctree::nearest_brute_force(&m, p);
            assert!((fast.dist_sq - slow.dist_sq).abs() < 1e-12, "mismatch at {p:?}");
        }
    }

    #[test]
    fn generic_octree_over_points() {
        // Use degenerate boxes as point primitives.
        let pts: Vec<Vec3> = (0..100)
            .map(|i| vec3((i % 10) as f64, (i / 10) as f64, ((i * 7) % 5) as f64))
            .collect();
        let bbs: Vec<Aabb> = pts.iter().map(|&p| Aabb::new(p, p)).collect();
        let tree = Octree::build(&bbs);
        let q = vec3(4.3, 6.8, 1.2);
        let (i, d2) = tree.nearest(q, &mut |i| pts[i].dist_sq(q));
        // Verify against brute force.
        let (bi, bd2) = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, p.dist_sq(q)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(i, bi);
        assert!((d2 - bd2).abs() < 1e-15);
    }
}
