//! Indexed triangle surface meshes with per-vertex colors.

use crate::vec3::{vec3, Vec3};
use std::collections::HashMap;

/// An axis-aligned bounding box.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// The empty box (inverted bounds); extend with [`Aabb::grow`].
    pub const EMPTY: Aabb = Aabb {
        min: vec3(f64::INFINITY, f64::INFINITY, f64::INFINITY),
        max: vec3(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Creates a box from two corners.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// Extends the box to contain `p`.
    pub fn grow(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Extends the box to contain another box.
    pub fn grow_box(&mut self, b: &Aabb) {
        self.min = self.min.min(b.min);
        self.max = self.max.max(b.max);
    }

    /// Center point.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths.
    pub fn extents(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume (0 for degenerate boxes).
    pub fn volume(&self) -> f64 {
        let e = self.extents();
        (e.x.max(0.0)) * (e.y.max(0.0)) * (e.z.max(0.0))
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Squared distance from `p` to the box (0 if inside).
    pub fn dist_sq(&self, p: Vec3) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        let dz = (self.min.z - p.z).max(0.0).max(p.z - self.max.z);
        dx * dx + dy * dy + dz * dz
    }

    /// Radius of the circumscribed sphere around the box center.
    pub fn circumradius(&self) -> f64 {
        self.extents().norm() * 0.5
    }

    /// Radius of the inscribed sphere around the box center.
    pub fn inradius(&self) -> f64 {
        let e = self.extents();
        0.5 * e.x.min(e.y).min(e.z)
    }

    /// The box grown by `margin` on all sides.
    pub fn inflated(&self, margin: f64) -> Aabb {
        let m = vec3(margin, margin, margin);
        Aabb::new(self.min - m, self.max + m)
    }
}

/// An indexed triangle mesh. Vertices may carry a color used to encode
/// boundary-condition regions (the paper colors inflow and outflow
/// surfaces).
#[derive(Clone, Debug, Default)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<Vec3>,
    /// Per-vertex color tags (same length as `vertices`, 0 = uncolored).
    pub colors: Vec<u32>,
    /// Triangles as CCW vertex index triples (outward-facing normals).
    pub triangles: Vec<[u32; 3]>,
}

impl TriMesh {
    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// The three corner positions of triangle `t`.
    #[inline(always)]
    pub fn tri(&self, t: usize) -> [Vec3; 3] {
        let [a, b, c] = self.triangles[t];
        [self.vertices[a as usize], self.vertices[b as usize], self.vertices[c as usize]]
    }

    /// (Non-normalized) face normal of triangle `t` — CCW orientation gives
    /// outward normals for a properly oriented closed mesh.
    pub fn face_normal(&self, t: usize) -> Vec3 {
        let [a, b, c] = self.tri(t);
        (b - a).cross(c - a)
    }

    /// Area of triangle `t`.
    pub fn tri_area(&self, t: usize) -> f64 {
        0.5 * self.face_normal(t).norm()
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f64 {
        (0..self.num_triangles()).map(|t| self.tri_area(t)).sum()
    }

    /// Bounding box of a single triangle.
    pub fn tri_aabb(&self, t: usize) -> Aabb {
        let [a, b, c] = self.tri(t);
        Aabb::new(a.min(b).min(c), a.max(b).max(c))
    }

    /// Bounding box of the whole mesh.
    pub fn aabb(&self) -> Aabb {
        let mut bb = Aabb::EMPTY;
        for &v in &self.vertices {
            bb.grow(v);
        }
        bb
    }

    /// Signed volume enclosed by the mesh (divergence theorem); positive
    /// for a closed, outward-oriented mesh.
    pub fn signed_volume(&self) -> f64 {
        let mut v6 = 0.0;
        for t in 0..self.num_triangles() {
            let [a, b, c] = self.tri(t);
            v6 += a.dot(b.cross(c));
        }
        v6 / 6.0
    }

    /// Checks 2-manifold watertightness: every undirected edge is shared by
    /// exactly two triangles, with opposite orientations.
    pub fn is_watertight(&self) -> bool {
        let mut directed: HashMap<(u32, u32), i32> = HashMap::new();
        for t in &self.triangles {
            for e in 0..3 {
                let a = t[e];
                let b = t[(e + 1) % 3];
                *directed.entry((a.min(b), a.max(b))).or_insert(0) += if a < b { 1 } else { -1 };
            }
        }
        // Each undirected edge must appear exactly once in each direction;
        // verify counts: net orientation 0 and total multiplicity 2.
        let mut undirected: HashMap<(u32, u32), u32> = HashMap::new();
        for t in &self.triangles {
            for e in 0..3 {
                let a = t[e];
                let b = t[(e + 1) % 3];
                *undirected.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        directed.values().all(|&net| net == 0) && undirected.values().all(|&n| n == 2)
    }

    /// Applies a uniform scale followed by a translation to all vertices —
    /// unit conversion of imported meshes (e.g. a CTA dataset in
    /// millimetres into the solver's metres).
    pub fn transform(&mut self, scale: f64, translate: Vec3) {
        assert!(scale > 0.0, "mirroring would flip the orientation");
        for v in &mut self.vertices {
            *v = *v * scale + translate;
        }
    }

    /// An axis-aligned box mesh (12 triangles, outward CCW orientation).
    pub fn make_box(bb: Aabb) -> TriMesh {
        let (lo, hi) = (bb.min, bb.max);
        let v = vec![
            vec3(lo.x, lo.y, lo.z), // 0
            vec3(hi.x, lo.y, lo.z), // 1
            vec3(hi.x, hi.y, lo.z), // 2
            vec3(lo.x, hi.y, lo.z), // 3
            vec3(lo.x, lo.y, hi.z), // 4
            vec3(hi.x, lo.y, hi.z), // 5
            vec3(hi.x, hi.y, hi.z), // 6
            vec3(lo.x, hi.y, hi.z), // 7
        ];
        let triangles = vec![
            // bottom (z = lo): outward is −z
            [0, 2, 1],
            [0, 3, 2],
            // top (z = hi): outward is +z
            [4, 5, 6],
            [4, 6, 7],
            // front (y = lo): outward −y
            [0, 1, 5],
            [0, 5, 4],
            // back (y = hi): outward +y
            [2, 3, 7],
            [2, 7, 6],
            // left (x = lo): outward −x
            [0, 4, 7],
            [0, 7, 3],
            // right (x = hi): outward +x
            [1, 2, 6],
            [1, 6, 5],
        ];
        let colors = vec![0; v.len()];
        TriMesh { vertices: v, colors, triangles }
    }

    /// A UV-sphere mesh with `rings × segments` resolution, outward CCW.
    pub fn make_sphere(center: Vec3, radius: f64, rings: usize, segments: usize) -> TriMesh {
        assert!(rings >= 2 && segments >= 3);
        let mut vertices = vec![center + vec3(0.0, 0.0, radius)];
        for r in 1..rings {
            let theta = std::f64::consts::PI * r as f64 / rings as f64;
            for s in 0..segments {
                let phi = 2.0 * std::f64::consts::PI * s as f64 / segments as f64;
                vertices.push(
                    center
                        + radius
                            * vec3(theta.sin() * phi.cos(), theta.sin() * phi.sin(), theta.cos()),
                );
            }
        }
        vertices.push(center + vec3(0.0, 0.0, -radius));
        let south = (vertices.len() - 1) as u32;
        let ring = |r: usize, s: usize| -> u32 { (1 + (r - 1) * segments + (s % segments)) as u32 };

        let mut triangles = Vec::new();
        // Top cap.
        for s in 0..segments {
            triangles.push([0, ring(1, s), ring(1, s + 1)]);
        }
        // Body.
        for r in 1..rings - 1 {
            for s in 0..segments {
                let (a, b) = (ring(r, s), ring(r, s + 1));
                let (c, d) = (ring(r + 1, s), ring(r + 1, s + 1));
                triangles.push([a, c, d]);
                triangles.push([a, d, b]);
            }
        }
        // Bottom cap.
        for s in 0..segments {
            triangles.push([south, ring(rings - 1, s + 1), ring(rings - 1, s)]);
        }
        let colors = vec![0; vertices.len()];
        TriMesh { vertices, colors, triangles }
    }

    /// A closed tube (cylinder with flat end caps) from `p0` to `p1` with
    /// radius `r`. End-cap vertices are colored `color0` (at `p0`) and
    /// `color1` (at `p1`) so the caps can carry inflow/outflow boundary
    /// conditions; the lateral wall is subdivided into four uncolored
    /// bands so wall triangles vote "uncolored" in the closest-triangle
    /// majority used for boundary-condition assignment.
    pub fn make_tube(
        p0: Vec3,
        p1: Vec3,
        r: f64,
        segments: usize,
        color0: u32,
        color1: u32,
    ) -> TriMesh {
        assert!(segments >= 3);
        const BANDS: usize = 4; // lateral subdivisions along the axis
        let axis_vec = p1 - p0;
        let axis = axis_vec.normalized();
        let u = axis.any_orthonormal();
        let v = axis.cross(u);
        let mut vertices = Vec::new();
        let mut colors = Vec::new();
        // Rings 0..=BANDS along the axis; only the end rings are colored.
        for ring in 0..=BANDS {
            let t = ring as f64 / BANDS as f64;
            let center = p0 + axis_vec * t;
            let color = if ring == 0 {
                color0
            } else if ring == BANDS {
                color1
            } else {
                0
            };
            for s in 0..segments {
                let phi = 2.0 * std::f64::consts::PI * s as f64 / segments as f64;
                vertices.push(center + r * (phi.cos() * u + phi.sin() * v));
                colors.push(color);
            }
        }
        vertices.push(p0);
        colors.push(color0);
        vertices.push(p1);
        colors.push(color1);
        let c0 = ((BANDS + 1) * segments) as u32;
        let c1 = c0 + 1;

        let ring = |rg: usize, s: usize| (rg * segments + s % segments) as u32;
        let mut triangles = Vec::new();
        for rg in 0..BANDS {
            for s in 0..segments {
                // Lateral wall (outward).
                triangles.push([ring(rg, s), ring(rg, s + 1), ring(rg + 1, s + 1)]);
                triangles.push([ring(rg, s), ring(rg + 1, s + 1), ring(rg + 1, s)]);
            }
        }
        for s in 0..segments {
            // Cap at p0 (outward is −axis).
            triangles.push([c0, ring(0, s + 1), ring(0, s)]);
            // Cap at p1 (outward is +axis).
            triangles.push([c1, ring(BANDS, s), ring(BANDS, s + 1)]);
        }
        TriMesh { vertices, colors, triangles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aabb_basics() {
        let mut bb = Aabb::EMPTY;
        bb.grow(vec3(1.0, 2.0, 3.0));
        bb.grow(vec3(-1.0, 0.0, 5.0));
        assert_eq!(bb.min, vec3(-1.0, 0.0, 3.0));
        assert_eq!(bb.max, vec3(1.0, 2.0, 5.0));
        assert!(bb.contains(vec3(0.0, 1.0, 4.0)));
        assert!(!bb.contains(vec3(0.0, 1.0, 6.0)));
        assert_eq!(bb.dist_sq(vec3(2.0, 1.0, 4.0)), 1.0);
        assert_eq!(bb.dist_sq(bb.center()), 0.0);
        assert_eq!(bb.volume(), 2.0 * 2.0 * 2.0);
    }

    #[test]
    fn box_mesh_is_watertight_with_correct_volume_and_area() {
        let bb = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(2.0, 3.0, 4.0));
        let m = TriMesh::make_box(bb);
        assert!(m.is_watertight());
        assert!((m.signed_volume() - 24.0).abs() < 1e-12);
        let area = 2.0 * (2.0 * 3.0 + 3.0 * 4.0 + 2.0 * 4.0);
        assert!((m.surface_area() - area).abs() < 1e-12);
    }

    #[test]
    fn sphere_mesh_converges_to_analytic_volume() {
        let m = TriMesh::make_sphere(vec3(1.0, -2.0, 0.5), 1.5, 32, 64);
        assert!(m.is_watertight());
        let vol = 4.0 / 3.0 * std::f64::consts::PI * 1.5f64.powi(3);
        assert!((m.signed_volume() - vol).abs() / vol < 0.01, "vol = {}", m.signed_volume());
    }

    #[test]
    fn tube_mesh_is_watertight_and_colored() {
        let m = TriMesh::make_tube(vec3(0.0, 0.0, 0.0), vec3(0.0, 0.0, 5.0), 1.0, 24, 1, 2);
        assert!(m.is_watertight());
        let vol = std::f64::consts::PI * 5.0;
        assert!((m.signed_volume() - vol).abs() / vol < 0.03);
        // Cap colors present.
        assert!(m.colors.iter().any(|&c| c == 1));
        assert!(m.colors.iter().any(|&c| c == 2));
    }

    #[test]
    fn transform_scales_volume_cubically() {
        let mut m = TriMesh::make_box(Aabb::new(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0)));
        m.transform(2.0, vec3(10.0, 0.0, -5.0));
        assert!((m.signed_volume() - 8.0).abs() < 1e-12);
        assert!(m.is_watertight());
        let bb = m.aabb();
        assert_eq!(bb.min, vec3(10.0, 0.0, -5.0));
        assert_eq!(bb.max, vec3(12.0, 2.0, -3.0));
    }

    #[test]
    fn outward_orientation() {
        // All face normals of a box around origin must point away from the
        // center.
        let m = TriMesh::make_box(Aabb::new(vec3(-1.0, -1.0, -1.0), vec3(1.0, 1.0, 1.0)));
        for t in 0..m.num_triangles() {
            let [a, b, c] = m.tri(t);
            let centroid = (a + b + c) / 3.0;
            assert!(m.face_normal(t).dot(centroid) > 0.0, "triangle {t} inward");
        }
    }
}
