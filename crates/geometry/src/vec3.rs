//! Minimal 3-D vector math used throughout the geometry pipeline.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 3-D vector / point with `f64` components.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

/// Shorthand constructor.
pub const fn vec3(x: f64, y: f64, z: f64) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = vec3(0.0, 0.0, 0.0);

    /// Creates a vector from an array.
    pub const fn from_array(a: [f64; 3]) -> Vec3 {
        vec3(a[0], a[1], a[2])
    }

    /// The components as an array.
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Dot product.
    #[inline(always)]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline(always)]
    pub fn cross(self, o: Vec3) -> Vec3 {
        vec3(self.y * o.z - self.z * o.y, self.z * o.x - self.x * o.z, self.x * o.y - self.y * o.x)
    }

    /// Squared Euclidean norm.
    #[inline(always)]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline(always)]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the same direction; panics on the zero vector in
    /// debug builds.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Squared distance to another point.
    #[inline(always)]
    pub fn dist_sq(self, o: Vec3) -> f64 {
        (self - o).norm_sq()
    }

    /// Distance to another point.
    #[inline(always)]
    pub fn dist(self, o: Vec3) -> f64 {
        self.dist_sq(o).sqrt()
    }

    /// Component-wise minimum.
    pub fn min(self, o: Vec3) -> Vec3 {
        vec3(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    pub fn max(self, o: Vec3) -> Vec3 {
        vec3(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// An arbitrary unit vector orthogonal to `self` (which must be
    /// nonzero).
    pub fn any_orthonormal(self) -> Vec3 {
        let a = if self.x.abs() < 0.9 { vec3(1.0, 0.0, 0.0) } else { vec3(0.0, 1.0, 0.0) };
        self.cross(a).normalized()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn add(self, o: Vec3) -> Vec3 {
        vec3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline(always)]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn sub(self, o: Vec3) -> Vec3 {
        vec3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn neg(self) -> Vec3 {
        vec3(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn mul(self, s: f64) -> Vec3 {
        vec3(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline(always)]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn div(self, s: f64) -> Vec3 {
        vec3(self.x / s, self.y / s, self.z / s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross() {
        let e1 = vec3(1.0, 0.0, 0.0);
        let e2 = vec3(0.0, 1.0, 0.0);
        assert_eq!(e1.dot(e2), 0.0);
        assert_eq!(e1.cross(e2), vec3(0.0, 0.0, 1.0));
        assert_eq!(e2.cross(e1), vec3(0.0, 0.0, -1.0));
    }

    #[test]
    fn norms_and_distances() {
        let v = vec3(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.normalized().norm(), 1.0);
        assert_eq!(vec3(1.0, 0.0, 0.0).dist(vec3(1.0, 1.0, 0.0)), 1.0);
    }

    #[test]
    fn orthonormal_is_orthogonal_unit() {
        for v in [vec3(1.0, 2.0, 3.0), vec3(0.0, 0.0, 1.0), vec3(-5.0, 0.1, 0.0)] {
            let o = v.any_orthonormal();
            assert!(v.dot(o).abs() < 1e-12);
            assert!((o.norm() - 1.0).abs() < 1e-12);
        }
    }
}
