//! Surface-mesh file I/O: binary/ASCII STL and OFF.
//!
//! The paper's pipeline starts from a triangle surface mesh on disk ("the
//! only communication required is the initial broadcast of S, which is
//! read by a single process from file", §2.3). STL is the ubiquitous
//! exchange format for watertight surfaces; OFF additionally preserves
//! indexed connectivity and per-vertex colors (which the paper uses to
//! tag inflow/outflow regions), so OFF is the lossless format here.

use crate::mesh::TriMesh;
use crate::vec3::{vec3, Vec3};
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Errors from the mesh readers.
#[derive(Debug)]
pub enum MeshIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The data does not parse as the expected format.
    Parse(String),
}

impl From<std::io::Error> for MeshIoError {
    fn from(e: std::io::Error) -> Self {
        MeshIoError::Io(e)
    }
}

fn parse_err<T>(msg: impl Into<String>) -> Result<T, MeshIoError> {
    Err(MeshIoError::Parse(msg.into()))
}

// ---------------------------------------------------------------- binary STL

/// Writes the mesh as binary STL (80-byte header, triangle soup; vertex
/// colors are not representable in STL and are dropped).
pub fn write_stl<W: Write>(mut w: W, mesh: &TriMesh) -> std::io::Result<()> {
    let mut header = [0u8; 80];
    let tag = b"trillium binary STL";
    header[..tag.len()].copy_from_slice(tag);
    w.write_all(&header)?;
    w.write_all(&(mesh.num_triangles() as u32).to_le_bytes())?;
    for t in 0..mesh.num_triangles() {
        let n = mesh.face_normal(t);
        let n = if n.norm_sq() > 0.0 { n.normalized() } else { Vec3::ZERO };
        for v in [n, mesh.tri(t)[0], mesh.tri(t)[1], mesh.tri(t)[2]] {
            w.write_all(&(v.x as f32).to_le_bytes())?;
            w.write_all(&(v.y as f32).to_le_bytes())?;
            w.write_all(&(v.z as f32).to_le_bytes())?;
        }
        w.write_all(&0u16.to_le_bytes())?; // attribute byte count
    }
    Ok(())
}

/// Reads a binary STL, welding identical vertices so the result is an
/// indexed mesh again (bitwise-equal f32 positions weld; this restores
/// watertight connectivity for meshes written by [`write_stl`]).
pub fn read_stl(data: &[u8]) -> Result<TriMesh, MeshIoError> {
    if data.len() < 84 {
        return parse_err("STL too short");
    }
    let n = u32::from_le_bytes(data[80..84].try_into().unwrap()) as usize;
    let need = 84 + n * 50;
    if data.len() < need {
        return parse_err(format!("STL truncated: {} < {}", data.len(), need));
    }
    let mut mesh = TriMesh::default();
    let mut index: HashMap<[u32; 3], u32> = HashMap::new();
    let mut vertex = |mesh: &mut TriMesh, bits: [u32; 3]| -> u32 {
        *index.entry(bits).or_insert_with(|| {
            mesh.vertices.push(vec3(
                f32::from_bits(bits[0]) as f64,
                f32::from_bits(bits[1]) as f64,
                f32::from_bits(bits[2]) as f64,
            ));
            mesh.colors.push(0);
            (mesh.vertices.len() - 1) as u32
        })
    };
    for t in 0..n {
        let base = 84 + t * 50 + 12; // skip the normal
        let mut ids = [0u32; 3];
        for (v, id) in ids.iter_mut().enumerate() {
            let o = base + v * 12;
            let bits = [
                u32::from_le_bytes(data[o..o + 4].try_into().unwrap()),
                u32::from_le_bytes(data[o + 4..o + 8].try_into().unwrap()),
                u32::from_le_bytes(data[o + 8..o + 12].try_into().unwrap()),
            ];
            *id = vertex(&mut mesh, bits);
        }
        mesh.triangles.push(ids);
    }
    Ok(mesh)
}

// ------------------------------------------------------------------- OFF

/// Writes the mesh as (C)OFF: indexed vertices with optional per-vertex
/// colors (written when any vertex carries a nonzero color tag; the tag
/// is stored in the red channel so it round-trips exactly for tags < 256).
pub fn write_off<W: Write>(mut w: W, mesh: &TriMesh) -> std::io::Result<()> {
    let colored = mesh.colors.iter().any(|&c| c != 0);
    writeln!(w, "{}", if colored { "COFF" } else { "OFF" })?;
    writeln!(w, "{} {} 0", mesh.vertices.len(), mesh.num_triangles())?;
    for (i, v) in mesh.vertices.iter().enumerate() {
        if colored {
            writeln!(w, "{} {} {} {} 0 0 255", v.x, v.y, v.z, mesh.colors[i])?;
        } else {
            writeln!(w, "{} {} {}", v.x, v.y, v.z)?;
        }
    }
    for t in &mesh.triangles {
        writeln!(w, "3 {} {} {}", t[0], t[1], t[2])?;
    }
    Ok(())
}

/// Reads an OFF/COFF mesh written by [`write_off`] (or any standard OFF
/// with triangle faces).
pub fn read_off<R: BufRead>(r: R) -> Result<TriMesh, MeshIoError> {
    let mut lines = r
        .lines()
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or_else(|| MeshIoError::Parse("empty OFF".into()))?;
    let colored = match header.as_str() {
        "OFF" => false,
        "COFF" => true,
        h => return parse_err(format!("not an OFF file: {h}")),
    };
    let counts = lines.next().ok_or_else(|| MeshIoError::Parse("missing counts".into()))?;
    let mut it = counts.split_whitespace();
    let nv: usize = it.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let nf: usize = it.next().and_then(|s| s.parse().ok()).unwrap_or(0);

    let mut mesh = TriMesh::default();
    for _ in 0..nv {
        let line = lines.next().ok_or_else(|| MeshIoError::Parse("missing vertex".into()))?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 3 {
            return parse_err(format!("bad vertex line: {line}"));
        }
        let p = vec3(
            toks[0].parse().map_err(|_| MeshIoError::Parse("bad coord".into()))?,
            toks[1].parse().map_err(|_| MeshIoError::Parse("bad coord".into()))?,
            toks[2].parse().map_err(|_| MeshIoError::Parse("bad coord".into()))?,
        );
        mesh.vertices.push(p);
        let color = if colored && toks.len() >= 4 { toks[3].parse().unwrap_or(0) } else { 0 };
        mesh.colors.push(color);
    }
    for _ in 0..nf {
        let line = lines.next().ok_or_else(|| MeshIoError::Parse("missing face".into()))?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.first() != Some(&"3") || toks.len() < 4 {
            return parse_err(format!("non-triangle face: {line}"));
        }
        let t = [
            toks[1].parse().map_err(|_| MeshIoError::Parse("bad index".into()))?,
            toks[2].parse().map_err(|_| MeshIoError::Parse("bad index".into()))?,
            toks[3].parse().map_err(|_| MeshIoError::Parse("bad index".into()))?,
        ];
        for &i in &t {
            if i as usize >= mesh.vertices.len() {
                return parse_err("face index out of range");
            }
        }
        mesh.triangles.push(t);
    }
    Ok(mesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Aabb;

    fn sample() -> TriMesh {
        let mut m = TriMesh::make_sphere(vec3(0.5, -1.0, 2.0), 1.3, 10, 14);
        // Tag a few vertices with colors.
        m.colors[0] = 1;
        m.colors[5] = 2;
        m
    }

    #[test]
    fn stl_roundtrip_preserves_geometry_and_watertightness() {
        let m = sample();
        let mut buf = Vec::new();
        write_stl(&mut buf, &m).unwrap();
        assert_eq!(buf.len(), 84 + 50 * m.num_triangles());
        let back = read_stl(&buf).unwrap();
        assert_eq!(back.num_triangles(), m.num_triangles());
        // Vertex welding restores connectivity: watertight again.
        assert!(back.is_watertight());
        // Geometry within f32 precision.
        assert!((back.signed_volume() - m.signed_volume()).abs() < 1e-4 * m.signed_volume());
        let (a, b) = (m.aabb(), back.aabb());
        assert!((a.min - b.min).norm() < 1e-5);
        assert!((a.max - b.max).norm() < 1e-5);
    }

    #[test]
    fn off_roundtrip_is_lossless_with_colors() {
        let m = sample();
        let mut buf = Vec::new();
        write_off(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("COFF"));
        let back = read_off(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.vertices.len(), m.vertices.len());
        assert_eq!(back.triangles, m.triangles);
        assert_eq!(back.colors, m.colors);
        for (a, b) in m.vertices.iter().zip(&back.vertices) {
            assert!((*a - *b).norm() < 1e-12);
        }
        assert!(back.is_watertight());
    }

    #[test]
    fn uncolored_mesh_writes_plain_off() {
        let m = TriMesh::make_box(Aabb::new(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0)));
        let mut buf = Vec::new();
        write_off(&mut buf, &m).unwrap();
        assert!(String::from_utf8(buf.clone()).unwrap().starts_with("OFF\n8 12 0"));
        let back = read_off(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.signed_volume(), m.signed_volume());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(matches!(read_stl(&[0u8; 10]), Err(MeshIoError::Parse(_))));
        let not_off = b"PLY\n1 2 3\n";
        assert!(matches!(
            read_off(std::io::BufReader::new(&not_off[..])),
            Err(MeshIoError::Parse(_))
        ));
        // Truncated STL (claims 5 triangles, has 1).
        let m = sample();
        let mut buf = Vec::new();
        write_stl(&mut buf, &m).unwrap();
        buf.truncate(84 + 50);
        assert!(matches!(read_stl(&buf), Err(MeshIoError::Parse(_))));
        // Face index out of range in OFF.
        let bad = b"OFF\n1 1 0\n0 0 0\n3 0 1 2\n";
        assert!(matches!(read_off(std::io::BufReader::new(&bad[..])), Err(MeshIoError::Parse(_))));
    }

    /// The paper's workflow: write the colored vascular mesh, read it
    /// back, and drive the mesh-based SDF from the file contents.
    #[test]
    fn file_based_vascular_pipeline() {
        use crate::sdf::{MeshSdf, SignedDistance};
        use crate::vascular::{VascularTree, VascularTreeParams};
        let tree = VascularTree::generate(&VascularTreeParams {
            generations: 2,
            segments_per_branch: 1,
            tortuosity: 0.0,
            ..Default::default()
        });
        let mesh = tree.to_mesh(0.3);
        let mut buf = Vec::new();
        write_off(&mut buf, &mesh).unwrap();
        let back = read_off(std::io::BufReader::new(&buf[..])).unwrap();
        let sdf = MeshSdf::new(back);
        // Inside the root vessel.
        let (inlet, _) = tree.inlet;
        let p = vec3(inlet.x, inlet.y, inlet.z + 2.0);
        assert!(sdf.signed_distance(p) < 0.0);
        // Far outside.
        let far = tree.bounding_box().max + vec3(5.0, 5.0, 5.0);
        assert!(sdf.signed_distance(far) > 1.0);
    }
}
