//! Procedural coronary-artery-tree generator.
//!
//! The paper's weak- and strong-scaling experiments (§4.3) run on a human
//! coronary tree extracted from a CTA dataset — which we do not have. This
//! module generates the closest synthetic equivalent: a recursively
//! bifurcating vessel tree obeying Murray's law (`r_p³ = r_l³ + r_r³`) with
//! asymmetric child radii, randomized branching planes and mild
//! tortuosity. The defining property the experiments depend on is
//! reproduced: the tree fills only a fraction of a percent of its bounding
//! box, and the fraction of fluid cells per block grows as blocks shrink
//! toward the vessel diameter.
//!
//! The tree is represented as a union of capsule segments with an exact
//! signed distance ([`VascularTree::signed_distance`] via an octree over
//! segments), and can be converted to a watertight triangle mesh with
//! colored inflow/outflow caps through marching tetrahedra
//! ([`VascularTree::to_mesh`]).

use crate::mesh::{Aabb, TriMesh};
use crate::octree::Octree;
use crate::sdf::{AnalyticSdf, SignedDistance};
use crate::vec3::{vec3, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One capsule segment of the vessel tree.
#[derive(Copy, Clone, Debug)]
pub struct Segment {
    /// Proximal endpoint.
    pub a: Vec3,
    /// Distal endpoint.
    pub b: Vec3,
    /// Vessel radius of this segment.
    pub radius: f64,
}

impl Segment {
    fn aabb(&self) -> Aabb {
        let r = vec3(self.radius, self.radius, self.radius);
        Aabb::new(self.a.min(self.b) - r, self.a.max(self.b) + r)
    }

    fn signed_distance(&self, p: Vec3) -> f64 {
        AnalyticSdf::segment_distance(p, self.a, self.b) - self.radius
    }
}

/// Parameters of the procedural tree. The defaults produce a coronary-like
/// tree with a fluid fraction of a few tenths of a percent of the bounding
/// box, matching the ~0.3 % the paper reports for its CTA geometry.
#[derive(Copy, Clone, Debug)]
pub struct VascularTreeParams {
    /// RNG seed; the tree is fully deterministic given the seed.
    pub seed: u64,
    /// Number of bifurcation generations.
    pub generations: usize,
    /// Radius of the root vessel.
    pub root_radius: f64,
    /// Length of the root branch (tip to first bifurcation).
    pub root_length: f64,
    /// Child branch length as a fraction of the parent length.
    pub length_ratio: f64,
    /// Murray's-law exponent (3 for laminar flow).
    pub murray_exponent: f64,
    /// Radius asymmetry between siblings in [0, 0.8]: 0 = symmetric.
    pub asymmetry: f64,
    /// Mean total opening angle between siblings (radians).
    pub branch_angle: f64,
    /// Random jitter of branch directions (radians).
    pub jitter: f64,
    /// Straight sub-segments per branch (for mild curvature).
    pub segments_per_branch: usize,
    /// Tortuosity: lateral displacement per sub-segment as a fraction of
    /// the branch radius.
    pub tortuosity: f64,
}

impl Default for VascularTreeParams {
    fn default() -> Self {
        VascularTreeParams {
            seed: 0xC0DE_5EED,
            generations: 7,
            root_radius: 1.0,
            root_length: 8.0,
            length_ratio: 0.82,
            murray_exponent: 3.0,
            asymmetry: 0.35,
            branch_angle: 1.1,
            jitter: 0.25,
            segments_per_branch: 3,
            tortuosity: 0.3,
        }
    }
}

/// The generated tree: capsule segments plus inlet/outlet cap metadata and
/// a segment octree for fast signed-distance queries.
pub struct VascularTree {
    /// All capsule segments.
    pub segments: Vec<Segment>,
    /// Inlet cap: position (root proximal end) and vessel radius there.
    pub inlet: (Vec3, f64),
    /// Outlet caps: distal tips of all leaf branches.
    pub outlets: Vec<(Vec3, f64)>,
    tree: Octree,
    bb: Aabb,
    /// Largest segment radius; shifts the capsule metric so the octree's
    /// nearest query stays monotone (see `signed_distance`).
    max_radius: f64,
}

impl VascularTree {
    /// Generates the tree from `params`.
    pub fn generate(params: &VascularTreeParams) -> Self {
        assert!(params.generations >= 1 && params.segments_per_branch >= 1);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut segments = Vec::new();
        let mut outlets = Vec::new();

        struct Todo {
            start: Vec3,
            dir: Vec3,
            radius: f64,
            length: f64,
            generation: usize,
        }
        let root = Todo {
            start: Vec3::ZERO,
            dir: vec3(0.0, 0.0, 1.0),
            radius: params.root_radius,
            length: params.root_length,
            generation: 0,
        };
        let inlet = (root.start, root.radius);

        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            // Grow the branch as a mildly tortuous polyline.
            let n = params.segments_per_branch;
            let mut p = t.start;
            let mut d = t.dir;
            let step = t.length / n as f64;
            for _ in 0..n {
                // Lateral perturbation orthogonal to the current direction.
                let side = d.any_orthonormal();
                let side2 = d.cross(side);
                let amp = params.tortuosity * t.radius;
                let wobble = side * rng.gen_range(-amp..=amp) + side2 * rng.gen_range(-amp..=amp);
                let q = p + d * step + wobble;
                segments.push(Segment { a: p, b: q, radius: t.radius });
                d = (q - p).normalized();
                p = q;
            }

            if t.generation + 1 >= params.generations {
                outlets.push((p, t.radius));
                continue;
            }

            // Bifurcate: Murray's law with asymmetry.
            let asym = params.asymmetry * rng.gen_range(0.5..=1.0);
            // Flow split fractions.
            let (fl, fr) = (0.5 * (1.0 + asym), 0.5 * (1.0 - asym));
            let e = params.murray_exponent;
            let rl = t.radius * fl.powf(1.0 / e);
            let rr = t.radius * fr.powf(1.0 / e);

            // Branching plane: random orientation around the parent axis.
            let u = d.any_orthonormal();
            let v = d.cross(u);
            let phi = rng.gen_range(0.0..std::f64::consts::TAU);
            let plane = u * phi.cos() + v * phi.sin();

            // Smaller child bends away more (approximate optimality).
            let total = params.branch_angle + rng.gen_range(-params.jitter..=params.jitter);
            let ang_l = total * (rr * rr) / (rl * rl + rr * rr);
            let ang_r = total - ang_l;

            let rot = |axis_dir: Vec3, angle: f64| -> Vec3 {
                (d * angle.cos() + axis_dir * angle.sin()).normalized()
            };
            let len = t.length * params.length_ratio;
            stack.push(Todo {
                start: p,
                dir: rot(plane, ang_l),
                radius: rl,
                length: len * rng.gen_range(0.85..=1.15),
                generation: t.generation + 1,
            });
            stack.push(Todo {
                start: p,
                dir: rot(-plane, ang_r),
                radius: rr,
                length: len * rng.gen_range(0.85..=1.15),
                generation: t.generation + 1,
            });
        }

        let bbs: Vec<Aabb> = segments.iter().map(Segment::aabb).collect();
        let tree = Octree::build(&bbs);
        let mut bb = Aabb::EMPTY;
        for b in &bbs {
            bb.grow_box(b);
        }
        let max_radius = segments.iter().map(|s| s.radius).fold(0.0, f64::max);
        VascularTree { segments, inlet, outlets, tree, bb, max_radius }
    }

    /// Number of branches implied by the generation count (diagnostic).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Extracts a watertight surface mesh via marching tetrahedra and
    /// colors the inlet cap region with [`Self::INLET_COLOR`] and all
    /// outlet tip regions with [`Self::OUTLET_COLOR`].
    pub fn to_mesh(&self, cell: f64) -> TriMesh {
        let mut mesh = crate::isosurface::marching_tetrahedra(self, cell);
        for (i, v) in mesh.vertices.iter().enumerate() {
            let (ip, ir) = self.inlet;
            if v.dist(ip) < 1.5 * ir {
                mesh.colors[i] = Self::INLET_COLOR;
                continue;
            }
            for &(op, or) in &self.outlets {
                if v.dist(op) < 1.5 * or {
                    mesh.colors[i] = Self::OUTLET_COLOR;
                    break;
                }
            }
        }
        mesh
    }

    /// Vertex color tagging the inlet cap.
    pub const INLET_COLOR: u32 = 1;
    /// Vertex color tagging outlet caps.
    pub const OUTLET_COLOR: u32 = 2;

    /// Monte-Carlo estimate of the tree's volume fraction of its bounding
    /// box (the paper's geometry covers ~0.3 %).
    pub fn fluid_fraction_estimate(&self, samples: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let bb = self.bounding_box();
        let e = bb.extents();
        let mut inside = 0usize;
        for _ in 0..samples {
            let p = bb.min
                + vec3(
                    rng.gen_range(0.0..=1.0) * e.x,
                    rng.gen_range(0.0..=1.0) * e.y,
                    rng.gen_range(0.0..=1.0) * e.z,
                );
            if self.contains(p) {
                inside += 1;
            }
        }
        inside as f64 / samples as f64
    }
}

impl SignedDistance for VascularTree {
    fn signed_distance(&self, p: Vec3) -> f64 {
        // The minimum of capsule signed distances is the exact signed
        // distance of the union outside and a correct-sign bound inside.
        // The octree nearest-query minimizes (d + R)² is not monotone in d,
        // so query on the segment-axis distance and correct by the largest
        // radius margin: instead we simply minimize the capsule distance
        // shifted to be nonnegative (adding the global max radius).
        let shift = self.max_radius;
        let (_, d2) = self.tree.nearest(p, &mut |i| {
            let d = self.segments[i].signed_distance(p) + shift;
            debug_assert!(d >= 0.0);
            d * d
        });
        d2.sqrt() - shift
    }

    fn bounding_box(&self) -> Aabb {
        self.bb
    }

    fn boundary_color(&self, p: Vec3) -> u32 {
        let (ip, ir) = self.inlet;
        if p.dist(ip) < 1.5 * ir {
            return Self::INLET_COLOR;
        }
        for &(op, or) in &self.outlets {
            if p.dist(op) < 1.5 * or {
                return Self::OUTLET_COLOR;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> VascularTree {
        VascularTree::generate(&VascularTreeParams {
            generations: 5,
            segments_per_branch: 2,
            ..Default::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_tree();
        let b = small_tree();
        assert_eq!(a.num_segments(), b.num_segments());
        for (sa, sb) in a.segments.iter().zip(&b.segments) {
            assert_eq!(sa.a, sb.a);
            assert_eq!(sa.radius, sb.radius);
        }
    }

    #[test]
    fn branch_and_outlet_counts() {
        let t = small_tree();
        // 5 generations of binary branching: 2^5 - 1 = 31 branches of 2
        // segments each; 2^4 = 16 leaf outlets.
        assert_eq!(t.num_segments(), 31 * 2);
        assert_eq!(t.outlets.len(), 16);
    }

    #[test]
    fn murrays_law_shrinks_radii() {
        let t = small_tree();
        let rmax = t.segments.iter().map(|s| s.radius).fold(0.0, f64::max);
        let rmin = t.segments.iter().map(|s| s.radius).fold(f64::INFINITY, f64::min);
        assert_eq!(rmax, 1.0);
        // After 4 bifurcations radii must have shrunk substantially but
        // never below the symmetric Murray bound 2^(-4/3).
        assert!(rmin < 0.6);
        assert!(rmin > (0.5f64 - 0.35 * 0.5).powf(4.0 / 3.0) * 0.9);
    }

    #[test]
    fn signed_distance_matches_brute_force() {
        use rand::{Rng, SeedableRng};
        let t = small_tree();
        let bb = t.bounding_box();
        let e = bb.extents();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..300 {
            let p = bb.min
                + vec3(
                    rng.gen_range(-0.1..=1.1) * e.x,
                    rng.gen_range(-0.1..=1.1) * e.y,
                    rng.gen_range(-0.1..=1.1) * e.z,
                );
            let fast = t.signed_distance(p);
            let slow =
                t.segments.iter().map(|s| s.signed_distance(p)).fold(f64::INFINITY, f64::min);
            assert!((fast - slow).abs() < 1e-10, "at {p:?}: {fast} vs {slow}");
        }
    }

    #[test]
    fn tree_is_sparse_in_bounding_box() {
        let t = VascularTree::generate(&VascularTreeParams::default());
        let frac = t.fluid_fraction_estimate(20_000, 3);
        // Coronary-like sparsity: well under 5 %, above 0.01 %.
        assert!(frac < 0.05, "fraction {frac}");
        assert!(frac > 1e-4, "fraction {frac}");
    }

    #[test]
    fn inlet_is_inside_root_vessel() {
        let t = small_tree();
        let (ip, _) = t.inlet;
        // A point slightly along the root axis is inside the vessel.
        assert!(t.contains(ip + vec3(0.0, 0.0, 0.5)));
        assert_eq!(t.boundary_color(ip), VascularTree::INLET_COLOR);
    }

    #[test]
    fn mesh_extraction_produces_closed_colored_surface() {
        let t = VascularTree::generate(&VascularTreeParams {
            generations: 3,
            segments_per_branch: 2,
            ..Default::default()
        });
        let mesh = t.to_mesh(0.2);
        assert!(mesh.num_triangles() > 100);
        assert!(mesh.is_watertight());
        assert!(mesh.signed_volume() > 0.0);
        assert!(mesh.colors.contains(&VascularTree::INLET_COLOR));
        assert!(mesh.colors.contains(&VascularTree::OUTLET_COLOR));
    }
}
