//! Block classification and voxelization (paper §2.3).
//!
//! During initialization each block must decide whether it intersects the
//! domain `Λ` — with quick accepts/rejects through the block's circumsphere
//! and insphere radii — and, once assigned to a process, mark its lattice
//! cells: cells whose center lies inside `Λ` become fluid, the hull of the
//! fluid cells (morphological dilation w.r.t. the LBM stencil) becomes
//! boundary, and boundary cells are given a boundary condition according to
//! the color of the closest surface region (the paper uses vertex colors of
//! the closest triangle `t̂`).

use crate::mesh::Aabb;
use crate::sdf::SignedDistance;
use crate::vec3::{vec3, Vec3};
use trillium_field::{CellFlags, FlagField, FlagOps, Shape};

/// How a block relates to the computational domain.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BlockCoverage {
    /// No cell center inside the domain: the block is not needed.
    Outside,
    /// Every cell center inside the domain (dense fluid block).
    FullyInside,
    /// Some cell centers inside: a partially covered block.
    Intersecting,
}

/// Classifies a block against the domain.
///
/// Implements the paper's shortcut tests on the block barycenter `b̃`:
/// if `d(b̃, Γ) > R(b)` the surface is farther than the circumsphere and the
/// whole block lies on one side (decided by the sign); only otherwise are
/// cell centers tested individually.
pub fn classify_block<S: SignedDistance + ?Sized>(
    sdf: &S,
    bb: &Aabb,
    cells: [usize; 3],
) -> BlockCoverage {
    let d = sdf.signed_distance(bb.center());
    let circum = bb.circumradius();
    if d > circum {
        return BlockCoverage::Outside;
    }
    if d < -circum {
        return BlockCoverage::FullyInside;
    }
    // The surface passes near the block: test cell centers exhaustively.
    let n = block_fluid_cells(sdf, bb, cells);
    let total = cells[0] * cells[1] * cells[2];
    match n {
        0 => BlockCoverage::Outside,
        n if n == total => BlockCoverage::FullyInside,
        _ => BlockCoverage::Intersecting,
    }
}

/// Counts the cell centers of a block grid lying inside the domain.
pub fn block_fluid_cells<S: SignedDistance + ?Sized>(
    sdf: &S,
    bb: &Aabb,
    cells: [usize; 3],
) -> usize {
    let e = bb.extents();
    let d = vec3(e.x / cells[0] as f64, e.y / cells[1] as f64, e.z / cells[2] as f64);
    let mut count = 0;
    for k in 0..cells[2] {
        for j in 0..cells[1] {
            for i in 0..cells[0] {
                let p = bb.min
                    + vec3((i as f64 + 0.5) * d.x, (j as f64 + 0.5) * d.y, (k as f64 + 0.5) * d.z);
                if sdf.contains(p) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Cheap fluid-fraction estimate of a block by subsampling `s³` points.
pub fn block_fluid_fraction<S: SignedDistance + ?Sized>(sdf: &S, bb: &Aabb, s: usize) -> f64 {
    block_fluid_cells(sdf, bb, [s, s, s]) as f64 / (s * s * s) as f64
}

/// Configuration of the cell-classification pass.
#[derive(Clone, Debug)]
pub struct VoxelizeConfig {
    /// Stencil for the boundary-hull dilation (usually the D3Q19 stencil).
    pub stencil: Vec<[i8; 3]>,
    /// Maps a surface color to the boundary flag of hull cells nearest to
    /// surface regions of that color. Colors not listed become no-slip.
    pub color_map: Vec<(u32, CellFlags)>,
}

impl Default for VoxelizeConfig {
    fn default() -> Self {
        VoxelizeConfig { stencil: trillium_lattice::d3q19::C.to_vec(), color_map: Vec::new() }
    }
}

impl VoxelizeConfig {
    fn boundary_flag(&self, color: u32) -> CellFlags {
        self.color_map
            .iter()
            .find(|(c, _)| *c == color)
            .map(|&(_, f)| f)
            .unwrap_or(CellFlags::NOSLIP)
    }
}

/// Voxelizes one block: marks fluid cells (cell center inside `Λ`),
/// computes the boundary hull by dilation and assigns boundary conditions
/// by the surface color closest to each hull cell.
///
/// `origin` is the physical position of the lower corner of interior cell
/// `(0, 0, 0)`; `dx` the isotropic cell size. Ghost cells are classified
/// too (they mirror what the neighboring block computes for them).
pub fn voxelize_block<S: SignedDistance + ?Sized>(
    sdf: &S,
    origin: Vec3,
    dx: f64,
    shape: Shape,
    config: &VoxelizeConfig,
) -> FlagField {
    let mut flags = FlagField::new(shape);
    let center = |x: i32, y: i32, z: i32| {
        origin + vec3((x as f64 + 0.5) * dx, (y as f64 + 0.5) * dx, (z as f64 + 0.5) * dx)
    };
    for (x, y, z) in shape.with_ghosts().iter() {
        if sdf.contains(center(x, y, z)) {
            flags.set_flags(x, y, z, CellFlags::FLUID);
        }
    }
    // Hull: first mark generically as no-slip ...
    flags.dilate_hull(&config.stencil, CellFlags::NOSLIP);
    // ... then refine by surface color.
    if !config.color_map.is_empty() {
        let mut recolor = Vec::new();
        for (x, y, z) in shape.with_ghosts().iter() {
            if flags.flags(x, y, z).is_boundary() {
                let color = sdf.boundary_color(center(x, y, z));
                let f = config.boundary_flag(color);
                if f != CellFlags::NOSLIP {
                    recolor.push(((x, y, z), f));
                }
            }
        }
        for ((x, y, z), f) in recolor {
            flags.set_flags(x, y, z, f);
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdf::AnalyticSdf;

    fn sphere() -> AnalyticSdf {
        AnalyticSdf::Sphere { center: vec3(0.0, 0.0, 0.0), radius: 1.0 }
    }

    #[test]
    fn classify_far_block_is_outside_by_shortcut() {
        let bb = Aabb::new(vec3(5.0, 5.0, 5.0), vec3(6.0, 6.0, 6.0));
        assert_eq!(classify_block(&sphere(), &bb, [8, 8, 8]), BlockCoverage::Outside);
    }

    #[test]
    fn classify_center_block_fully_inside_by_shortcut() {
        let bb = Aabb::new(vec3(-0.2, -0.2, -0.2), vec3(0.2, 0.2, 0.2));
        assert_eq!(classify_block(&sphere(), &bb, [8, 8, 8]), BlockCoverage::FullyInside);
    }

    #[test]
    fn classify_straddling_block_intersects() {
        let bb = Aabb::new(vec3(0.5, -0.5, -0.5), vec3(1.5, 0.5, 0.5));
        assert_eq!(classify_block(&sphere(), &bb, [8, 8, 8]), BlockCoverage::Intersecting);
    }

    #[test]
    fn shortcut_and_exhaustive_agree() {
        // Scan a grid of blocks over the sphere: classification via the
        // shortcut path must match pure exhaustive counting.
        let s = sphere();
        for bx in -2..2 {
            for by in -2..2 {
                for bz in -2..2 {
                    let lo = vec3(bx as f64 * 0.8, by as f64 * 0.8, bz as f64 * 0.8);
                    let bb = Aabb::new(lo, lo + vec3(0.8, 0.8, 0.8));
                    let n = block_fluid_cells(&s, &bb, [6, 6, 6]);
                    let expect = match n {
                        0 => BlockCoverage::Outside,
                        216 => BlockCoverage::FullyInside,
                        _ => BlockCoverage::Intersecting,
                    };
                    assert_eq!(classify_block(&s, &bb, [6, 6, 6]), expect, "block at {lo:?}");
                }
            }
        }
    }

    #[test]
    fn voxelized_sphere_counts_match_volume() {
        let s = sphere();
        let shape = Shape::cube(24);
        let dx = 2.4 / 24.0;
        let origin = vec3(-1.2, -1.2, -1.2);
        let flags = voxelize_block(&s, origin, dx, shape, &VoxelizeConfig::default());
        let fluid = flags.count_fluid() as f64;
        let expect = 4.0 / 3.0 * std::f64::consts::PI / (dx * dx * dx);
        assert!((fluid - expect).abs() / expect < 0.05, "fluid {fluid} vs {expect}");
    }

    #[test]
    fn hull_separates_fluid_from_outside() {
        let s = sphere();
        let shape = Shape::cube(20);
        let dx = 2.4 / 20.0;
        let flags =
            voxelize_block(&s, vec3(-1.2, -1.2, -1.2), dx, shape, &VoxelizeConfig::default());
        // No interior fluid cell may have an unclassified stencil neighbor.
        for (x, y, z) in shape.interior().iter() {
            if !flags.flags(x, y, z).is_fluid() {
                continue;
            }
            for d in trillium_lattice::d3q19::C.iter().skip(1) {
                let f = flags.flags(x + d[0] as i32, y + d[1] as i32, z + d[2] as i32);
                assert!(
                    f.is_fluid() || f.is_boundary(),
                    "fluid at ({x},{y},{z}) touches unclassified cell"
                );
            }
        }
    }

    #[test]
    fn colored_caps_become_velocity_and_pressure() {
        // Tube along z with colored caps: inlet color 1 -> velocity BC,
        // outlet color 2 -> pressure BC.
        use crate::mesh::TriMesh;
        use crate::sdf::MeshSdf;
        let mesh = TriMesh::make_tube(vec3(0.0, 0.0, 0.0), vec3(0.0, 0.0, 3.0), 0.8, 24, 1, 2);
        let sdf = MeshSdf::new(mesh);
        let config = VoxelizeConfig {
            color_map: vec![(1, CellFlags::VELOCITY), (2, CellFlags::PRESSURE)],
            ..Default::default()
        };
        let shape = Shape::new(16, 16, 26, 1);
        let dx = 0.15;
        let origin = vec3(-1.2, -1.2, -0.3);
        let flags = voxelize_block(&sdf, origin, dx, shape, &config);
        assert!(flags.count_fluid() > 100);
        let count = |f: CellFlags| {
            shape.with_ghosts().iter().filter(|&(x, y, z)| flags.flags(x, y, z) == f).count()
        };
        assert!(count(CellFlags::VELOCITY) > 0, "no velocity cells");
        assert!(count(CellFlags::PRESSURE) > 0, "no pressure cells");
        assert!(count(CellFlags::NOSLIP) > 0, "no wall cells");
    }
}
