//! The implicit signed distance function `φ(p, Γ) = z · d(p, Γ)`
//! (paper §2.3, Eq. 9–11) and analytic reference distance fields.
//!
//! Negative values are *inside* the domain `Λ`, positive values outside —
//! the convention used by the voxelizer (`d(p, Γ) · z < 0` marks fluid).

use crate::mesh::{Aabb, TriMesh};
use crate::octree::TriangleOctree;
use crate::pseudonormals::Pseudonormals;
use crate::vec3::Vec3;

/// A domain described by a signed distance: negative inside.
pub trait SignedDistance: Send + Sync {
    /// Signed distance of `p` to the domain boundary `Γ`.
    fn signed_distance(&self, p: Vec3) -> f64;

    /// An axis-aligned box containing the whole domain.
    fn bounding_box(&self) -> Aabb;

    /// True if `p` lies inside the domain.
    fn contains(&self, p: Vec3) -> bool {
        self.signed_distance(p) < 0.0
    }

    /// Color tag of the boundary region nearest to `p`, used to assign
    /// boundary conditions (paper: vertex colors of the closest triangle).
    /// `0` means "uncolored" (default wall).
    fn boundary_color(&self, _p: Vec3) -> u32 {
        0
    }
}

/// Mesh-based signed distance: octree-accelerated closest-triangle query,
/// sign from the angle-weighted pseudonormal of the closest feature.
pub struct MeshSdf {
    mesh: TriMesh,
    octree: TriangleOctree,
    normals: Pseudonormals,
}

impl MeshSdf {
    /// Builds the acceleration structures for `mesh`, which must be closed
    /// and outward-oriented for the sign to be meaningful.
    pub fn new(mesh: TriMesh) -> Self {
        let octree = TriangleOctree::build(&mesh);
        let normals = Pseudonormals::build(&mesh);
        MeshSdf { mesh, octree, normals }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &TriMesh {
        &self.mesh
    }
}

impl SignedDistance for MeshSdf {
    fn signed_distance(&self, p: Vec3) -> f64 {
        let hit = self.octree.nearest(&self.mesh, p);
        let n = self.normals.of_feature(&self.mesh, hit.triangle, hit.feature);
        let d = hit.dist_sq.sqrt();
        if (p - hit.point).dot(n) >= 0.0 {
            d
        } else {
            -d
        }
    }

    fn bounding_box(&self) -> Aabb {
        self.octree.aabb()
    }

    fn boundary_color(&self, p: Vec3) -> u32 {
        let hit = self.octree.nearest(&self.mesh, p);
        // Majority color of the closest triangle's vertices; ties resolve
        // toward the numerically largest tag so inflow/outflow (tagged > 0)
        // win against untagged wall vertices at the seam.
        let tri = self.mesh.triangles[hit.triangle];
        let cols = [
            self.mesh.colors[tri[0] as usize],
            self.mesh.colors[tri[1] as usize],
            self.mesh.colors[tri[2] as usize],
        ];
        if cols[0] == cols[1] || cols[0] == cols[2] {
            cols[0]
        } else if cols[1] == cols[2] {
            cols[1]
        } else {
            *cols.iter().max().unwrap()
        }
    }
}

/// Analytic signed distance fields for validation and procedural domains.
pub enum AnalyticSdf {
    /// Sphere with `center` and `radius`.
    Sphere {
        /// Center point.
        center: Vec3,
        /// Radius.
        radius: f64,
    },
    /// Axis-aligned box.
    Box {
        /// The box.
        aabb: Aabb,
    },
    /// Capsule (cylinder with hemispherical caps) from `a` to `b`.
    Capsule {
        /// First endpoint of the axis.
        a: Vec3,
        /// Second endpoint of the axis.
        b: Vec3,
        /// Radius.
        radius: f64,
    },
    /// Union (minimum of distances). Exact outside, conservative inside.
    Union(Vec<AnalyticSdf>),
}

impl AnalyticSdf {
    /// Exact distance from `p` to the segment `a`–`b`.
    pub fn segment_distance(p: Vec3, a: Vec3, b: Vec3) -> f64 {
        let ab = b - a;
        let t = ((p - a).dot(ab) / ab.norm_sq()).clamp(0.0, 1.0);
        (a + ab * t).dist(p)
    }
}

impl SignedDistance for AnalyticSdf {
    fn signed_distance(&self, p: Vec3) -> f64 {
        match self {
            AnalyticSdf::Sphere { center, radius } => p.dist(*center) - radius,
            AnalyticSdf::Box { aabb } => {
                let c = aabb.center();
                let h = aabb.extents() * 0.5;
                let q = Vec3 {
                    x: (p.x - c.x).abs() - h.x,
                    y: (p.y - c.y).abs() - h.y,
                    z: (p.z - c.z).abs() - h.z,
                };
                let outside = Vec3 { x: q.x.max(0.0), y: q.y.max(0.0), z: q.z.max(0.0) }.norm();
                let inside = q.x.max(q.y).max(q.z).min(0.0);
                outside + inside
            }
            AnalyticSdf::Capsule { a, b, radius } => Self::segment_distance(p, *a, *b) - radius,
            AnalyticSdf::Union(parts) => {
                parts.iter().map(|s| s.signed_distance(p)).fold(f64::INFINITY, f64::min)
            }
        }
    }

    fn bounding_box(&self) -> Aabb {
        match self {
            AnalyticSdf::Sphere { center, radius } => Aabb::new(
                *center - Vec3 { x: *radius, y: *radius, z: *radius },
                *center + Vec3 { x: *radius, y: *radius, z: *radius },
            ),
            AnalyticSdf::Box { aabb } => *aabb,
            AnalyticSdf::Capsule { a, b, radius } => {
                let r = Vec3 { x: *radius, y: *radius, z: *radius };
                Aabb::new(a.min(*b) - r, a.max(*b) + r)
            }
            AnalyticSdf::Union(parts) => {
                let mut bb = Aabb::EMPTY;
                for s in parts {
                    bb.grow_box(&s.bounding_box());
                }
                bb
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::vec3;

    #[test]
    fn mesh_sdf_sign_and_distance_on_box() {
        let bb = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(2.0, 2.0, 2.0));
        let sdf = MeshSdf::new(TriMesh::make_box(bb));
        // Inside: negative with distance to the nearest face.
        let d = sdf.signed_distance(vec3(1.0, 1.0, 0.5));
        assert!((d + 0.5).abs() < 1e-12, "d = {d}");
        // Outside near a face.
        let d = sdf.signed_distance(vec3(1.0, 1.0, 3.0));
        assert!((d - 1.0).abs() < 1e-12);
        // Outside near an edge (the pseudonormal case).
        let d = sdf.signed_distance(vec3(3.0, 3.0, 1.0));
        assert!((d - 2.0f64.sqrt()).abs() < 1e-12);
        // Outside near a corner.
        let d = sdf.signed_distance(vec3(3.0, 3.0, 3.0));
        assert!((d - 3.0f64.sqrt()).abs() < 1e-12);
        // Just inside a corner (vertex pseudonormal must give negative).
        let d = sdf.signed_distance(vec3(0.05, 0.05, 0.05));
        assert!(d < 0.0);
    }

    #[test]
    fn mesh_sdf_matches_analytic_sphere() {
        let sdf_mesh = MeshSdf::new(TriMesh::make_sphere(vec3(0.0, 0.0, 0.0), 1.0, 32, 64));
        let sdf_exact = AnalyticSdf::Sphere { center: vec3(0.0, 0.0, 0.0), radius: 1.0 };
        for p in [
            vec3(0.0, 0.0, 0.0),
            vec3(0.5, 0.0, 0.0),
            vec3(0.0, 2.0, 0.0),
            vec3(1.5, 1.5, 1.5),
            vec3(-0.3, 0.4, -0.2),
        ] {
            let dm = sdf_mesh.signed_distance(p);
            let de = sdf_exact.signed_distance(p);
            assert!((dm - de).abs() < 0.02, "at {p:?}: mesh {dm} vs exact {de}");
            if de.abs() > 0.02 {
                assert_eq!(dm < 0.0, de < 0.0, "sign at {p:?}");
            }
        }
    }

    #[test]
    fn analytic_box_sdf() {
        let sdf = AnalyticSdf::Box { aabb: Aabb::new(vec3(-1.0, -1.0, -1.0), vec3(1.0, 1.0, 1.0)) };
        assert!((sdf.signed_distance(vec3(0.0, 0.0, 0.0)) + 1.0).abs() < 1e-12);
        assert!((sdf.signed_distance(vec3(2.0, 0.0, 0.0)) - 1.0).abs() < 1e-12);
        assert!((sdf.signed_distance(vec3(2.0, 2.0, 0.0)) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn capsule_sdf() {
        let sdf =
            AnalyticSdf::Capsule { a: vec3(0.0, 0.0, 0.0), b: vec3(0.0, 0.0, 4.0), radius: 0.5 };
        assert!(sdf.contains(vec3(0.0, 0.0, 2.0)));
        assert!(sdf.contains(vec3(0.3, 0.0, 0.0)));
        assert!(!sdf.contains(vec3(0.6, 0.0, 2.0)));
        assert!((sdf.signed_distance(vec3(0.0, 0.0, 5.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn union_takes_minimum() {
        let u = AnalyticSdf::Union(vec![
            AnalyticSdf::Sphere { center: vec3(0.0, 0.0, 0.0), radius: 1.0 },
            AnalyticSdf::Sphere { center: vec3(3.0, 0.0, 0.0), radius: 1.0 },
        ]);
        assert!(u.contains(vec3(0.0, 0.0, 0.0)));
        assert!(u.contains(vec3(3.0, 0.0, 0.0)));
        assert!(!u.contains(vec3(1.5, 0.0, 0.0)));
        let bb = u.bounding_box();
        assert_eq!(bb.min, vec3(-1.0, -1.0, -1.0));
        assert_eq!(bb.max, vec3(4.0, 1.0, 1.0));
    }

    #[test]
    fn tube_cap_colors_via_nearest_triangle() {
        let m = TriMesh::make_tube(vec3(0.0, 0.0, 0.0), vec3(0.0, 0.0, 10.0), 1.0, 24, 7, 9);
        let sdf = MeshSdf::new(m);
        // Near the p0 cap face: color 7.
        assert_eq!(sdf.boundary_color(vec3(0.0, 0.0, -0.1)), 7);
        // Near the p1 cap face: color 9.
        assert_eq!(sdf.boundary_color(vec3(0.0, 0.0, 10.1)), 9);
    }
}
