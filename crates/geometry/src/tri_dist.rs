//! 3-D point-to-triangle distance (paper §2.3, citing Jones 1995).
//!
//! Implements the Voronoi-region closest-point algorithm: the query point
//! is classified against the seven Voronoi regions of the triangle (three
//! vertices, three edges, face) and the closest point and the *feature* it
//! lies on are returned. The feature is needed downstream to select the
//! correct angle-weighted pseudonormal for the inside/outside sign.

use crate::vec3::Vec3;

/// The triangle feature the closest point lies on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Feature {
    /// Corner `i ∈ {0, 1, 2}` of the triangle.
    Vertex(u8),
    /// Edge between corners `i` and `(i + 1) % 3`.
    Edge(u8),
    /// Interior of the face.
    Face,
}

/// Closest point on triangle `(a, b, c)` to `p`, and the feature it lies
/// on. Follows the real-time-collision-detection formulation of the
/// region test; numerically robust for degenerate query positions.
pub fn closest_point_triangle(p: Vec3, a: Vec3, b: Vec3, c: Vec3) -> (Vec3, Feature) {
    let ab = b - a;
    let ac = c - a;
    let ap = p - a;
    let d1 = ab.dot(ap);
    let d2 = ac.dot(ap);
    if d1 <= 0.0 && d2 <= 0.0 {
        return (a, Feature::Vertex(0));
    }

    let bp = p - b;
    let d3 = ab.dot(bp);
    let d4 = ac.dot(bp);
    if d3 >= 0.0 && d4 <= d3 {
        return (b, Feature::Vertex(1));
    }

    let vc = d1 * d4 - d3 * d2;
    if vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0 {
        let t = d1 / (d1 - d3);
        return (a + ab * t, Feature::Edge(0));
    }

    let cp = p - c;
    let d5 = ab.dot(cp);
    let d6 = ac.dot(cp);
    if d6 >= 0.0 && d5 <= d6 {
        return (c, Feature::Vertex(2));
    }

    let vb = d5 * d2 - d1 * d6;
    if vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0 {
        let t = d2 / (d2 - d6);
        return (a + ac * t, Feature::Edge(2));
    }

    let va = d3 * d6 - d5 * d4;
    if va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0 {
        let t = (d4 - d3) / ((d4 - d3) + (d5 - d6));
        return (b + (c - b) * t, Feature::Edge(1));
    }

    let denom = 1.0 / (va + vb + vc);
    let v = vb * denom;
    let w = vc * denom;
    (a + ab * v + ac * w, Feature::Face)
}

/// Squared distance from `p` to triangle `(a, b, c)`.
pub fn dist_sq_triangle(p: Vec3, a: Vec3, b: Vec3, c: Vec3) -> f64 {
    closest_point_triangle(p, a, b, c).0.dist_sq(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::vec3;

    const A: Vec3 = vec3(0.0, 0.0, 0.0);
    const B: Vec3 = vec3(2.0, 0.0, 0.0);
    const C: Vec3 = vec3(0.0, 2.0, 0.0);

    #[test]
    fn face_region() {
        let p = vec3(0.5, 0.5, 3.0);
        let (cp, f) = closest_point_triangle(p, A, B, C);
        assert_eq!(f, Feature::Face);
        assert_eq!(cp, vec3(0.5, 0.5, 0.0));
        assert!((dist_sq_triangle(p, A, B, C) - 9.0).abs() < 1e-14);
    }

    #[test]
    fn vertex_regions() {
        let (cp, f) = closest_point_triangle(vec3(-1.0, -1.0, 1.0), A, B, C);
        assert_eq!(f, Feature::Vertex(0));
        assert_eq!(cp, A);
        let (cp, f) = closest_point_triangle(vec3(4.0, -1.0, 0.0), A, B, C);
        assert_eq!(f, Feature::Vertex(1));
        assert_eq!(cp, B);
        let (cp, f) = closest_point_triangle(vec3(-0.5, 4.0, 0.0), A, B, C);
        assert_eq!(f, Feature::Vertex(2));
        assert_eq!(cp, C);
    }

    #[test]
    fn edge_regions() {
        // Below edge AB.
        let (cp, f) = closest_point_triangle(vec3(1.0, -2.0, 0.0), A, B, C);
        assert_eq!(f, Feature::Edge(0));
        assert_eq!(cp, vec3(1.0, 0.0, 0.0));
        // Beyond hypotenuse BC.
        let (cp, f) = closest_point_triangle(vec3(2.0, 2.0, 0.0), A, B, C);
        assert_eq!(f, Feature::Edge(1));
        assert!((cp - vec3(1.0, 1.0, 0.0)).norm() < 1e-12);
        // Left of edge CA.
        let (cp, f) = closest_point_triangle(vec3(-1.0, 1.0, 0.0), A, B, C);
        assert_eq!(f, Feature::Edge(2));
        assert_eq!(cp, vec3(0.0, 1.0, 0.0));
    }

    #[test]
    fn point_on_triangle_has_zero_distance() {
        for p in [A, B, C, vec3(0.5, 0.5, 0.0), vec3(1.0, 0.0, 0.0)] {
            assert!(dist_sq_triangle(p, A, B, C) < 1e-24);
        }
    }

    /// The closest point must always lie on the triangle plane patch and
    /// be at least as close as all three corners.
    #[test]
    fn closest_point_beats_corners() {
        let pts = [
            vec3(3.7, -2.1, 0.4),
            vec3(-5.0, 8.0, -3.0),
            vec3(0.3, 0.1, -0.7),
            vec3(10.0, 10.0, 10.0),
        ];
        for p in pts {
            let d2 = dist_sq_triangle(p, A, B, C);
            for corner in [A, B, C] {
                assert!(d2 <= p.dist_sq(corner) + 1e-12);
            }
        }
    }
}
