//! Angle-weighted pseudonormals (Bærentzen & Aanæs, paper §2.3).
//!
//! The sign of the distance of a point `p` to a closed mesh is determined
//! by the dot product of `p − closest_point` with the normal of the
//! closest *feature*. For faces the face normal works, but when the
//! closest feature is an edge or a vertex the face normal is ambiguous;
//! the angle-weighted pseudonormal — the sum of incident face normals
//! weighted by their incident angle — "guarantees a numerically stable
//! sign computation".

use crate::mesh::TriMesh;
use crate::tri_dist::Feature;
use crate::vec3::Vec3;
use std::collections::HashMap;

/// Precomputed face, edge and vertex pseudonormals of a mesh.
#[derive(Clone, Debug)]
pub struct Pseudonormals {
    /// Normalized face normals, one per triangle.
    pub face: Vec<Vec3>,
    /// Angle-weighted vertex pseudonormals, one per vertex (not normalized;
    /// only the direction matters for the sign test).
    pub vertex: Vec<Vec3>,
    /// Edge pseudonormals keyed by the sorted vertex-index pair: the sum of
    /// the (normalized) normals of the two incident faces.
    pub edge: HashMap<(u32, u32), Vec3>,
}

impl Pseudonormals {
    /// Computes all pseudonormals of `mesh`.
    pub fn build(mesh: &TriMesh) -> Self {
        let nt = mesh.num_triangles();
        let mut face = Vec::with_capacity(nt);
        let mut vertex = vec![Vec3::ZERO; mesh.vertices.len()];
        let mut edge: HashMap<(u32, u32), Vec3> = HashMap::new();

        for t in 0..nt {
            let [ia, ib, ic] = mesh.triangles[t];
            let [a, b, c] = mesh.tri(t);
            let n = mesh.face_normal(t);
            let n_unit = if n.norm_sq() > 0.0 { n.normalized() } else { Vec3::ZERO };
            face.push(n_unit);

            // Vertex pseudonormals: weight by the interior angle at each
            // corner.
            let corners = [(ia, a, b, c), (ib, b, c, a), (ic, c, a, b)];
            for (iv, v, w0, w1) in corners {
                let e0 = (w0 - v).normalized();
                let e1 = (w1 - v).normalized();
                let angle = e0.dot(e1).clamp(-1.0, 1.0).acos();
                vertex[iv as usize] += n_unit * angle;
            }

            // Edge pseudonormals: sum of incident face normals.
            for (u, v) in [(ia, ib), (ib, ic), (ic, ia)] {
                let key = (u.min(v), u.max(v));
                *edge.entry(key).or_insert(Vec3::ZERO) += n_unit;
            }
        }
        Pseudonormals { face, vertex, edge }
    }

    /// The pseudonormal of the feature of triangle `t` closest to a query.
    pub fn of_feature(&self, mesh: &TriMesh, t: usize, feature: Feature) -> Vec3 {
        let tri = mesh.triangles[t];
        match feature {
            Feature::Face => self.face[t],
            Feature::Vertex(i) => self.vertex[tri[i as usize] as usize],
            Feature::Edge(i) => {
                let u = tri[i as usize];
                let v = tri[(i as usize + 1) % 3];
                self.edge[&(u.min(v), u.max(v))]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Aabb;
    use crate::vec3::vec3;

    #[test]
    fn box_vertex_pseudonormals_point_outward_diagonally() {
        let m = TriMesh::make_box(Aabb::new(vec3(-1.0, -1.0, -1.0), vec3(1.0, 1.0, 1.0)));
        let pn = Pseudonormals::build(&m);
        // Every vertex of a centered box lies on a space diagonal; its
        // pseudonormal must point in the same diagonal direction.
        for (i, &v) in m.vertices.iter().enumerate() {
            let n = pn.vertex[i].normalized();
            let d = v.normalized();
            assert!(n.dot(d) > 0.9, "vertex {i}: {n:?} vs diagonal {d:?}");
        }
    }

    #[test]
    fn box_edge_pseudonormals_bisect_faces() {
        let m = TriMesh::make_box(Aabb::new(vec3(-1.0, -1.0, -1.0), vec3(1.0, 1.0, 1.0)));
        let pn = Pseudonormals::build(&m);
        // Edge between two faces: normal must point outward (positive dot
        // with the edge midpoint direction). Diagonal face edges lie inside
        // one flat face and their pseudonormal equals that face normal.
        for (&(u, v), &n) in &pn.edge {
            let mid = (m.vertices[u as usize] + m.vertices[v as usize]) * 0.5;
            assert!(n.dot(mid) > 0.0, "edge ({u},{v}) pseudonormal not outward");
        }
    }

    #[test]
    fn sphere_pseudonormals_are_radial() {
        let c = vec3(0.5, -1.0, 2.0);
        let m = TriMesh::make_sphere(c, 2.0, 12, 24);
        let pn = Pseudonormals::build(&m);
        for (i, &v) in m.vertices.iter().enumerate() {
            let radial = (v - c).normalized();
            let n = pn.vertex[i].normalized();
            assert!(n.dot(radial) > 0.9, "vertex {i}");
        }
        for (t, n) in pn.face.iter().enumerate() {
            let [a, b, cc] = m.tri(t);
            let radial = ((a + b + cc) / 3.0 - c).normalized();
            assert!(n.dot(radial) > 0.9, "face {t}");
        }
    }
}
