#![warn(missing_docs)]
//! Machine models of the paper's two petascale systems (§3) and of the
//! local host.
//!
//! The paper's scaling results are functions of a handful of published
//! machine constants: core counts and clocks, STREAM and concurrent-stream
//! memory bandwidths, peak FLOP rates and the network topology. This crate
//! encodes those constants for SuperMUC (Intel Sandy Bridge, island-based
//! pruned fat tree) and JUQUEEN (Blue Gene/Q, 5-D torus), provides the
//! network time model used by the scaling harness, and measures the actual
//! memory bandwidth of the host this code runs on with a STREAM-like
//! benchmark — the input the roofline model needs for *measured* (as
//! opposed to modeled) kernel comparisons.

pub mod device;
pub mod network;
pub mod spec;
pub mod streambench;

pub use device::DeviceSpec;
pub use network::NetworkModel;
pub use spec::MachineSpec;
pub use streambench::{measure_copy_bandwidth, measure_lbm_bandwidth};
