//! Accelerator (GPU-class) device descriptions.
//!
//! The paper's machines are CPU-only, but the framework's sparse/dense
//! block design targets heterogeneous nodes; the [`crate::MachineSpec`]
//! constants are not enough to model an attached accelerator, whose
//! performance is shaped by two numbers a CPU socket does not have:
//! a much higher main-memory bandwidth, and a fixed per-kernel-launch
//! latency that must be amortized over the cells of a sweep. A
//! `DeviceSpec` captures exactly those, in the same published-constants
//! style as the machine specs, and feeds the GPU-class cost model in
//! `trillium-perfmodel`.

/// Description of one GPU-class accelerator, with everything the
/// device cost model needs.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Effective memory bandwidth under LBM-like concurrent load/store
    /// streams, in GiB/s (the accelerator analogue of
    /// [`crate::MachineSpec::lbm_bw_gib`]).
    pub lbm_bw_gib: f64,
    /// Fixed latency per kernel launch, in microseconds: driver submit
    /// plus the first-wave memory round trips before the device reaches
    /// steady-state streaming. Paid once per sweep, so small blocks are
    /// latency-bound while large dense blocks approach the bandwidth
    /// roofline.
    pub launch_latency_us: f64,
    /// Device memory capacity in GiB (bounds the cells one device rank
    /// can own).
    pub mem_gib: f64,
}

impl DeviceSpec {
    /// A 2013-era discrete accelerator of the kind contemporary with the
    /// paper's machines (Kepler class): 250 GB/s STREAM of which LBM-like
    /// streams draw roughly 70 %, ~6 GiB on board, and a launch overhead
    /// of several microseconds.
    pub fn kepler_class() -> Self {
        DeviceSpec { name: "kepler-class", lbm_bw_gib: 163.0, launch_latency_us: 8.0, mem_gib: 6.0 }
    }

    /// A modern HBM accelerator: multi-TB/s stacked memory (~3.35 TB/s
    /// nominal, ~80 % achievable under concurrent streams) and a launch
    /// latency of a few microseconds. The bandwidth gap to a CPU socket
    /// is what makes heterogeneous placement worth modeling.
    pub fn hbm_class() -> Self {
        DeviceSpec { name: "hbm-class", lbm_bw_gib: 2496.0, launch_latency_us: 4.0, mem_gib: 80.0 }
    }

    /// Launch latency in seconds.
    pub fn launch_latency_s(&self) -> f64 {
        self.launch_latency_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_classes_are_ordered_by_bandwidth() {
        let k = DeviceSpec::kepler_class();
        let h = DeviceSpec::hbm_class();
        assert!(h.lbm_bw_gib > 10.0 * k.lbm_bw_gib);
        assert!(k.launch_latency_s() > 0.0 && h.launch_latency_s() > 0.0);
    }
}
