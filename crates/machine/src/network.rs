//! Interconnect time models.
//!
//! The scaling harness needs the wall time of one ghost exchange as a
//! function of message sizes and job size. The structural features come
//! from the paper's §3: JUQUEEN's 5-D torus gives every node constant
//! bisection-per-node, so per-process exchange time is essentially
//! independent of the job size ("we expect our LBM MPI communication to
//! scale to the entire machine"); SuperMUC is non-blocking within a
//! 512-node island but islands connect through a 4:1 pruned tree, so "we
//! expect to see a drop in the parallel efficiency when scaling up to
//! multiple islands".
//!
//! Free constants (effective per-process bandwidth, latency, and the
//! inter-island penalty coefficient) are calibrated so the model
//! reproduces the paper's observed endpoints (92 % parallel efficiency on
//! the full JUQUEEN; the multi-island efficiency decline on SuperMUC);
//! the calibration is documented in EXPERIMENTS.md.

/// Time model of one interconnect.
#[derive(Clone, Debug)]
pub enum NetworkModel {
    /// 5-D torus (JUQUEEN): constant per-process capacity at any scale.
    Torus5D {
        /// Per-message latency in seconds.
        latency_s: f64,
        /// Effective per-process bandwidth in bytes/s.
        proc_bw: f64,
    },
    /// Island fat-tree with pruned inter-island links (SuperMUC).
    PrunedFatTree {
        /// Per-message latency in seconds.
        latency_s: f64,
        /// Effective per-process bandwidth within one island, bytes/s.
        proc_bw: f64,
        /// Cores per island.
        island_cores: u64,
        /// Extra communication-time factor per doubling of the island
        /// count (calibrated).
        inter_island_penalty: f64,
    },
    /// No network (single-process host runs).
    Loopback,
}

impl NetworkModel {
    /// JUQUEEN's torus: latencies "in the range of a few hundred
    /// nanoseconds up to 2.6 µs" (§3.1). The effective per-process
    /// bandwidth (64 processes per node share the torus injection
    /// bandwidth) is calibrated to the paper's ~8 % communication share
    /// at 1.7 M cells/core (92 % parallel efficiency at full machine).
    pub fn torus5d_juqueen() -> Self {
        NetworkModel::Torus5D { latency_s: 1.5e-6, proc_bw: 0.037e9 }
    }

    /// SuperMUC's island tree: non-blocking FDR10 within 512-node islands
    /// (8192 cores), 4:1 pruned between islands. Intra-island bandwidth
    /// and the inter-island penalty are calibrated to the paper's Fig 6a
    /// (≈4–5 % MPI at one island growing to ≈20 % at 16 islands).
    pub fn pruned_fat_tree_supermuc() -> Self {
        NetworkModel::PrunedFatTree {
            latency_s: 2.0e-6,
            proc_bw: 0.27e9,
            island_cores: 8192,
            inter_island_penalty: 0.85,
        }
    }

    /// No communication cost (local runs).
    pub fn loopback() -> Self {
        NetworkModel::Loopback
    }

    /// Wall time of one ghost exchange for a process sending
    /// `bytes_per_neighbor` to each of its neighbors, in a job using
    /// `job_cores` cores total.
    pub fn exchange_time(&self, bytes_per_neighbor: &[u64], job_cores: u64) -> f64 {
        let total_bytes: u64 = bytes_per_neighbor.iter().sum();
        let n_msgs = bytes_per_neighbor.iter().filter(|&&b| b > 0).count() as f64;
        match self {
            NetworkModel::Torus5D { latency_s, proc_bw } => {
                n_msgs * latency_s + total_bytes as f64 / proc_bw
            }
            NetworkModel::PrunedFatTree {
                latency_s,
                proc_bw,
                island_cores,
                inter_island_penalty,
            } => {
                let islands = (job_cores as f64 / *island_cores as f64).max(1.0);
                // Within one island the tree is non-blocking: flat cost.
                // Across islands, crossing traffic shares pruned uplinks;
                // the penalty grows with the logarithm of the island count
                // (deeper tree stages become shared).
                let penalty = 1.0 + inter_island_penalty * islands.log2().max(0.0);
                n_msgs * latency_s + total_bytes as f64 / proc_bw * penalty
            }
            NetworkModel::Loopback => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_time_is_scale_invariant() {
        let net = NetworkModel::torus5d_juqueen();
        let msgs = vec![1_000_000u64; 6];
        let t_small = net.exchange_time(&msgs, 1024);
        let t_full = net.exchange_time(&msgs, 458_752);
        assert_eq!(t_small, t_full, "torus exchange must not depend on job size");
        assert!(t_small > 0.0);
    }

    #[test]
    fn fat_tree_penalizes_multiple_islands() {
        let net = NetworkModel::pruned_fat_tree_supermuc();
        let msgs = vec![1_000_000u64; 6];
        let one_island = net.exchange_time(&msgs, 8192);
        let two_islands = net.exchange_time(&msgs, 16_384);
        let many = net.exchange_time(&msgs, 131_072);
        assert!(two_islands > one_island);
        assert!(many > 2.0 * one_island, "16 islands must cost substantially more");
    }

    #[test]
    fn latency_counts_only_nonempty_messages() {
        let net = NetworkModel::Torus5D { latency_s: 1e-6, proc_bw: 1e9 };
        // D3Q19: corner links carry no data.
        let msgs = vec![100, 100, 0, 0];
        let t = net.exchange_time(&msgs, 64);
        assert!((t - (2.0 * 1e-6 + 200.0 / 1e9)).abs() < 1e-15);
    }

    #[test]
    fn loopback_is_free() {
        assert_eq!(NetworkModel::loopback().exchange_time(&[123, 456], 1), 0.0);
    }
}

#[cfg(test)]
mod calibration_tests {
    use super::*;

    /// The calibrated JUQUEEN constants produce the paper's ~8 % MPI share
    /// for the Fig 6b configuration (64 processes/node, 432k cells each).
    #[test]
    fn juqueen_share_matches_paper_regime() {
        let net = NetworkModel::torus5d_juqueen();
        let edge = 432_000f64.cbrt();
        let mut msgs = vec![(edge * edge * 40.0) as u64; 6];
        msgs.extend(vec![(edge * 8.0) as u64; 12]);
        let t_comm = net.exchange_time(&msgs, 458_752);
        // Per-process kernel time: 64 processes share a node running at
        // the overhead-adjusted roofline; processes communicate
        // concurrently, so the share is per process.
        let t_kernel = 432_000.0 * 64.0 * 1.28 / 76.2e6;
        let share = t_comm / (t_kernel + t_comm);
        assert!((0.05..0.12).contains(&share), "MPI share {share}");
    }

    /// Single-island SuperMUC share sits near the paper's ~5 %.
    #[test]
    fn supermuc_share_within_island() {
        let net = NetworkModel::pruned_fat_tree_supermuc();
        let edge = 3_430_000f64.cbrt();
        let mut msgs = vec![(edge * edge * 40.0) as u64; 6];
        msgs.extend(vec![(edge * 8.0) as u64; 12]);
        let t_comm = net.exchange_time(&msgs, 4096);
        let t_kernel = 3_430_000.0 / (87.8e6 * 2.0 / 16.0 / 1.28);
        let share = t_comm / (t_kernel + t_comm);
        assert!((0.03..0.08).contains(&share), "MPI share {share}");
    }

    /// Doubling the message volume doubles the bandwidth term but not the
    /// latency term.
    #[test]
    fn latency_and_bandwidth_terms_separate() {
        let net = NetworkModel::Torus5D { latency_s: 1e-5, proc_bw: 1e9 };
        let small = net.exchange_time(&[1000; 6], 64);
        let large = net.exchange_time(&[2000; 6], 64);
        let lat = 6.0 * 1e-5;
        assert!(((large - lat) / (small - lat) - 2.0).abs() < 1e-9);
    }
}
