//! STREAM-like memory-bandwidth measurement of the local host.
//!
//! The paper determines "the maximum attainable socket bandwidth using
//! STREAM" and additionally "a more refined stream benchmark that takes
//! the LBM memory access pattern of multiple concurrent load and store
//! streams into account" (§4.1). Both are reproduced here for the machine
//! this code actually runs on: a plain copy kernel and a 19-stream
//! load/store kernel emulating the D3Q19 PDF traffic (including the
//! write-allocate transfer).

/// Measures plain copy bandwidth (`b[i] = a[i]`) in GiB/s, counting read +
/// write + write-allocate traffic (3 transfers per element), like STREAM
/// does on write-allocate architectures.
pub fn measure_copy_bandwidth(bytes_per_array: usize, repetitions: usize) -> f64 {
    let n = bytes_per_array / 8;
    let a = vec![1.0f64; n];
    let mut b = vec![0.0f64; n];
    // Warm up: touch everything.
    b.copy_from_slice(&a);

    let start = std::time::Instant::now();
    for r in 0..repetitions {
        // Prevent the copies from being collapsed.
        let scale = 1.0 + (r % 2) as f64;
        for i in 0..n {
            b[i] = a[i] * scale;
        }
        std::hint::black_box(&b);
    }
    let secs = start.elapsed().as_secs_f64();
    // Read a + write b + write-allocate b = 3 × 8 bytes per element.
    (n * repetitions) as f64 * 24.0 / secs / (1024.0 * 1024.0 * 1024.0)
}

/// Measures bandwidth under the LBM access pattern: 19 concurrent load
/// streams and 19 concurrent store streams (one pair per D3Q19 direction),
/// in GiB/s of actual memory traffic (read + write + write-allocate).
pub fn measure_lbm_bandwidth(cells: usize, repetitions: usize) -> f64 {
    const Q: usize = 19;
    let src: Vec<Vec<f64>> = (0..Q).map(|q| vec![q as f64; cells]).collect();
    let mut dst: Vec<Vec<f64>> = (0..Q).map(|_| vec![0.0f64; cells]).collect();
    // Warm up: fault in all pages before timing.
    for q in 0..Q {
        dst[q].copy_from_slice(&src[q]);
    }

    let start = std::time::Instant::now();
    for r in 0..repetitions {
        let scale = 1.0 + (r % 2) as f64;
        for q in 0..Q {
            let s = &src[q];
            let d = &mut dst[q];
            for i in 0..cells {
                d[i] = s[i] * scale;
            }
        }
        std::hint::black_box(&dst);
    }
    let secs = start.elapsed().as_secs_f64();
    (cells * Q * repetitions) as f64 * 24.0 / secs / (1024.0 * 1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_bandwidth_is_plausible() {
        // Small arrays keep the test fast; the value must be a sane
        // positive bandwidth (0.1 .. 1000 GiB/s covers everything from a
        // throttled container to an HBM part).
        let bw = measure_copy_bandwidth(4 << 20, 3);
        assert!(bw > 0.1 && bw < 1000.0, "copy bandwidth {bw} GiB/s");
    }

    #[test]
    fn lbm_bandwidth_is_plausible_and_not_higher_than_huge() {
        let bw = measure_lbm_bandwidth(64 << 10, 3);
        assert!(bw > 0.1 && bw < 1000.0, "LBM bandwidth {bw} GiB/s");
    }
}
