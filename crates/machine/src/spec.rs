//! Machine descriptions with the constants published in the paper.

use crate::network::NetworkModel;

/// Description of one (super)computer, with everything the performance
/// models need.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Sockets per node.
    pub sockets_per_node: u32,
    /// Hardware threads per core (SMT ways).
    pub smt_ways: u32,
    /// Nominal clock in GHz.
    pub clock_ghz: f64,
    /// STREAM bandwidth per socket in GiB/s (plain copy).
    pub stream_bw_gib: f64,
    /// Bandwidth per socket under LBM-like concurrent load/store streams,
    /// in GiB/s — the bandwidth the kernels can actually draw.
    pub lbm_bw_gib: f64,
    /// Peak double-precision GFLOP/s per core.
    pub peak_gflops_per_core: f64,
    /// Main memory per core in GiB.
    pub mem_per_core_gib: f64,
    /// Total cores of the full machine.
    pub total_cores: u64,
    /// Interconnect model.
    pub network: NetworkModel,
}

impl MachineSpec {
    /// Cores per node.
    pub fn cores_per_node(&self) -> u32 {
        self.cores_per_socket * self.sockets_per_node
    }

    /// Total nodes of the machine.
    pub fn total_nodes(&self) -> u64 {
        self.total_cores / self.cores_per_node() as u64
    }

    /// Peak double-precision PFLOP/s of the whole machine.
    pub fn peak_pflops(&self) -> f64 {
        self.total_cores as f64 * self.peak_gflops_per_core / 1e6
    }

    /// SuperMUC (LRZ Munich): 18,432 Xeon E5-2680 (Sandy Bridge) sockets,
    /// 2.7 GHz, 16 cores/node, 147,456 cores, 3.2 PFLOPS peak, islands of
    /// 512 nodes with a non-blocking tree inside and a 4:1 pruned tree
    /// between islands (paper §3.2). Bandwidths from §4.1: 40 GiB/s STREAM,
    /// 37.3 GiB/s with LBM-like concurrent streams.
    pub fn supermuc() -> Self {
        MachineSpec {
            name: "SuperMUC",
            cores_per_socket: 8,
            sockets_per_node: 2,
            smt_ways: 1, // SMT exists but yields no LBM gain on this machine (§4.1)
            clock_ghz: 2.7,
            stream_bw_gib: 40.0,
            lbm_bw_gib: 37.3,
            // 8 DP flops/cycle (AVX) × 2.7 GHz = 21.6 GFLOP/s.
            peak_gflops_per_core: 21.6,
            mem_per_core_gib: 2.0,
            total_cores: 147_456,
            network: NetworkModel::pruned_fat_tree_supermuc(),
        }
    }

    /// JUQUEEN (JSC Jülich): 28-rack Blue Gene/Q, 458,752 PowerPC A2 cores
    /// at 1.6 GHz, 16 cores/node, 4-way SMT, 1 GiB/core, 5.9 PFLOPS peak,
    /// 5-D torus at up to 40 GB/s (paper §3.1). Bandwidths from §4.1:
    /// 42.4 GiB/s STREAM, 32.4 GiB/s with concurrent store streams.
    pub fn juqueen() -> Self {
        MachineSpec {
            name: "JUQUEEN",
            cores_per_socket: 16,
            sockets_per_node: 1,
            smt_ways: 4,
            clock_ghz: 1.6,
            stream_bw_gib: 42.4,
            lbm_bw_gib: 32.4,
            // 204.8 GFLOPS per 16-core node.
            peak_gflops_per_core: 12.8,
            mem_per_core_gib: 1.0,
            total_cores: 458_752,
            network: NetworkModel::torus5d_juqueen(),
        }
    }

    /// The machine this code runs on: a single-socket container whose
    /// bandwidth should be measured with [`crate::streambench`] rather
    /// than assumed. The given bandwidths are placeholders overridden by
    /// measurement in the benchmark harnesses.
    pub fn host(cores: u32, measured_stream_gib: f64, measured_lbm_gib: f64) -> Self {
        MachineSpec {
            name: "host",
            cores_per_socket: cores,
            sockets_per_node: 1,
            smt_ways: 1,
            clock_ghz: 0.0, // unknown / variable
            stream_bw_gib: measured_stream_gib,
            lbm_bw_gib: measured_lbm_gib,
            peak_gflops_per_core: 0.0,
            mem_per_core_gib: 0.0,
            total_cores: cores as u64,
            network: NetworkModel::loopback(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The specs must reproduce the paper's headline machine numbers.
    #[test]
    fn supermuc_matches_paper() {
        let m = MachineSpec::supermuc();
        assert_eq!(m.cores_per_node(), 16);
        assert_eq!(m.total_cores, 147_456);
        assert_eq!(m.total_nodes(), 9216);
        // "Peak performance of 3.2 PFLOPS".
        assert!((m.peak_pflops() - 3.19).abs() < 0.05, "{}", m.peak_pflops());
        // 18432 sockets.
        assert_eq!(m.total_nodes() * m.sockets_per_node as u64, 18_432);
    }

    #[test]
    fn juqueen_matches_paper() {
        let m = MachineSpec::juqueen();
        assert_eq!(m.cores_per_node(), 16);
        assert_eq!(m.total_cores, 458_752);
        // "Theoretical peak performance of 5.9 PFLOPS".
        assert!((m.peak_pflops() - 5.87).abs() < 0.05, "{}", m.peak_pflops());
        // "Up to 204.8 GFLOPS per node".
        let per_node = m.peak_gflops_per_core * m.cores_per_node() as f64;
        assert!((per_node - 204.8).abs() < 0.1);
        // 448 TiB of memory: 1 GiB per core.
        assert_eq!(m.total_cores as f64 * m.mem_per_core_gib, 458_752.0);
    }
}
