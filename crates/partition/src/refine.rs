//! Fiduccia–Mattheyses-style k-way boundary refinement.
//!
//! Repeated passes over the boundary vertices: each vertex computes, for
//! every neighboring part, the *gain* (reduction in edge cut) of moving
//! there; the move with the largest gain that keeps the balance within
//! tolerance is applied. Passes stop when no improving move exists or the
//! pass budget is exhausted. This is the refinement scheme used at every
//! uncoarsening level of the multilevel partitioner.

use crate::graph::Graph;

/// In-place refinement of `assign` on graph `g`.
pub fn fm_refine(g: &Graph, assign: &mut [u32], k: usize, tolerance: f64, passes: usize) {
    let n = g.num_vertices();
    let avg = g.total_vwgt() / k as f64;
    let max_part = avg * tolerance.max(1.0);
    let mut part_w = g.part_weights(assign, k);

    for _ in 0..passes {
        let mut improved = false;
        for v in 0..n {
            let from = assign[v] as usize;
            // Connection strength to each part among the neighbors.
            let mut conn = vec![0.0; k];
            let mut boundary = false;
            for (u, w) in g.neighbors(v) {
                conn[assign[u as usize] as usize] += w;
                if assign[u as usize] != assign[v] {
                    boundary = true;
                }
            }
            if !boundary {
                continue;
            }
            // Best target: maximize gain = conn[to] − conn[from], subject
            // to balance; also allow zero-gain moves that improve balance.
            let mut best: Option<(usize, f64)> = None;
            for to in 0..k {
                if to == from {
                    continue;
                }
                if conn[to] == 0.0 {
                    continue; // not adjacent to that part
                }
                if part_w[to] + g.vwgt[v] > max_part {
                    continue;
                }
                let gain = conn[to] - conn[from];
                let balance_gain = part_w[from] - (part_w[to] + g.vwgt[v]);
                let better = match best {
                    None => gain > 0.0 || (gain == 0.0 && balance_gain > 0.0),
                    Some((_, bg)) => gain > bg,
                };
                if better {
                    best = Some((to, gain));
                }
            }
            if let Some((to, _)) = best {
                part_w[from] -= g.vwgt[v];
                part_w[to] += g.vwgt[v];
                assign[v] = to as u32;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    rebalance(g, assign, k, tolerance, &mut part_w);
}

/// Forces the balance constraint: while some part exceeds the tolerance,
/// move the cheapest (least connectivity loss per unit weight) vertex from
/// the heaviest part to the lightest part. Cut may grow; balance is the
/// hard constraint, as in the paper's multi-constrained load balancing.
fn rebalance(g: &Graph, assign: &mut [u32], k: usize, tolerance: f64, part_w: &mut [f64]) {
    let n = g.num_vertices();
    let avg = g.total_vwgt() / k as f64;
    let max_part = avg * tolerance.max(1.0);
    // Bounded iterations: each move strictly shrinks the heaviest part.
    for _ in 0..2 * n {
        let from = (0..k).max_by(|&a, &b| part_w[a].partial_cmp(&part_w[b]).unwrap()).unwrap();
        if part_w[from] <= max_part {
            break;
        }
        let to = (0..k).min_by(|&a, &b| part_w[a].partial_cmp(&part_w[b]).unwrap()).unwrap();
        // Cheapest vertex of `from` to evict: maximize conn[to] − conn[from]
        // (least cut damage), then prefer small weight. A move is
        // admissible if it keeps the target within tolerance — or, when
        // the tolerance is infeasible for the vertex granularity, if it
        // still strictly shrinks the heaviest part below the source.
        let mut best: Option<(usize, f64)> = None;
        for v in 0..n {
            if assign[v] as usize != from {
                continue;
            }
            let target_w = part_w[to] + g.vwgt[v];
            if target_w > max_part && target_w >= part_w[from] {
                continue;
            }
            let mut delta = 0.0;
            for (u, w) in g.neighbors(v) {
                if assign[u as usize] as usize == to {
                    delta += w;
                } else if assign[u as usize] as usize == from {
                    delta -= w;
                }
            }
            if best.map_or(true, |(_, bd)| delta > bd) {
                best = Some((v, delta));
            }
        }
        let Some((v, _)) = best else { break };
        part_w[from] -= g.vwgt[v];
        part_w[to] += g.vwgt[v];
        assign[v] = to as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2d(nx: usize, ny: usize) -> Graph {
        let idx = |x: usize, y: usize| (y * nx + x) as u32;
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((idx(x, y), idx(x + 1, y), 1.0));
                }
                if y + 1 < ny {
                    edges.push((idx(x, y), idx(x, y + 1), 1.0));
                }
            }
        }
        Graph::from_edges(nx * ny, &edges, None)
    }

    #[test]
    fn refinement_fixes_a_jagged_bisection() {
        // 8×8 grid, start from a checkerboard-ish bad partition with equal
        // sizes; refinement must drive the cut way down.
        let g = grid2d(8, 8);
        let mut assign: Vec<u32> = (0..64).map(|v| ((v / 2 + v / 8) % 2) as u32).collect();
        // Rebalance exactly: count part 0.
        let ones = assign.iter().filter(|&&a| a == 1).count();
        assert!(ones > 20 && ones < 44);
        let cut_before = g.edge_cut(&assign);
        fm_refine(&g, &mut assign, 2, 1.05, 12);
        let cut_after = g.edge_cut(&assign);
        assert!(cut_after < 0.5 * cut_before, "{cut_before} -> {cut_after}");
        assert!(g.balance(&assign, 2) <= 1.06);
    }

    #[test]
    fn refinement_never_worsens_cut() {
        let g = grid2d(6, 6);
        let mut assign: Vec<u32> = (0..36).map(|v| (v % 3) as u32).collect();
        let before = g.edge_cut(&assign);
        fm_refine(&g, &mut assign, 3, 1.05, 8);
        assert!(g.edge_cut(&assign) <= before);
    }

    #[test]
    fn refinement_respects_balance_tolerance() {
        let g = grid2d(10, 4);
        let mut assign: Vec<u32> = (0..40).map(|v| if v < 20 { 0 } else { 1 }).collect();
        fm_refine(&g, &mut assign, 2, 1.05, 10);
        assert!(g.balance(&assign, 2) <= 1.05 + 1e-9);
    }

    #[test]
    fn optimal_partition_is_stable() {
        let g = grid2d(8, 4);
        // Left/right halves: cut = 4, optimal.
        let mut assign: Vec<u32> = (0..32).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect();
        let before = assign.clone();
        fm_refine(&g, &mut assign, 2, 1.05, 5);
        assert_eq!(g.edge_cut(&assign), 4.0);
        // May relabel but the cut cannot grow; typically unchanged.
        let _ = before;
    }
}
