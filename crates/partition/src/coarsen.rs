//! Coarsening by heavy-edge matching (Karypis & Kumar).
//!
//! Edges are visited heaviest-first (random order among equal weights);
//! an edge whose endpoints are both unmatched collapses them into one
//! coarse vertex whose weight is the sum of the pair's weights. Parallel
//! coarse edges merge by summing weights. Visiting edges rather than
//! vertices guarantees the heaviest edges contract — a vertex-ordered
//! sweep can let a light fringe edge claim an endpoint of a heavy edge
//! first, leaving the heavy edge in the cut.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// One coarsening step. Returns the coarser graph and the fine→coarse
/// vertex map.
pub fn heavy_edge_coarsen(g: &Graph, rng: &mut StdRng) -> (Graph, Vec<usize>) {
    let n = g.num_vertices();
    // Each undirected edge once; shuffle first so the stable sort breaks
    // weight ties randomly.
    let mut order: Vec<(u32, u32, f64)> = Vec::new();
    for v in 0..n {
        for (u, w) in g.neighbors(v) {
            if (v as u32) < u {
                order.push((v as u32, u, w));
            }
        }
    }
    order.shuffle(rng);
    order.sort_by(|a, b| b.2.total_cmp(&a.2));

    const UNMATCHED: usize = usize::MAX;
    let mut mate = vec![UNMATCHED; n];
    for &(v, u, _) in &order {
        let (v, u) = (v as usize, u as usize);
        if mate[v] == UNMATCHED && mate[u] == UNMATCHED {
            mate[v] = u;
            mate[u] = v;
        }
    }
    for v in 0..n {
        if mate[v] == UNMATCHED {
            mate[v] = v; // matched with itself
        }
    }

    // Assign coarse indices.
    let mut map = vec![usize::MAX; n];
    let mut nc = 0usize;
    for v in 0..n {
        if map[v] != usize::MAX {
            continue;
        }
        map[v] = nc;
        let m = mate[v];
        if m != v && m != UNMATCHED {
            map[m] = nc;
        }
        nc += 1;
    }

    // Coarse vertex weights and edges.
    let mut vwgt = vec![0.0; nc];
    for v in 0..n {
        vwgt[map[v]] += g.vwgt[v];
    }
    let mut edges = Vec::new();
    for v in 0..n {
        for (u, w) in g.neighbors(v) {
            let (cv, cu) = (map[v], map[u as usize]);
            if cv < cu {
                edges.push((cv as u32, cu as u32, w));
            }
        }
    }
    (Graph::from_edges(nc, &edges, Some(vwgt)), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(u32, u32, f64)> =
            (0..n as u32).map(|i| (i, (i + 1) % n as u32, 1.0)).collect();
        Graph::from_edges(n, &edges, None)
    }

    #[test]
    fn coarsening_halves_ring_size() {
        let g = ring(64);
        let mut rng = StdRng::seed_from_u64(5);
        let (c, map) = heavy_edge_coarsen(&g, &mut rng);
        assert!(c.num_vertices() <= 40, "coarse size {}", c.num_vertices());
        assert!(c.num_vertices() >= 32);
        assert_eq!(map.len(), 64);
        // Total vertex weight conserved.
        assert!((c.total_vwgt() - g.total_vwgt()).abs() < 1e-12);
    }

    #[test]
    fn heavy_edges_collapse_first() {
        // Two vertices joined by a heavy edge plus light fringe edges: the
        // heavy pair must merge.
        let g = Graph::from_edges(4, &[(0, 1, 100.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)], None);
        let mut rng = StdRng::seed_from_u64(0);
        let (_, map) = heavy_edge_coarsen(&g, &mut rng);
        assert_eq!(map[0], map[1], "heavy edge not contracted");
    }

    #[test]
    fn map_is_surjective_onto_coarse_vertices() {
        let g = ring(33);
        let mut rng = StdRng::seed_from_u64(2);
        let (c, map) = heavy_edge_coarsen(&g, &mut rng);
        let mut seen = vec![false; c.num_vertices()];
        for &m in &map {
            seen[m] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
