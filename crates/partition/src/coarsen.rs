//! Coarsening by heavy-edge matching (Karypis & Kumar).
//!
//! Vertices are visited in random order; each unmatched vertex matches the
//! unmatched neighbor connected by the heaviest edge. Matched pairs
//! collapse into one coarse vertex whose weight is the sum of the pair's
//! weights; parallel coarse edges merge by summing weights. Heavy edges
//! disappear inside coarse vertices, so the coarse graph's cut structure
//! approximates the fine graph's.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// One coarsening step. Returns the coarser graph and the fine→coarse
/// vertex map.
pub fn heavy_edge_coarsen(g: &Graph, rng: &mut StdRng) -> (Graph, Vec<usize>) {
    let n = g.num_vertices();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    const UNMATCHED: usize = usize::MAX;
    let mut mate = vec![UNMATCHED; n];
    for &v in &order {
        if mate[v] != UNMATCHED {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(u32, f64)> = None;
        for (u, w) in g.neighbors(v) {
            if mate[u as usize] == UNMATCHED && best.map_or(true, |(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                mate[v] = u as usize;
                mate[u as usize] = v;
            }
            None => mate[v] = v, // matched with itself
        }
    }

    // Assign coarse indices.
    let mut map = vec![usize::MAX; n];
    let mut nc = 0usize;
    for v in 0..n {
        if map[v] != usize::MAX {
            continue;
        }
        map[v] = nc;
        let m = mate[v];
        if m != v && m != UNMATCHED {
            map[m] = nc;
        }
        nc += 1;
    }

    // Coarse vertex weights and edges.
    let mut vwgt = vec![0.0; nc];
    for v in 0..n {
        vwgt[map[v]] += g.vwgt[v];
    }
    let mut edges = Vec::new();
    for v in 0..n {
        for (u, w) in g.neighbors(v) {
            let (cv, cu) = (map[v], map[u as usize]);
            if cv < cu {
                edges.push((cv as u32, cu as u32, w));
            }
        }
    }
    (Graph::from_edges(nc, &edges, Some(vwgt)), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(u32, u32, f64)> =
            (0..n as u32).map(|i| (i, (i + 1) % n as u32, 1.0)).collect();
        Graph::from_edges(n, &edges, None)
    }

    #[test]
    fn coarsening_halves_ring_size() {
        let g = ring(64);
        let mut rng = StdRng::seed_from_u64(5);
        let (c, map) = heavy_edge_coarsen(&g, &mut rng);
        assert!(c.num_vertices() <= 40, "coarse size {}", c.num_vertices());
        assert!(c.num_vertices() >= 32);
        assert_eq!(map.len(), 64);
        // Total vertex weight conserved.
        assert!((c.total_vwgt() - g.total_vwgt()).abs() < 1e-12);
    }

    #[test]
    fn heavy_edges_collapse_first() {
        // Two vertices joined by a heavy edge plus light fringe edges: the
        // heavy pair must merge.
        let g = Graph::from_edges(
            4,
            &[(0, 1, 100.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
            None,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let (_, map) = heavy_edge_coarsen(&g, &mut rng);
        assert_eq!(map[0], map[1], "heavy edge not contracted");
    }

    #[test]
    fn map_is_surjective_onto_coarse_vertices() {
        let g = ring(33);
        let mut rng = StdRng::seed_from_u64(2);
        let (c, map) = heavy_edge_coarsen(&g, &mut rng);
        let mut seen = vec![false; c.num_vertices()];
        for &m in &map {
            seen[m] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
