//! Weighted undirected graphs in compressed sparse row form.

/// An undirected graph with vertex and edge weights, stored CSR-style
/// (every undirected edge appears in both adjacency lists).
#[derive(Clone, Debug)]
pub struct Graph {
    /// Adjacency offsets: neighbors of `v` are
    /// `adjncy[xadj[v] .. xadj[v + 1]]`.
    pub xadj: Vec<usize>,
    /// Flattened adjacency lists.
    pub adjncy: Vec<u32>,
    /// Edge weights, parallel to `adjncy`.
    pub adjwgt: Vec<f64>,
    /// Vertex weights.
    pub vwgt: Vec<f64>,
}

impl Graph {
    /// Builds a graph from an undirected edge list `(u, v, weight)`.
    /// Duplicate edges are merged by summing weights; self-loops are
    /// ignored. `vwgt` defaults to 1 per vertex.
    pub fn from_edges(n: usize, edges: &[(u32, u32, f64)], vwgt: Option<Vec<f64>>) -> Self {
        use std::collections::HashMap;
        let mut merged: HashMap<(u32, u32), f64> = HashMap::new();
        for &(u, v, w) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge endpoint out of range");
            if u == v {
                continue;
            }
            *merged.entry((u.min(v), u.max(v))).or_insert(0.0) += w;
        }
        // Deterministic adjacency order regardless of hash-map iteration.
        let mut merged: Vec<((u32, u32), f64)> = merged.into_iter().collect();
        merged.sort_by_key(|&(k, _)| k);
        let mut degree = vec![0usize; n];
        for &((u, v), _) in &merged {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let m2 = xadj[n];
        let mut adjncy = vec![0u32; m2];
        let mut adjwgt = vec![0.0; m2];
        let mut cursor = xadj.clone();
        for &((u, v), w) in &merged {
            adjncy[cursor[u as usize]] = v;
            adjwgt[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            adjncy[cursor[v as usize]] = u;
            adjwgt[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        let vwgt = vwgt.unwrap_or_else(|| vec![1.0; n]);
        assert_eq!(vwgt.len(), n);
        Graph { xadj, adjncy, adjwgt, vwgt }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let r = self.xadj[v]..self.xadj[v + 1];
        self.adjncy[r.clone()].iter().copied().zip(self.adjwgt[r].iter().copied())
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Sum of edge weights crossing between different parts of
    /// `assignment`.
    pub fn edge_cut(&self, assignment: &[u32]) -> f64 {
        let mut cut = 0.0;
        for v in 0..self.num_vertices() {
            for (u, w) in self.neighbors(v) {
                if assignment[v] != assignment[u as usize] {
                    cut += w;
                }
            }
        }
        cut / 2.0
    }

    /// Per-part vertex-weight totals.
    pub fn part_weights(&self, assignment: &[u32], k: usize) -> Vec<f64> {
        let mut w = vec![0.0; k];
        for (v, &a) in assignment.iter().enumerate() {
            w[a as usize] += self.vwgt[v];
        }
        w
    }

    /// Balance: max part weight over average part weight (1.0 = perfect).
    pub fn balance(&self, assignment: &[u32], k: usize) -> f64 {
        let w = self.part_weights(assignment, k);
        let max = w.iter().cloned().fold(0.0, f64::max);
        let avg = self.total_vwgt() / k as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_symmetric_csr() {
        let g = Graph::from_edges(4, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0)], None);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        let n1: Vec<_> = g.neighbors(1).collect();
        assert_eq!(n1.len(), 2);
        assert!(n1.contains(&(0, 2.0)));
        assert!(n1.contains(&(2, 3.0)));
    }

    #[test]
    fn duplicate_edges_merge_and_loops_drop() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 0, 2.0), (2, 2, 9.0)], None);
        assert_eq!(g.num_edges(), 1);
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 3.0)]);
        assert_eq!(g.neighbors(2).count(), 0);
    }

    #[test]
    fn cut_and_balance() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 5.0), (2, 3, 1.0)], None);
        let assign = vec![0, 0, 1, 1];
        assert_eq!(g.edge_cut(&assign), 5.0);
        assert_eq!(g.balance(&assign, 2), 1.0);
        let skew = vec![0, 0, 0, 1];
        assert_eq!(g.balance(&skew, 2), 1.5);
    }
}
