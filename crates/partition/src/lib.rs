#![warn(missing_docs)]
//! Multilevel k-way graph partitioning — the METIS substitute.
//!
//! The paper (§2.3) balances blocks onto processes by partitioning the
//! block graph with METIS: vertex weights are per-block fluid-cell
//! workloads, edge weights are proportional to the data volume
//! communicated between neighboring blocks, and the partitioner must keep
//! per-part workloads balanced while minimizing the edge cut.
//!
//! This crate implements the same algorithm family METIS uses
//! (Karypis & Kumar): a *multilevel* scheme with
//!
//! 1. **coarsening** by heavy-edge matching ([`coarsen`]),
//! 2. an **initial partition** of the coarsest graph by greedy graph
//!    growing ([`initial`]),
//! 3. **uncoarsening** with Fiduccia–Mattheyses-style boundary refinement
//!    at every level ([`refine`]).
//!
//! The entry point is [`partition_kway`].

pub mod coarsen;
pub mod graph;
pub mod initial;
pub mod refine;

pub use graph::Graph;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Options controlling the partitioner.
#[derive(Copy, Clone, Debug)]
pub struct PartitionOptions {
    /// Allowed imbalance: max part weight ≤ `tolerance ×` average (1.05 =
    /// 5 % slack, METIS's default ballpark).
    pub tolerance: f64,
    /// RNG seed for matching and seed-vertex tie breaking.
    pub seed: u64,
    /// Refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Stop coarsening when the graph has at most `max(coarse_factor · k,
    /// 64)` vertices.
    pub coarse_factor: usize,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions { tolerance: 1.05, seed: 1, refine_passes: 4, coarse_factor: 16 }
    }
}

/// Partitions `graph` into `k` parts, minimizing edge cut subject to the
/// balance tolerance. Returns the part index of each vertex.
pub fn partition_kway(graph: &Graph, k: usize, opts: &PartitionOptions) -> Vec<u32> {
    assert!(k >= 1);
    if k == 1 {
        return vec![0; graph.num_vertices()];
    }
    if graph.num_vertices() <= k {
        // Trivial: one vertex per part (round robin by weight order).
        let mut order: Vec<usize> = (0..graph.num_vertices()).collect();
        order.sort_by(|&a, &b| graph.vwgt[b].partial_cmp(&graph.vwgt[a]).unwrap());
        let mut assign = vec![0u32; graph.num_vertices()];
        for (slot, &v) in order.iter().enumerate() {
            assign[v] = (slot % k) as u32;
        }
        return assign;
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);

    // ---- coarsening phase --------------------------------------------
    let coarse_target = (opts.coarse_factor * k).max(64);
    let mut levels: Vec<(Graph, Vec<usize>)> = Vec::new(); // (finer graph, map fine->coarse)
    let mut current = graph.clone();
    while current.num_vertices() > coarse_target {
        let (coarser, map) = coarsen::heavy_edge_coarsen(&current, &mut rng);
        // Diminishing returns: stop if coarsening stalls.
        if coarser.num_vertices() as f64 > 0.95 * current.num_vertices() as f64 {
            break;
        }
        levels.push((current, map));
        current = coarser;
    }

    // ---- initial partition -------------------------------------------
    let mut assign = initial::greedy_growing(&current, k, opts.tolerance, &mut rng);
    refine::fm_refine(&current, &mut assign, k, opts.tolerance, opts.refine_passes);

    // ---- uncoarsening + refinement ------------------------------------
    while let Some((finer, map)) = levels.pop() {
        let mut fine_assign = vec![0u32; finer.num_vertices()];
        for (v, &c) in map.iter().enumerate() {
            fine_assign[v] = assign[c];
        }
        refine::fm_refine(&finer, &mut fine_assign, k, opts.tolerance, opts.refine_passes);
        assign = fine_assign;
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// A 3-D grid graph with uniform weights.
    fn grid_graph(nx: usize, ny: usize, nz: usize) -> Graph {
        let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
        let mut edges = Vec::new();
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    if x + 1 < nx {
                        edges.push((idx(x, y, z) as u32, idx(x + 1, y, z) as u32, 1.0));
                    }
                    if y + 1 < ny {
                        edges.push((idx(x, y, z) as u32, idx(x, y + 1, z) as u32, 1.0));
                    }
                    if z + 1 < nz {
                        edges.push((idx(x, y, z) as u32, idx(x, y, z + 1) as u32, 1.0));
                    }
                }
            }
        }
        Graph::from_edges(nx * ny * nz, &edges, None)
    }

    #[test]
    fn bisection_of_a_bar_cuts_near_the_middle() {
        // 16×4×4 bar: the optimal bisection cuts a 4×4 cross-section (16
        // edges); accept anything reasonably close.
        let g = grid_graph(16, 4, 4);
        let assign = partition_kway(&g, 2, &PartitionOptions::default());
        let cut = g.edge_cut(&assign);
        assert!(cut <= 32.0, "cut {cut} too large (optimal 16)");
        let bal = g.balance(&assign, 2);
        assert!(bal <= 1.06, "imbalance {bal}");
    }

    #[test]
    fn kway_partition_is_balanced() {
        let g = grid_graph(8, 8, 8);
        for k in [2, 4, 8, 16] {
            let assign = partition_kway(&g, k, &PartitionOptions::default());
            let bal = g.balance(&assign, k);
            assert!(bal <= 1.10, "k={k}: imbalance {bal}");
            // All parts non-empty.
            let mut seen = vec![false; k];
            for &a in &assign {
                seen[a as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "k={k}: empty part");
        }
    }

    #[test]
    fn beats_random_assignment_on_cut() {
        use rand::Rng;
        let g = grid_graph(10, 10, 5);
        let k = 8;
        let assign = partition_kway(&g, k, &PartitionOptions::default());
        let cut = g.edge_cut(&assign);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let random: Vec<u32> = (0..g.num_vertices()).map(|_| rng.gen_range(0..k as u32)).collect();
        let rcut = g.edge_cut(&random);
        assert!(cut < 0.5 * rcut, "cut {cut} not much better than random {rcut}");
    }

    #[test]
    fn respects_vertex_weights() {
        // Two heavy vertices and many light ones: heavies must not share a
        // part when k = 2 and weights dominate.
        let mut edges = Vec::new();
        for i in 0..30u32 {
            edges.push((i, (i + 1) % 30, 1.0));
        }
        let mut vwgt = vec![1.0; 30];
        vwgt[0] = 50.0;
        vwgt[15] = 50.0;
        let g = Graph::from_edges(30, &edges, Some(vwgt));
        let assign = partition_kway(&g, 2, &PartitionOptions::default());
        assert_ne!(assign[0], assign[15], "heavy vertices in the same part");
        assert!(g.balance(&assign, 2) < 1.2);
    }

    #[test]
    fn trivial_cases() {
        let g = grid_graph(4, 4, 1);
        let one = partition_kway(&g, 1, &PartitionOptions::default());
        assert!(one.iter().all(|&a| a == 0));
        // More parts than vertices.
        let tiny = grid_graph(2, 1, 1);
        let assign = partition_kway(&tiny, 8, &PartitionOptions::default());
        assert_eq!(assign.len(), 2);
        assert_ne!(assign[0], assign[1]);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid_graph(12, 6, 3);
        let opts = PartitionOptions::default();
        let a = partition_kway(&g, 4, &opts);
        let b = partition_kway(&g, 4, &opts);
        assert_eq!(a, b);
    }
}
