//! Initial partitioning of the coarsest graph by greedy graph growing.
//!
//! For each part a seed vertex is chosen far from already-assigned
//! regions; the part then grows by repeatedly absorbing the unassigned
//! boundary vertex with the strongest connection to it, until the part
//! reaches its weight quota. Leftover vertices join their
//! most-connected (or lightest) part.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Greedy growing of `k` parts on (usually coarse) graph `g`.
pub fn greedy_growing(g: &Graph, k: usize, tolerance: f64, rng: &mut StdRng) -> Vec<u32> {
    let n = g.num_vertices();
    const UNASSIGNED: u32 = u32::MAX;
    let mut assign = vec![UNASSIGNED; n];
    let quota = g.total_vwgt() / k as f64 * tolerance.max(1.0);

    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    for part in 0..k as u32 {
        // Seed: unassigned vertex with the fewest assigned neighbors
        // (prefer fresh territory), ties broken by the shuffled order.
        let seed = order.iter().copied().filter(|&v| assign[v] == UNASSIGNED).min_by_key(|&v| {
            g.neighbors(v).filter(|&(u, _)| assign[u as usize] != UNASSIGNED).count()
        });
        let Some(seed) = seed else { break };

        let mut weight = 0.0;
        // Grow: frontier of unassigned vertices scored by connection
        // strength to the part.
        let mut conn: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        conn.insert(seed, f64::INFINITY);
        while weight < quota {
            // Strongest-connected frontier vertex.
            let Some((&v, _)) =
                conn.iter().max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
            else {
                break;
            };
            conn.remove(&v);
            if assign[v] != UNASSIGNED {
                continue;
            }
            if weight + g.vwgt[v] > quota && weight > 0.0 {
                // Would overflow the quota; stop growing this part.
                break;
            }
            assign[v] = part;
            weight += g.vwgt[v];
            for (u, w) in g.neighbors(v) {
                if assign[u as usize] == UNASSIGNED {
                    *conn.entry(u as usize).or_insert(0.0) += w;
                }
            }
        }
    }

    // Attach leftovers to the most connected part, or the lightest part if
    // isolated.
    let mut part_w = g.part_weights(
        &assign.iter().map(|&a| if a == UNASSIGNED { 0 } else { a }).collect::<Vec<_>>(),
        k,
    );
    // (part_weights above counted unassigned as part 0; recompute cleanly)
    part_w.iter_mut().for_each(|w| *w = 0.0);
    for v in 0..n {
        if assign[v] != UNASSIGNED {
            part_w[assign[v] as usize] += g.vwgt[v];
        }
    }
    for v in 0..n {
        if assign[v] != UNASSIGNED {
            continue;
        }
        let mut scores = vec![0.0; k];
        for (u, w) in g.neighbors(v) {
            if assign[u as usize] != UNASSIGNED {
                scores[assign[u as usize] as usize] += w;
            }
        }
        let best = (0..k)
            .max_by(|&a, &b| {
                // Prefer connection strength, then lighter parts.
                scores[a]
                    .partial_cmp(&scores[b])
                    .unwrap()
                    .then(part_w[b].partial_cmp(&part_w[a]).unwrap())
            })
            .unwrap();
        assign[v] = best as u32;
        part_w[best] += g.vwgt[v];
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn path(n: usize) -> Graph {
        let edges: Vec<(u32, u32, f64)> = (0..n as u32 - 1).map(|i| (i, i + 1, 1.0)).collect();
        Graph::from_edges(n, &edges, None)
    }

    #[test]
    fn all_vertices_assigned_and_parts_nonempty() {
        let g = path(40);
        let mut rng = StdRng::seed_from_u64(3);
        let assign = greedy_growing(&g, 4, 1.05, &mut rng);
        assert!(assign.iter().all(|&a| a < 4));
        for p in 0..4 {
            assert!(assign.iter().any(|&a| a == p), "part {p} empty");
        }
    }

    #[test]
    fn grown_parts_are_connected_on_a_path() {
        // On a path graph, greedy growing should produce contiguous runs
        // (each part is an interval), giving cut = k - 1.
        let g = path(64);
        let mut rng = StdRng::seed_from_u64(11);
        let assign = greedy_growing(&g, 2, 1.02, &mut rng);
        let cut = g.edge_cut(&assign);
        assert!(cut <= 3.0, "cut {cut} (optimal 1)");
    }

    #[test]
    fn balance_respects_quota() {
        let g = path(100);
        let mut rng = StdRng::seed_from_u64(8);
        let assign = greedy_growing(&g, 5, 1.05, &mut rng);
        assert!(
            g.balance(&assign, 5) < 1.6,
            "initial partitions are refined later; only gross imbalance is a bug"
        );
    }
}
