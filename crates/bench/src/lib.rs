//! Shared helpers for the figure/table harness binaries and the Criterion
//! benches.
//!
//! Every `fig*` / `tab*` binary regenerates one figure or table of the
//! paper's evaluation section (the mapping is in DESIGN.md §4). Binaries
//! print a human-readable table to stdout; pass `--json` to also emit the
//! raw series as JSON on the last line.

pub mod validation;

use serde_json::Value;
use std::time::Instant;
use trillium_field::{PdfField, Shape, SoaPdfField};
use trillium_kernels::SweepStats;
use trillium_lattice::{Relaxation, D3Q19};

/// Schema tag stamped on every harness JSON report line.
pub const BENCH_SCHEMA: &str = "trillium.bench/v1";

/// Parses the common CLI flags of the harness binaries.
pub struct HarnessArgs {
    /// Emit machine-readable JSON after the table.
    pub json: bool,
    /// Run at full paper scale (slow) instead of the workstation default.
    pub full: bool,
    /// Write a Chrome `trace_event` file of the run to this path
    /// (binaries that drive the distributed time loop honor it).
    pub trace: Option<String>,
}

impl HarnessArgs {
    /// Reads flags from `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let trace = args.iter().position(|a| a == "--trace").and_then(|i| args.get(i + 1)).cloned();
        HarnessArgs {
            json: args.iter().any(|a| a == "--json"),
            full: args.iter().any(|a| a == "--full"),
            trace,
        }
    }
}

/// Wraps a binary's raw JSON payload in the shared report envelope:
/// `schema` and `bin` come first, then the payload's own fields. Object
/// payloads keep their fields at the top level, so existing consumers
/// keep reading them unchanged; arrays and scalars land under `rows`.
pub fn bench_report(bin: &str, payload: Value) -> Value {
    let mut fields = vec![
        ("schema".to_string(), Value::String(BENCH_SCHEMA.to_string())),
        ("bin".to_string(), Value::String(bin.to_string())),
    ];
    match payload {
        Value::Object(obj) => fields.extend(obj),
        other => fields.push(("rows".to_string(), other)),
    }
    Value::Object(fields)
}

/// Prints the machine-readable report shared by all harness binaries.
/// The `--json` contract is: exactly one JSON object on the last stdout
/// line, carrying `schema` and `bin` plus the binary's own fields.
pub fn emit_json(bin: &str, payload: Value) {
    println!("{}", bench_report(bin, payload));
}

/// Prints a separator + title for a harness section.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Measures the MLUPS of a kernel closure over `reps` sweeps on a field
/// of the given shape, after one warm-up sweep.
pub fn measure_mlups<F: FnMut() -> SweepStats>(mut sweep: F, reps: usize) -> f64 {
    let _ = sweep(); // warm-up
    let start = Instant::now();
    let mut stats = SweepStats::default();
    for _ in 0..reps {
        stats.merge(sweep());
    }
    stats.mlups(start.elapsed().as_secs_f64())
}

/// A pair of SoA fields initialized to a perturbed equilibrium, ready for
/// kernel benchmarking.
pub fn bench_fields(n: usize) -> (SoaPdfField<D3Q19>, SoaPdfField<D3Q19>) {
    let shape = Shape::cube(n);
    let mut src = SoaPdfField::<D3Q19>::new(shape);
    let dst = SoaPdfField::<D3Q19>::new(shape);
    src.fill_equilibrium(1.0, [0.02, 0.01, -0.01]);
    for (i, v) in src.data_mut().iter_mut().enumerate() {
        *v += 1e-5 * ((i % 101) as f64 - 50.0);
    }
    (src, dst)
}

/// The standard relaxation used by all benchmarks (TRT, paper's choice).
pub fn bench_relaxation() -> Relaxation {
    Relaxation::trt_from_viscosity(0.05)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_report_prepends_schema_and_bin() {
        let r = bench_report("demo", serde_json::json!({"x": 1}));
        assert_eq!(r.to_string(), r#"{"schema":"trillium.bench/v1","bin":"demo","x":1}"#);
        let r = bench_report("demo", serde_json::json!([1, 2]));
        assert_eq!(r.to_string(), r#"{"schema":"trillium.bench/v1","bin":"demo","rows":[1,2]}"#);
    }

    #[test]
    fn measure_mlups_returns_positive_rate() {
        let (src, mut dst) = bench_fields(16);
        let rel = bench_relaxation();
        let m = measure_mlups(|| trillium_kernels::soa::stream_collide_trt(&src, &mut dst, rel), 2);
        assert!(m > 0.0);
    }
}
