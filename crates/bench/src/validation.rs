//! Quantitative physics validation: the scenario × collision-operator ×
//! schedule × kernel matrix behind the `validation_matrix` harness binary
//! and the CI `physics-validation` gate (DESIGN.md §13).
//!
//! Each *case* is a flow with an analytic or reference answer:
//!
//! * **Poiseuille** — pressure-driven plane channel; metric: relative L2
//!   deviation of the steady `u_x(y)` profile from its best-fit parabola.
//! * **Taylor–Green** — periodic decaying vortex array; metric: relative
//!   error of the viscosity measured from the kinetic-energy decay
//!   `E(T) = E(0)·e^{−4νk²T}` against the nominal viscosity.
//! * **Cavity** — quasi-2-D lid-driven cavity at Re = 100; metric: RMS of
//!   the vertical-centerline `u_x` profile against the Ghia, Ghia & Shin
//!   (1982) reference table.
//! * **Von Kármán** — cylinder in a channel at Re ≈ 100; metric: Strouhal
//!   number from mean crossings of the per-step lift signal, which must
//!   land in the accepted experimental window.
//!
//! Every cell of the matrix runs the *distributed* driver (4 emulated
//! ranks), so a failure localizes a physics bug to a specific operator ×
//! schedule × kernel combination rather than to "the code".

use serde_json::{json, Value};
use std::collections::HashMap;
use trillium_core::driver::{
    run_distributed_rebalanced, run_distributed_with, DriverConfig, RebalanceConfig, RunResult,
};
use trillium_core::recovery::{run_distributed_resilient, ResilienceConfig};
use trillium_core::scenario::{KernelChoice, Scenario};
use trillium_field::CellFlags;
use trillium_kernels::Collision;
use trillium_lattice::{velocity, D3Q19};
use trillium_obs::ObsConfig;

/// Emulated MPI ranks every validation cell runs on.
pub const NUM_PROCS: u32 = 4;

/// Ghia, Ghia & Shin (1982), Table I: `u_x/u_lid` along the vertical
/// centerline of the lid-driven cavity at Re = 100, as `(y/H, u/u_lid)`
/// with `y = 0` at the stationary wall and `y = 1` at the lid.
pub const GHIA_U_RE100: [(f64, f64); 17] = [
    (0.0000, 0.00000),
    (0.0547, -0.03717),
    (0.0625, -0.04192),
    (0.0703, -0.04775),
    (0.1016, -0.06434),
    (0.1719, -0.10150),
    (0.2813, -0.15662),
    (0.4531, -0.21090),
    (0.5000, -0.20581),
    (0.6172, -0.13641),
    (0.7344, 0.00332),
    (0.8516, 0.23151),
    (0.9531, 0.68717),
    (0.9609, 0.73722),
    (0.9688, 0.78871),
    (0.9766, 0.84123),
    (1.0000, 1.00000),
];

/// A validation case: one flow with a quantitative reference answer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Case {
    /// Pressure-driven plane channel (parabolic-profile L2 error).
    Poiseuille,
    /// Decaying Taylor–Green vortex (dissipation-rate error).
    TaylorGreen,
    /// Lid-driven cavity at Re = 100 (Ghia centerline RMS).
    Cavity,
    /// Cylinder in a channel at Re ≈ 100 (Strouhal number window).
    VonKarman,
}

impl Case {
    /// Every case, in report order.
    pub const ALL: [Case; 4] = [Case::Poiseuille, Case::TaylorGreen, Case::Cavity, Case::VonKarman];

    /// Short report label.
    pub fn label(self) -> &'static str {
        match self {
            Case::Poiseuille => "poiseuille",
            Case::TaylorGreen => "taylor-green",
            Case::Cavity => "cavity",
            Case::VonKarman => "von-karman",
        }
    }

    /// Name of the quantitative metric this case reports.
    pub fn metric(self) -> &'static str {
        match self {
            Case::Poiseuille => "profile_l2_error",
            Case::TaylorGreen => "dissipation_rel_error",
            Case::Cavity => "ghia_centerline_rms",
            Case::VonKarman => "strouhal",
        }
    }
}

/// Which driver schedule runs a cell.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Synchronous exchange → boundary → stream-collide (the reference).
    Sync,
    /// Communication-hiding overlapped schedule.
    Overlapped,
    /// Synchronous schedule with the runtime load balancer armed.
    Rebalanced,
    /// Checkpoint/rollback resilient wrapper (clean run, no faults).
    Resilient,
}

impl Schedule {
    /// Every schedule, in report order.
    pub const ALL: [Schedule; 4] =
        [Schedule::Sync, Schedule::Overlapped, Schedule::Rebalanced, Schedule::Resilient];

    /// Short report label.
    pub fn label(self) -> &'static str {
        match self {
            Schedule::Sync => "sync",
            Schedule::Overlapped => "overlapped",
            Schedule::Rebalanced => "rebalanced",
            Schedule::Resilient => "resilient",
        }
    }
}

/// Short label for a kernel choice.
pub fn kernel_label(k: KernelChoice) -> &'static str {
    match k {
        KernelChoice::Auto => "auto",
        KernelChoice::Pull => "pull",
        KernelChoice::InPlace => "in-place",
    }
}

/// The swept matrix: which cases, operators, schedules and kernel tiers
/// to combine.
pub struct MatrixSpec {
    /// Validation cases.
    pub cases: Vec<Case>,
    /// Collision operators.
    pub operators: Vec<Collision>,
    /// Driver schedules.
    pub schedules: Vec<Schedule>,
    /// Kernel/update-scheme tiers.
    pub kernels: Vec<KernelChoice>,
}

impl MatrixSpec {
    /// The reduced CI matrix: all four cases, SRT/TRT/MRT, the sync and
    /// overlapped schedules, default kernel tier.
    pub fn reduced() -> Self {
        MatrixSpec {
            cases: Case::ALL.to_vec(),
            operators: vec![Collision::Srt, Collision::Trt, Collision::Mrt],
            schedules: vec![Schedule::Sync, Schedule::Overlapped],
            kernels: vec![KernelChoice::Auto],
        }
    }

    /// The full matrix: four cases × four operators × four schedules ×
    /// both kernel tiers (slow; `--full`).
    pub fn full() -> Self {
        MatrixSpec {
            cases: Case::ALL.to_vec(),
            operators: Collision::ALL.to_vec(),
            schedules: Schedule::ALL.to_vec(),
            kernels: vec![KernelChoice::Pull, KernelChoice::InPlace],
        }
    }
}

/// One finished cell of the validation matrix.
pub struct CellOutcome {
    /// Case label.
    pub case: &'static str,
    /// Collision-operator label.
    pub operator: &'static str,
    /// Schedule label.
    pub schedule: &'static str,
    /// Kernel-tier label (as *requested*).
    pub kernel: &'static str,
    /// Update scheme the blocks actually ran (`"pull"`, `"inplace"`, or
    /// `"mixed"`): a requested in-place kernel silently resolves to pull
    /// on sparse carved blocks, and a report that echoed only the request
    /// would attribute pull-tier results to the in-place kernel.
    pub resolved_kernel: String,
    /// Metric name.
    pub metric: &'static str,
    /// Measured metric value.
    pub value: f64,
    /// Human-readable acceptance bound.
    pub threshold: String,
    /// Whether the value meets the bound.
    pub pass: bool,
    /// The scenario that ran (for VTK dumps of failed cells).
    pub scenario: Scenario,
    /// The raw run (PDF dump included), kept for failed-cell VTK dumps.
    pub run: RunResult,
}

impl CellOutcome {
    /// The cell as a JSON report row.
    pub fn row(&self) -> Value {
        json!({
            "case": self.case,
            "operator": self.operator,
            "schedule": self.schedule,
            "kernel": self.kernel,
            "resolved_kernel": self.resolved_kernel,
            "metric": self.metric,
            "value": self.value,
            "threshold": self.threshold,
            "pass": self.pass,
        })
    }
}

/// Macroscopic velocities reassembled from a run's PDF dump, addressable
/// by global cell coordinate. Works for every schedule — including the
/// rebalanced one, whose probe list is empty — because the dump is
/// sorted by block id, independent of final ownership.
pub struct MacroField {
    cells: [usize; 3],
    blocks: HashMap<[i64; 3], Vec<[f64; 3]>>,
}

impl MacroField {
    /// Reassembles the velocity field of `run` (which must have been
    /// driven with `collect_pdfs`) for a scenario on `num_procs` ranks.
    pub fn from_run(scenario: &Scenario, num_procs: u32, run: &RunResult) -> Self {
        let forest = scenario.make_forest(num_procs);
        let coords_of: HashMap<u64, [i64; 3]> =
            forest.blocks.iter().map(|b| (b.id.pack(), b.coords)).collect();
        let mut blocks = HashMap::new();
        for (id, vals) in run.pdf_dump() {
            // Dump order matches `Shape::interior().iter()`: x fastest.
            let us: Vec<[f64; 3]> = vals.chunks_exact(19).map(velocity::<D3Q19>).collect();
            blocks.insert(coords_of[&id], us);
        }
        MacroField { cells: scenario.cells, blocks }
    }

    /// Velocity at a global interior cell.
    pub fn velocity(&self, g: [i64; 3]) -> [f64; 3] {
        let c = [self.cells[0] as i64, self.cells[1] as i64, self.cells[2] as i64];
        let bc = [g[0].div_euclid(c[0]), g[1].div_euclid(c[1]), g[2].div_euclid(c[2])];
        let l = [
            g[0].rem_euclid(c[0]) as usize,
            g[1].rem_euclid(c[1]) as usize,
            g[2].rem_euclid(c[2]) as usize,
        ];
        self.blocks[&bc][(l[2] * self.cells[1] + l[1]) * self.cells[0] + l[0]]
    }
}

/// Relative L2 deviation of a channel profile from its best-fit parabola
/// `a·y(H−y)` (walls half a cell outside the first/last sample). Zero
/// for a perfectly parabolic profile regardless of amplitude.
pub fn parabola_l2_error(profile: &[f64]) -> f64 {
    let h = profile.len() as f64;
    let phi: Vec<f64> = (0..profile.len())
        .map(|i| {
            let yc = i as f64 + 0.5;
            yc * (h - yc)
        })
        .collect();
    let num: f64 = profile.iter().zip(&phi).map(|(u, p)| u * p).sum();
    let den: f64 = phi.iter().map(|p| p * p).sum();
    let a = num / den;
    let err: f64 = profile.iter().zip(&phi).map(|(u, p)| (u - a * p).powi(2)).sum();
    let norm: f64 = profile.iter().map(|u| u * u).sum();
    (err / norm).sqrt()
}

/// Viscosity measured from the Taylor–Green kinetic-energy decay
/// `E(T) = E(0)·e^{−4νk²T}` over `steps` time steps.
pub fn measured_viscosity(e0: f64, e1: f64, k: f64, steps: u64) -> f64 {
    -(e1 / e0).ln() / (4.0 * k * k * steps as f64)
}

/// RMS of a cavity centerline profile against the Ghia Re = 100 table.
/// `profile[z]` is `u_x` at the vertical centerline cell centers,
/// normalized by the lid velocity; walls/lid values are pinned at 0/1.
pub fn ghia_rms(profile: &[f64]) -> f64 {
    let n = profile.len();
    // Piecewise-linear samples: wall (0,0), cell centers, lid (1,1).
    let at = |pos: f64| -> f64 {
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(n + 2);
        pts.push((0.0, 0.0));
        for (i, u) in profile.iter().enumerate() {
            pts.push(((i as f64 + 0.5) / n as f64, *u));
        }
        pts.push((1.0, 1.0));
        for w in pts.windows(2) {
            if pos >= w[0].0 && pos <= w[1].0 {
                let f = (pos - w[0].0) / (w[1].0 - w[0].0);
                return w[0].1 + f * (w[1].1 - w[0].1);
            }
        }
        *profile.last().unwrap()
    };
    let sq: f64 = GHIA_U_RE100.iter().map(|&(y, u)| (at(y) - u).powi(2)).sum();
    (sq / GHIA_U_RE100.len() as f64).sqrt()
}

/// Strouhal number from the per-step lift signal: the shedding frequency
/// is taken from upward mean crossings (linearly interpolated) of the
/// signal, `St = f·D/U`. `None` when fewer than two crossings exist (no
/// established shedding).
pub fn strouhal_from_lift(lift: &[f64], diameter: f64, inflow: f64) -> Option<f64> {
    if lift.len() < 16 {
        return None;
    }
    let mean = lift.iter().sum::<f64>() / lift.len() as f64;
    let mut crossings: Vec<f64> = Vec::new();
    for i in 1..lift.len() {
        let (a, b) = (lift[i - 1] - mean, lift[i] - mean);
        if a < 0.0 && b >= 0.0 {
            crossings.push((i - 1) as f64 + a / (a - b));
        }
    }
    if crossings.len() < 2 {
        return None;
    }
    let period = (crossings[crossings.len() - 1] - crossings[0]) / (crossings.len() - 1) as f64;
    Some(diameter / (inflow * period))
}

/// The update scheme the blocks of `scenario` actually run on
/// `num_procs` ranks, summarized across blocks: `"pull"`, `"inplace"`,
/// or `"mixed"` when sparse blocks forced some (but not all) of a
/// requested in-place run down to the pull scheme (see
/// `BlockSim::fell_back_to_pull`).
pub fn resolved_kernel(scenario: &Scenario, num_procs: u32) -> String {
    use trillium_core::prelude::UpdateScheme;
    let forest = scenario.make_forest(num_procs);
    let views = trillium_blockforest::distribute(&forest);
    let (mut pull, mut inplace) = (false, false);
    for view in &views {
        for lb in &view.blocks {
            match scenario.build_block(lb).scheme {
                UpdateScheme::Pull => pull = true,
                UpdateScheme::InPlace => inplace = true,
            }
        }
    }
    match (pull, inplace) {
        (true, true) => "mixed".to_string(),
        (false, true) => "inplace".to_string(),
        _ => "pull".to_string(),
    }
}

/// Whether a case × operator combination is part of the matrix. The von
/// Kármán case runs only with the MRT family: at the CI resolution
/// (D = 8 cells, ν = 0.008, τ_e ≈ 0.524) both SRT and magic-TRT diverge
/// within a few hundred steps of the impulsive start, while MRT's
/// ghost-mode damping keeps the run stable — the exact contrast pinned
/// by `tests/mrt_equivalence.rs`, not a validation failure.
pub fn is_supported(case: Case, op: Collision) -> bool {
    case != Case::VonKarman || op.is_mrt()
}

/// Drives `scenario` for `steps` under one schedule, collecting the PDF
/// dump and (optionally) the masked force series.
pub fn drive(
    scenario: &Scenario,
    steps: u64,
    force_mask: Option<CellFlags>,
    sched: Schedule,
) -> RunResult {
    match sched {
        Schedule::Sync | Schedule::Overlapped => {
            let cfg = DriverConfig {
                overlap: matches!(sched, Schedule::Overlapped),
                collect_pdfs: true,
                obs: ObsConfig::off(),
                force_mask,
            };
            run_distributed_with(scenario, NUM_PROCS, 1, steps, &[], cfg)
        }
        Schedule::Rebalanced => {
            let cfg = RebalanceConfig {
                collect_pdfs: true,
                obs: ObsConfig::off(),
                force_mask,
                ..Default::default()
            };
            run_distributed_rebalanced(scenario, NUM_PROCS, 1, steps, cfg)
        }
        Schedule::Resilient => {
            let rc = ResilienceConfig {
                driver: DriverConfig {
                    collect_pdfs: true,
                    obs: ObsConfig::off(),
                    force_mask,
                    ..DriverConfig::default()
                },
                ..ResilienceConfig::default()
            };
            run_distributed_resilient(scenario, NUM_PROCS, 1, steps, &[], &rc)
                .expect("clean resilient run cannot fail")
                .run
        }
    }
}

/// Runs one cell of the validation matrix and judges it against the
/// case's acceptance threshold.
pub fn run_cell(case: Case, op: Collision, sched: Schedule, kernel: KernelChoice) -> CellOutcome {
    let (scenario, steps, value, threshold, pass, run) = match case {
        Case::Poiseuille => {
            // L = 3H so the mid-channel probe sits a full channel height
            // past the uniform-density inlet's development zone.
            let steps = 8000;
            let scenario = Scenario::poiseuille([96, 32, 2], [2, 2, 2], 0.1, 0.015)
                .with_collision(op)
                .with_kernel(kernel);
            let run = drive(&scenario, steps, None, sched);
            let field = MacroField::from_run(&scenario, NUM_PROCS, &run);
            let profile: Vec<f64> = (0..32).map(|y| field.velocity([48, y, 0])[0]).collect();
            let value = parabola_l2_error(&profile);
            (scenario, steps, value, "< 1e-3".to_string(), value < 1e-3, run)
        }
        Case::TaylorGreen => {
            let (n, nu, steps) = (32usize, 0.02, 200u64);
            let scenario =
                Scenario::taylor_green(n, 2, nu, 0.05).with_collision(op).with_kernel(kernel);
            let run = drive(&scenario, steps, None, sched);
            let k = 2.0 * std::f64::consts::PI / n as f64;
            let nu_meas = measured_viscosity(
                run.kinetic_energy_initial(),
                run.kinetic_energy_final(),
                k,
                steps,
            );
            let value = (nu_meas - nu).abs() / nu;
            (scenario, steps, value, "< 0.05".to_string(), value < 0.05, run)
        }
        Case::Cavity => {
            let (n, u_lid, steps) = (32usize, 0.1, 6000u64);
            // Re = u_lid·n/ν = 100.
            let scenario = Scenario::lid_driven_cavity_2d(n, 2, u_lid * n as f64 / 100.0, u_lid)
                .with_collision(op)
                .with_kernel(kernel);
            let run = drive(&scenario, steps, None, sched);
            let field = MacroField::from_run(&scenario, NUM_PROCS, &run);
            // Vertical centerline: average the two columns straddling the
            // geometric center x = n/2.
            let ni = n as i64;
            let profile: Vec<f64> = (0..ni)
                .map(|z| {
                    let a = field.velocity([ni / 2 - 1, 0, z])[0];
                    let b = field.velocity([ni / 2, 0, z])[0];
                    0.5 * (a + b) / u_lid
                })
                .collect();
            let value = ghia_rms(&profile);
            (scenario, steps, value, "< 5e-2".to_string(), value < 5e-2, run)
        }
        Case::VonKarman => {
            let (diameter, inflow, steps) = (8.0, 0.1, 6000u64);
            // Re = U·D/ν = 100; 12.5% blockage.
            let scenario = Scenario::von_karman(
                [128, 64, 2],
                [2, 2, 2],
                inflow * diameter / 100.0,
                inflow,
                diameter,
            )
            .with_collision(op)
            .with_kernel(kernel);
            let run = drive(&scenario, steps, Some(CellFlags::OBSTACLE), sched);
            let lift: Vec<f64> = run.force_series().iter().map(|f| f[1]).collect();
            // Discard the transient; measure on the second half.
            let window = &lift[lift.len() / 2..];
            let value = strouhal_from_lift(window, diameter, inflow).unwrap_or(f64::NAN);
            let pass = value.is_finite() && (0.15..=0.20).contains(&value);
            (scenario, steps, value, "in [0.15, 0.20]".to_string(), pass, run)
        }
    };
    let _ = steps;
    CellOutcome {
        case: case.label(),
        operator: op.label(),
        schedule: sched.label(),
        kernel: kernel_label(kernel),
        resolved_kernel: resolved_kernel(&scenario, NUM_PROCS),
        metric: case.metric(),
        value,
        threshold,
        pass,
        scenario,
        run,
    }
}

/// Writes the macroscopic fields of every block of a failed cell as
/// legacy-VTK files (`<stem>_block<i>.vtk` under `dir`), reconstructing
/// block state from the run's PDF dump. Returns the written paths.
pub fn dump_failed_vtk(
    scenario: &Scenario,
    run: &RunResult,
    dir: &std::path::Path,
    stem: &str,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    use trillium_field::PdfField;
    std::fs::create_dir_all(dir)?;
    let forest = scenario.make_forest(1);
    let views = trillium_blockforest::distribute(&forest);
    let dump: HashMap<u64, Vec<f64>> = run.pdf_dump().into_iter().collect();
    let mut written = Vec::new();
    for (i, lb) in views[0].blocks.iter().enumerate() {
        let mut block = scenario.build_block(lb);
        if let Some(vals) = dump.get(&lb.id.pack()) {
            let mut cell = [0.0; 19];
            for ((x, y, z), f) in block.shape.interior().iter().zip(vals.chunks_exact(19)) {
                cell.copy_from_slice(f);
                block.src.set_cell(x, y, z, &cell);
            }
        }
        let path = dir.join(format!("{stem}_block{i}.vtk"));
        trillium_core::output::write_vtk_file(
            &path,
            &block,
            [lb.aabb.min.x, lb.aabb.min.y, lb.aabb.min.z],
            1.0,
        )?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parabola_error_vanishes_for_exact_parabola() {
        let h = 16.0;
        let profile: Vec<f64> =
            (0..16).map(|i| 0.03 * (i as f64 + 0.5) * (h - i as f64 - 0.5)).collect();
        assert!(parabola_l2_error(&profile) < 1e-14);
        // A linear shear profile is far from parabolic.
        let shear: Vec<f64> = (0..16).map(|i| 0.01 * i as f64).collect();
        assert!(parabola_l2_error(&shear) > 0.1);
    }

    #[test]
    fn measured_viscosity_inverts_the_decay_law() {
        let (nu, k, steps) = (0.03, 0.2, 150u64);
        let e0 = 1.7;
        let e1 = e0 * (-4.0 * nu * k * k * steps as f64).exp();
        assert!((measured_viscosity(e0, e1, k, steps) - nu).abs() < 1e-12);
    }

    #[test]
    fn ghia_rms_is_zero_against_itself() {
        // Sample the Ghia table itself onto a fine grid: RMS must be tiny.
        let n = 256;
        let interp = |pos: f64| -> f64 {
            for w in GHIA_U_RE100.windows(2) {
                if pos >= w[0].0 && pos <= w[1].0 {
                    let f = (pos - w[0].0) / (w[1].0 - w[0].0);
                    return w[0].1 + f * (w[1].1 - w[0].1);
                }
            }
            1.0
        };
        let profile: Vec<f64> = (0..n).map(|i| interp((i as f64 + 0.5) / n as f64)).collect();
        assert!(ghia_rms(&profile) < 5e-3);
    }

    /// The job service must accept exactly the case × operator
    /// combinations the validation matrix runs: a spec the service admits
    /// but validation skips (or vice versa) means the two rule copies
    /// drifted apart.
    #[test]
    fn jobs_spec_rule_matches_is_supported() {
        for op in Collision::ALL {
            let doc = format!(
                r#"{{"name": "x", "family": "von-karman", "collision": "{}", "cells": 8}}"#,
                op.label()
            );
            assert_eq!(
                trillium_jobs::JobSpec::parse(&doc).is_ok(),
                is_supported(Case::VonKarman, op),
                "von Kármán rule drifted for operator {}",
                op.label()
            );
            let doc =
                format!(r#"{{"name": "x", "family": "cavity", "collision": "{}"}}"#, op.label());
            assert!(trillium_jobs::JobSpec::parse(&doc).is_ok());
            assert!(is_supported(Case::Cavity, op));
        }
    }

    /// Dense scenarios resolve the requested kernel as-is; the label the
    /// report carries must reflect the resolution, not the request.
    #[test]
    fn resolved_kernel_reflects_dense_resolution() {
        let cavity = || Scenario::lid_driven_cavity(16, 2, 0.05, 0.08);
        assert_eq!(resolved_kernel(&cavity().with_kernel(KernelChoice::Pull), 2), "pull");
        assert_eq!(resolved_kernel(&cavity().with_kernel(KernelChoice::InPlace), 2), "inplace");
    }

    #[test]
    fn strouhal_recovers_a_synthetic_shedding_frequency() {
        // St = f·D/U with f = 1/500 steps, D = 8, U = 0.1 → St = 0.16.
        let lift: Vec<f64> = (0..4000)
            .map(|t| 0.002 * (2.0 * std::f64::consts::PI * t as f64 / 500.0).sin() + 1e-4)
            .collect();
        let st = strouhal_from_lift(&lift, 8.0, 0.1).unwrap();
        assert!((st - 0.16).abs() < 0.005, "St {st}");
        // A flat signal yields no crossings.
        assert_eq!(strouhal_from_lift(&vec![0.5; 4000], 8.0, 0.1), None);
    }
}
