//! Ablation: communication/compute overlap on a skewed vascular run.
//!
//! The synchronous driver stalls every step in a fixed-order blocking
//! receive loop while neighbor data trickles in. The overlapped schedule
//! posts all sends, sweeps each block's interior core (whose pull stencil
//! never reads the ghost layer) while messages are in flight, then drains
//! the network in *arrival* order and finishes each block's boundary
//! shell as its last message lands. Both schedules are bitwise identical
//! in their results (pinned by the driver and integration tests); this
//! ablation measures what the overlap buys on a deliberately skewed
//! vascular tree, where the overloaded rank's neighbors otherwise spend
//! most of their step blocked.
//!
//! The headline metric is the *stall fraction*: the share of a rank's
//! busy time spent blocked in a ghost receive while runnable local
//! compute was still pending (max over ranks). The synchronous schedule
//! exposes its entire receive wait as stall — it blocks with the whole
//! stream-collide sweep still undone. The overlapped schedule only ever
//! blocks after every interior is swept and every ready shell finished,
//! so its exposed stall is zero and what remains in the comm fraction is
//! pure neighbor imbalance, which no schedule can hide. On this
//! thread-emulated MPI the wall clock of a blocked receive measures the
//! host scheduler — every rank time-slices the same cores — so total
//! wall time and MLUPS barely move; the stall fraction is the
//! scheduler-independent signal. Pass `--json` for raw data.

use std::sync::Arc;
use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_core::driver::{run_distributed_with, DriverConfig, RunResult};
use trillium_core::prelude::*;
use trillium_geometry::voxelize::VoxelizeConfig;
use trillium_geometry::{VascularTree, VascularTreeParams};

const RANKS: u32 = 4;
const SKEW: f64 = 0.7;

fn vascular_scenario(full: bool) -> Scenario {
    let tree = VascularTree::generate(&VascularTreeParams {
        generations: if full { 6 } else { 4 },
        root_radius: 1.2,
        root_length: 7.0,
        ..Default::default()
    });
    let dx = if full { 0.1 } else { 0.25 };
    Scenario::from_sdf(
        "vascular-overlap",
        Arc::new(tree),
        dx,
        [16, 16, 16],
        0.06,
        [0.0, 0.0, 0.05],
        1.0,
        VoxelizeConfig::default(),
    )
    .with_skewed_balance(SKEW)
}

/// Achieved MLUPS over the per-rank critical path (kernel + comm +
/// boundary, max over ranks).
fn mlups(r: &RunResult) -> f64 {
    let wall = r
        .ranks
        .iter()
        .map(|rr| rr.kernel_time + rr.comm_time + rr.boundary_time)
        .fold(0.0f64, f64::max);
    r.total_stats().mlups(wall)
}

fn main() {
    let args = HarnessArgs::parse();
    let steps = if args.full { 300 } else { 120 };
    section("Communication-overlap ablation on a skewed vascular tree");
    println!(
        "{RANKS} ranks, rank 0 statically assigned ~{:.0} % of the workload, {steps} steps",
        100.0 * SKEW
    );

    let sync = run_distributed_with(
        &vascular_scenario(args.full),
        RANKS,
        1,
        steps,
        &[],
        DriverConfig::default(),
    );
    let mut over_cfg = DriverConfig::overlapped();
    if args.trace.is_some() {
        over_cfg = over_cfg.with_trace();
    }
    let over = run_distributed_with(&vascular_scenario(args.full), RANKS, 1, steps, &[], over_cfg);
    if let Some(path) = &args.trace {
        std::fs::write(path, over.chrome_trace().to_string()).expect("write chrome trace");
        println!("wrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
    }
    assert!(!sync.has_nan() && !over.has_nan(), "run went unstable");
    assert_eq!(
        sync.total_stats().fluid_cells,
        over.total_stats().fluid_cells,
        "schedules must do identical work"
    );

    let (m_sync, m_over) = (mlups(&sync), mlups(&over));
    let (sf_sync, sf_over) = (sync.stall_fraction(), over.stall_fraction());
    let (cf_sync, cf_over) = (sync.comm_fraction(), over.comm_fraction());
    println!();
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "overlap", "MLUPS", "stall fraction", "comm fraction", "hidden (s)", "mass drift"
    );
    for (label, r, m, sf, cf) in
        [("off", &sync, m_sync, sf_sync, cf_sync), ("on", &over, m_over, sf_over, cf_over)]
    {
        println!(
            "{:<10} {:>10.2} {:>14.4} {:>14.3} {:>12.4} {:>12.2e}",
            label,
            m,
            sf,
            cf,
            r.overlap_hidden(),
            r.mass_drift().abs()
        );
    }

    println!();
    println!("expect: the stall fraction (time blocked on ghost messages while runnable");
    println!("compute was still pending) drops strictly below the synchronous run's —");
    println!("the overlapped schedule never blocks while work remains — with bitwise-");
    println!("identical physics. MLUPS moves little here: ranks are emulated as threads");
    println!("on a shared host, so a blocked receive's wall time is scheduler time, not");
    println!("network latency; the residual comm fraction is neighbor imbalance.");

    if args.json {
        emit_json(
            "ablation_overlap",
            serde_json::json!({
                "scenario": "skewed vascular tree",
                "ranks": RANKS,
                "steps": steps,
                "skew_fraction": SKEW,
                "mlups_sync": m_sync,
                "mlups_overlap": m_over,
                "mlups_gain": m_over / m_sync,
                "stall_fraction_sync": sf_sync,
                "stall_fraction_overlap": sf_over,
                "comm_fraction_sync": cf_sync,
                "comm_fraction_overlap": cf_over,
                "overlap_hidden_seconds": over.overlap_hidden(),
                "mass_drift_overlap": over.mass_drift(),
                "fluid_cells": over.total_stats().fluid_cells,
            }),
        );
    }
}
