//! Observability-overhead benchmark: what does the span/metrics layer
//! cost on the dense hot loop?
//!
//! The driver wraps every time step in a `Step` span, every sweep in a
//! `Kernel` span, and feeds a step-time histogram — so the recorder sits
//! on the hottest path in the code. The contract (DESIGN.md §11) is that
//! a *disabled* recorder is free: every span call collapses to a branch
//! on a `Copy` config, no clock reads, no allocation. This binary pins
//! that claim by sweeping the dense AVX-tier TRT kernel with the exact
//! per-step instrumentation pattern the driver uses, under three
//! recorder configurations, and comparing MLUPS against the bare loop:
//!
//! * `off`    — `ObsConfig::off()`: spans and metrics disabled,
//! * `timing` — the default: span totals + metrics, no event capture,
//! * `trace`  — full per-step Chrome-trace event capture.
//!
//! The true per-sweep cost is nanoseconds against milliseconds of
//! kernel, far below what wall-clock sampling on a shared host can
//! resolve — so the measurement must defeat scheduler noise, not the
//! recorder. All variants sweep the *same* field pair (identical memory
//! footprint and page placement), their sweeps are interleaved
//! round-robin so a contention episode hits every variant alike, and
//! each variant is scored by its *fastest* sweep — the classic
//! microbenchmark statistic that discards scheduler preemption. CI
//! fails if the disabled recorder still shows more than 3 % overhead.

use trillium_bench::{bench_fields, bench_relaxation, emit_json, section, HarnessArgs};
use trillium_obs::{ObsConfig, Recorder, SpanKind};

fn main() {
    let args = HarnessArgs::parse();
    // 32³ keeps both PDF buffers (~10 MiB) close to cache-resident, so
    // neighbor memory traffic on a shared runner barely moves the sweep
    // time; hundreds of interleaved samples give every variant many
    // chances to catch an uncontended slice.
    let (n, sweeps) = if args.full { (48, 400) } else { (32, 300) };
    let cells = (n * n * n) as f64;
    section("Observability overhead on the dense TRT kernel");
    println!("{n}\u{b3} cells, fastest of {sweeps} interleaved sweeps per variant");

    let (mut src, mut dst) = bench_fields(n);
    let rel = bench_relaxation();
    let variants: [(&str, Option<ObsConfig>); 4] = [
        ("none (bare loop)", None),
        ("disabled", Some(ObsConfig::off())),
        ("timing", Some(ObsConfig::default())),
        ("trace", Some(ObsConfig { events: true, ..ObsConfig::default() })),
    ];
    let recs: Vec<Option<Recorder>> =
        variants.iter().map(|(_, cfg)| cfg.map(|c| Recorder::new(0, c))).collect();
    let mut fastest = [f64::INFINITY; 4];

    // One untimed rotation to warm caches and page in both buffers.
    for _ in 0..4 {
        trillium_kernels::soa::stream_collide_trt(&src, &mut dst, rel);
        std::mem::swap(&mut src, &mut dst);
    }
    for t in 0..sweeps {
        for (slot, rec) in recs.iter().enumerate() {
            let start = std::time::Instant::now();
            match rec {
                None => {
                    trillium_kernels::soa::stream_collide_trt(&src, &mut dst, rel);
                }
                Some(rec) => {
                    rec.set_step(t as u64);
                    let step = rec.span(SpanKind::Step);
                    let kernel = rec.span(SpanKind::Kernel);
                    trillium_kernels::soa::stream_collide_trt(&src, &mut dst, rel);
                    drop(kernel);
                    rec.metrics().observe("bench.step_seconds", step.finish());
                }
            }
            fastest[slot] = fastest[slot].min(start.elapsed().as_secs_f64());
            std::mem::swap(&mut src, &mut dst);
        }
    }

    let mlups: Vec<f64> = fastest.iter().map(|&s| cells / s / 1e6).collect();
    let bare = mlups[0];
    let frac = |m: f64| (1.0 - m / bare).max(0.0);

    println!();
    println!("{:<28} {:>10} {:>10}", "recorder", "MLUPS", "overhead");
    for ((label, _), &m) in variants.iter().zip(&mlups) {
        println!("{label:<28} {m:>10.2} {:>9.2}%", 100.0 * frac(m));
    }
    println!();
    println!("contract: the disabled recorder must cost <3 % of bare throughput;");
    println!("the driver leaves timing on by default and traces only on request.");

    if args.json {
        emit_json(
            "obs_overhead",
            serde_json::json!({
                "cells": n * n * n,
                "sweeps": sweeps,
                "mlups_bare": bare,
                "mlups_disabled": mlups[1],
                "mlups_timing": mlups[2],
                "mlups_trace": mlups[3],
                "overhead_disabled_frac": frac(mlups[1]),
                "overhead_timing_frac": frac(mlups[2]),
                "overhead_trace_frac": frac(mlups[3]),
            }),
        );
    }
}
