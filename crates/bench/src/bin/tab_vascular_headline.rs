//! §4.3 / §5 headline numbers for the vascular experiments: the
//! trillion-fluid-cell discretization, time-step lengths at the finest
//! resolution, and the strong-scaling peak rates.

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_lattice::UnitConverter;
use trillium_machine::MachineSpec;
use trillium_scaling::fig7::{fig7_point, Fig7Config};
use trillium_scaling::fig8::{dx_for_fluid_cells, fig8_point, paper_edges};
use trillium_scaling::paper_tree;

fn main() {
    let args = HarnessArgs::parse();
    let tree = paper_tree();

    section("time-step arithmetic at the paper's finest resolution (§4.3)");
    let uc = UnitConverter::from_velocity_limit(1.276e-6, 0.2, 0.1);
    println!(
        "dx = 1.276 um, u_max = 0.2 m/s, lattice limit 0.1 -> dt = {:.3} us (paper: 0.64 us)",
        uc.dt * 1e6
    );

    section("largest vascular weak-scaling point (model; --full for paper scale)");
    let m = MachineSpec::juqueen();
    let cfg = if args.full {
        Fig7Config::paper(&m)
    } else {
        Fig7Config { block_edge: 24, ..Fig7Config::paper(&m) }
    };
    let cores: u64 = if args.full { 458_752 } else { 1 << 12 };
    let row = fig7_point(&tree, &m, &cfg, cores);
    let fluid_total = row.mflups_per_core; // placeholder to avoid unused warnings
    let _ = fluid_total;
    let blocks = row.blocks;
    let block_cells = (cfg.block_edge as u64).pow(3);
    let total_fluid = row.fluid_fraction * (blocks as u64 * block_cells) as f64;
    println!(
        "{} cores: {} blocks of {}^3, fluid fraction {:.3}, total fluid cells {:.3e}",
        cores, blocks, cfg.block_edge, row.fluid_fraction, total_fluid
    );
    println!("paper (full machine): 1,033,660,569,847 fluid cells at 1.276 um, 1.25 time steps/s");
    let steps_per_s = row.mflups_per_core * cores as f64 * 1e6 / total_fluid;
    println!("modeled time steps/s at this point: {steps_per_s:.2}");

    section("strong-scaling peak rates (§4.3/§5)");
    let sm = MachineSpec::supermuc();
    let dx = dx_for_fluid_cells(&tree, if args.full { 2.1e6 } else { 4e5 }, 0.2);
    let cfg_sm = Fig7Config {
        threads: 4,
        cores_per_proc: 4,
        samples: 4,
        coverage_sample_blocks: 5,
        block_edge: 0,
    };
    let peak_cores: u64 = if args.full { 32_768 } else { 4096 };
    let peak = fig8_point(&tree, &sm, &cfg_sm, dx, peak_cores, &paper_edges());
    println!(
        "SuperMUC at {} cores: {:.0} time steps/s with {}^3 blocks (paper peak: 6638 steps/s at 32768 cores)",
        peak_cores, peak.timesteps_per_s, peak.best_edge
    );

    if args.json {
        emit_json(
            "tab_vascular_headline",
            serde_json::json!({
                "dt_us_at_finest_dx": uc.dt * 1e6,
                "weak_cores": cores,
                "weak_blocks": blocks,
                "weak_fluid_fraction": row.fluid_fraction,
                "weak_total_fluid_cells": total_fluid,
                "weak_timesteps_per_s": steps_per_s,
                "strong_cores": peak_cores,
                "strong_timesteps_per_s": peak.timesteps_per_s,
                "strong_best_block_edge": peak.best_edge,
            }),
        );
    }
}
