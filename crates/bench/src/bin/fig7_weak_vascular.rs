//! Fig 7 — weak scaling on the synthetic coronary tree: real domain
//! partitionings per core count; MFLUPS/core and fluid fraction.
//!
//! Default scale is workstation-friendly (2^4 … 2^12 cores with reduced
//! block edges); `--full` uses the paper's block sizes and core ranges
//! (slow: hundreds of thousands of blocks are partitioned geometrically).

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_machine::MachineSpec;
use trillium_scaling::fig7::{fig7_series, Fig7Config};
use trillium_scaling::paper_tree;

fn main() {
    let args = HarnessArgs::parse();
    let tree = paper_tree();
    let mut all = Vec::new();
    for machine in [MachineSpec::supermuc(), MachineSpec::juqueen()] {
        let (cfg, range) = if args.full {
            let top = if machine.name == "SuperMUC" { 17 } else { 19 };
            (Fig7Config::paper(&machine), (4u32, top))
        } else {
            (
                Fig7Config {
                    block_edge: if machine.name == "SuperMUC" { 40 } else { 24 },
                    ..Fig7Config::paper(&machine)
                },
                (4u32, 12),
            )
        };
        section(&format!(
            "Fig 7: vascular weak scaling on {} (blocks {}^3)",
            machine.name, cfg.block_edge
        ));
        println!(
            "{:<10} {:>9} {:>14} {:>14} {:>12}",
            "cores", "blocks", "MFLUPS/core", "fluid frac", "dx"
        );
        let rows = fig7_series(&tree, &machine, &cfg, range);
        for r in &rows {
            println!(
                "{:<10} {:>9} {:>14.3} {:>14.3} {:>12.5}",
                r.cores, r.blocks, r.mflups_per_core, r.fluid_fraction, r.dx
            );
        }
        all.extend(rows);
    }
    println!();
    println!("paper shape: MFLUPS/core and fluid fraction RISE with the core count");
    println!("(better geometric fit of more, smaller blocks), with a late decline on");
    println!("SuperMUC from multi-island communication.");

    if args.json {
        emit_json("fig7_weak_vascular", serde_json::json!(all));
    }
}
