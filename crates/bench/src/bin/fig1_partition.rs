//! Fig 1 — domain partitioning of the coronary tree with a target of one
//! block per process: nodeboard scale (512) and, with `--full`, the whole
//! JUQUEEN (458,752). Paper values: 485 blocks at 512 processes,
//! 458,184 blocks at 458,752 processes.

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_scaling::fig1::fig1_point;
use trillium_scaling::paper_tree;

fn main() {
    let args = HarnessArgs::parse();
    let tree = paper_tree();
    section("Fig 1: one block per process partitionings of the coronary tree");
    let mut targets = vec![512usize, 4096, 32_768];
    if args.full {
        targets.push(458_752);
    }
    println!(
        "{:<12} {:>10} {:>8} {:>12}   (paper: 512 -> 485 [94.7 %]; 458752 -> 458184 [99.9 %])",
        "processes", "blocks", "fill %", "dx"
    );
    let mut rows = Vec::new();
    for t in targets {
        let r = fig1_point(&tree, 32, t, 4);
        println!("{:<12} {:>10} {:>8.1} {:>12.5}", r.processes, r.blocks, 100.0 * r.fill, r.dx);
        rows.push(r);
    }
    if args.json {
        emit_json("fig1_partition", serde_json::json!(rows));
    }

    // ASCII rendition of the Fig 1 content: a mid-depth slice of the
    // candidate root grid, showing which blocks the partitioning keeps.
    section("partition slice (z = mid): '#' kept block, '.' dropped");
    let slice = fig1_point(&tree, 32, 2048, 4);
    render_slice(&tree, slice.dx);
}

fn render_slice(tree: &trillium_geometry::VascularTree, dx: f64) {
    use std::collections::HashSet;
    use trillium_blockforest::SetupForest;
    let forest = SetupForest::from_domain_sampled(tree, dx, [32, 32, 32], 4);
    let kept: HashSet<(i64, i64)> = forest
        .blocks
        .iter()
        .filter(|b| (b.coords[2] - forest.roots[2] as i64 / 2).abs() <= 0)
        .map(|b| (b.coords[0], b.coords[1]))
        .collect();
    let (rx, ry) = (forest.roots[0].min(72), forest.roots[1]);
    for y in (0..ry as i64).rev() {
        let row: String =
            (0..rx as i64).map(|x| if kept.contains(&(x, y)) { '#' } else { '.' }).collect();
        println!("{row}");
    }
    println!("({} of {} candidate blocks in this slice belong to the domain)", kept.len(), rx * ry);
}
